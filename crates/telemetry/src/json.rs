//! A minimal JSON value model: builder, writer, parser.
//!
//! The workspace builds fully offline, so serde is not available; this module
//! is the hand-rolled substrate behind the [`crate::JsonlSink`] event sink
//! and the `BENCH_TABLE*.json` artifacts written by `regen_tables`. The
//! writer always emits valid JSON; the parser accepts exactly standard JSON
//! (it exists so tests can round-trip what the writer produced, not to
//! ingest arbitrary documents).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (kept exact; JSON numbers without fraction/exponent).
    Int(i128),
    /// A floating-point number (non-finite values are written as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved in the output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Look up a key in an object (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is an `Int`.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Int(n as i128)
    }
}

impl From<u128> for Json {
    fn from(n: u128) -> Json {
        Json::Int(n as i128)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Int(n as i128)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n as i128)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<&BTreeMap<&'static str, u64>> for Json {
    fn from(m: &BTreeMap<&'static str, u64>) -> Json {
        Json::obj(m.iter().map(|(k, v)| (*k, Json::from(*v))))
    }
}

/// Write `s` as a JSON string literal (with escaping) into `f`.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Num(n) if n.is_finite() => write!(f, "{n}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl Json {
    /// Pretty-print with two-space indentation (for the table artifacts,
    /// which are meant to be diffed across PRs).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.pretty_into(&mut out, 0);
        out
    }

    fn pretty_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    out.push_str(&pad);
                    item.pretty_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    out.push_str(&pad);
                    out.push_str(&Json::Str(k.clone()).to_string());
                    out.push_str(": ");
                    v.pretty_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }
}

/// A JSON parse error with a byte offset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not produced by our writer;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let Some(c) = s.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| self.err("invalid integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let doc = Json::obj([
            ("name", Json::from("rcdp")),
            ("count", Json::from(42u64)),
            ("ok", Json::from(true)),
            ("ratio", Json::from(0.5)),
            (
                "items",
                Json::arr([Json::Int(1), Json::Null, Json::from("x")]),
            ),
            ("nested", Json::obj([("k", Json::from("v\"quoted\"\n"))])),
        ]);
        let text = doc.to_string();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn roundtrip_pretty() {
        let doc = Json::obj([
            ("rows", Json::arr([Json::obj([("cell", Json::from("a"))])])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        assert_eq!(parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn escapes_control_characters() {
        let doc = Json::Str("tab\there\u{1}".into());
        let text = doc.to_string();
        assert_eq!(text, "\"tab\\there\\u0001\"");
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(parse("-123").unwrap(), Json::Int(-123));
        assert_eq!(parse("1.5e2").unwrap(), Json::Num(150.0));
        assert_eq!(parse("0").unwrap(), Json::Int(0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn get_and_accessors() {
        let doc = parse(r#"{"a": 1, "b": "x", "c": [true]}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_int), Some(1));
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            doc.get("c").and_then(Json::as_arr).map(|a| a.len()),
            Some(1)
        );
        assert_eq!(doc.get("missing"), None);
    }
}

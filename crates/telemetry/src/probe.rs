//! The [`Probe`] handle and the [`Event`] vocabulary.
//!
//! A probe is what the deciders actually hold: a `Copy` handle that is either
//! disabled (the default — a `None` niche, so emissions cost one branch) or
//! attached to a [`Sink`](crate::Sink). Instrumented code never pays for
//! formatting, clocks, or allocation unless a sink is attached.

use std::time::Instant;

use crate::sink::Sink;

/// One structured telemetry event.
#[derive(Clone, PartialEq, Debug)]
pub enum Event {
    /// A named counter increment. Emitted as aggregate deltas (e.g. once per
    /// enumeration run), not per tick — hot loops stay hot.
    Count {
        /// Counter name, e.g. `"rcdp.valuations"`.
        name: &'static str,
        /// How much to add.
        delta: u64,
    },
    /// A named point-in-time measurement, e.g. the active-domain size.
    Gauge {
        /// Gauge name, e.g. `"rcdp.adom_size"`.
        name: &'static str,
        /// The observed value.
        value: u64,
    },
    /// Wall time of a named phase, in microseconds.
    Span {
        /// Span name, e.g. `"rcdp.enumerate"`.
        name: &'static str,
        /// Elapsed wall time in microseconds.
        micros: u128,
    },
    /// A free-form annotation, e.g. which budget limit cut a search short.
    Note {
        /// Note name, e.g. `"rcdp.outcome"`.
        name: &'static str,
        /// The annotation body.
        detail: String,
    },
    /// A cooperative interruption: a deadline expired or a cancel token
    /// fired inside an enumeration loop. `at_tick` is the guard's global
    /// tick count when the interrupt was observed, so traces show exactly
    /// how much work a degraded decision performed.
    Interrupt {
        /// Interrupt site, e.g. `"rcdp.interrupt"`.
        name: &'static str,
        /// Stable reason name: `"deadline"` or `"cancelled"`.
        reason: &'static str,
        /// Guard ticks observed when the interrupt fired.
        at_tick: u64,
    },
}

impl Event {
    /// The event's name, whatever its kind.
    pub fn name(&self) -> &'static str {
        match self {
            Event::Count { name, .. }
            | Event::Gauge { name, .. }
            | Event::Span { name, .. }
            | Event::Note { name, .. }
            | Event::Interrupt { name, .. } => name,
        }
    }
}

/// A telemetry handle threaded through the decision stack.
///
/// `Probe` is `Copy` and 16 bytes; pass it by value. The disabled probe is
/// the default everywhere — the public `rcdp`/`rcqp` entry points delegate to
/// their `*_probed` variants with `Probe::disabled()`.
#[derive(Clone, Copy, Default)]
pub struct Probe<'a> {
    sink: Option<&'a dyn Sink>,
}

impl<'a> Probe<'a> {
    /// A probe that records nothing. All emission methods reduce to a single
    /// branch on a `None`.
    pub fn disabled() -> Self {
        Probe { sink: None }
    }

    /// A probe that forwards every event to `sink`.
    pub fn attached(sink: &'a dyn Sink) -> Self {
        Probe { sink: Some(sink) }
    }

    /// Whether a sink is attached. Use this to skip *preparing* expensive
    /// event payloads (the emission methods already check internally).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The attached sink, if any. Lets adapters (e.g. the facade's `try_`
    /// wrappers) tee this probe's stream into another sink.
    #[inline]
    pub fn sink(&self) -> Option<&'a dyn Sink> {
        self.sink
    }

    /// Record a cooperative interruption (deadline expiry or cancellation)
    /// observed `at_tick` guard ticks into the search.
    #[inline]
    pub fn interrupt(&self, name: &'static str, reason: &'static str, at_tick: u64) {
        if let Some(sink) = self.sink {
            sink.record(Event::Interrupt {
                name,
                reason,
                at_tick,
            });
        }
    }

    /// Add `delta` to the counter `name`.
    #[inline]
    pub fn count(&self, name: &'static str, delta: u64) {
        if let Some(sink) = self.sink {
            if delta > 0 {
                sink.record(Event::Count { name, delta });
            }
        }
    }

    /// Record the gauge `name` at `value`.
    #[inline]
    pub fn gauge(&self, name: &'static str, value: u64) {
        if let Some(sink) = self.sink {
            sink.record(Event::Gauge { name, value });
        }
    }

    /// Record a note. The `detail` closure only runs when a sink is attached,
    /// so callers can format lazily.
    #[inline]
    pub fn note(&self, name: &'static str, detail: impl FnOnce() -> String) {
        if let Some(sink) = self.sink {
            sink.record(Event::Note {
                name,
                detail: detail(),
            });
        }
    }

    /// Start timing the phase `name`. The returned guard emits a
    /// [`Event::Span`] when dropped; on a disabled probe it never reads the
    /// clock.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard<'a> {
        SpanGuard {
            sink: self.sink,
            name,
            started: self.sink.map(|_| Instant::now()),
        }
    }
}

impl std::fmt::Debug for Probe<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Probe")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// Times a phase; emits a [`Event::Span`] on drop.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard<'a> {
    sink: Option<&'a dyn Sink>,
    name: &'static str,
    started: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let (Some(sink), Some(started)) = (self.sink, self.started) {
            sink.record(Event::Span {
                name: self.name,
                micros: started.elapsed().as_micros(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::Collector;

    #[test]
    fn disabled_probe_records_nothing() {
        let probe = Probe::disabled();
        assert!(!probe.enabled());
        probe.count("x", 3);
        probe.gauge("y", 7);
        probe.note("z", || panic!("detail closure must not run when disabled"));
        drop(probe.span("w"));
    }

    #[test]
    fn attached_probe_forwards_events() {
        let collector = Collector::new();
        let probe = Probe::attached(&collector);
        assert!(probe.enabled());
        probe.count("search.valuations", 5);
        probe.count("search.valuations", 2);
        probe.count("search.valuations", 0); // zero deltas are dropped
        probe.gauge("adom.size", 11);
        probe.note("outcome", || "complete".to_string());
        drop(probe.span("phase"));

        let report = collector.report();
        assert_eq!(report.counter("search.valuations"), 7);
        assert_eq!(report.gauge("adom.size"), Some(11));
        assert_eq!(report.notes("outcome"), vec!["complete".to_string()]);
        assert!(report.span_micros("phase").is_some());
        // 2 counts + 1 gauge + 1 note + 1 span
        assert_eq!(collector.events().len(), 5);
    }

    #[test]
    fn probe_is_copy() {
        let collector = Collector::new();
        let probe = Probe::attached(&collector);
        let copy = probe;
        probe.count("a", 1);
        copy.count("a", 1);
        assert_eq!(collector.report().counter("a"), 2);
    }
}

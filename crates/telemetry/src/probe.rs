//! The [`Probe`] handle and the [`Event`] vocabulary.
//!
//! A probe is what the deciders actually hold: a `Copy` handle that is either
//! disabled (the default — a `None` niche, so emissions cost one branch) or
//! attached to a [`Sink`]. Instrumented code never pays for
//! formatting, clocks, or allocation unless a sink is attached.
//!
//! # Hierarchical spans
//!
//! A probe can additionally carry a [`TraceState`] (see [`Probe::with_trace`]).
//! With one attached, every [`Probe::span`] draws a fresh span id, records the
//! id of the span currently open on this probe as its parent, and emits an
//! [`Event::SpanOpen`] immediately — so the event stream encodes the decision
//! tree (analyze → compile → enumerate → check → certify) rather than a flat
//! list of phase timings. Closing the span emits the usual [`Event::Span`]
//! carrying the same id/parent plus *two* timebases: wall-clock microseconds
//! (meaningful in production) and deterministic meter ticks (reproducible
//! under test), the latter read from an attached [`TickSource`].
//!
//! Probes without a trace state emit exactly the pre-hierarchy stream — no
//! `SpanOpen` events, id `0` everywhere — so flat consumers are unaffected.

use std::cell::Cell;
use std::time::Instant;

use crate::sink::Sink;

/// A deterministic timebase for spans: the decision guard's cooperative tick
/// counter. Implemented by `ric-complete`'s `Guard`; the telemetry crate only
/// needs the read side.
pub trait TickSource {
    /// Monotone tick count observed so far.
    fn ticks(&self) -> u64;
}

/// Span-id allocator and current-parent tracker for one traced decision.
///
/// Single-threaded by design (interior `Cell`s, not atomics): worker threads
/// of the parallel engine never emit probe events directly, so one decision's
/// spans always open and close on the calling thread. Ids start at 1; 0 means
/// "no span" (the root's parent, and every span of an untraced probe).
#[derive(Debug, Default)]
pub struct TraceState {
    next_id: Cell<u64>,
    current: Cell<u64>,
}

impl TraceState {
    /// A fresh trace: the next span opened becomes the root (parent 0).
    pub fn new() -> Self {
        TraceState {
            next_id: Cell::new(1),
            current: Cell::new(0),
        }
    }

    /// The id of the innermost open span (0 when none is open).
    pub fn current(&self) -> u64 {
        self.current.get()
    }

    fn open(&self) -> (u64, u64) {
        let id = self.next_id.get();
        self.next_id.set(id + 1);
        let parent = self.current.get();
        self.current.set(id);
        (id, parent)
    }

    fn close(&self, parent: u64) {
        self.current.set(parent);
    }
}

/// One structured telemetry event.
#[derive(Clone, PartialEq, Debug)]
pub enum Event {
    /// A named counter increment. Emitted as aggregate deltas (e.g. once per
    /// enumeration run), not per tick — hot loops stay hot.
    Count {
        /// Counter name, e.g. `"rcdp.valuations"`.
        name: &'static str,
        /// How much to add.
        delta: u64,
    },
    /// A named point-in-time measurement, e.g. the active-domain size.
    Gauge {
        /// Gauge name, e.g. `"rcdp.adom_size"`.
        name: &'static str,
        /// The observed value.
        value: u64,
    },
    /// A span opening, emitted only on probes carrying a [`TraceState`].
    /// Pairs with the [`Event::Span`] of the same `id`; together they let a
    /// consumer rebuild the decision tree with correct nesting even when
    /// guards are dropped out of order.
    SpanOpen {
        /// Span name, e.g. `"rcdp.enumerate"`.
        name: &'static str,
        /// This span's id (unique and nonzero within one trace).
        id: u64,
        /// The enclosing span's id; 0 for the root.
        parent: u64,
        /// Deterministic tick count at open (0 without a [`TickSource`]).
        at_tick: u64,
    },
    /// Wall time of a named phase, in microseconds, emitted when the phase
    /// closes. `id`/`parent` are 0 on untraced probes.
    Span {
        /// Span name, e.g. `"rcdp.enumerate"`.
        name: &'static str,
        /// Elapsed wall time in microseconds.
        micros: u128,
        /// This span's id (0 when the probe carries no [`TraceState`]).
        id: u64,
        /// The enclosing span's id; 0 for the root or an untraced span.
        parent: u64,
        /// Deterministic ticks elapsed inside the span (0 without a
        /// [`TickSource`]).
        ticks: u64,
    },
    /// A free-form annotation, e.g. which budget limit cut a search short.
    Note {
        /// Note name, e.g. `"rcdp.outcome"`.
        name: &'static str,
        /// The annotation body.
        detail: String,
    },
    /// A cooperative interruption: a deadline expired or a cancel token
    /// fired inside an enumeration loop. `at_tick` is the guard's global
    /// tick count when the interrupt was observed, so traces show exactly
    /// how much work a degraded decision performed.
    Interrupt {
        /// Interrupt site, e.g. `"rcdp.interrupt"`.
        name: &'static str,
        /// Stable reason name: `"deadline"` or `"cancelled"`.
        reason: &'static str,
        /// Guard ticks observed when the interrupt fired.
        at_tick: u64,
    },
}

impl Event {
    /// The event's name, whatever its kind.
    pub fn name(&self) -> &'static str {
        match self {
            Event::Count { name, .. }
            | Event::Gauge { name, .. }
            | Event::SpanOpen { name, .. }
            | Event::Span { name, .. }
            | Event::Note { name, .. }
            | Event::Interrupt { name, .. } => name,
        }
    }
}

/// A telemetry handle threaded through the decision stack.
///
/// `Probe` is `Copy` (three thin references); pass it by value. The disabled
/// probe is the default everywhere — the public `rcdp`/`rcqp` entry points
/// delegate to their `*_probed` variants with `Probe::disabled()`.
#[derive(Clone, Copy, Default)]
pub struct Probe<'a> {
    sink: Option<&'a dyn Sink>,
    trace: Option<&'a TraceState>,
    ticks: Option<&'a dyn TickSource>,
}

impl<'a> Probe<'a> {
    /// A probe that records nothing. All emission methods reduce to a single
    /// branch on a `None`.
    pub fn disabled() -> Self {
        Probe {
            sink: None,
            trace: None,
            ticks: None,
        }
    }

    /// A probe that forwards every event to `sink`.
    pub fn attached(sink: &'a dyn Sink) -> Self {
        Probe {
            sink: Some(sink),
            trace: None,
            ticks: None,
        }
    }

    /// This probe with a [`TraceState`] attached: spans opened through the
    /// result draw hierarchical ids and emit [`Event::SpanOpen`].
    pub fn with_trace(self, trace: &'a TraceState) -> Self {
        Probe {
            trace: Some(trace),
            ..self
        }
    }

    /// This probe with a deterministic [`TickSource`] attached: spans record
    /// tick deltas alongside wall-clock micros. The deciders attach their
    /// `Guard` here at entry.
    pub fn with_ticks(self, ticks: &'a dyn TickSource) -> Self {
        Probe {
            ticks: Some(ticks),
            ..self
        }
    }

    /// Whether a sink is attached. Use this to skip *preparing* expensive
    /// event payloads (the emission methods already check internally).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The attached sink, if any. Lets adapters (e.g. the facade's `try_`
    /// wrappers) tee this probe's stream into another sink.
    #[inline]
    pub fn sink(&self) -> Option<&'a dyn Sink> {
        self.sink
    }

    /// The attached trace state, if any.
    #[inline]
    pub fn trace(&self) -> Option<&'a TraceState> {
        self.trace
    }

    /// Record a cooperative interruption (deadline expiry or cancellation)
    /// observed `at_tick` guard ticks into the search.
    #[inline]
    pub fn interrupt(&self, name: &'static str, reason: &'static str, at_tick: u64) {
        if let Some(sink) = self.sink {
            sink.record(Event::Interrupt {
                name,
                reason,
                at_tick,
            });
        }
    }

    /// Add `delta` to the counter `name`.
    #[inline]
    pub fn count(&self, name: &'static str, delta: u64) {
        if let Some(sink) = self.sink {
            if delta > 0 {
                sink.record(Event::Count { name, delta });
            }
        }
    }

    /// Record the gauge `name` at `value`.
    #[inline]
    pub fn gauge(&self, name: &'static str, value: u64) {
        if let Some(sink) = self.sink {
            sink.record(Event::Gauge { name, value });
        }
    }

    /// Record a note. The `detail` closure only runs when a sink is attached,
    /// so callers can format lazily.
    #[inline]
    pub fn note(&self, name: &'static str, detail: impl FnOnce() -> String) {
        if let Some(sink) = self.sink {
            sink.record(Event::Note {
                name,
                detail: detail(),
            });
        }
    }

    /// Start timing the phase `name`. The returned guard emits a
    /// [`Event::Span`] when dropped; on a disabled probe it never reads the
    /// clock. With a [`TraceState`] attached the span additionally draws a
    /// hierarchical id and announces itself with [`Event::SpanOpen`].
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard<'a> {
        let Some(sink) = self.sink else {
            return SpanGuard {
                sink: None,
                trace: None,
                name,
                started: None,
                start_ticks: 0,
                ticks: None,
                id: 0,
                parent: 0,
            };
        };
        let (id, parent) = match self.trace {
            Some(trace) => trace.open(),
            None => (0, 0),
        };
        let start_ticks = self.ticks.map_or(0, TickSource::ticks);
        if self.trace.is_some() {
            sink.record(Event::SpanOpen {
                name,
                id,
                parent,
                at_tick: start_ticks,
            });
        }
        SpanGuard {
            sink: Some(sink),
            trace: self.trace,
            name,
            started: Some(Instant::now()),
            start_ticks,
            ticks: self.ticks,
            id,
            parent,
        }
    }
}

impl std::fmt::Debug for Probe<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Probe")
            .field("enabled", &self.enabled())
            .field("traced", &self.trace.is_some())
            .finish()
    }
}

/// Times a phase; emits a [`Event::Span`] on drop and restores the parent
/// span as the trace's current one.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard<'a> {
    sink: Option<&'a dyn Sink>,
    trace: Option<&'a TraceState>,
    name: &'static str,
    started: Option<Instant>,
    start_ticks: u64,
    ticks: Option<&'a dyn TickSource>,
    id: u64,
    parent: u64,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let (Some(sink), Some(started)) = (self.sink, self.started) {
            let end_ticks = self.ticks.map_or(self.start_ticks, TickSource::ticks);
            sink.record(Event::Span {
                name: self.name,
                micros: started.elapsed().as_micros(),
                id: self.id,
                parent: self.parent,
                ticks: end_ticks.saturating_sub(self.start_ticks),
            });
            if let Some(trace) = self.trace {
                trace.close(self.parent);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::Collector;

    #[test]
    fn disabled_probe_records_nothing() {
        let probe = Probe::disabled();
        assert!(!probe.enabled());
        probe.count("x", 3);
        probe.gauge("y", 7);
        probe.note("z", || panic!("detail closure must not run when disabled"));
        drop(probe.span("w"));
    }

    #[test]
    fn disabled_probe_with_trace_records_nothing() {
        // Attaching a trace state must not change the zero-event guarantee:
        // without a sink there is nowhere to record, and no ids are drawn.
        let trace = TraceState::new();
        let probe = Probe::disabled().with_trace(&trace);
        drop(probe.span("w"));
        assert_eq!(trace.current(), 0);
        assert_eq!(trace.next_id.get(), 1, "no id was allocated");
    }

    #[test]
    fn attached_probe_forwards_events() {
        let collector = Collector::new();
        let probe = Probe::attached(&collector);
        assert!(probe.enabled());
        probe.count("search.valuations", 5);
        probe.count("search.valuations", 2);
        probe.count("search.valuations", 0); // zero deltas are dropped
        probe.gauge("adom.size", 11);
        probe.note("outcome", || "complete".to_string());
        drop(probe.span("phase"));

        let report = collector.report();
        assert_eq!(report.counter("search.valuations"), 7);
        assert_eq!(report.gauge("adom.size"), Some(11));
        assert_eq!(report.notes("outcome"), vec!["complete".to_string()]);
        assert!(report.span_micros("phase").is_some());
        // 2 counts + 1 gauge + 1 note + 1 span — an untraced probe emits no
        // SpanOpen events.
        assert_eq!(collector.events().len(), 5);
    }

    #[test]
    fn probe_is_copy() {
        let collector = Collector::new();
        let probe = Probe::attached(&collector);
        let copy = probe;
        probe.count("a", 1);
        copy.count("a", 1);
        assert_eq!(collector.report().counter("a"), 2);
    }

    #[test]
    fn traced_spans_form_a_tree() {
        let collector = Collector::new();
        let trace = TraceState::new();
        let probe = Probe::attached(&collector).with_trace(&trace);
        {
            let _root = probe.span("root");
            {
                let _child = probe.span("child");
                drop(probe.span("grandchild"));
            }
            drop(probe.span("sibling"));
        }
        let events = collector.events();
        // 4 SpanOpen + 4 Span.
        assert_eq!(events.len(), 8);
        let mut parents = std::collections::BTreeMap::new();
        for e in &events {
            if let Event::SpanOpen {
                name, id, parent, ..
            } = e
            {
                parents.insert(*name, (*id, *parent));
            }
        }
        let (root_id, root_parent) = parents["root"];
        assert_eq!(root_parent, 0);
        let (child_id, child_parent) = parents["child"];
        assert_eq!(child_parent, root_id);
        assert_eq!(parents["grandchild"].1, child_id);
        assert_eq!(parents["sibling"].1, root_id, "parent restored on close");
        // Close events carry the same ids.
        for e in &events {
            if let Event::Span {
                name, id, parent, ..
            } = e
            {
                assert_eq!(parents[name], (*id, *parent));
            }
        }
    }

    #[test]
    fn spans_record_tick_deltas() {
        struct FakeTicks(Cell<u64>);
        impl TickSource for FakeTicks {
            fn ticks(&self) -> u64 {
                self.0.get()
            }
        }
        let collector = Collector::new();
        let ticks = FakeTicks(Cell::new(10));
        let probe = Probe::attached(&collector).with_ticks(&ticks);
        {
            let _span = probe.span("work");
            ticks.0.set(17);
        }
        match &collector.events()[0] {
            Event::Span { ticks, .. } => assert_eq!(*ticks, 7),
            other => panic!("expected span, got {other:?}"),
        }
    }
}

//! # `ric-telemetry` — structured search telemetry
//!
//! The deciders in `ric-complete` run exponential searches whose *shape* —
//! how many valuations were enumerated, how many candidate witnesses were
//! built, which budget limit cut the search short — is the evaluation
//! substrate of the whole reproduction (Tables I and II are complexity
//! tables). This crate provides the measurement layer:
//!
//! * [`Probe`] — a cheap handle threaded through the decision stack. The
//!   default ([`Probe::disabled`]) is a `None` niche; every emission site
//!   first checks a single pointer, so disabled probes cost one predictable
//!   branch and no allocation.
//! * [`Event`] — the structured event vocabulary: named counters, gauges,
//!   span timings, and notes.
//! * [`Sink`] — where events go. Three implementations ship:
//!   [`Collector`] (in-memory aggregation for programmatic inspection),
//!   [`PrettySink`] (human-readable stream to any `io::Write`), and
//!   [`JsonlSink`] (line-delimited JSON, hand-rolled — the workspace builds
//!   fully offline, so there is no serde).
//! * [`json`] — a tiny JSON value model with a writer and a parser, shared
//!   by the JSONL sink and the `regen_tables` table artifacts.
//! * [`trace`] — hierarchical span trees. Probes carrying a [`TraceState`]
//!   assign parent/child ids to spans; [`Explain`] rebuilds the decision
//!   tree from the event stream and rides on every facade verdict.
//! * [`metrics`] — a [`Metrics`] registry with log-bucketed histograms and
//!   Prometheus-text / JSON snapshot exporters, merged bit-identically
//!   across workers.
//!
//! No external dependencies, std only.

pub mod json;
pub mod metrics;
pub mod probe;
pub mod sink;
pub mod trace;

pub use json::Json;
pub use metrics::{Histogram, Metrics};
pub use probe::{Event, Probe, SpanGuard, TickSource, TraceState};
pub use sink::{
    Collector, FaultSink, InterruptRecord, JsonlSink, PrettySink, Report, Sink, TeeSink,
};
pub use trace::{top_k_counters, Explain, SpanRecord, SpanTree, TraceError, TreeBuilder};

//! A small metrics registry: log-bucketed histograms plus counter/gauge
//! totals, with Prometheus-text and JSON snapshot exporters.
//!
//! The registry is the aggregation layer *above* [`Report`]:
//! a report summarises one decision, a [`Metrics`] accumulates many (a bench
//! sweep, a service's request stream) into distributions. Everything is
//! integer arithmetic over fixed bucket boundaries, so merging two
//! registries — or absorbing per-worker reports in any order — is
//! bit-identical to absorbing the underlying observations in any other
//! order, the same discipline `Report::merge` pins for counters.
//!
//! No dependencies; the exporters are a `String` builder and the crate's own
//! [`Json`] model.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::Json;
use crate::probe::Event;
use crate::sink::Report;

/// Number of log₂ buckets: bucket `i` counts observations `v` with
/// `bits(v) == i`, i.e. `2^(i-1) ≤ v < 2^i` (bucket 0 holds exactly `v = 0`).
/// 65 buckets cover the whole `u64` range.
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram over `u64` observations.
///
/// Bucket boundaries are powers of two, fixed for every histogram, so two
/// histograms merge by elementwise addition — no rebinning, no drift.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index for `v`: 0 for 0, otherwise the bit length of `v`.
    fn bucket(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// The inclusive upper bound of bucket `i` (`0`, `1`, `3`, `7`, …).
    fn upper_bound(i: usize) -> u128 {
        if i == 0 {
            0
        } else {
            (1u128 << i) - 1
        }
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Elementwise merge; equivalent to replaying `other`'s observations.
    pub fn merge(&mut self, other: &Histogram) {
        for (slot, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *slot += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The highest nonempty bucket index, if any observation was recorded.
    fn highest(&self) -> Option<usize> {
        self.buckets
            .iter()
            .rposition(|&b| b > 0)
            .filter(|_| self.count > 0)
    }

    /// `(le, cumulative_count)` pairs up to the highest nonempty bucket.
    /// The exporter appends the implicit `+Inf` bucket itself.
    fn cumulative(&self) -> Vec<(u128, u64)> {
        let Some(hi) = self.highest() else {
            return Vec::new();
        };
        let mut acc = 0;
        (0..=hi)
            .map(|i| {
                acc += self.buckets[i];
                (Self::upper_bound(i), acc)
            })
            .collect()
    }
}

/// Counter totals, gauge maxima, and named histogram families.
///
/// Histograms are grouped into *families* (e.g. `span_micros`,
/// `span_ticks`, `decision_micros`) with one histogram per label — the label
/// becomes the `name` label of the Prometheus series.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, BTreeMap<String, Histogram>>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Add `delta` to counter `name`.
    pub fn inc(&mut self, name: &str, delta: u64) {
        if delta > 0 {
            *self.counters.entry(name.to_string()).or_insert(0) += delta;
        }
    }

    /// Record gauge `name` at `value` (maximum wins, matching
    /// `Report::merge`).
    pub fn gauge(&mut self, name: &str, value: u64) {
        let slot = self.gauges.entry(name.to_string()).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Record one observation into histogram `label` of `family`.
    pub fn observe(&mut self, family: &str, label: &str, value: u64) {
        self.histograms
            .entry(family.to_string())
            .or_default()
            .entry(label.to_string())
            .or_default()
            .record(value);
    }

    /// The counter total for `name` (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The histogram for `label` in `family`, if any observation landed.
    pub fn histogram(&self, family: &str, label: &str) -> Option<&Histogram> {
        self.histograms.get(family)?.get(label)
    }

    /// Absorb one decision's aggregated [`Report`]: counters add, gauges
    /// max, each span total becomes one `span_micros` observation.
    pub fn absorb_report(&mut self, report: &Report) {
        for (name, delta) in &report.counters {
            self.inc(name, *delta);
        }
        for (name, value) in &report.gauges {
            self.gauge(name, *value);
        }
        for (name, micros) in &report.spans {
            self.observe("span_micros", name, clamp_u64(*micros));
        }
    }

    /// Absorb a raw event stream: unlike [`Metrics::absorb_report`], every
    /// span *close* is one observation in both timebases (`span_micros` and,
    /// on traced streams, `span_ticks`), so repeated phases build a
    /// distribution instead of collapsing into one total.
    pub fn absorb_events<'a>(&mut self, events: impl IntoIterator<Item = &'a Event>) {
        for event in events {
            match event {
                Event::Count { name, delta } => self.inc(name, *delta),
                Event::Gauge { name, value } => self.gauge(name, *value),
                Event::SpanOpen { .. } => {}
                Event::Span {
                    name,
                    micros,
                    id,
                    ticks,
                    ..
                } => {
                    self.observe("span_micros", name, clamp_u64(*micros));
                    if *id != 0 {
                        self.observe("span_ticks", name, *ticks);
                    }
                }
                Event::Note { .. } => {}
                Event::Interrupt { name, .. } => self.inc(name, 1),
            }
        }
    }

    /// Merge another registry in: counters and histogram buckets add, gauges
    /// max. Merging per-worker registries in any order is bit-identical.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, delta) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += delta;
        }
        for (name, value) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(*value);
        }
        for (family, labels) in &other.histograms {
            let fam = self.histograms.entry(family.clone()).or_default();
            for (label, hist) in labels {
                fam.entry(label.clone()).or_default().merge(hist);
            }
        }
    }

    /// The Prometheus text-format snapshot. Series order is deterministic
    /// (sorted by family, then label), so snapshots of equal registries are
    /// byte-identical — the golden test pins this.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("# TYPE ric_counter_total counter\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "ric_counter_total{{name=\"{name}\"}} {value}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("# TYPE ric_gauge gauge\n");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "ric_gauge{{name=\"{name}\"}} {value}");
            }
        }
        for (family, labels) in &self.histograms {
            let _ = writeln!(out, "# TYPE ric_{family} histogram");
            for (label, hist) in labels {
                for (le, cum) in hist.cumulative() {
                    let _ = writeln!(
                        out,
                        "ric_{family}_bucket{{name=\"{label}\",le=\"{le}\"}} {cum}"
                    );
                }
                let _ = writeln!(
                    out,
                    "ric_{family}_bucket{{name=\"{label}\",le=\"+Inf\"}} {}",
                    hist.count()
                );
                let _ = writeln!(out, "ric_{family}_sum{{name=\"{label}\"}} {}", hist.sum());
                let _ = writeln!(
                    out,
                    "ric_{family}_count{{name=\"{label}\"}} {}",
                    hist.count()
                );
            }
        }
        out
    }

    /// The JSON snapshot: `counters`, `gauges`, and per-family histogram
    /// objects with explicit bucket upper bounds.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(family, labels)| {
                            (
                                family.clone(),
                                Json::Obj(
                                    labels
                                        .iter()
                                        .map(|(label, hist)| {
                                            (
                                                label.clone(),
                                                Json::obj([
                                                    ("count", Json::from(hist.count())),
                                                    ("sum", Json::from(hist.sum())),
                                                    (
                                                        "buckets",
                                                        Json::arr(
                                                            hist.cumulative().into_iter().map(
                                                                |(le, cum)| {
                                                                    Json::obj([
                                                                        ("le", Json::from(le)),
                                                                        ("count", Json::from(cum)),
                                                                    ])
                                                                },
                                                            ),
                                                        ),
                                                    ),
                                                ]),
                                            )
                                        })
                                        .collect(),
                                ),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Clamp a span's `u128` microsecond reading into the histogram's `u64`
/// domain (saturating: a >584-millennium span is a clock bug anyway).
fn clamp_u64(v: u128) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::Probe;
    use crate::sink::Collector;

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 1);
        assert_eq!(Histogram::bucket(2), 2);
        assert_eq!(Histogram::bucket(3), 2);
        assert_eq!(Histogram::bucket(4), 3);
        assert_eq!(Histogram::bucket(1023), 10);
        assert_eq!(Histogram::bucket(1024), 11);
        assert_eq!(Histogram::bucket(u64::MAX), 64);
        assert_eq!(Histogram::upper_bound(0), 0);
        assert_eq!(Histogram::upper_bound(1), 1);
        assert_eq!(Histogram::upper_bound(2), 3);
        assert_eq!(Histogram::upper_bound(10), 1023);
    }

    #[test]
    fn histogram_merge_matches_replay() {
        let observations = [0u64, 1, 1, 7, 900, 4096, u64::MAX];
        let mut replay = Histogram::new();
        for &v in &observations {
            replay.record(v);
        }
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, &v) in observations.iter().enumerate() {
            if i % 2 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        assert_eq!(left, replay);
    }

    #[test]
    fn metrics_merge_is_order_independent() {
        // Two "workers" recording overlapping counter/gauge/histogram sets,
        // including the planned-engine families (`plan.*` counters, the
        // `stats.rows.*` statistics gauges): merge order must not matter,
        // down to the exported bytes.
        let mut a = Metrics::new();
        a.inc("rcdp.valuations", 10);
        a.inc("plan.compile", 1);
        a.inc("plan.cost", 40);
        a.gauge("rcdp.adom_size", 4);
        a.gauge("stats.rows.00", 128);
        a.observe("span_micros", "rcdp.enumerate", 120);
        let mut b = Metrics::new();
        b.inc("rcdp.valuations", 5);
        b.inc("rcdp.cc_checks", 2);
        b.inc("plan.reuse", 1);
        b.inc("plan.fallback", 1);
        b.gauge("rcdp.adom_size", 9);
        b.gauge("stats.rows.00", 128);
        b.observe("span_micros", "rcdp.enumerate", 80);
        b.observe("span_micros", "rcqp.e2_search", 7);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.to_prometheus(), ba.to_prometheus());
        assert_eq!(ab.to_json().to_string(), ba.to_json().to_string());
        assert_eq!(ab.counter("rcdp.valuations"), 15);
        assert_eq!(ab.counter("plan.compile"), 1);
        assert_eq!(ab.counter("plan.reuse"), 1);
        assert_eq!(
            ab.histogram("span_micros", "rcdp.enumerate")
                .unwrap()
                .count(),
            2
        );
    }

    #[test]
    fn prometheus_snapshot_is_golden() {
        // Pinned byte-for-byte: downstream scrapers parse this surface.
        let mut m = Metrics::new();
        m.inc("rcdp.valuations", 42);
        m.inc("rcdp.cc_checks", 7);
        m.inc("plan.compile", 2);
        m.inc("plan.cost", 37);
        m.inc("plan.fallback", 1);
        m.gauge("rcdp.adom_size", 14);
        m.gauge("stats.rows.00", 128);
        for v in [0u64, 1, 3, 900] {
            m.observe("span_micros", "rcdp.enumerate", v);
        }
        let expected = "\
# TYPE ric_counter_total counter
ric_counter_total{name=\"plan.compile\"} 2
ric_counter_total{name=\"plan.cost\"} 37
ric_counter_total{name=\"plan.fallback\"} 1
ric_counter_total{name=\"rcdp.cc_checks\"} 7
ric_counter_total{name=\"rcdp.valuations\"} 42
# TYPE ric_gauge gauge
ric_gauge{name=\"rcdp.adom_size\"} 14
ric_gauge{name=\"stats.rows.00\"} 128
# TYPE ric_span_micros histogram
ric_span_micros_bucket{name=\"rcdp.enumerate\",le=\"0\"} 1
ric_span_micros_bucket{name=\"rcdp.enumerate\",le=\"1\"} 2
ric_span_micros_bucket{name=\"rcdp.enumerate\",le=\"3\"} 3
ric_span_micros_bucket{name=\"rcdp.enumerate\",le=\"7\"} 3
ric_span_micros_bucket{name=\"rcdp.enumerate\",le=\"15\"} 3
ric_span_micros_bucket{name=\"rcdp.enumerate\",le=\"31\"} 3
ric_span_micros_bucket{name=\"rcdp.enumerate\",le=\"63\"} 3
ric_span_micros_bucket{name=\"rcdp.enumerate\",le=\"127\"} 3
ric_span_micros_bucket{name=\"rcdp.enumerate\",le=\"255\"} 3
ric_span_micros_bucket{name=\"rcdp.enumerate\",le=\"511\"} 3
ric_span_micros_bucket{name=\"rcdp.enumerate\",le=\"1023\"} 4
ric_span_micros_bucket{name=\"rcdp.enumerate\",le=\"+Inf\"} 4
ric_span_micros_sum{name=\"rcdp.enumerate\"} 904
ric_span_micros_count{name=\"rcdp.enumerate\"} 4
";
        assert_eq!(m.to_prometheus(), expected);
    }

    #[test]
    fn absorb_events_builds_distributions() {
        let collector = Collector::new();
        let probe = Probe::attached(&collector);
        drop(probe.span("phase"));
        drop(probe.span("phase"));
        probe.count("work", 3);
        let mut m = Metrics::new();
        m.absorb_events(collector.events().iter());
        // Two closes → two observations, not one summed total.
        assert_eq!(m.histogram("span_micros", "phase").unwrap().count(), 2);
        assert_eq!(m.counter("work"), 3);
    }

    #[test]
    fn absorb_report_takes_span_totals() {
        let collector = Collector::new();
        let probe = Probe::attached(&collector);
        drop(probe.span("phase"));
        drop(probe.span("phase"));
        let mut m = Metrics::new();
        m.absorb_report(&collector.report());
        // A report sums spans by name first → one observation.
        assert_eq!(m.histogram("span_micros", "phase").unwrap().count(), 1);
    }

    #[test]
    fn json_snapshot_parses_back() {
        let mut m = Metrics::new();
        m.inc("c", 1);
        m.gauge("g", 2);
        m.observe("span_micros", "s", 5);
        let doc = crate::json::parse(&m.to_json().to_string()).unwrap();
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("c"))
                .and_then(Json::as_int),
            Some(1)
        );
        let hist = doc
            .get("histograms")
            .and_then(|h| h.get("span_micros"))
            .and_then(|h| h.get("s"))
            .unwrap();
        assert_eq!(hist.get("count").and_then(Json::as_int), Some(1));
        assert_eq!(hist.get("sum").and_then(Json::as_int), Some(5));
    }
}

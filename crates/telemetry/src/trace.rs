//! Span trees and the structured [`Explain`] artifact.
//!
//! A traced probe emits `SpanOpen`/`Span` pairs with ids (see
//! [`crate::Probe::with_trace`]); this module rebuilds the decision tree from
//! that stream and packages it — together with counters, gauges, notes, and
//! interrupts — into an [`Explain`] that rides on every verdict of the `try_`
//! facade entry points.
//!
//! The [`TreeBuilder`] works from plain `&str` names so the `ric-trace` CLI
//! can feed it spans parsed back out of a JSONL trace file, not just live
//! [`Event`]s; [`Explain::from_events`] is the in-process wrapper that also
//! enforces the well-formedness contract (single root, no orphan parents,
//! every span closed).

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use crate::json::Json;
use crate::probe::Event;
use crate::sink::InterruptRecord;

/// A malformed trace: duplicate ids, orphan parents, closes without opens,
/// or (for decision traces) multiple roots / unclosed spans.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceError {
    /// What went wrong.
    pub message: String,
}

impl TraceError {
    fn new(message: impl Into<String>) -> Self {
        TraceError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed trace: {}", self.message)
    }
}

impl std::error::Error for TraceError {}

/// One span of a rebuilt tree.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpanRecord {
    /// Span name, e.g. `"rcdp.enumerate"`.
    pub name: String,
    /// The span's id (nonzero, unique within the tree).
    pub id: u64,
    /// The enclosing span's id; 0 for a root.
    pub parent: u64,
    /// Deterministic tick count when the span opened.
    pub at_tick: u64,
    /// Wall time in microseconds (0 until closed).
    pub micros: u128,
    /// Deterministic ticks spent inside the span (0 until closed).
    pub ticks: u64,
    /// Whether the close event was seen.
    pub closed: bool,
}

/// Rebuilds a [`SpanTree`] from open/close notifications in stream order.
#[derive(Clone, Debug, Default)]
pub struct TreeBuilder {
    records: Vec<SpanRecord>,
    by_id: BTreeMap<u64, usize>,
}

impl TreeBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        TreeBuilder::default()
    }

    /// Record a span opening. Fails on id 0, a reused id, or a parent that
    /// was never opened (an orphan).
    pub fn open(
        &mut self,
        name: &str,
        id: u64,
        parent: u64,
        at_tick: u64,
    ) -> Result<(), TraceError> {
        if id == 0 {
            return Err(TraceError::new(format!("span \"{name}\" opened with id 0")));
        }
        if self.by_id.contains_key(&id) {
            return Err(TraceError::new(format!(
                "span id {id} opened twice (second open: \"{name}\")"
            )));
        }
        if parent != 0 && !self.by_id.contains_key(&parent) {
            return Err(TraceError::new(format!(
                "span \"{name}\" (id {id}) claims unknown parent {parent}"
            )));
        }
        self.by_id.insert(id, self.records.len());
        self.records.push(SpanRecord {
            name: name.to_string(),
            id,
            parent,
            at_tick,
            micros: 0,
            ticks: 0,
            closed: false,
        });
        Ok(())
    }

    /// Record a span closing. Fails on an id that was never opened or that
    /// already closed.
    pub fn close(
        &mut self,
        name: &str,
        id: u64,
        micros: u128,
        ticks: u64,
    ) -> Result<(), TraceError> {
        let Some(&idx) = self.by_id.get(&id) else {
            return Err(TraceError::new(format!(
                "span \"{name}\" (id {id}) closed without an open"
            )));
        };
        let record = &mut self.records[idx];
        if record.closed {
            return Err(TraceError::new(format!(
                "span \"{name}\" (id {id}) closed twice"
            )));
        }
        record.micros = micros;
        record.ticks = ticks;
        record.closed = true;
        Ok(())
    }

    /// Whether any span was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The finished tree. Structural errors were already rejected by
    /// [`TreeBuilder::open`]/[`TreeBuilder::close`]; the tree may still be a
    /// forest or hold unclosed spans — call [`SpanTree::require_decision`]
    /// to enforce the stricter decision-trace contract.
    pub fn finish(self) -> SpanTree {
        SpanTree {
            records: self.records,
        }
    }
}

/// A rebuilt span tree (possibly a forest, for raw trace files).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SpanTree {
    records: Vec<SpanRecord>,
}

impl SpanTree {
    /// All spans, in open order.
    pub fn records(&self) -> &[SpanRecord] {
        &self.records
    }

    /// Indices of root spans (parent 0), in open order.
    pub fn roots(&self) -> Vec<usize> {
        (0..self.records.len())
            .filter(|&i| self.records[i].parent == 0)
            .collect()
    }

    /// Indices of `id`'s children, in open order.
    fn children_of(&self, id: u64) -> Vec<usize> {
        (0..self.records.len())
            .filter(|&i| self.records[i].parent == id)
            .collect()
    }

    /// Enforce the decision-trace contract on top of structural validity:
    /// exactly one root, and every span closed. The `try_` facade guarantees
    /// this for every [`Explain`] it attaches.
    pub fn require_decision(&self) -> Result<(), TraceError> {
        let roots = self.roots();
        if roots.len() != 1 {
            return Err(TraceError::new(format!(
                "decision trace must have exactly one root span, found {}",
                roots.len()
            )));
        }
        if let Some(open) = self.records.iter().find(|r| !r.closed) {
            return Err(TraceError::new(format!(
                "span \"{}\" (id {}) never closed",
                open.name, open.id
            )));
        }
        Ok(())
    }

    /// The flamegraph-style text rendering: one line per span, indented by
    /// depth, with both timebases. Unclosed spans render with `…` in place
    /// of measurements.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for root in self.roots() {
            self.render_into(&mut out, root, 0);
        }
        out
    }

    fn render_into(&self, out: &mut String, idx: usize, depth: usize) {
        let r = &self.records[idx];
        let pad = "  ".repeat(depth);
        if r.closed {
            let _ = writeln!(out, "{pad}{}  {} µs  {} ticks", r.name, r.micros, r.ticks);
        } else {
            let _ = writeln!(out, "{pad}{}  …", r.name);
        }
        for child in self.children_of(r.id) {
            self.render_into(out, child, depth + 1);
        }
    }

    /// The tree as nested JSON: `{name, micros, ticks, at_tick, children}`
    /// objects, one per root (wrapped in an array).
    pub fn to_json(&self) -> Json {
        Json::arr(self.roots().into_iter().map(|r| self.node_json(r)))
    }

    fn node_json(&self, idx: usize) -> Json {
        let r = &self.records[idx];
        Json::obj([
            ("name", Json::from(r.name.as_str())),
            ("micros", Json::from(r.micros)),
            ("ticks", Json::from(r.ticks)),
            ("at_tick", Json::from(r.at_tick)),
            (
                "children",
                Json::arr(
                    self.children_of(r.id)
                        .into_iter()
                        .map(|c| self.node_json(c)),
                ),
            ),
        ])
    }
}

/// The structured explanation attached to every verdict by the `try_`
/// facade entry points: what the search did (span tree with both timebases,
/// counters, gauges), what it concluded (`outcome`), and — when a decision
/// ended Unknown — which budget died (`limit`), at which depth, with what
/// frontier remaining (the `explain.*` notes emitted at the Unknown
/// construction sites).
#[derive(Clone, PartialEq, Debug)]
pub struct Explain {
    /// The decision's span tree: single root, every span closed.
    pub tree: SpanTree,
    /// The decider's outcome note (`rcdp.outcome` / `rcqp.outcome` /
    /// `extend.outcome`), when one fired.
    pub outcome: Option<String>,
    /// The budget that cut the search short (`*.limit` note), for Unknown.
    pub limit: Option<String>,
    /// Every note, in emission order.
    pub notes: Vec<(String, String)>,
    /// Summed counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-observed gauges.
    pub gauges: BTreeMap<String, u64>,
    /// Cooperative interruptions observed during the decision.
    pub interrupts: Vec<InterruptRecord>,
}

impl Explain {
    /// Build an explanation from one decision's event stream, validating the
    /// span-tree contract (single root, no orphan parents, all closed).
    pub fn from_events(events: &[Event]) -> Result<Explain, TraceError> {
        let mut builder = TreeBuilder::new();
        let mut notes = Vec::new();
        let mut counters = BTreeMap::new();
        let mut gauges = BTreeMap::new();
        let mut interrupts = Vec::new();
        for event in events {
            match event {
                Event::Count { name, delta } => {
                    *counters.entry(name.to_string()).or_insert(0) += delta;
                }
                Event::Gauge { name, value } => {
                    gauges.insert(name.to_string(), *value);
                }
                Event::SpanOpen {
                    name,
                    id,
                    parent,
                    at_tick,
                } => builder.open(name, *id, *parent, *at_tick)?,
                Event::Span {
                    name,
                    micros,
                    id,
                    ticks,
                    ..
                } => {
                    if *id == 0 {
                        return Err(TraceError::new(format!(
                            "span \"{name}\" closed without a trace id (probe not traced?)"
                        )));
                    }
                    builder.close(name, *id, *micros, *ticks)?;
                }
                Event::Note { name, detail } => {
                    notes.push((name.to_string(), detail.clone()));
                }
                Event::Interrupt {
                    name,
                    reason,
                    at_tick,
                } => interrupts.push(InterruptRecord {
                    name,
                    reason,
                    at_tick: *at_tick,
                }),
            }
        }
        if builder.is_empty() {
            return Err(TraceError::new("decision trace contains no spans"));
        }
        let tree = builder.finish();
        tree.require_decision()?;
        let outcome = last_note(&notes, ".outcome");
        let limit = last_note(&notes, ".limit");
        Ok(Explain {
            tree,
            outcome,
            limit,
            notes,
            counters,
            gauges,
            interrupts,
        })
    }

    /// The last note recorded under exactly `name`.
    pub fn note(&self, name: &str) -> Option<&str> {
        self.notes
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d.as_str())
    }

    /// The machine-readable resume frontier, if the decision stopped on a
    /// resumable budget limit. This is the checkpoint document the facade
    /// records under the `explain.frontier.json` note, parsed back into
    /// [`Json`] so tools can inspect (or persist) it without re-running the
    /// decision.
    pub fn frontier_json(&self) -> Option<Json> {
        self.note("explain.frontier.json")
            .and_then(|s| crate::json::parse(s).ok())
    }

    /// The explanation as one JSON object (`outcome`, `limit`, `tree`,
    /// `counters`, `gauges`, `notes`, `interrupts`) — the `explain` shape
    /// documented in EXPERIMENTS.md.
    pub fn to_json(&self) -> Json {
        let opt = |v: &Option<String>| match v {
            Some(s) => Json::from(s.as_str()),
            None => Json::Null,
        };
        Json::obj([
            ("outcome", opt(&self.outcome)),
            ("limit", opt(&self.limit)),
            ("tree", self.tree.to_json()),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(*v)))
                        .collect(),
                ),
            ),
            (
                "notes",
                Json::arr(self.notes.iter().map(|(name, detail)| {
                    Json::obj([
                        ("name", Json::from(name.as_str())),
                        ("detail", Json::from(detail.as_str())),
                    ])
                })),
            ),
            (
                "interrupts",
                Json::arr(self.interrupts.iter().map(|i| {
                    Json::obj([
                        ("name", Json::from(i.name)),
                        ("reason", Json::from(i.reason)),
                        ("at_tick", Json::from(i.at_tick)),
                    ])
                })),
            ),
        ])
    }

    /// A human-readable summary: outcome/limit header, then the span tree.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(outcome) = &self.outcome {
            let _ = writeln!(out, "outcome: {outcome}");
        }
        if let Some(limit) = &self.limit {
            let _ = writeln!(out, "limit:   {limit}");
        }
        for (name, detail) in self.notes.iter().filter(|(n, _)| n.starts_with("explain.")) {
            let _ = writeln!(out, "{name}: {detail}");
        }
        out.push_str(&self.tree.render());
        out
    }
}

/// The last note whose name ends with `suffix`.
fn last_note(notes: &[(String, String)], suffix: &str) -> Option<String> {
    notes
        .iter()
        .rev()
        .find(|(name, _)| name.ends_with(suffix))
        .map(|(_, detail)| detail.clone())
}

/// The top `k` counters under `prefix`, largest first (name-ordered on
/// ties, so the report is deterministic). The CLI's pruning report calls
/// this with `prefix = "prune."`.
pub fn top_k_counters(
    counters: &BTreeMap<String, u64>,
    prefix: &str,
    k: usize,
) -> Vec<(String, u64)> {
    let mut hits: Vec<(String, u64)> = counters
        .iter()
        .filter(|(name, _)| name.starts_with(prefix))
        .map(|(name, value)| (name.clone(), *value))
        .collect();
    hits.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    hits.truncate(k);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{Probe, TraceState};
    use crate::sink::Collector;

    fn traced_decision() -> Vec<Event> {
        let collector = Collector::new();
        let trace = TraceState::new();
        let probe = Probe::attached(&collector).with_trace(&trace);
        {
            let _root = probe.span("decision");
            probe.note("rcdp.strategy", || "enumerate".into());
            {
                let _enumerate = probe.span("rcdp.enumerate");
                probe.count("rcdp.valuations", 12);
                drop(probe.span("cc.check"));
            }
            probe.gauge("rcdp.adom_size", 5);
            probe.note("rcdp.outcome", || "complete".into());
        }
        collector.events()
    }

    #[test]
    fn explain_rebuilds_the_tree() {
        let explain = Explain::from_events(&traced_decision()).unwrap();
        assert_eq!(explain.outcome.as_deref(), Some("complete"));
        assert_eq!(explain.limit, None);
        assert_eq!(explain.counters["rcdp.valuations"], 12);
        assert_eq!(explain.gauges["rcdp.adom_size"], 5);
        let tree = &explain.tree;
        assert_eq!(tree.roots().len(), 1);
        assert_eq!(tree.records().len(), 3);
        let rendered = tree.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(lines[0].starts_with("decision  "));
        assert!(lines[1].starts_with("  rcdp.enumerate  "));
        assert!(lines[2].starts_with("    cc.check  "));
    }

    #[test]
    fn explain_note_returns_the_last_value() {
        let explain = Explain::from_events(&traced_decision()).unwrap();
        assert_eq!(explain.note("rcdp.strategy"), Some("enumerate"));
        assert_eq!(explain.note("missing"), None);
    }

    #[test]
    fn explain_rejects_orphans_and_forests() {
        // Orphan parent.
        let mut b = TreeBuilder::new();
        assert!(b.open("x", 2, 99, 0).is_err());
        // Duplicate id.
        let mut b = TreeBuilder::new();
        b.open("a", 1, 0, 0).unwrap();
        assert!(b.open("b", 1, 0, 0).is_err());
        // Close without open.
        let mut b = TreeBuilder::new();
        assert!(b.close("ghost", 3, 0, 0).is_err());
        // Two roots pass the builder but fail the decision contract.
        let mut b = TreeBuilder::new();
        b.open("a", 1, 0, 0).unwrap();
        b.close("a", 1, 10, 0).unwrap();
        b.open("b", 2, 0, 0).unwrap();
        b.close("b", 2, 10, 0).unwrap();
        assert!(b.finish().require_decision().is_err());
        // An unclosed span fails the decision contract too.
        let mut b = TreeBuilder::new();
        b.open("a", 1, 0, 0).unwrap();
        assert!(b.finish().require_decision().is_err());
        // An untraced close (id 0) is rejected outright.
        let events = [Event::Span {
            name: "flat",
            micros: 1,
            id: 0,
            parent: 0,
            ticks: 0,
        }];
        assert!(Explain::from_events(&events).is_err());
        // No spans at all.
        assert!(Explain::from_events(&[]).is_err());
    }

    #[test]
    fn explain_json_parses_back() {
        let explain = Explain::from_events(&traced_decision()).unwrap();
        let doc = crate::json::parse(&explain.to_json().to_string()).unwrap();
        assert_eq!(doc.get("outcome").and_then(Json::as_str), Some("complete"));
        let tree = doc.get("tree").and_then(Json::as_arr).unwrap();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].get("name").and_then(Json::as_str), Some("decision"));
        let children = tree[0].get("children").and_then(Json::as_arr).unwrap();
        assert_eq!(children.len(), 1);
        assert_eq!(
            children[0].get("name").and_then(Json::as_str),
            Some("rcdp.enumerate")
        );
    }

    #[test]
    fn top_k_counters_orders_deterministically() {
        let mut counters = BTreeMap::new();
        counters.insert("prune.cc00".to_string(), 10u64);
        counters.insert("prune.cc01".to_string(), 25);
        counters.insert("prune.head".to_string(), 25);
        counters.insert("rcdp.valuations".to_string(), 99);
        let top = top_k_counters(&counters, "prune.", 2);
        assert_eq!(
            top,
            vec![
                ("prune.cc01".to_string(), 25),
                ("prune.head".to_string(), 25),
            ]
        );
    }

    #[test]
    fn render_summarises_outcome_and_tree() {
        let explain = Explain::from_events(&traced_decision()).unwrap();
        let text = explain.render();
        assert!(text.starts_with("outcome: complete\n"));
        assert!(text.contains("decision  "));
    }
}

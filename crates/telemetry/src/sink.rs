//! Event sinks: where probe emissions go.
//!
//! * [`Collector`] aggregates in memory and also keeps the raw event stream;
//!   use [`Collector::report`] for programmatic inspection.
//! * [`PrettySink`] streams human-readable lines to any `io::Write`.
//! * [`JsonlSink`] streams one hand-rolled JSON object per event (the
//!   workspace builds offline; there is no serde).
//!
//! All sinks take `&self` — the deciders are single-threaded, so interior
//! mutability via `RefCell` is enough and keeps [`Probe`](crate::Probe)
//! freely copyable.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::io;

use crate::json::Json;
use crate::probe::Event;

/// A destination for probe events.
pub trait Sink {
    /// Record one event. Must not panic on I/O trouble — sinks that write
    /// swallow errors (telemetry must never take down a decision).
    fn record(&self, event: Event);
}

/// In-memory aggregation plus the raw event stream.
#[derive(Default)]
pub struct Collector {
    events: RefCell<Vec<Event>>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// The raw events, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.events.borrow().clone()
    }

    /// Drop everything collected so far (for reusing one collector across
    /// cells in a sweep).
    pub fn reset(&self) {
        self.events.borrow_mut().clear();
    }

    /// Aggregate the stream into a [`Report`].
    pub fn report(&self) -> Report {
        let mut report = Report::default();
        for event in self.events.borrow().iter() {
            match event {
                Event::Count { name, delta } => {
                    *report.counters.entry(name).or_insert(0) += delta;
                }
                Event::Gauge { name, value } => {
                    report.gauges.insert(name, *value);
                }
                Event::Span { name, micros } => {
                    *report.spans.entry(name).or_insert(0) += micros;
                }
                Event::Note { name, detail } => {
                    report.notes.entry(name).or_default().push(detail.clone());
                }
                Event::Interrupt {
                    name,
                    reason,
                    at_tick,
                } => {
                    report.interrupts.push(InterruptRecord {
                        name,
                        reason,
                        at_tick: *at_tick,
                    });
                }
            }
        }
        report
    }
}

impl Sink for Collector {
    fn record(&self, event: Event) {
        self.events.borrow_mut().push(event);
    }
}

/// Aggregated view of a collected event stream.
#[derive(Clone, Default, Debug)]
pub struct Report {
    /// Summed counter deltas by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Last-observed gauge values by name.
    pub gauges: BTreeMap<&'static str, u64>,
    /// Summed span times (µs) by name.
    pub spans: BTreeMap<&'static str, u128>,
    /// Notes by name, in emission order.
    pub notes: BTreeMap<&'static str, Vec<String>>,
    /// Cooperative interruptions (deadline/cancellation), in emission order.
    pub interrupts: Vec<InterruptRecord>,
}

/// One recorded [`Event::Interrupt`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InterruptRecord {
    /// Interrupt site, e.g. `"rcdp.interrupt"`.
    pub name: &'static str,
    /// Stable reason name: `"deadline"` or `"cancelled"`.
    pub reason: &'static str,
    /// Guard ticks observed when the interrupt fired.
    pub at_tick: u64,
}

impl Report {
    /// Fold `other` into `self`: counters and spans sum, gauges keep the
    /// maximum (a merged report answers "how big did it get?"), notes and
    /// interrupts append in `other`'s emission order. Used by the parallel
    /// scheduler to aggregate per-worker reports into one coherent view —
    /// merging the workers' reports in any order yields the same counters,
    /// gauges, and spans.
    pub fn merge(&mut self, other: &Report) {
        for (name, delta) in &other.counters {
            *self.counters.entry(name).or_insert(0) += delta;
        }
        for (name, value) in &other.gauges {
            let slot = self.gauges.entry(name).or_insert(0);
            *slot = (*slot).max(*value);
        }
        for (name, micros) in &other.spans {
            *self.spans.entry(name).or_insert(0) += micros;
        }
        for (name, details) in &other.notes {
            self.notes
                .entry(name)
                .or_default()
                .extend(details.iter().cloned());
        }
        self.interrupts.extend(other.interrupts.iter().copied());
    }

    /// The summed value of counter `name` (0 when never emitted).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The last value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Total microseconds recorded under span `name`.
    pub fn span_micros(&self, name: &str) -> Option<u128> {
        self.spans.get(name).copied()
    }

    /// All notes recorded under `name`.
    pub fn notes(&self, name: &str) -> Vec<String> {
        self.notes.get(name).cloned().unwrap_or_default()
    }

    /// The report as a JSON object (`counters` / `gauges` / `spans_micros` /
    /// `notes` sub-objects), the shape embedded per cell in
    /// `BENCH_TABLE*.json`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "counters",
                Json::obj(self.counters.iter().map(|(k, v)| (*k, Json::from(*v)))),
            ),
            (
                "gauges",
                Json::obj(self.gauges.iter().map(|(k, v)| (*k, Json::from(*v)))),
            ),
            (
                "spans_micros",
                Json::obj(self.spans.iter().map(|(k, v)| (*k, Json::from(*v)))),
            ),
            (
                "notes",
                Json::obj(
                    self.notes
                        .iter()
                        .map(|(k, vs)| (*k, Json::arr(vs.iter().map(|v| Json::from(v.as_str()))))),
                ),
            ),
            (
                "interrupts",
                Json::arr(self.interrupts.iter().map(|i| {
                    Json::obj([
                        ("name", Json::from(i.name)),
                        ("reason", Json::from(i.reason)),
                        ("at_tick", Json::from(i.at_tick)),
                    ])
                })),
            ),
        ])
    }
}

impl fmt::Display for Report {
    /// An aligned, human-readable decision report.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.spans.keys())
            .chain(self.notes.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0);
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (name, value) in &self.counters {
                writeln!(f, "  {name:<width$}  {value}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "gauges:")?;
            for (name, value) in &self.gauges {
                writeln!(f, "  {name:<width$}  {value}")?;
            }
        }
        if !self.spans.is_empty() {
            writeln!(f, "spans:")?;
            for (name, micros) in &self.spans {
                writeln!(f, "  {name:<width$}  {micros} µs")?;
            }
        }
        if !self.notes.is_empty() {
            writeln!(f, "notes:")?;
            for (name, details) in &self.notes {
                for detail in details {
                    writeln!(f, "  {name:<width$}  {detail}")?;
                }
            }
        }
        if !self.interrupts.is_empty() {
            writeln!(f, "interrupts:")?;
            for i in &self.interrupts {
                writeln!(f, "  {:<width$}  {} @ tick {}", i.name, i.reason, i.at_tick)?;
            }
        }
        Ok(())
    }
}

/// Streams one human-readable line per event to a writer.
pub struct PrettySink<W: io::Write> {
    writer: RefCell<W>,
}

impl<W: io::Write> PrettySink<W> {
    /// A sink writing to `writer` (e.g. `std::io::stderr()`).
    pub fn new(writer: W) -> Self {
        PrettySink {
            writer: RefCell::new(writer),
        }
    }

    /// Recover the writer.
    pub fn into_inner(self) -> W {
        self.writer.into_inner()
    }
}

impl<W: io::Write> Sink for PrettySink<W> {
    fn record(&self, event: Event) {
        let mut w = self.writer.borrow_mut();
        // Telemetry never takes down a decision: ignore I/O errors.
        let _ = match event {
            Event::Count { name, delta } => writeln!(w, "count {name} +{delta}"),
            Event::Gauge { name, value } => writeln!(w, "gauge {name} = {value}"),
            Event::Span { name, micros } => writeln!(w, "span  {name} {micros} µs"),
            Event::Note { name, detail } => writeln!(w, "note  {name}: {detail}"),
            Event::Interrupt {
                name,
                reason,
                at_tick,
            } => writeln!(w, "intr  {name}: {reason} @ tick {at_tick}"),
        };
    }
}

/// Streams one JSON object per event, newline-delimited.
///
/// Each line is a complete JSON document with a `"kind"` discriminator:
///
/// ```json
/// {"kind":"count","name":"rcdp.valuations","delta":128}
/// {"kind":"span","name":"rcdp.enumerate","micros":412}
/// ```
pub struct JsonlSink<W: io::Write> {
    writer: RefCell<W>,
}

impl<W: io::Write> JsonlSink<W> {
    /// A sink writing one JSON line per event to `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: RefCell::new(writer),
        }
    }

    /// Recover the writer (e.g. to inspect an in-memory `Vec<u8>`).
    pub fn into_inner(self) -> W {
        self.writer.into_inner()
    }

    /// The JSON line for one event (without the trailing newline).
    pub fn line_for(event: &Event) -> Json {
        match event {
            Event::Count { name, delta } => Json::obj([
                ("kind", Json::from("count")),
                ("name", Json::from(*name)),
                ("delta", Json::from(*delta)),
            ]),
            Event::Gauge { name, value } => Json::obj([
                ("kind", Json::from("gauge")),
                ("name", Json::from(*name)),
                ("value", Json::from(*value)),
            ]),
            Event::Span { name, micros } => Json::obj([
                ("kind", Json::from("span")),
                ("name", Json::from(*name)),
                ("micros", Json::from(*micros)),
            ]),
            Event::Note { name, detail } => Json::obj([
                ("kind", Json::from("note")),
                ("name", Json::from(*name)),
                ("detail", Json::from(detail.as_str())),
            ]),
            Event::Interrupt {
                name,
                reason,
                at_tick,
            } => Json::obj([
                ("kind", Json::from("interrupt")),
                ("name", Json::from(*name)),
                ("reason", Json::from(*reason)),
                ("at_tick", Json::from(*at_tick)),
            ]),
        }
    }
}

impl<W: io::Write> Sink for JsonlSink<W> {
    fn record(&self, event: Event) {
        let mut w = self.writer.borrow_mut();
        let _ = writeln!(w, "{}", Self::line_for(&event));
    }
}

/// Fans each event out to two sinks, `first` before `second`.
///
/// The `try_` facade entry points use a tee to keep an internal [`Collector`]
/// for panic diagnostics while still forwarding events to the caller's sink.
/// Either slot may be empty, so a tee over `Probe::sink()` works whether or
/// not the caller attached telemetry.
pub struct TeeSink<'a> {
    first: Option<&'a dyn Sink>,
    second: Option<&'a dyn Sink>,
}

impl<'a> TeeSink<'a> {
    /// A tee forwarding to `first` then `second`; `None` slots are skipped.
    pub fn new(first: Option<&'a dyn Sink>, second: Option<&'a dyn Sink>) -> Self {
        TeeSink { first, second }
    }
}

impl Sink for TeeSink<'_> {
    fn record(&self, event: Event) {
        if let Some(sink) = self.first {
            sink.record(event.clone());
        }
        if let Some(sink) = self.second {
            sink.record(event);
        }
    }
}

/// Deterministic fault injection through the probe seam: panics the first
/// time an event named `trigger` is recorded, forwarding everything else to
/// an optional inner sink.
///
/// This sink deliberately violates the "must not panic" contract of [`Sink`]
/// — that is its entire purpose. It exists so tests can simulate a fault
/// *inside* a named decision stage (e.g. panic when the `"rcdp.strategy"`
/// note fires) and assert that the `try_` facade entry points convert the
/// unwind into a typed error. Never attach it outside tests.
pub struct FaultSink<'a> {
    trigger: &'static str,
    inner: Option<&'a dyn Sink>,
}

impl<'a> FaultSink<'a> {
    /// A sink that panics when an event named `trigger` is recorded.
    pub fn new(trigger: &'static str, inner: Option<&'a dyn Sink>) -> Self {
        FaultSink { trigger, inner }
    }
}

impl Sink for FaultSink<'_> {
    fn record(&self, event: Event) {
        if event.name() == self.trigger {
            panic!("fault injection: stage {} panicked", self.trigger);
        }
        if let Some(sink) = self.inner {
            sink.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::probe::Probe;

    #[test]
    fn collector_aggregates_exactly() {
        let collector = Collector::new();
        let probe = Probe::attached(&collector);
        probe.count("valuations", 10);
        probe.count("valuations", 32);
        probe.count("cc_checks", 4);
        probe.gauge("adom", 6);
        probe.gauge("adom", 9); // last write wins
        probe.note("limit", || "max_valuations".into());
        probe.note("limit", || "max_candidates".into());

        let report = collector.report();
        assert_eq!(report.counter("valuations"), 42);
        assert_eq!(report.counter("cc_checks"), 4);
        assert_eq!(report.counter("never_emitted"), 0);
        assert_eq!(report.gauge("adom"), Some(9));
        assert_eq!(
            report.notes("limit"),
            vec!["max_valuations".to_string(), "max_candidates".to_string()]
        );

        collector.reset();
        assert!(collector.events().is_empty());
    }

    #[test]
    fn merge_sums_counters_and_spans_maxes_gauges() {
        let a = Collector::new();
        let pa = Probe::attached(&a);
        pa.count("index.probe", 10);
        pa.count("par.chunk", 2);
        pa.gauge("adom", 6);
        pa.note("strategy", || "delta".into());

        let b = Collector::new();
        let pb = Probe::attached(&b);
        pb.count("index.probe", 32);
        pb.gauge("adom", 4);
        pb.gauge("pool", 9);
        pb.note("strategy", || "union".into());
        pb.interrupt("rcdp.interrupt", "deadline", 7);

        let mut merged = a.report();
        merged.merge(&b.report());
        assert_eq!(merged.counter("index.probe"), 42);
        assert_eq!(merged.counter("par.chunk"), 2);
        assert_eq!(merged.gauge("adom"), Some(6)); // max wins
        assert_eq!(merged.gauge("pool"), Some(9));
        assert_eq!(
            merged.notes("strategy"),
            vec!["delta".to_string(), "union".to_string()]
        );
        assert_eq!(merged.interrupts.len(), 1);
        assert_eq!(merged.interrupts[0].reason, "deadline");

        // Counter/gauge/span totals are order-independent.
        let mut reversed = b.report();
        reversed.merge(&a.report());
        assert_eq!(reversed.counters, merged.counters);
        assert_eq!(reversed.gauges, merged.gauges);
        assert_eq!(reversed.spans, merged.spans);
    }

    #[test]
    fn merge_into_empty_is_identity() {
        let a = Collector::new();
        let pa = Probe::attached(&a);
        pa.count("v", 3);
        pa.gauge("g", 5);
        let mut merged = Report::default();
        merged.merge(&a.report());
        assert_eq!(merged.counters, a.report().counters);
        assert_eq!(merged.gauges, a.report().gauges);
    }

    #[test]
    fn report_display_is_aligned_and_nonempty() {
        let collector = Collector::new();
        let probe = Probe::attached(&collector);
        probe.count("search.valuations", 7);
        probe.gauge("adom.size", 3);
        let text = collector.report().to_string();
        assert!(text.contains("counters:"));
        assert!(text.contains("search.valuations"));
        assert!(text.contains("gauges:"));
        assert!(text.contains("adom.size"));
    }

    #[test]
    fn jsonl_lines_parse_back() {
        let sink = JsonlSink::new(Vec::new());
        let probe = Probe::attached(&sink);
        probe.count("v", 3);
        probe.gauge("g", 5);
        probe.note("n", || "detail with \"quotes\" and\nnewline".into());
        drop(probe.span("s"));

        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            json::parse(line).expect("every JSONL line is valid JSON");
        }
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(first.get("kind").and_then(Json::as_str), Some("count"));
        assert_eq!(first.get("name").and_then(Json::as_str), Some("v"));
        assert_eq!(first.get("delta").and_then(Json::as_int), Some(3));
        let note = json::parse(lines[2]).unwrap();
        assert_eq!(
            note.get("detail").and_then(Json::as_str),
            Some("detail with \"quotes\" and\nnewline")
        );
    }

    #[test]
    fn pretty_sink_writes_lines() {
        let sink = PrettySink::new(Vec::new());
        let probe = Probe::attached(&sink);
        probe.count("v", 3);
        probe.note("outcome", || "complete".into());
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.contains("count v +3"));
        assert!(text.contains("note  outcome: complete"));
    }

    #[test]
    fn report_to_json_roundtrips() {
        let collector = Collector::new();
        let probe = Probe::attached(&collector);
        probe.count("v", 3);
        probe.gauge("g", 5);
        probe.note("n", || "x".into());
        let doc = collector.report().to_json();
        let parsed = json::parse(&doc.to_string()).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("v"))
                .and_then(Json::as_int),
            Some(3)
        );
        assert_eq!(
            parsed
                .get("gauges")
                .and_then(|c| c.get("g"))
                .and_then(Json::as_int),
            Some(5)
        );
    }
}

//! Event sinks: where probe emissions go.
//!
//! * [`Collector`] aggregates in memory and also keeps the raw event stream;
//!   use [`Collector::report`] for programmatic inspection.
//! * [`PrettySink`] streams human-readable lines to any `io::Write`,
//!   indenting by span nesting when the probe carries a trace state.
//! * [`JsonlSink`] streams one hand-rolled JSON object per event (the
//!   workspace builds offline; there is no serde).
//!
//! Both streaming sinks buffer their writes (`io::BufWriter`): a traced
//! decision can emit tens of thousands of events, and an unbuffered
//! per-event `write!` to a file or stderr dominates the run. The buffer is
//! flushed when the sink is recovered with `into_inner`, on an explicit
//! [`PrettySink::flush`]/[`JsonlSink::flush`], and by `BufWriter`'s own drop.
//!
//! All sinks take `&self` — the deciders are single-threaded, so interior
//! mutability via `RefCell` is enough and keeps [`Probe`](crate::Probe)
//! freely copyable.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Write};

use crate::json::Json;
use crate::probe::Event;

/// A destination for probe events.
pub trait Sink {
    /// Record one event. Must not panic on I/O trouble — sinks that write
    /// swallow errors (telemetry must never take down a decision).
    fn record(&self, event: Event);

    /// Push buffered output through to the underlying destination. The
    /// facade calls this on every decision exit — including the panic path —
    /// so a crashing caller cannot lose the final checkpoint/interrupt
    /// events still sitting in a write buffer. In-memory sinks need nothing,
    /// hence the default no-op.
    fn flush(&self) {}
}

/// In-memory aggregation plus the raw event stream.
#[derive(Default)]
pub struct Collector {
    events: RefCell<Vec<Event>>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// The raw events, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.events.borrow().clone()
    }

    /// Drop everything collected so far (for reusing one collector across
    /// cells in a sweep).
    pub fn reset(&self) {
        self.events.borrow_mut().clear();
    }

    /// Aggregate the stream into a [`Report`].
    pub fn report(&self) -> Report {
        let mut report = Report::default();
        for event in self.events.borrow().iter() {
            match event {
                Event::Count { name, delta } => {
                    *report.counters.entry(name).or_insert(0) += delta;
                }
                Event::Gauge { name, value } => {
                    report.gauges.insert(name, *value);
                }
                // Open markers only carry tree structure; the close event of
                // the same id carries the measurements.
                Event::SpanOpen { .. } => {}
                Event::Span { name, micros, .. } => {
                    *report.spans.entry(name).or_insert(0) += micros;
                }
                Event::Note { name, detail } => {
                    report.notes.entry(name).or_default().push(detail.clone());
                }
                Event::Interrupt {
                    name,
                    reason,
                    at_tick,
                } => {
                    report.interrupts.push(InterruptRecord {
                        name,
                        reason,
                        at_tick: *at_tick,
                    });
                }
            }
        }
        report
    }
}

impl Sink for Collector {
    fn record(&self, event: Event) {
        self.events.borrow_mut().push(event);
    }
}

/// Aggregated view of a collected event stream.
#[derive(Clone, Default, Debug)]
pub struct Report {
    /// Summed counter deltas by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Last-observed gauge values by name.
    pub gauges: BTreeMap<&'static str, u64>,
    /// Summed span times (µs) by name. Under `Engine::Parallel` a merged
    /// report sums the per-worker spans too, so this reads as *total work
    /// time*, not wall time — see [`Report::merge`].
    pub spans: BTreeMap<&'static str, u128>,
    /// Notes by name, in emission order.
    pub notes: BTreeMap<&'static str, Vec<String>>,
    /// Cooperative interruptions (deadline/cancellation), in emission order.
    pub interrupts: Vec<InterruptRecord>,
}

/// One recorded [`Event::Interrupt`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InterruptRecord {
    /// Interrupt site, e.g. `"rcdp.interrupt"`.
    pub name: &'static str,
    /// Stable reason name: `"deadline"` or `"cancelled"`.
    pub reason: &'static str,
    /// Guard ticks observed when the interrupt fired.
    pub at_tick: u64,
}

impl Report {
    /// Fold `other` into `self`. Pinned merge semantics (the parallel
    /// scheduler and the metrics exporter both rely on these):
    ///
    /// * **counters sum** — they count work, and work adds up;
    /// * **spans sum** — a merged span total is *total work time across
    ///   workers* (CPU-seconds), deliberately not wall time: wall time is
    ///   what the caller's own clock around the decision measures, while the
    ///   summed span answers "how much work did this phase cost?";
    /// * **gauges max** — a merged report answers "how big did it get?";
    /// * **notes append** in `other`'s emission order;
    /// * **interrupts append, exact duplicates skipped** — one guard trip is
    ///   broadcast to every worker of a parallel fan-out, so the same
    ///   `(name, reason, at_tick)` record can surface once per worker report;
    ///   a merged report keeps one.
    ///
    /// Merging per-worker reports in any order yields the same counters,
    /// gauges, spans, and interrupt set.
    pub fn merge(&mut self, other: &Report) {
        for (name, delta) in &other.counters {
            *self.counters.entry(name).or_insert(0) += delta;
        }
        for (name, value) in &other.gauges {
            let slot = self.gauges.entry(name).or_insert(0);
            *slot = (*slot).max(*value);
        }
        for (name, micros) in &other.spans {
            *self.spans.entry(name).or_insert(0) += micros;
        }
        for (name, details) in &other.notes {
            self.notes
                .entry(name)
                .or_default()
                .extend(details.iter().cloned());
        }
        for record in &other.interrupts {
            if !self.interrupts.contains(record) {
                self.interrupts.push(*record);
            }
        }
    }

    /// The summed value of counter `name` (0 when never emitted).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The last value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Total microseconds recorded under span `name`.
    pub fn span_micros(&self, name: &str) -> Option<u128> {
        self.spans.get(name).copied()
    }

    /// All notes recorded under `name`.
    pub fn notes(&self, name: &str) -> Vec<String> {
        self.notes.get(name).cloned().unwrap_or_default()
    }

    /// The report as a JSON object (`counters` / `gauges` / `spans_micros` /
    /// `notes` sub-objects), the shape embedded per cell in
    /// `BENCH_TABLE*.json`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "counters",
                Json::obj(self.counters.iter().map(|(k, v)| (*k, Json::from(*v)))),
            ),
            (
                "gauges",
                Json::obj(self.gauges.iter().map(|(k, v)| (*k, Json::from(*v)))),
            ),
            (
                "spans_micros",
                Json::obj(self.spans.iter().map(|(k, v)| (*k, Json::from(*v)))),
            ),
            (
                "notes",
                Json::obj(
                    self.notes
                        .iter()
                        .map(|(k, vs)| (*k, Json::arr(vs.iter().map(|v| Json::from(v.as_str()))))),
                ),
            ),
            (
                "interrupts",
                Json::arr(self.interrupts.iter().map(|i| {
                    Json::obj([
                        ("name", Json::from(i.name)),
                        ("reason", Json::from(i.reason)),
                        ("at_tick", Json::from(i.at_tick)),
                    ])
                })),
            ),
        ])
    }
}

impl fmt::Display for Report {
    /// An aligned, human-readable decision report.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.spans.keys())
            .chain(self.notes.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0);
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (name, value) in &self.counters {
                writeln!(f, "  {name:<width$}  {value}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "gauges:")?;
            for (name, value) in &self.gauges {
                writeln!(f, "  {name:<width$}  {value}")?;
            }
        }
        if !self.spans.is_empty() {
            writeln!(f, "spans:")?;
            for (name, micros) in &self.spans {
                writeln!(f, "  {name:<width$}  {micros} µs")?;
            }
        }
        if !self.notes.is_empty() {
            writeln!(f, "notes:")?;
            for (name, details) in &self.notes {
                for detail in details {
                    writeln!(f, "  {name:<width$}  {detail}")?;
                }
            }
        }
        if !self.interrupts.is_empty() {
            writeln!(f, "interrupts:")?;
            for i in &self.interrupts {
                writeln!(f, "  {:<width$}  {} @ tick {}", i.name, i.reason, i.at_tick)?;
            }
        }
        Ok(())
    }
}

/// Streams one human-readable line per event to a writer, indented by the
/// nesting depth of the currently open traced spans.
///
/// Nesting comes from the [`Event::SpanOpen`]/[`Event::Span`] id pairs that
/// traced probes emit; the sink tracks the stack of open ids and tolerates
/// spans closed out of order (a close removes exactly its own id, wherever
/// it sits in the stack, so a sibling closed late can never corrupt the
/// indentation of what follows). Untraced streams carry no `SpanOpen` events
/// and print exactly as before, flush left.
pub struct PrettySink<W: io::Write> {
    writer: RefCell<io::BufWriter<W>>,
    open: RefCell<Vec<u64>>,
}

impl<W: io::Write> PrettySink<W> {
    /// A sink writing to `writer` (e.g. `std::io::stderr()`).
    pub fn new(writer: W) -> Self {
        PrettySink {
            writer: RefCell::new(io::BufWriter::new(writer)),
            open: RefCell::new(Vec::new()),
        }
    }

    /// Flush buffered lines through to the underlying writer.
    pub fn flush(&self) {
        let _ = self.writer.borrow_mut().flush();
    }

    /// Recover the writer, flushing buffered lines first.
    pub fn into_inner(self) -> W {
        let mut buf = self.writer.into_inner();
        let _ = buf.flush();
        buf.into_parts().0
    }
}

impl<W: io::Write> Sink for PrettySink<W> {
    fn flush(&self) {
        PrettySink::flush(self);
    }

    fn record(&self, event: Event) {
        let mut open = self.open.borrow_mut();
        let mut w = self.writer.borrow_mut();
        let pad = |depth: usize| "  ".repeat(depth);
        // Telemetry never takes down a decision: ignore I/O errors.
        let _ = match event {
            Event::Count { name, delta } => {
                writeln!(w, "{}count {name} +{delta}", pad(open.len()))
            }
            Event::Gauge { name, value } => {
                writeln!(w, "{}gauge {name} = {value}", pad(open.len()))
            }
            Event::SpanOpen { name, id, .. } => {
                let line = writeln!(w, "{}open  {name}", pad(open.len()));
                open.push(id);
                line
            }
            Event::Span {
                name,
                micros,
                id,
                ticks,
                ..
            } => {
                if id == 0 {
                    writeln!(w, "{}span  {name} {micros} µs", pad(open.len()))
                } else {
                    // Close exactly this span's id; out-of-order closes leave
                    // the rest of the stack intact.
                    let depth = match open.iter().rposition(|&o| o == id) {
                        Some(pos) => {
                            open.remove(pos);
                            pos
                        }
                        None => open.len(),
                    };
                    writeln!(w, "{}span  {name} {micros} µs ({ticks} ticks)", pad(depth))
                }
            }
            Event::Note { name, detail } => {
                writeln!(w, "{}note  {name}: {detail}", pad(open.len()))
            }
            Event::Interrupt {
                name,
                reason,
                at_tick,
            } => writeln!(
                w,
                "{}intr  {name}: {reason} @ tick {at_tick}",
                pad(open.len())
            ),
        };
    }
}

/// Streams one JSON object per event, newline-delimited.
///
/// Each line is a complete JSON document with a `"kind"` discriminator:
///
/// ```json
/// {"kind":"count","name":"rcdp.valuations","delta":128}
/// {"kind":"span","name":"rcdp.enumerate","micros":412}
/// ```
///
/// Traced streams additionally carry `span_open` lines and `id`/`parent`/
/// `ticks` fields on `span` lines (see EXPERIMENTS.md for the full trace
/// schema); untraced streams keep the flat five-kind shape above.
pub struct JsonlSink<W: io::Write> {
    writer: RefCell<io::BufWriter<W>>,
}

impl<W: io::Write> JsonlSink<W> {
    /// A sink writing one JSON line per event to `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: RefCell::new(io::BufWriter::new(writer)),
        }
    }

    /// Flush buffered lines through to the underlying writer.
    pub fn flush(&self) {
        let _ = self.writer.borrow_mut().flush();
    }

    /// Recover the writer (e.g. to inspect an in-memory `Vec<u8>`),
    /// flushing buffered lines first.
    pub fn into_inner(self) -> W {
        let mut buf = self.writer.into_inner();
        let _ = buf.flush();
        buf.into_parts().0
    }

    /// The JSON line for one event (without the trailing newline).
    pub fn line_for(event: &Event) -> Json {
        match event {
            Event::Count { name, delta } => Json::obj([
                ("kind", Json::from("count")),
                ("name", Json::from(*name)),
                ("delta", Json::from(*delta)),
            ]),
            Event::Gauge { name, value } => Json::obj([
                ("kind", Json::from("gauge")),
                ("name", Json::from(*name)),
                ("value", Json::from(*value)),
            ]),
            Event::SpanOpen {
                name,
                id,
                parent,
                at_tick,
            } => Json::obj([
                ("kind", Json::from("span_open")),
                ("name", Json::from(*name)),
                ("id", Json::from(*id)),
                ("parent", Json::from(*parent)),
                ("at_tick", Json::from(*at_tick)),
            ]),
            Event::Span {
                name,
                micros,
                id,
                parent,
                ticks,
            } => {
                if *id == 0 {
                    Json::obj([
                        ("kind", Json::from("span")),
                        ("name", Json::from(*name)),
                        ("micros", Json::from(*micros)),
                    ])
                } else {
                    Json::obj([
                        ("kind", Json::from("span")),
                        ("name", Json::from(*name)),
                        ("micros", Json::from(*micros)),
                        ("id", Json::from(*id)),
                        ("parent", Json::from(*parent)),
                        ("ticks", Json::from(*ticks)),
                    ])
                }
            }
            Event::Note { name, detail } => Json::obj([
                ("kind", Json::from("note")),
                ("name", Json::from(*name)),
                ("detail", Json::from(detail.as_str())),
            ]),
            Event::Interrupt {
                name,
                reason,
                at_tick,
            } => Json::obj([
                ("kind", Json::from("interrupt")),
                ("name", Json::from(*name)),
                ("reason", Json::from(*reason)),
                ("at_tick", Json::from(*at_tick)),
            ]),
        }
    }
}

impl<W: io::Write> Sink for JsonlSink<W> {
    fn flush(&self) {
        JsonlSink::flush(self);
    }

    fn record(&self, event: Event) {
        let mut w = self.writer.borrow_mut();
        let _ = writeln!(w, "{}", Self::line_for(&event));
    }
}

/// Fans each event out to two sinks, `first` before `second`.
///
/// The `try_` facade entry points use a tee to keep an internal [`Collector`]
/// for panic diagnostics while still forwarding events to the caller's sink.
/// Either slot may be empty, so a tee over `Probe::sink()` works whether or
/// not the caller attached telemetry.
pub struct TeeSink<'a> {
    first: Option<&'a dyn Sink>,
    second: Option<&'a dyn Sink>,
}

impl<'a> TeeSink<'a> {
    /// A tee forwarding to `first` then `second`; `None` slots are skipped.
    pub fn new(first: Option<&'a dyn Sink>, second: Option<&'a dyn Sink>) -> Self {
        TeeSink { first, second }
    }
}

impl Sink for TeeSink<'_> {
    fn flush(&self) {
        if let Some(sink) = self.first {
            sink.flush();
        }
        if let Some(sink) = self.second {
            sink.flush();
        }
    }

    fn record(&self, event: Event) {
        if let Some(sink) = self.first {
            sink.record(event.clone());
        }
        if let Some(sink) = self.second {
            sink.record(event);
        }
    }
}

/// Deterministic fault injection through the probe seam: panics the first
/// time an event named `trigger` is recorded, forwarding everything else to
/// an optional inner sink.
///
/// This sink deliberately violates the "must not panic" contract of [`Sink`]
/// — that is its entire purpose. It exists so tests can simulate a fault
/// *inside* a named decision stage (e.g. panic when the `"rcdp.strategy"`
/// note fires) and assert that the `try_` facade entry points convert the
/// unwind into a typed error. Never attach it outside tests.
pub struct FaultSink<'a> {
    trigger: &'static str,
    inner: Option<&'a dyn Sink>,
}

impl<'a> FaultSink<'a> {
    /// A sink that panics when an event named `trigger` is recorded.
    pub fn new(trigger: &'static str, inner: Option<&'a dyn Sink>) -> Self {
        FaultSink { trigger, inner }
    }
}

impl Sink for FaultSink<'_> {
    fn flush(&self) {
        if let Some(sink) = self.inner {
            sink.flush();
        }
    }

    fn record(&self, event: Event) {
        if event.name() == self.trigger {
            panic!("fault injection: stage {} panicked", self.trigger);
        }
        if let Some(sink) = self.inner {
            sink.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::probe::{Probe, TraceState};

    #[test]
    fn collector_aggregates_exactly() {
        let collector = Collector::new();
        let probe = Probe::attached(&collector);
        probe.count("valuations", 10);
        probe.count("valuations", 32);
        probe.count("cc_checks", 4);
        probe.gauge("adom", 6);
        probe.gauge("adom", 9); // last write wins
        probe.note("limit", || "max_valuations".into());
        probe.note("limit", || "max_candidates".into());

        let report = collector.report();
        assert_eq!(report.counter("valuations"), 42);
        assert_eq!(report.counter("cc_checks"), 4);
        assert_eq!(report.counter("never_emitted"), 0);
        assert_eq!(report.gauge("adom"), Some(9));
        assert_eq!(
            report.notes("limit"),
            vec!["max_valuations".to_string(), "max_candidates".to_string()]
        );

        collector.reset();
        assert!(collector.events().is_empty());
    }

    #[test]
    fn merge_sums_counters_and_spans_maxes_gauges() {
        let a = Collector::new();
        let pa = Probe::attached(&a);
        pa.count("index.probe", 10);
        pa.count("par.chunk", 2);
        pa.gauge("adom", 6);
        pa.note("strategy", || "delta".into());

        let b = Collector::new();
        let pb = Probe::attached(&b);
        pb.count("index.probe", 32);
        pb.gauge("adom", 4);
        pb.gauge("pool", 9);
        pb.note("strategy", || "union".into());
        pb.interrupt("rcdp.interrupt", "deadline", 7);

        let mut merged = a.report();
        merged.merge(&b.report());
        assert_eq!(merged.counter("index.probe"), 42);
        assert_eq!(merged.counter("par.chunk"), 2);
        assert_eq!(merged.gauge("adom"), Some(6)); // max wins
        assert_eq!(merged.gauge("pool"), Some(9));
        assert_eq!(
            merged.notes("strategy"),
            vec!["delta".to_string(), "union".to_string()]
        );
        assert_eq!(merged.interrupts.len(), 1);
        assert_eq!(merged.interrupts[0].reason, "deadline");

        // Counter/gauge/span totals are order-independent.
        let mut reversed = b.report();
        reversed.merge(&a.report());
        assert_eq!(reversed.counters, merged.counters);
        assert_eq!(reversed.gauges, merged.gauges);
        assert_eq!(reversed.spans, merged.spans);
    }

    #[test]
    fn merge_skips_duplicate_interrupt_records() {
        // One guard trip is observed by every worker of a parallel fan-out;
        // the merged report must keep a single record of it, while genuinely
        // distinct interrupts (different tick or reason) all survive.
        let a = Collector::new();
        Probe::attached(&a).interrupt("rcdp.interrupt", "deadline", 7);
        let b = Collector::new();
        let pb = Probe::attached(&b);
        pb.interrupt("rcdp.interrupt", "deadline", 7); // duplicate
        pb.interrupt("rcdp.interrupt", "deadline", 9); // distinct tick

        let mut merged = a.report();
        merged.merge(&b.report());
        assert_eq!(merged.interrupts.len(), 2);
        assert_eq!(merged.interrupts[0].at_tick, 7);
        assert_eq!(merged.interrupts[1].at_tick, 9);

        // Self-merge is idempotent on the interrupt set.
        let snapshot = merged.clone();
        merged.merge(&snapshot);
        assert_eq!(merged.interrupts.len(), 2);
    }

    #[test]
    fn merge_into_empty_is_identity() {
        let a = Collector::new();
        let pa = Probe::attached(&a);
        pa.count("v", 3);
        pa.gauge("g", 5);
        let mut merged = Report::default();
        merged.merge(&a.report());
        assert_eq!(merged.counters, a.report().counters);
        assert_eq!(merged.gauges, a.report().gauges);
    }

    #[test]
    fn report_display_is_aligned_and_nonempty() {
        let collector = Collector::new();
        let probe = Probe::attached(&collector);
        probe.count("search.valuations", 7);
        probe.gauge("adom.size", 3);
        let text = collector.report().to_string();
        assert!(text.contains("counters:"));
        assert!(text.contains("search.valuations"));
        assert!(text.contains("gauges:"));
        assert!(text.contains("adom.size"));
    }

    #[test]
    fn jsonl_lines_parse_back() {
        let sink = JsonlSink::new(Vec::new());
        let probe = Probe::attached(&sink);
        probe.count("v", 3);
        probe.gauge("g", 5);
        probe.note("n", || "detail with \"quotes\" and\nnewline".into());
        drop(probe.span("s"));

        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            json::parse(line).expect("every JSONL line is valid JSON");
        }
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(first.get("kind").and_then(Json::as_str), Some("count"));
        assert_eq!(first.get("name").and_then(Json::as_str), Some("v"));
        assert_eq!(first.get("delta").and_then(Json::as_int), Some(3));
        let note = json::parse(lines[2]).unwrap();
        assert_eq!(
            note.get("detail").and_then(Json::as_str),
            Some("detail with \"quotes\" and\nnewline")
        );
        // Untraced span lines keep the flat legacy shape: no id field.
        let span = json::parse(lines[3]).unwrap();
        assert_eq!(span.get("kind").and_then(Json::as_str), Some("span"));
        assert!(span.get("id").is_none());
    }

    #[test]
    fn jsonl_traced_spans_carry_ids() {
        let sink = JsonlSink::new(Vec::new());
        let trace = TraceState::new();
        let probe = Probe::attached(&sink).with_trace(&trace);
        {
            let _root = probe.span("root");
            drop(probe.span("child"));
        }
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let docs: Vec<Json> = text.lines().map(|l| json::parse(l).unwrap()).collect();
        assert_eq!(docs.len(), 4); // 2 opens + 2 closes
        assert_eq!(
            docs[0].get("kind").and_then(Json::as_str),
            Some("span_open")
        );
        assert_eq!(docs[0].get("id").and_then(Json::as_int), Some(1));
        assert_eq!(docs[0].get("parent").and_then(Json::as_int), Some(0));
        assert_eq!(docs[1].get("id").and_then(Json::as_int), Some(2));
        assert_eq!(docs[1].get("parent").and_then(Json::as_int), Some(1));
        // child closes before root.
        assert_eq!(docs[2].get("kind").and_then(Json::as_str), Some("span"));
        assert_eq!(docs[2].get("id").and_then(Json::as_int), Some(2));
        assert_eq!(docs[3].get("id").and_then(Json::as_int), Some(1));
        assert!(docs[3].get("ticks").is_some());
    }

    #[test]
    fn pretty_sink_writes_lines() {
        let sink = PrettySink::new(Vec::new());
        let probe = Probe::attached(&sink);
        probe.count("v", 3);
        probe.note("outcome", || "complete".into());
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.contains("count v +3"));
        assert!(text.contains("note  outcome: complete"));
    }

    #[test]
    fn pretty_sink_indents_traced_spans() {
        let sink = PrettySink::new(Vec::new());
        let trace = TraceState::new();
        let probe = Probe::attached(&sink).with_trace(&trace);
        {
            let _root = probe.span("decision");
            probe.count("v", 1);
            {
                let _inner = probe.span("enumerate");
                probe.count("v", 2);
            }
        }
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "open  decision");
        assert_eq!(lines[1], "  count v +1");
        assert_eq!(lines[2], "  open  enumerate");
        assert_eq!(lines[3], "    count v +2");
        assert!(lines[4].starts_with("  span  enumerate"));
        assert!(lines[5].starts_with("span  decision"));
    }

    #[test]
    fn pretty_sink_tolerates_out_of_order_closes() {
        // Close the outer guard before the inner one (possible when guards
        // are moved into structs): each close removes its own id, so the
        // indentation never underflows and later events print sanely.
        let sink = PrettySink::new(Vec::new());
        let trace = TraceState::new();
        let probe = Probe::attached(&sink).with_trace(&trace);
        let outer = probe.span("outer");
        let inner = probe.span("inner");
        drop(outer);
        drop(inner);
        probe.count("after", 1);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "open  outer");
        assert_eq!(lines[1], "  open  inner");
        // outer closes at its own depth (0), inner at its own depth (now 0
        // after outer was removed below it — the stack held only inner).
        assert!(lines[2].starts_with("span  outer"));
        assert!(lines[3].starts_with("span  inner") || lines[3].starts_with("  span  inner"));
        assert_eq!(*lines.last().unwrap(), "count after +1");
    }

    #[test]
    fn report_to_json_roundtrips() {
        let collector = Collector::new();
        let probe = Probe::attached(&collector);
        probe.count("v", 3);
        probe.gauge("g", 5);
        probe.note("n", || "x".into());
        let doc = collector.report().to_json();
        let parsed = json::parse(&doc.to_string()).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("v"))
                .and_then(Json::as_int),
            Some(3)
        );
        assert_eq!(
            parsed
                .get("gauges")
                .and_then(|c| c.get("g"))
                .and_then(Json::as_int),
            Some(5)
        );
    }
}

//! Seeded round-trip property suite for the hand-rolled JSON layer:
//! `parse ∘ print = id` over generated documents, plus the escape, unicode,
//! and `i128`-range edge cases a fuzzer would find first.
//!
//! The generator is a local SplitMix64 — `ric-telemetry` sits below
//! `ric-data` in the dependency order, so it cannot borrow the workspace's
//! shared generator.

use ric_telemetry::json::{parse, Json};

/// SplitMix64 (Steele et al.): tiny, seedable, good enough to sweep the
/// value space deterministically.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// A char drawn from ranges that stress the writer: ASCII, the escaped
/// control/quote/backslash set, and multi-byte unicode (including a
/// supplementary-plane scalar, which exercises UTF-8 4-byte handling).
fn gen_char(rng: &mut SplitMix64) -> char {
    match rng.below(8) {
        0 => '"',
        1 => '\\',
        2 => char::from_u32(rng.below(0x20) as u32).unwrap_or('\u{1}'),
        3 => 'é',
        4 => '\u{6c49}',  // 汉, 3-byte UTF-8
        5 => '\u{1f600}', // 😀, 4-byte UTF-8 (surrogate pair in \u escapes)
        _ => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or('x'),
    }
}

fn gen_string(rng: &mut SplitMix64) -> String {
    (0..rng.below(12)).map(|_| gen_char(rng)).collect()
}

/// An i128 spanning the full width: small values, u64-sized, and values
/// near the i128 extremes (which overflow any f64-based parser).
fn gen_int(rng: &mut SplitMix64) -> i128 {
    let base = match rng.below(4) {
        0 => i128::from(rng.below(100)),
        1 => i128::from(rng.next()),
        2 => i128::MAX - i128::from(rng.below(1000)),
        _ => i128::MIN + i128::from(rng.below(1000)),
    };
    if rng.below(2) == 0 {
        base
    } else {
        base.checked_neg().unwrap_or(i128::MAX)
    }
}

/// A random JSON value. `depth` bounds nesting so documents stay small.
fn gen_value(rng: &mut SplitMix64, depth: u32) -> Json {
    let choices = if depth == 0 { 4 } else { 6 };
    match rng.below(choices) {
        0 => Json::Null,
        1 => Json::Bool(rng.below(2) == 0),
        2 => Json::Int(gen_int(rng)),
        3 => Json::Str(gen_string(rng)),
        4 => Json::arr((0..rng.below(4)).map(|_| gen_value(rng, depth - 1))),
        _ => Json::Obj(
            (0..rng.below(4))
                .map(|i| {
                    // Distinct keys: duplicate keys round-trip fine through
                    // our parser but are poor JSON hygiene.
                    let key = format!("{}#{i}", gen_string(rng));
                    (key, gen_value(rng, depth - 1))
                })
                .collect(),
        ),
    }
}

#[test]
fn parse_print_identity_over_seeded_documents() {
    let mut rng = SplitMix64(0x5eed_0001);
    for case in 0..500 {
        let doc = gen_value(&mut rng, 3);
        let compact = doc.to_string();
        assert_eq!(
            parse(&compact).unwrap_or_else(|e| panic!("case {case}: {e} in {compact}")),
            doc,
            "case {case}: compact round-trip"
        );
        let pretty = doc.pretty();
        assert_eq!(
            parse(&pretty).unwrap_or_else(|e| panic!("case {case}: {e} in {pretty}")),
            doc,
            "case {case}: pretty round-trip"
        );
    }
}

#[test]
fn parse_print_identity_over_seeded_strings() {
    // Strings alone, longer and denser in escapes than the document sweep.
    let mut rng = SplitMix64(0x5eed_0002);
    for _ in 0..2000 {
        let s: String = (0..rng.below(40)).map(|_| gen_char(&mut rng)).collect();
        let doc = Json::Str(s);
        assert_eq!(parse(&doc.to_string()).unwrap(), doc);
    }
}

#[test]
fn i128_extremes_round_trip_exactly() {
    for v in [
        i128::MIN,
        i128::MIN + 1,
        i128::from(i64::MIN),
        -1,
        0,
        1,
        i128::from(u64::MAX),
        i128::MAX - 1,
        i128::MAX,
    ] {
        let doc = Json::Int(v);
        assert_eq!(parse(&doc.to_string()).unwrap(), doc, "i128 {v}");
    }
}

#[test]
fn escape_edge_cases_round_trip() {
    for s in [
        "",
        "\"",
        "\\",
        "\\\\\"",
        "\n\r\t",
        "\u{0}\u{1}\u{1f}",
        "ends with backslash\\",
        "\u{7f}", // DEL is not escaped, must survive raw
        "é汉😀",  // 2-, 3-, 4-byte UTF-8 adjacent
        "mixed \"q\\u\" \n 汉",
    ] {
        let doc = Json::Str(s.to_string());
        assert_eq!(parse(&doc.to_string()).unwrap(), doc, "string {s:?}");
    }
}

#[test]
fn unicode_escape_forms_parse_to_scalars() {
    // The writer never emits \u for printable chars, but the parser must
    // accept them (standard JSON) — including unpaired surrogates, which
    // map to U+FFFD rather than erroring.
    assert_eq!(parse("\"\\u6c49\"").unwrap(), Json::Str("汉".into()));
    assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
    assert_eq!(parse("\"\\ud800\"").unwrap(), Json::Str("\u{fffd}".into()));
}

#[test]
fn floats_round_trip_within_reprint() {
    // f64 display is shortest-round-trip in Rust, so print → parse → print
    // is stable even where parse(print(x)) compares unequal bitwise (NaN is
    // written as null and excluded).
    // Magnitudes stay below 2^63: an integral float prints as a plain digit
    // string, which must stay inside the parser's i128 fast path.
    let mut rng = SplitMix64(0x5eed_0003);
    for _ in 0..500 {
        let x = (rng.next() as i64 as f64) / ((rng.below(1000) + 1) as f64);
        let doc = Json::Num(x);
        let printed = doc.to_string();
        let reparsed = parse(&printed).unwrap();
        assert_eq!(reparsed.to_string(), printed, "float {x}");
    }
}

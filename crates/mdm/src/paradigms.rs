//! The three relative-completeness paradigms of Section 2.3.
//!
//! 1. **Assessing the completeness of the data** — run RCDP before trusting
//!    a query answer ([`assess`]).
//! 2. **Guidance for what data should be collected** — when RCDP says no,
//!    check RCQP and, if a complete database exists, compute the tuples to
//!    collect ([`guide_collection`]).
//! 3. **A guideline for how master data should be expanded** — when RCQP
//!    says no database can ever be complete, the master data itself is the
//!    bottleneck ([`needs_master_expansion`]).

use ric_complete::extend::{complete_extension, CompletionOutcome};
use ric_complete::{
    rcdp, rcqp, BudgetLimit, Query, QueryVerdict, RcError, SearchBudget, SearchStats, Setting,
    Verdict,
};
use ric_data::Database;

/// Outcome of paradigm 1: can the answer to the query be trusted?
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Assessment {
    /// The database has complete information: trust `Q(D)`.
    Trustworthy,
    /// The answer may be missing tuples; the certificate shows one way the
    /// answer could still grow.
    Untrustworthy {
        /// A legal extension changing the answer.
        example_gap: ric_complete::CounterExample,
    },
    /// The decision procedure ran out of budget.
    Inconclusive {
        /// Which budget limit stopped the search, and how far it got.
        stats: SearchStats,
    },
}

/// Paradigm 1: assess whether `Q(D)` is complete relative to the setting.
pub fn assess(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
) -> Result<Assessment, RcError> {
    Ok(match rcdp(setting, query, db, budget)? {
        Verdict::Complete => Assessment::Trustworthy,
        Verdict::Incomplete(ce) => Assessment::Untrustworthy { example_gap: ce },
        Verdict::Unknown { stats } => Assessment::Inconclusive { stats },
    })
}

/// Outcome of paradigm 2.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Guidance {
    /// Nothing to do: the database is already complete.
    AlreadyComplete,
    /// Collect these tuples; the result is certified complete.
    Collect {
        /// Tuples to add, per relation.
        missing: Database,
    },
    /// No amount of data collection helps: no partially closed database is
    /// complete for this query (move to paradigm 3).
    ExpandMasterData,
    /// Budget exhausted before a decision.
    Inconclusive {
        /// Which budget limit stopped the search, and how far it got.
        stats: SearchStats,
    },
}

/// Paradigm 2: determine what to collect to make `db` complete for `query`.
pub fn guide_collection(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
) -> Result<Guidance, RcError> {
    // Is completion possible at all?
    match rcqp(setting, query, budget)? {
        QueryVerdict::Empty => return Ok(Guidance::ExpandMasterData),
        QueryVerdict::Unknown { stats } => {
            return Ok(Guidance::Inconclusive { stats });
        }
        QueryVerdict::Nonempty { .. } => {}
    }
    Ok(match complete_extension(setting, query, db, budget)? {
        CompletionOutcome::AlreadyComplete => Guidance::AlreadyComplete,
        CompletionOutcome::Completed { added, .. } => Guidance::Collect { missing: added },
        CompletionOutcome::Budget { .. } => Guidance::Inconclusive {
            stats: SearchStats::new(BudgetLimit::MaxWitnessTuples, "completion budget exhausted"),
        },
    })
}

/// Paradigm 3: does answering `query` completely require expanding the
/// master data? (`true` exactly when `RCQ(Q, D_m, V) = ∅`.)
pub fn needs_master_expansion(
    setting: &Setting,
    query: &Query,
    budget: &SearchBudget,
) -> Result<Option<bool>, RcError> {
    Ok(match rcqp(setting, query, budget)? {
        QueryVerdict::Empty => Some(true),
        QueryVerdict::Nonempty { .. } => Some(false),
        QueryVerdict::Unknown { .. } => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CrmScenario, ScenarioParams};
    use ric_data::{SplitMix64, Tuple, Value};

    fn scenario() -> CrmScenario {
        let mut rng = SplitMix64::seed_from_u64(9);
        CrmScenario::generate(
            ScenarioParams {
                n_domestic: 4,
                n_international: 2,
                n_employees: 3,
                n_support: 6,
                at_most_k: None,
                n_manage: 2,
            },
            &mut rng,
        )
    }

    #[test]
    fn q2_assessment_matches_coverage() {
        let sc = scenario();
        let budget = SearchBudget::default();
        // Saturate e0 against the master list: Q2 becomes trustworthy.
        let supt = sc.setting.schema.rel_id("Supt").unwrap();
        let cust = sc.setting.schema.rel_id("Cust").unwrap();
        let mut db = sc.db.clone();
        for c in 0..sc.params.n_domestic {
            db.insert(
                supt,
                Tuple::new([
                    Value::str("e0"),
                    Value::str("d0"),
                    Value::str(format!("c{c}")),
                ]),
            );
        }
        // Q2 over Supt only is still untrustworthy (international customers
        // are open world): assess must find a gap.
        match assess(&sc.setting, &sc.q2(), &db, &budget).unwrap() {
            Assessment::Untrustworthy { example_gap } => {
                // The gap adds a non-domestic support tuple.
                assert!(example_gap.delta.tuple_count() >= 1);
            }
            other => panic!("expected untrustworthy, got {other:?}"),
        }
        let _ = cust;
    }

    #[test]
    fn q2_needs_master_expansion() {
        // Q2 exposes cid values that φ0 only bounds for *domestic* customers
        // joined through Cust; Supt alone is open world, so no database is
        // complete: paradigm 3 fires.
        let sc = scenario();
        assert_eq!(
            needs_master_expansion(&sc.setting, &sc.q2(), &SearchBudget::default()).unwrap(),
            Some(true)
        );
    }

    #[test]
    fn guide_collection_detects_master_bottleneck() {
        let sc = scenario();
        match guide_collection(&sc.setting, &sc.q2(), &sc.db, &SearchBudget::default()).unwrap() {
            Guidance::ExpandMasterData => {}
            other => panic!("expected master-data guidance, got {other:?}"),
        }
    }

    #[test]
    fn ind_bounded_query_gets_collection_guidance() {
        // Rebuild the scenario with a direct IND: π_cid(Supt) ⊆ π_cid(DCust);
        // then "customers of e0" is completable and guidance lists the
        // missing master customers.
        use ric_constraints::{CcBody, ConstraintSet, ContainmentConstraint, Projection};
        let mut rng = SplitMix64::seed_from_u64(13);
        let sc = CrmScenario::generate(
            ScenarioParams {
                n_domestic: 3,
                n_international: 0,
                n_employees: 2,
                n_support: 0,
                at_most_k: None,
                n_manage: 0,
            },
            &mut rng,
        );
        let supt = sc.setting.schema.rel_id("Supt").unwrap();
        let dcust = sc.setting.master_schema.rel_id("DCust").unwrap();
        let setting = Setting::new(
            sc.setting.schema.clone(),
            sc.setting.master_schema.clone(),
            sc.setting.dm.clone(),
            ConstraintSet::new(vec![ContainmentConstraint::into_master(
                CcBody::Proj(Projection::new(supt, vec![2])),
                dcust,
                vec![0],
            )]),
        );
        let q = sc.q2();
        let db = Database::empty(&setting.schema);
        match guide_collection(&setting, &q, &db, &SearchBudget::default()).unwrap() {
            Guidance::Collect { missing } => {
                assert_eq!(missing.instance(supt).len(), 3, "one per master customer");
            }
            other => panic!("expected collection guidance, got {other:?}"),
        }
    }
}

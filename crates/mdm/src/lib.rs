//! # `ric-mdm` — master data management scenarios
//!
//! The paper motivates relative completeness through Master Data Management
//! (Section 1 and Section 2.3): an enterprise keeps a closed-world master
//! repository while its operational databases are only *partially* closed.
//! This crate packages the running CRM example — master relation
//! `DCust(cid, name, ac, phn)`, operational relations
//! `Cust(cid, name, cc, ac, phn)` and `Supt(eid, dept, cid)`, containment
//! constraints `φ0` (domestic customers bounded by `DCust`) and `φ1` (an
//! employee supports at most `k` customers) — together with the queries
//! `Q0, Q0′, Q1, Q2, Q3` of Examples 1.1 and 2.3, and the three
//! *relative-completeness paradigms* as an API:
//!
//! 1. **assess** the completeness of the data behind a query (RCDP);
//! 2. **guide collection**: which tuples must be gathered to make the
//!    database complete;
//! 3. **guide master expansion**: detect queries that no database can answer
//!    completely under the current master data (RCQP = ∅).

pub mod paradigms;
pub mod scenario;

pub use paradigms::{assess, guide_collection, needs_master_expansion, Assessment, Guidance};
pub use scenario::{CrmScenario, ScenarioParams};

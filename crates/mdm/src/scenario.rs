//! The CRM scenario of Examples 1.1 / 2.1 / 2.3.
//!
//! Relations:
//!
//! * master `DCust(cid, name, ac, phn)` — all *domestic* customers;
//! * `Cust(cid, name, cc, ac, phn)` — all customers, domestic (`cc = 1`) or
//!   international;
//! * `Supt(eid, dept, cid)` — employee `eid` in `dept` supports `cid`;
//! * master `Manage_m(eid1, eid2)` and operational `Manage(eid1, eid2)` —
//!   the reporting hierarchy (for query `Q3`).
//!
//! Constraints:
//!
//! * `φ0`: supported domestic customers are bounded by `DCust`
//!   (Example 2.1's CQ containment constraint);
//! * `φ1`: each employee supports at most `k` customers (a denial
//!   constraint, compiled to a CC via Proposition 2.1);
//! * `Manage ⊇ Manage_m` — the paper's "Manage contains all tuples in
//!   Manage_m", expressed as a *lower-bound* constraint (the Section 5
//!   extension implemented in `ric_constraints::LowerBound`); the generator
//!   also materialises the master edges so the database starts partially
//!   closed.

use ric_complete::{Query, Setting};
use ric_constraints::{classical, compile, CcBody, ConstraintSet, ContainmentConstraint};
use ric_data::{Database, RelationSchema, Schema, SplitMix64, Tuple, Value};
use ric_query::{parse_cq, parse_program};

/// Shape of a generated CRM scenario.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioParams {
    /// Domestic customers in the master list.
    pub n_domestic: usize,
    /// International customers (unconstrained by master data).
    pub n_international: usize,
    /// Employees.
    pub n_employees: usize,
    /// Support assignments to generate.
    pub n_support: usize,
    /// The `φ1` bound: an employee supports at most `k` customers
    /// (`None` disables `φ1`).
    pub at_most_k: Option<usize>,
    /// Management edges in the master hierarchy.
    pub n_manage: usize,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            n_domestic: 10,
            n_international: 4,
            n_employees: 4,
            n_support: 12,
            at_most_k: None,
            n_manage: 6,
        }
    }
}

/// Unwrap a result that can only fail if a compiled-in literal is wrong.
fn fixed<T, E: std::fmt::Display>(r: Result<T, E>, what: &str) -> T {
    r.unwrap_or_else(|e| unreachable!("{what} is a fixed literal: {e}"))
}

/// A fully built scenario: schemas, master data, constraints, and a
/// populated operational database.
#[derive(Clone, Debug)]
pub struct CrmScenario {
    /// Master data + constraints.
    pub setting: Setting,
    /// The operational database (always partially closed on construction).
    pub db: Database,
    /// The parameters it was built from.
    pub params: ScenarioParams,
}

impl CrmScenario {
    /// The database schema shared by all scenarios.
    pub fn schema() -> Schema {
        fixed(
            Schema::from_relations(vec![
                RelationSchema::infinite("Cust", &["cid", "name", "cc", "ac", "phn"]),
                RelationSchema::infinite("Supt", &["eid", "dept", "cid"]),
                RelationSchema::infinite("Manage", &["eid1", "eid2"]),
            ]),
            "the CRM schema",
        )
    }

    /// The master schema.
    pub fn master_schema() -> Schema {
        fixed(
            Schema::from_relations(vec![
                RelationSchema::infinite("DCust", &["cid", "name", "ac", "phn"]),
                RelationSchema::infinite("ManageM", &["eid1", "eid2"]),
            ]),
            "the CRM master schema",
        )
    }

    /// Build a randomized scenario. The generated database is partially
    /// closed by construction (assignments for the `e0` focus employee are
    /// drawn from master customers only).
    pub fn generate(params: ScenarioParams, rng: &mut SplitMix64) -> CrmScenario {
        let schema = Self::schema();
        let mschema = Self::master_schema();
        let cust = schema
            .rel_id("Cust")
            .unwrap_or_else(|| unreachable!("fixed schema relation"));
        let supt = schema
            .rel_id("Supt")
            .unwrap_or_else(|| unreachable!("fixed schema relation"));
        let manage = schema
            .rel_id("Manage")
            .unwrap_or_else(|| unreachable!("fixed schema relation"));
        let dcust = mschema
            .rel_id("DCust")
            .unwrap_or_else(|| unreachable!("fixed schema relation"));
        let manage_m = mschema
            .rel_id("ManageM")
            .unwrap_or_else(|| unreachable!("fixed schema relation"));

        // Master data.
        let mut dm = Database::empty(&mschema);
        for c in 0..params.n_domestic {
            dm.insert(
                dcust,
                Tuple::new([
                    Value::str(format!("c{c}")),
                    Value::str(format!("name{c}")),
                    Value::int(900 + (c % 10) as i64),
                    Value::int(5_550_000 + c as i64),
                ]),
            );
        }
        let mut edges = Vec::new();
        for e in 0..params.n_manage.min(params.n_employees.saturating_sub(1)) {
            // A management tree: e+1 reports to e.
            edges.push((e, e + 1));
            dm.insert(
                manage_m,
                Tuple::new([
                    Value::str(format!("e{e}")),
                    Value::str(format!("e{}", e + 1)),
                ]),
            );
        }

        // Constraints: φ0 — domestic customers of Cust⋈Supt bounded by DCust.
        let phi0 = fixed(
            parse_cq(
                &schema,
                "Q(C) :- Cust(C, N, Cc, A, P), Supt(E, D2, C), Cc = 1.",
            ),
            "φ0",
        );
        let mut v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
            CcBody::Cq(phi0),
            dcust,
            vec![0],
        )]);
        // φ1 — at most k customers per employee.
        if let Some(k) = params.at_most_k {
            let denial = classical::at_most_k_per_key(supt, 0, 2, k, 3);
            v.push(compile::denial_to_cc(&denial));
        }
        // Manage ⊇ Manage_m — the paper's "contains all tuples in Manage_m",
        // expressed with the Section 5 lower-bound extension.
        v.push_lower_bound(ric_constraints::LowerBound {
            master: ric_constraints::Projection::new(manage_m, vec![0, 1]),
            body: CcBody::Proj(ric_constraints::Projection::new(manage, vec![0, 1])),
        });
        let setting = Setting::new(schema.clone(), mschema, dm, v);

        // Operational database.
        let mut db = Database::empty(&schema);
        let domestic: Vec<String> = (0..params.n_domestic).map(|c| format!("c{c}")).collect();
        let international: Vec<String> = (0..params.n_international)
            .map(|c| format!("i{c}"))
            .collect();
        for (i, c) in domestic.iter().chain(international.iter()).enumerate() {
            let is_domestic = i < domestic.len();
            db.insert(
                cust,
                Tuple::new([
                    Value::str(c),
                    Value::str(format!("name-{c}")),
                    Value::int(if is_domestic { 1 } else { 44 }),
                    Value::int(900 + (i % 10) as i64),
                    Value::int(5_550_000 + i as i64),
                ]),
            );
        }
        let per_emp_cap = params.at_most_k.unwrap_or(usize::MAX);
        let mut per_emp = vec![std::collections::BTreeSet::new(); params.n_employees.max(1)];
        for _ in 0..params.n_support {
            let e = rng.random_range(0..params.n_employees.max(1));
            if per_emp[e].len() >= per_emp_cap {
                continue;
            }
            let c = if rng.random_bool(0.7) {
                rng.choose(&domestic).cloned()
            } else {
                rng.choose(&international).cloned()
            };
            let Some(c) = c else { continue };
            per_emp[e].insert(c.clone());
            db.insert(
                supt,
                Tuple::new([
                    Value::str(format!("e{e}")),
                    Value::str(format!("d{}", e % 2)),
                    Value::str(c),
                ]),
            );
        }
        // Manage starts as a copy of the master hierarchy (the paper's
        // "contains all tuples in Manage_m").
        for (a, b) in edges {
            db.insert(
                manage,
                Tuple::new([Value::str(format!("e{a}")), Value::str(format!("e{b}"))]),
            );
        }
        CrmScenario {
            setting,
            db,
            params,
        }
    }

    /// `Q0`: all customers based in area code 908 (Section 2.3 paradigm 1).
    pub fn q0(&self) -> Query {
        fixed(
            parse_cq(
                &self.setting.schema,
                "Q(C) :- Cust(C, N, Cc, A, P), A = 908.",
            ),
            "Q0",
        )
        .into()
    }

    /// `Q0′`: all customers, domestic or international (paradigm 3 — no
    /// relatively complete database exists under the current master data).
    pub fn q0_prime(&self) -> Query {
        fixed(
            parse_cq(&self.setting.schema, "Q(C) :- Cust(C, N, Cc, A, P)."),
            "Q0'",
        )
        .into()
    }

    /// `Q1`: the NJ customers (area code 908) supported by employee `e0`.
    pub fn q1(&self) -> Query {
        fixed(
            parse_cq(
                &self.setting.schema,
                "Q(C) :- Supt('e0', D, C), Cust(C, N, Cc, A, P), Cc = 1, A = 908.",
            ),
            "Q1",
        )
        .into()
    }

    /// `Q2`: all customers supported by employee `e0`.
    pub fn q2(&self) -> Query {
        fixed(
            parse_cq(&self.setting.schema, "Q(C) :- Supt('e0', D, C)."),
            "Q2",
        )
        .into()
    }

    /// `Q3` in FP: everyone above `e0` in the management hierarchy.
    pub fn q3_datalog(&self) -> Query {
        fixed(
            parse_program(
                &self.setting.schema,
                "Above(X, Y) :- Manage(X, Y). Above(X, Y) :- Manage(X, Z), Above(Z, Y). \
                 Boss(X) :- Above(X, Y), Y = 'e0'.",
                "Boss",
            ),
            "Q3",
        )
        .into()
    }

    /// `Q3` as a CQ limited to two management hops — the paper's point that
    /// completeness is relative to the query language.
    pub fn q3_cq_two_hops(&self) -> Query {
        fixed(
            parse_cq(
                &self.setting.schema,
                "Q(X) :- Manage(X, Z), Manage(Z, 'e0').",
            ),
            "Q3 (two hops)",
        )
        .into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_scenarios_are_partially_closed() {
        let mut rng = SplitMix64::seed_from_u64(1);
        for at_most_k in [None, Some(2)] {
            let params = ScenarioParams {
                at_most_k,
                ..ScenarioParams::default()
            };
            let sc = CrmScenario::generate(params, &mut rng);
            assert!(sc.setting.partially_closed(&sc.db).unwrap());
        }
    }

    #[test]
    fn queries_evaluate() {
        let mut rng = SplitMix64::seed_from_u64(2);
        let sc = CrmScenario::generate(ScenarioParams::default(), &mut rng);
        for q in [
            sc.q0(),
            sc.q0_prime(),
            sc.q1(),
            sc.q2(),
            sc.q3_datalog(),
            sc.q3_cq_two_hops(),
        ] {
            let _ = q.eval(&sc.db).unwrap();
        }
        // Q0' sees every customer.
        let all = sc.q0_prime().eval(&sc.db).unwrap();
        assert_eq!(all.len(), sc.params.n_domestic + sc.params.n_international);
    }

    #[test]
    fn at_most_k_caps_support_lists() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let params = ScenarioParams {
            at_most_k: Some(1),
            n_support: 30,
            ..Default::default()
        };
        let sc = CrmScenario::generate(params, &mut rng);
        let supt = sc.setting.schema.rel_id("Supt").unwrap();
        let mut per_emp: std::collections::BTreeMap<Value, usize> = Default::default();
        for t in sc.db.instance(supt).iter() {
            *per_emp.entry(t.get(0).clone()).or_default() += 1;
        }
        assert!(per_emp.values().all(|&n| n <= 1));
    }
}

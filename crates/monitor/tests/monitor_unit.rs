//! Unit behavior of the [`Monitor`]: verdict transitions, skip/fast-path
//! counters, memoization, plan staleness, escalation, and telemetry.
//!
//! The shared fixture is the smallest setting with a non-trivial verdict:
//! `R(a, b)` constrained by `Q(B) :- R(A, B) ⊆ M` against master `M(b) =
//! {1, 2}`, query `Q(B) :- R(A, B)`. The database is complete exactly when
//! its `R` projection on `b` already covers `{1, 2}` — every admissible
//! extension keeps `b ∈ {1, 2}` — and incomplete otherwise, with an
//! unconstrained spare relation `S(a)` for footprint-skip checks.

use ric_complete::{Engine, SearchBudget, Verdict};
use ric_constraints::{CcBody, ConstraintSet, ContainmentConstraint};
use ric_data::{Database, RelId, RelationSchema, Schema, Tuple, Value};
use ric_monitor::{Monitor, MonitorError, Op, SettingId, Status, Txn};
use ric_query::parse_cq;
use ric_telemetry::{Collector, Event, Probe};

fn schema() -> Schema {
    Schema::from_relations(vec![
        RelationSchema::infinite("R", &["a", "b"]),
        RelationSchema::infinite("S", &["a"]),
    ])
    .unwrap()
}

fn master_schema() -> Schema {
    Schema::from_relations(vec![RelationSchema::infinite("M", &["b"])]).unwrap()
}

fn r() -> RelId {
    schema().rel_id("R").unwrap()
}

fn s_rel() -> RelId {
    schema().rel_id("S").unwrap()
}

fn m() -> RelId {
    master_schema().rel_id("M").unwrap()
}

fn t(vs: &[i64]) -> Tuple {
    Tuple::new(vs.iter().map(|&v| Value::int(v)))
}

fn dm() -> Database {
    let mut dm = Database::empty(&master_schema());
    dm.insert(m(), t(&[1]));
    dm.insert(m(), t(&[2]));
    dm
}

fn constraints() -> ConstraintSet {
    // CQ body (not a bare projection) so the set is not IND-only and the
    // incremental delta checker actually compiles.
    let body = parse_cq(&schema(), "Q(B) :- R(A, B).").unwrap();
    ConstraintSet::new(vec![ContainmentConstraint::into_master(
        CcBody::Cq(body),
        m(),
        vec![0],
    )])
}

fn query() -> ric_complete::Query {
    ric_complete::Query::Cq(parse_cq(&schema(), "Q(B) :- R(A, B).").unwrap())
}

fn monitor(budget: SearchBudget) -> (Monitor, SettingId) {
    let mut mon = Monitor::new(schema(), master_schema(), dm(), budget).unwrap();
    let id = mon.register("crm", constraints(), query()).unwrap();
    (mon, id)
}

#[test]
fn empty_database_is_incomplete_and_covering_load_completes_it() {
    let (mut mon, id) = monitor(SearchBudget::default());
    assert_eq!(mon.verdict(id).unwrap().status(), Status::Incomplete);
    let changes = mon
        .apply(&Txn::new([
            Op::insert(r(), t(&[10, 1])),
            Op::insert(r(), t(&[20, 2])),
        ]))
        .unwrap();
    assert_eq!(changes.len(), 1);
    assert_eq!(changes[0].from, Status::Incomplete);
    assert_eq!(changes[0].to, Status::Complete);
    assert_eq!(changes[0].txn_seq, 1);
    assert_eq!(mon.verdict(id).unwrap().status(), Status::Complete);
}

#[test]
fn constraint_violation_flips_to_npc_and_repair_restores_via_memo() {
    let (mut mon, id) = monitor(SearchBudget::default());
    mon.apply(&Txn::new([
        Op::insert(r(), t(&[10, 1])),
        Op::insert(r(), t(&[20, 2])),
    ]))
    .unwrap();
    let digest_complete = mon.state_digest();
    let redecides = mon.counters().redecide;

    // b = 5 escapes the master data: (D, D_m) ⊭ V.
    let changes = mon
        .apply(&Txn::new([Op::insert(r(), t(&[30, 5]))]))
        .unwrap();
    assert_eq!(changes[0].to, Status::NotPartiallyClosed);
    assert_eq!(
        mon.verdict(id).unwrap().status(),
        Status::NotPartiallyClosed
    );

    // Repairing restores the exact prior state; the verdict comes from the
    // fingerprint memo, not a re-decision.
    let changes = mon
        .apply(&Txn::new([Op::delete(r(), t(&[30, 5]))]))
        .unwrap();
    assert_eq!(changes[0].to, Status::Complete);
    assert_eq!(mon.state_digest(), digest_complete);
    assert!(mon.counters().memo_hit >= 1);
    assert_eq!(mon.counters().redecide, redecides);
}

#[test]
fn disjoint_and_net_empty_txns_skip_in_constant_time() {
    let (mut mon, id) = monitor(SearchBudget::default());
    let before = mon.verdict(id).unwrap().clone();

    // S is outside the setting's footprint entirely.
    let changes = mon
        .apply(&Txn::new([Op::insert(s_rel(), t(&[7]))]))
        .unwrap();
    assert!(changes.is_empty());
    assert_eq!(mon.counters().skip, 1);

    // Insert-then-delete of the same tuple nets to nothing, even on R.
    let tup = t(&[10, 1]);
    let changes = mon
        .apply(&Txn::new([
            Op::insert(r(), tup.clone()),
            Op::delete(r(), tup),
        ]))
        .unwrap();
    assert!(changes.is_empty());
    assert_eq!(mon.counters().skip, 2);
    assert_eq!(mon.verdict(id).unwrap(), &before);
    assert_eq!(mon.txn_seq(), 2);
}

#[test]
fn txn_and_exact_inverse_restore_the_state_digest() {
    let (mut mon, _) = monitor(SearchBudget::default());
    mon.apply(&Txn::new([Op::insert(r(), t(&[10, 1]))]))
        .unwrap();
    let digest = mon.state_digest();
    let txn = Txn::new([
        Op::insert(r(), t(&[20, 2])),
        Op::delete(r(), t(&[10, 1])),
        Op::master_insert(m(), t(&[3])),
    ]);
    mon.apply(&txn).unwrap();
    assert_ne!(mon.state_digest(), digest);
    mon.apply(&txn.inverse()).unwrap();
    assert_eq!(mon.state_digest(), digest);
}

#[test]
fn complete_survives_insert_only_txns_without_redeciding() {
    let (mut mon, id) = monitor(SearchBudget::default());
    mon.apply(&Txn::new([
        Op::insert(r(), t(&[10, 1])),
        Op::insert(r(), t(&[20, 2])),
    ]))
    .unwrap();
    let redecides = mon.counters().redecide;
    let changes = mon
        .apply(&Txn::new([
            Op::insert(r(), t(&[30, 1])),
            Op::insert(r(), t(&[40, 2])),
        ]))
        .unwrap();
    assert!(changes.is_empty());
    assert_eq!(mon.verdict(id).unwrap().status(), Status::Complete);
    assert_eq!(mon.counters().fast_complete, 1);
    assert!(mon.counters().cc_delta >= 1, "pc checked incrementally");
    assert_eq!(mon.counters().redecide, redecides, "no search ran");
}

#[test]
fn cached_counterexample_is_recertified_before_any_search() {
    let (mut mon, id) = monitor(SearchBudget::default());
    mon.apply(&Txn::new([Op::insert(r(), t(&[10, 1]))]))
        .unwrap();
    assert_eq!(mon.verdict(id).unwrap().status(), Status::Incomplete);
    let redecides = mon.counters().redecide;
    let hits = mon.counters().recert_hit;
    let misses = mon.counters().recert_miss;

    // Still missing b = 2, and the current counterexample must add a b = 2
    // tuple (b = 1 is already answered), so it still certifies.
    let changes = mon
        .apply(&Txn::new([Op::insert(r(), t(&[20, 1]))]))
        .unwrap();
    assert!(changes.is_empty());
    assert_eq!(mon.counters().recert_hit, hits + 1);
    assert_eq!(mon.counters().redecide, redecides);

    // Covering b = 2 invalidates it: re-certify fails, one decision runs.
    let changes = mon
        .apply(&Txn::new([Op::insert(r(), t(&[30, 2]))]))
        .unwrap();
    assert_eq!(changes[0].from, Status::Incomplete);
    assert_eq!(changes[0].to, Status::Complete);
    assert_eq!(mon.counters().recert_miss, misses + 1);
    assert_eq!(mon.counters().redecide, redecides + 1);
}

#[test]
fn master_changes_reprepare_and_redecide() {
    let (mut mon, id) = monitor(SearchBudget::default());
    mon.apply(&Txn::new([
        Op::insert(r(), t(&[10, 1])),
        Op::insert(r(), t(&[20, 2])),
    ]))
    .unwrap();
    assert_eq!(mon.verdict(id).unwrap().status(), Status::Complete);

    // Growing the master data re-opens the frontier: b = 3 is now an
    // admissible extension the database does not cover.
    let changes = mon
        .apply(&Txn::new([Op::master_insert(m(), t(&[3]))]))
        .unwrap();
    assert_eq!(changes[0].from, Status::Complete);
    assert_eq!(changes[0].to, Status::Incomplete);
    assert_eq!(mon.counters().reprepare, 1);

    // And shrinking it back restores completeness.
    let changes = mon
        .apply(&Txn::new([Op::master_delete(m(), t(&[3]))]))
        .unwrap();
    assert_eq!(changes[0].to, Status::Complete);
    assert_eq!(mon.counters().reprepare, 2);
}

#[test]
fn starved_budget_reports_unknown_and_escalate_resolves_it() {
    let budget = SearchBudget {
        max_valuations: 1,
        max_candidates: 1,
        ..SearchBudget::default()
    };
    let (mut mon, id) = monitor(budget);
    mon.apply(&Txn::new([Op::insert(r(), t(&[10, 1]))]))
        .unwrap();
    assert_eq!(mon.verdict(id).unwrap().status(), Status::Unknown);

    let change = mon.escalate(id, &SearchBudget::default()).unwrap();
    let change = change.expect("escalation decides the starved setting");
    assert_eq!(change.from, Status::Unknown);
    assert_eq!(change.to, Status::Incomplete);
    assert_eq!(mon.verdict(id).unwrap().status(), Status::Incomplete);
    match mon.verdict(id).unwrap().verdict() {
        Some(Verdict::Incomplete(_)) => {}
        other => panic!("expected a counterexample, got {other:?}"),
    }
}

#[test]
fn escalate_on_npc_setting_is_a_no_op() {
    let (mut mon, id) = monitor(SearchBudget::default());
    mon.apply(&Txn::new([Op::insert(r(), t(&[30, 5]))]))
        .unwrap();
    assert_eq!(
        mon.verdict(id).unwrap().status(),
        Status::NotPartiallyClosed
    );
    assert!(mon
        .escalate(id, &SearchBudget::exhaustive())
        .unwrap()
        .is_none());
}

#[test]
fn planned_engine_detects_cardinality_drift_then_replans() {
    let budget = SearchBudget {
        engine: Engine::planned(1),
        ..SearchBudget::default()
    };
    let (mut mon, id) = monitor(budget);

    // Bulk load ≥2× past the empty-database row counts the plans were
    // costed on, ending Complete: the decision runs on the drifted plan
    // (degrade) and flags the setting for a replan.
    mon.apply(&Txn::new([
        Op::insert(r(), t(&[10, 1])),
        Op::insert(r(), t(&[20, 2])),
        Op::insert(r(), t(&[30, 1])),
        Op::insert(r(), t(&[40, 2])),
    ]))
    .unwrap();
    assert_eq!(mon.verdict(id).unwrap().status(), Status::Complete);
    assert_eq!(mon.counters().plan_stale, 1);
    assert_eq!(mon.counters().replan, 0);

    // The next decision (a delete breaks the insert-only fast path, at a
    // fresh fingerprint so the memo cannot answer) replans first — and the
    // refreshed plan returns the same verdict.
    let changes = mon
        .apply(&Txn::new([Op::delete(r(), t(&[30, 1]))]))
        .unwrap();
    assert!(changes.is_empty());
    assert_eq!(mon.verdict(id).unwrap().status(), Status::Complete);
    assert_eq!(mon.counters().replan, 1);
}

#[test]
fn invalid_ops_reject_the_whole_txn() {
    let (mut mon, id) = monitor(SearchBudget::default());
    mon.apply(&Txn::new([
        Op::insert(r(), t(&[10, 1])),
        Op::insert(r(), t(&[20, 2])),
    ]))
    .unwrap();
    let before = mon.state_digest();

    // Second op has the wrong arity: nothing applies, not even the first.
    let err = mon.apply(&Txn::new([
        Op::insert(r(), t(&[50, 1])),
        Op::insert(r(), t(&[9])),
    ]));
    assert!(matches!(err, Err(MonitorError::Data(_))), "{err:?}");
    assert_eq!(mon.state_digest(), before);
    assert_eq!(mon.txn_seq(), 1, "rejected txns take no sequence number");
    assert_eq!(mon.verdict(id).unwrap().status(), Status::Complete);

    let err = mon.verdict(SettingId(99));
    assert!(matches!(err, Err(MonitorError::UnknownSetting(_))));
}

#[test]
fn verdict_changes_and_counters_reach_the_probe() {
    let collector = Collector::new();
    let (mut mon, _) = monitor(SearchBudget::default());
    mon.apply_probed(
        &Txn::new([Op::insert(r(), t(&[10, 1])), Op::insert(r(), t(&[20, 2]))]),
        Probe::attached(&collector),
    )
    .unwrap();
    mon.apply_probed(
        &Txn::new([Op::insert(s_rel(), t(&[7]))]),
        Probe::attached(&collector),
    )
    .unwrap();
    let events = collector.events();
    assert!(events.iter().any(
        |e| matches!(e, Event::Note { name, detail } if *name == "monitor.verdict_change"
            && detail.contains("incomplete -> complete"))
    ));
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::Count { name, .. } if *name == "monitor.skip")));
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::Gauge { name, value } if *name == "monitor.settings.complete" && *value == 1)));
}

#[test]
fn multiple_settings_invalidate_independently() {
    let mut mon = Monitor::new(schema(), master_schema(), dm(), SearchBudget::default()).unwrap();
    let crm = mon.register("crm", constraints(), query()).unwrap();
    // Second setting watches S only: no constraints beyond an empty set
    // would leave it open-world (always incomplete); constrain S ⊆ M too.
    let s_body = parse_cq(&schema(), "Q(A) :- S(A).").unwrap();
    let s_v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
        CcBody::Cq(s_body),
        m(),
        vec![0],
    )]);
    let s_q = ric_complete::Query::Cq(parse_cq(&schema(), "Q(A) :- S(A).").unwrap());
    let watch_s = mon.register("watch-s", s_v, s_q).unwrap();

    // A txn on R touches only the first setting; the second skips.
    mon.apply(&Txn::new([
        Op::insert(r(), t(&[10, 1])),
        Op::insert(r(), t(&[20, 2])),
    ]))
    .unwrap();
    assert_eq!(mon.verdict(crm).unwrap().status(), Status::Complete);
    assert_eq!(mon.verdict(watch_s).unwrap().status(), Status::Incomplete);
    assert_eq!(mon.counters().skip, 1);

    // And vice versa.
    mon.apply(&Txn::new([
        Op::insert(s_rel(), t(&[1])),
        Op::insert(s_rel(), t(&[2])),
    ]))
    .unwrap();
    assert_eq!(mon.verdict(crm).unwrap().status(), Status::Complete);
    assert_eq!(mon.verdict(watch_s).unwrap().status(), Status::Complete);
    assert_eq!(mon.counters().skip, 2);
    assert_eq!(
        mon.verdicts()
            .iter()
            .map(|(_, v)| v.status())
            .collect::<Vec<_>>(),
        vec![Status::Complete, Status::Complete]
    );
}

//! Streaming incremental completeness monitoring.
//!
//! The paper's RCDP decision is one-shot: given `(D, D_m, V)` and a query
//! `Q`, decide whether `D` is complete for `Q` relative to the setting. A
//! live deployment faces the same question *continuously* — the database
//! takes inserts and deletes, the master data is occasionally corrected, and
//! every registered `(V, Q)` pair's verdict must stay current. A [`Monitor`]
//! keeps N registered settings' RCDP verdicts up to date across a
//! transactional stream ([`Txn`]) of [`Op`]s against `D` and `D_m`, spending
//! as little as possible per transaction:
//!
//! * **Footprint skip.** Each setting's relation footprint (the relations
//!   its query and constraint bodies read, via [`CcBody::rels`] and
//!   [`Query::rels`]) is computed at registration. A transaction whose net
//!   changes are disjoint from the footprint costs O(1) for that setting
//!   (`monitor.skip`).
//! * **Net-change coalescing.** Ops are coalesced per `(target, relation,
//!   tuple)` before any invalidation decision: an insert+delete pair of the
//!   same tuple cancels, so a transaction that nets to nothing skips every
//!   setting.
//! * **Incremental partial closure.** For insert-heavy transactions the
//!   `(D, D_m) |= V` check is maintained through the prepared delta checker
//!   ([`PreparedSetting::upper_satisfied_delta`]) over an additive
//!   [`Overlay`] instead of a full re-evaluation; deletes
//!   on monotone bodies ride the same check by downward closure.
//! * **Verdict fast paths.** A `Complete` verdict survives any insert-only
//!   transaction that keeps the database partially closed (a counterexample
//!   for the grown database would extend the original). An `Incomplete`
//!   verdict's cached counterexample is re-certified in polynomial time
//!   ([`ric_complete::rcdp::certify_counterexample`]) before any exponential
//!   re-decision is considered.
//! * **Fingerprint memo.** Decisions are memoized per setting under an
//!   incrementally maintained content fingerprint of `(D, D_m)` (an XOR of
//!   per-tuple hashes, updated in O(|Δ|) per transaction), so a transaction
//!   and its inverse (or a state the stream revisits) re-decides nothing
//!   (`monitor.memo.hit`) — and looking the memo up costs O(1), not a scan
//!   of the database.
//! * **Frontier reuse.** An `Unknown` verdict's unexplored search frontier
//!   is kept as a [`Checkpoint`] (PR 7's resumable form); a later decision
//!   on the same database (validated by [`rcdp_fingerprint`]) — in
//!   particular a budget escalation through [`Monitor::escalate`] — resumes
//!   it instead of restarting.
//! * **Plan staleness.** Under [`Engine::Planned`](ric_complete::Engine),
//!   observed cardinalities
//!   drifting ≥2× from the preparation's [`planned_rows`] raise
//!   `plan.stale`; the decision still runs (drifted plans are exact, only
//!   slower) and the setting replans before its *next* decision.
//!
//! Every fast path is exact: the incremental verdict equals a from-scratch
//! decision on the materialized database (`tests/monitor_differential.rs`
//! pins this across engines, worker counts, and batch sizes). Determinism
//! caveats — where "equals" means "same verdict kind and a certifying
//! witness" rather than bitwise equality — are catalogued in DESIGN §12.
//!
//! [`CcBody::rels`]: ric_constraints::CcBody::rels
//! [`Query::rels`]: ric_complete::Query::rels
//! [`planned_rows`]: PreparedSetting::planned_rows

use ric_complete::checkpoint::{rcdp_fingerprint, rcdp_resumed_guarded, Checkpoint};
use ric_complete::rcdp::certify_counterexample;
use ric_complete::{Guard, PreparedSetting, Query, RcError, SearchBudget, Setting, Verdict};
use ric_constraints::{CcBody, ConstraintSet};
use ric_data::{DataError, Database, Overlay, RelId, Schema, Tuple};
use ric_telemetry::Probe;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Handle to a registered setting, returned by [`Monitor::register`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct SettingId(pub usize);

impl fmt::Display for SettingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "setting#{}", self.0)
    }
}

/// Which database an [`Op`] mutates.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Target {
    /// The monitored database `D`.
    Db,
    /// The master data `D_m`. Master changes invalidate the prepared
    /// right-hand sides, so they force a re-preparation of every setting
    /// whose master footprint they touch.
    Master,
}

/// One tuple-level mutation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Op {
    /// Insert `tuple` into `rel`.
    Insert {
        /// The database mutated.
        target: Target,
        /// The relation mutated.
        rel: RelId,
        /// The tuple inserted.
        tuple: Tuple,
    },
    /// Delete `tuple` from `rel` (a no-op if absent).
    Delete {
        /// The database mutated.
        target: Target,
        /// The relation mutated.
        rel: RelId,
        /// The tuple deleted.
        tuple: Tuple,
    },
}

impl Op {
    /// Insert into `D`.
    pub fn insert(rel: RelId, tuple: Tuple) -> Self {
        Op::Insert {
            target: Target::Db,
            rel,
            tuple,
        }
    }

    /// Delete from `D`.
    pub fn delete(rel: RelId, tuple: Tuple) -> Self {
        Op::Delete {
            target: Target::Db,
            rel,
            tuple,
        }
    }

    /// Insert into `D_m`.
    pub fn master_insert(rel: RelId, tuple: Tuple) -> Self {
        Op::Insert {
            target: Target::Master,
            rel,
            tuple,
        }
    }

    /// Delete from `D_m`.
    pub fn master_delete(rel: RelId, tuple: Tuple) -> Self {
        Op::Delete {
            target: Target::Master,
            rel,
            tuple,
        }
    }

    /// The op with insert and delete swapped.
    pub fn inverse(&self) -> Op {
        match self {
            Op::Insert { target, rel, tuple } => Op::Delete {
                target: *target,
                rel: *rel,
                tuple: tuple.clone(),
            },
            Op::Delete { target, rel, tuple } => Op::Insert {
                target: *target,
                rel: *rel,
                tuple: tuple.clone(),
            },
        }
    }

    fn parts(&self) -> (Target, RelId, &Tuple, bool) {
        match self {
            Op::Insert { target, rel, tuple } => (*target, *rel, tuple, true),
            Op::Delete { target, rel, tuple } => (*target, *rel, tuple, false),
        }
    }
}

/// A transaction: a sequence of ops applied atomically. Per `(target,
/// relation, tuple)` the *last* op wins; invalidation and fast-path
/// decisions key on the resulting net change only.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Txn {
    /// The ops, in application order.
    pub ops: Vec<Op>,
}

impl Txn {
    /// Build a transaction.
    pub fn new(ops: impl IntoIterator<Item = Op>) -> Self {
        Txn {
            ops: ops.into_iter().collect(),
        }
    }

    /// The reversed transaction: ops in reverse order, inserts and deletes
    /// swapped. This is the exact inverse when every op was *effective*
    /// (inserted tuples were absent, deleted tuples present); an op that
    /// was a no-op forward becomes a real mutation backward.
    pub fn inverse(&self) -> Txn {
        Txn {
            ops: self.ops.iter().rev().map(Op::inverse).collect(),
        }
    }
}

/// A verdict's summary kind, used by [`VerdictChange`] transitions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    /// `Verdict::Complete`.
    Complete,
    /// `Verdict::Incomplete(_)`.
    Incomplete,
    /// `Verdict::Unknown { .. }`.
    Unknown,
    /// `(D, D_m) ⊭ V`: the decision problem takes no such input, so there
    /// is no verdict to report (a from-scratch decision would return
    /// [`RcError::NotPartiallyClosed`]).
    NotPartiallyClosed,
}

impl Status {
    /// Stable machine-readable name (telemetry notes and gauges).
    pub fn name(&self) -> &'static str {
        match self {
            Status::Complete => "complete",
            Status::Incomplete => "incomplete",
            Status::Unknown => "unknown",
            Status::NotPartiallyClosed => "not_partially_closed",
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The monitored state of one registered setting.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SettingVerdict {
    /// The database is partially closed and this is its current verdict.
    Decided(Verdict),
    /// `(D, D_m) ⊭ V` — completeness is undefined until the constraints
    /// hold again.
    NotPartiallyClosed,
}

impl SettingVerdict {
    /// The summary kind.
    pub fn status(&self) -> Status {
        match self {
            SettingVerdict::Decided(Verdict::Complete) => Status::Complete,
            SettingVerdict::Decided(Verdict::Incomplete(_)) => Status::Incomplete,
            SettingVerdict::Decided(Verdict::Unknown { .. }) => Status::Unknown,
            SettingVerdict::NotPartiallyClosed => Status::NotPartiallyClosed,
        }
    }

    /// The full verdict, when the database is partially closed.
    pub fn verdict(&self) -> Option<&Verdict> {
        match self {
            SettingVerdict::Decided(v) => Some(v),
            SettingVerdict::NotPartiallyClosed => None,
        }
    }
}

/// A verdict transition, emitted by [`Monitor::apply`] whenever a
/// transaction changes a setting's [`Status`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VerdictChange {
    /// The setting whose verdict changed.
    pub setting: SettingId,
    /// The status before the transaction.
    pub from: Status,
    /// The status after the transaction.
    pub to: Status,
    /// The transaction sequence number that caused the change
    /// ([`Monitor::txn_seq`] after the apply).
    pub txn_seq: u64,
}

impl fmt::Display for VerdictChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -> {} (txn {})",
            self.setting, self.from, self.to, self.txn_seq
        )
    }
}

/// Typed monitor failures.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MonitorError {
    /// An op failed validation (unknown relation, arity or domain
    /// violation). The transaction was not applied.
    Data(DataError),
    /// A decision failed structurally (malformed query/program, unsupported
    /// language combination).
    Rc(RcError),
    /// No setting with this id is registered.
    UnknownSetting(SettingId),
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorError::Data(e) => write!(f, "invalid op: {e}"),
            MonitorError::Rc(e) => write!(f, "decision failed: {e}"),
            MonitorError::UnknownSetting(id) => write!(f, "unknown {id}"),
        }
    }
}

impl std::error::Error for MonitorError {}

impl From<DataError> for MonitorError {
    fn from(e: DataError) -> Self {
        MonitorError::Data(e)
    }
}

impl From<RcError> for MonitorError {
    fn from(e: RcError) -> Self {
        MonitorError::Rc(e)
    }
}

/// Cumulative work/skip counters, exposed for tests and dashboards. Every
/// counter is also emitted through the telemetry probe under the
/// corresponding `monitor.*` (or `plan.stale`) name.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MonitorCounters {
    /// Settings skipped because a transaction's net changes were disjoint
    /// from their relation footprint (O(1) per skip).
    pub skip: u64,
    /// Full re-decisions executed.
    pub redecide: u64,
    /// Re-decisions avoided by the fingerprint memo.
    pub memo_hit: u64,
    /// `Incomplete` verdicts kept because the cached counterexample still
    /// certifies on the new state (polynomial, no search).
    pub recert_hit: u64,
    /// Cached counterexamples that no longer certify (followed by a full
    /// re-decision).
    pub recert_miss: u64,
    /// `Complete` verdicts kept through the insert-only monotonicity fast
    /// path.
    pub fast_complete: u64,
    /// Partial-closure checks answered incrementally via the prepared delta
    /// checker.
    pub cc_delta: u64,
    /// Partial-closure checks that fell back to full re-evaluation.
    pub cc_full: u64,
    /// Constraint bodies the delta checker skipped by relation-footprint
    /// disjointness (summed `DeltaCheck::skipped`).
    pub cc_delta_skipped: u64,
    /// Decisions that detected ≥2× cardinality drift from the plan's costed
    /// row counts (`plan.stale`).
    pub plan_stale: u64,
    /// Re-preparations triggered by a stale plan (the decision after the
    /// drift detection).
    pub replan: u64,
    /// Re-preparations triggered by master-data changes.
    pub reprepare: u64,
    /// Decisions resumed from a cached [`Checkpoint`] frontier.
    pub frontier_resume: u64,
    /// Memoized verdicts evicted by the per-setting LRU cap
    /// ([`Monitor::with_memo_cap`]).
    pub memo_evict: u64,
}

/// The D-side or Dm-side relation footprint of a setting.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Footprint {
    /// Reads (or may read, under active-domain semantics) every relation.
    All,
    /// Reads exactly these relations.
    Rels(BTreeSet<RelId>),
}

impl Footprint {
    fn empty() -> Self {
        Footprint::Rels(BTreeSet::new())
    }

    fn add(&mut self, rel: RelId) {
        if let Footprint::Rels(rels) = self {
            rels.insert(rel);
        }
    }

    fn widen(&mut self) {
        *self = Footprint::All;
    }

    fn extend(&mut self, more: impl IntoIterator<Item = RelId>) {
        if let Footprint::Rels(rels) = self {
            rels.extend(more);
        }
    }

    fn union(&self, other: &Footprint) -> Footprint {
        match (self, other) {
            (Footprint::All, _) | (_, Footprint::All) => Footprint::All,
            (Footprint::Rels(a), Footprint::Rels(b)) => {
                Footprint::Rels(a.iter().chain(b.iter()).copied().collect())
            }
        }
    }

    fn intersects(&self, touched: &BTreeSet<RelId>) -> bool {
        match self {
            Footprint::All => !touched.is_empty(),
            Footprint::Rels(rels) => !rels.is_disjoint(touched),
        }
    }

    fn contains(&self, rel: RelId) -> bool {
        match self {
            Footprint::All => true,
            Footprint::Rels(rels) => rels.contains(&rel),
        }
    }
}

/// How Phase A decided the partial-closure check should be finished.
enum PcPlan {
    /// The constraint footprint was untouched: partial closure is unchanged.
    Unchanged,
    /// The prepared delta checker already answered on `D ∪ Δ⁺`; by downward
    /// closure (monotone bodies) the answer covers the post-state too.
    /// `recheck_lower` asks Phase C to re-validate the lower bounds on the
    /// post-state (deletes may have broken them). `skipped` is the number of
    /// constraint bodies the checker skipped by footprint disjointness.
    DeltaOk { recheck_lower: bool, skipped: u64 },
    /// The delta check failed with no deletes in the constraint footprint:
    /// the post-state agrees with `D ∪ Δ⁺` on every constrained relation,
    /// so the violation is real.
    Violated { skipped: u64 },
    /// Recompute `(D, D_m) |= V` from scratch on the post-state.
    Recompute,
}

/// Per-setting action for one transaction, decided before mutation.
enum Action {
    /// Footprint disjoint from the net changes: O(1), verdict untouched.
    Skip,
    /// Touched: finish the partial-closure plan post-mutation, then run the
    /// verdict fast paths / re-decision. `reprepare` is set when master
    /// data in the setting's footprint changed (the prepared right-hand
    /// sides are stale).
    Touch {
        pc: PcPlan,
        reprepare: bool,
        insert_only: bool,
    },
}

/// Default cap on memoized decisions per setting (least-recently-used
/// evicted); override per monitor with [`Monitor::with_memo_cap`].
const MEMO_CAP: usize = 32;

struct Registered {
    name: String,
    prepared: PreparedSetting,
    query: Query,
    /// D-side relations the verdict depends on (query ∪ constraints).
    db_rels: Footprint,
    /// D-side relations the constraint set reads (partial closure).
    v_rels: Footprint,
    /// Dm-side relations the constraint set reads.
    master_rels: Footprint,
    /// No FO/FP upper-bound bodies (delta checking is exact).
    upper_monotone: bool,
    /// No FO/FP lower-bound bodies (insert-preserved).
    lower_monotone: bool,
    has_lower: bool,
    pc: bool,
    state: SettingVerdict,
    memo: BTreeMap<u64, SettingVerdict>,
    memo_order: VecDeque<u64>,
    frontier: Option<Checkpoint>,
    stale_plan: bool,
}

impl Registered {
    /// Memo lookup with LRU refresh: a hit moves `fp` to most-recent, so
    /// the fingerprint of the *current* state is always the last to be
    /// evicted — an immediately undone transaction always replays its
    /// pre-state verdict bitwise.
    fn memo_lookup(&mut self, fp: u64) -> Option<SettingVerdict> {
        let hit = self.memo.get(&fp).cloned();
        if hit.is_some() {
            self.memo_order.retain(|&f| f != fp);
            self.memo_order.push_back(fp);
        }
        hit
    }

    /// Memoize under the LRU cap; returns the number of evictions (0 or 1).
    fn memoize(&mut self, fp: u64, state: &SettingVerdict, cap: usize) -> u64 {
        // Wall-clock limited verdicts are not deterministic functions of the
        // decision inputs; caching them would let timing leak into replays.
        if let SettingVerdict::Decided(Verdict::Unknown { stats }) = state {
            if matches!(
                stats.limit,
                ric_complete::BudgetLimit::Deadline | ric_complete::BudgetLimit::Cancelled
            ) {
                return 0;
            }
        }
        if self.memo.insert(fp, state.clone()).is_some() {
            self.memo_order.retain(|&f| f != fp);
        }
        self.memo_order.push_back(fp);
        let mut evicted = 0;
        while self.memo_order.len() > cap {
            if let Some(old) = self.memo_order.pop_front() {
                self.memo.remove(&old);
                evicted += 1;
            }
        }
        evicted
    }
}

/// Net effect of one transaction: coalesced per-tuple changes, split by
/// target and direction, plus the touched relation sets.
struct NetChange {
    ins_db: Database,
    del_db: Database,
    ins_m: Database,
    del_m: Database,
    touched_db: BTreeSet<RelId>,
    touched_m: BTreeSet<RelId>,
    del_db_rels: BTreeSet<RelId>,
}

impl NetChange {
    fn is_empty(&self) -> bool {
        self.touched_db.is_empty() && self.touched_m.is_empty()
    }
}

/// A continuous RCDP monitor over one database/master pair.
///
/// Register settings with [`Monitor::register`], feed transactions through
/// [`Monitor::apply`], read verdicts with [`Monitor::verdicts`]. See the
/// crate docs for the invalidation and fast-path machinery.
pub struct Monitor {
    schema: Schema,
    master_schema: Schema,
    db: Database,
    dm: Database,
    budget: SearchBudget,
    memo_cap: usize,
    settings: Vec<Registered>,
    txn_seq: u64,
    counters: MonitorCounters,
    /// Incremental content fingerprints of `db`/`dm`: XOR of per-tuple
    /// hashes, maintained in O(|Δ|) per transaction. Their combination
    /// ([`memo_key`]) keys the per-setting verdict memos, so the memo
    /// lookup on the fast path never scans the database.
    db_fp: u64,
    dm_fp: u64,
}

impl Monitor {
    /// A monitor over an initially empty database. `budget` (including its
    /// engine) applies to every decision; keep it fixed so memoized verdicts
    /// stay valid — escalate individual settings with [`Monitor::escalate`].
    pub fn new(
        schema: Schema,
        master_schema: Schema,
        dm: Database,
        budget: SearchBudget,
    ) -> Result<Self, MonitorError> {
        if dm.len() != master_schema.len() {
            return Err(MonitorError::Data(DataError::SchemaMismatch));
        }
        let db = Database::empty(&schema);
        let dm_fp = content_fp(&dm);
        Ok(Monitor {
            schema,
            master_schema,
            db,
            dm,
            budget,
            memo_cap: MEMO_CAP,
            settings: Vec::new(),
            txn_seq: 0,
            counters: MonitorCounters::default(),
            db_fp: 0,
            dm_fp,
        })
    }

    /// The monitored database `D`.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The master data `D_m`.
    pub fn dm(&self) -> &Database {
        &self.dm
    }

    /// Transactions applied so far.
    pub fn txn_seq(&self) -> u64 {
        self.txn_seq
    }

    /// The per-decision budget (engine included).
    pub fn budget(&self) -> &SearchBudget {
        &self.budget
    }

    /// Override the per-setting verdict-memo capacity (default 32, minimum
    /// 1). Evictions are counted in [`MonitorCounters::memo_evict`] and
    /// emitted as `monitor.memo.evict`. Memoization is a pure cache: the
    /// capacity changes how often verdicts are replayed bitwise from memory
    /// versus re-decided, never the verdicts themselves.
    pub fn with_memo_cap(mut self, cap: usize) -> Self {
        self.memo_cap = cap.max(1);
        self
    }

    /// The per-setting verdict-memo capacity.
    pub fn memo_cap(&self) -> usize {
        self.memo_cap
    }

    /// Cumulative work/skip counters.
    pub fn counters(&self) -> &MonitorCounters {
        &self.counters
    }

    /// Current verdicts, in registration order.
    pub fn verdicts(&self) -> Vec<(SettingId, &SettingVerdict)> {
        self.settings
            .iter()
            .enumerate()
            .map(|(i, s)| (SettingId(i), &s.state))
            .collect()
    }

    /// The current verdict of one setting.
    pub fn verdict(&self, id: SettingId) -> Result<&SettingVerdict, MonitorError> {
        self.settings
            .get(id.0)
            .map(|s| &s.state)
            .ok_or(MonitorError::UnknownSetting(id))
    }

    /// The registered name of one setting.
    pub fn name(&self, id: SettingId) -> Result<&str, MonitorError> {
        self.settings
            .get(id.0)
            .map(|s| s.name.as_str())
            .ok_or(MonitorError::UnknownSetting(id))
    }

    /// FNV-1a digest of the monitor's *semantic* state: both databases and
    /// every setting's verdict, partial-closure flag, and plan-staleness
    /// flag. A transaction followed by its exact inverse restores this
    /// digest bitwise. The memo cache, cached frontiers, and counters are
    /// deliberately excluded — they record *how* the state was reached, not
    /// what it is (see DESIGN §12).
    pub fn state_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        // Hash tuple contents, not the databases' Debug form: the latter
        // includes derived state (lazily built indexes) that differs between
        // semantically equal databases.
        for db in [&self.db, &self.dm] {
            for (rel, inst) in db.iter() {
                eat(format!("r{}", rel.0).as_bytes());
                for t in inst.iter() {
                    eat(format!("{t:?}").as_bytes());
                }
            }
        }
        for s in &self.settings {
            eat(s.name.as_bytes());
            eat(format!("{:?}|{}|{}", s.state, s.pc, s.stale_plan).as_bytes());
        }
        h
    }

    /// Register a setting: the monitor's schemas and current master data
    /// plus this constraint set and query, compiled once (the prepared
    /// upper bounds, and under [`Engine::Planned`](ric_complete::Engine)
    /// the cost-based plans) and decided immediately.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        v: ConstraintSet,
        query: Query,
    ) -> Result<SettingId, MonitorError> {
        self.register_probed(name, v, query, Probe::disabled())
    }

    /// [`Monitor::register`] with a telemetry probe attached.
    pub fn register_probed(
        &mut self,
        name: impl Into<String>,
        v: ConstraintSet,
        query: Query,
        probe: Probe<'_>,
    ) -> Result<SettingId, MonitorError> {
        let (db_rels, v_rels, master_rels) = footprints(&v, &query);
        let upper_monotone = !v
            .ccs
            .iter()
            .any(|cc| matches!(cc.body, CcBody::Fo(_) | CcBody::Fp(_)));
        let lower_monotone = !v
            .lower_bounds
            .iter()
            .any(|lb| matches!(lb.body, CcBody::Fo(_) | CcBody::Fp(_)));
        let has_lower = !v.lower_bounds.is_empty();
        let setting = Setting::new(
            self.schema.clone(),
            self.master_schema.clone(),
            self.dm.clone(),
            v,
        );
        let prepared = PreparedSetting::prepare(setting, &self.db, self.budget.engine)?;
        let mut reg = Registered {
            name: name.into(),
            prepared,
            query,
            db_rels,
            v_rels,
            master_rels,
            upper_monotone,
            lower_monotone,
            has_lower,
            pc: false,
            state: SettingVerdict::NotPartiallyClosed,
            memo: BTreeMap::new(),
            memo_order: VecDeque::new(),
            frontier: None,
            stale_plan: false,
        };
        self.counters.cc_full += 1;
        reg.pc = reg
            .prepared
            .setting()
            .partially_closed(&self.db)
            .map_err(RcError::from)?;
        if reg.pc {
            let guard = Guard::new(&self.budget);
            let key = memo_key(self.db_fp, self.dm_fp);
            reg.state = decide(
                &mut reg,
                key,
                &self.db,
                &self.budget,
                self.memo_cap,
                &guard,
                probe,
                &mut self.counters,
            )?;
        }
        let id = SettingId(self.settings.len());
        probe.note("monitor.register", || {
            format!("{id} {:?} -> {}", self.settings.len(), reg.state.status())
        });
        self.settings.push(reg);
        self.emit_gauges(probe);
        Ok(id)
    }

    /// Apply a transaction and return the verdict transitions it caused.
    /// Ops are validated (relation, arity, attribute domains) before any
    /// mutation; a validation error leaves the monitor untouched.
    pub fn apply(&mut self, txn: &Txn) -> Result<Vec<VerdictChange>, MonitorError> {
        self.apply_probed(txn, Probe::disabled())
    }

    /// [`Monitor::apply`] with a telemetry probe attached.
    pub fn apply_probed(
        &mut self,
        txn: &Txn,
        probe: Probe<'_>,
    ) -> Result<Vec<VerdictChange>, MonitorError> {
        let guard = Guard::new(&self.budget);
        self.apply_guarded(txn, &guard, probe)
    }

    /// [`Monitor::apply`] under an external guard: the deadline/cancel
    /// state spans every re-decision the transaction triggers, giving the
    /// whole transaction one budget.
    pub fn apply_guarded(
        &mut self,
        txn: &Txn,
        guard: &Guard,
        probe: Probe<'_>,
    ) -> Result<Vec<VerdictChange>, MonitorError> {
        for op in &txn.ops {
            self.validate(op)?;
        }
        let net = self.net_change(txn);
        self.txn_seq += 1;
        let seq = self.txn_seq;
        if net.is_empty() {
            // The transaction nets to nothing: every setting skips.
            let n = self.settings.len() as u64;
            self.counters.skip += n;
            probe.count("monitor.skip", n);
            return Ok(Vec::new());
        }

        // Phase A (pre-mutation): classify every setting and run the
        // incremental partial-closure checks that need the pre-state.
        let mut plans = Vec::with_capacity(self.settings.len());
        for s in &self.settings {
            plans.push(self.phase_a(s, &net)?);
        }

        // Phase B: commit the net changes and fold them into the content
        // fingerprints (every net op toggles exactly one membership).
        apply_net(&mut self.db, &net.ins_db, &net.del_db);
        apply_net(&mut self.dm, &net.ins_m, &net.del_m);
        for delta in [&net.ins_db, &net.del_db] {
            for (rel, inst) in delta.iter() {
                for t in inst.iter() {
                    self.db_fp ^= tuple_fp(rel, t);
                }
            }
        }
        for delta in [&net.ins_m, &net.del_m] {
            for (rel, inst) in delta.iter() {
                for t in inst.iter() {
                    self.dm_fp ^= tuple_fp(rel, t);
                }
            }
        }

        // Phase C (post-mutation): finish partial closure, run the verdict
        // fast paths, re-decide where nothing cheaper is sound.
        let mut changes = Vec::new();
        for (i, plan) in plans.into_iter().enumerate() {
            let (action_skip, change) = self.phase_c(i, plan, seq, guard, probe)?;
            if action_skip {
                self.counters.skip += 1;
                probe.count("monitor.skip", 1);
            }
            if let Some(c) = change {
                probe.note("monitor.verdict_change", || c.to_string());
                changes.push(c);
            }
        }
        self.emit_gauges(probe);
        Ok(changes)
    }

    /// Re-decide one setting at a (typically larger) budget, resuming from
    /// its cached [`Checkpoint`] frontier when the database has not changed
    /// since the frontier was captured. The monitor's own budget is
    /// unchanged; a *decided* escalated verdict (Complete/Incomplete) is
    /// recorded and memoized — it is correct at any budget — while a still-
    /// `Unknown` verdict updates the frontier for the next installment.
    pub fn escalate(
        &mut self,
        id: SettingId,
        budget: &SearchBudget,
    ) -> Result<Option<VerdictChange>, MonitorError> {
        self.escalate_probed(id, budget, Probe::disabled())
    }

    /// [`Monitor::escalate`] with a telemetry probe attached.
    pub fn escalate_probed(
        &mut self,
        id: SettingId,
        budget: &SearchBudget,
        probe: Probe<'_>,
    ) -> Result<Option<VerdictChange>, MonitorError> {
        let seq = self.txn_seq;
        let key = memo_key(self.db_fp, self.dm_fp);
        let s = self
            .settings
            .get_mut(id.0)
            .ok_or(MonitorError::UnknownSetting(id))?;
        if !s.pc {
            return Ok(None);
        }
        let fp = rcdp_fingerprint(s.prepared.setting(), &s.query, &self.db);
        let prior = s.frontier.take().filter(|c| c.fingerprint == fp);
        if prior.is_some() {
            self.counters.frontier_resume += 1;
            probe.count("monitor.frontier.resume", 1);
        }
        let mut b = *budget;
        b.engine = self.budget.engine;
        let guard = Guard::new(&b);
        let res = rcdp_resumed_guarded(
            s.prepared.setting(),
            &s.query,
            &self.db,
            &b,
            &guard,
            probe,
            prior.as_ref(),
        )?;
        s.frontier = res.checkpoint;
        let new_state = SettingVerdict::Decided(res.verdict);
        // Only budget-independent verdicts enter the memo: an `Unknown` at
        // the escalated budget says nothing about the monitor's own budget.
        if matches!(
            new_state,
            SettingVerdict::Decided(Verdict::Complete | Verdict::Incomplete(_))
        ) {
            let evicted = s.memoize(key, &new_state, self.memo_cap);
            self.counters.memo_evict += evicted;
            probe.count("monitor.memo.evict", evicted);
        }
        let from = s.state.status();
        let to = new_state.status();
        s.state = new_state;
        let change = (from != to).then_some(VerdictChange {
            setting: id,
            from,
            to,
            txn_seq: seq,
        });
        if let Some(c) = change {
            probe.note("monitor.verdict_change", || c.to_string());
        }
        self.emit_gauges(probe);
        Ok(change)
    }

    fn validate(&self, op: &Op) -> Result<(), MonitorError> {
        let (target, rel, tuple, _) = op.parts();
        let schema = match target {
            Target::Db => &self.schema,
            Target::Master => &self.master_schema,
        };
        let rs = schema.relation(rel)?;
        if tuple.arity() != rs.arity() {
            return Err(MonitorError::Data(DataError::ArityMismatch {
                rel,
                expected: rs.arity(),
                got: tuple.arity(),
            }));
        }
        for (col, (v, a)) in tuple.iter().zip(rs.attributes.iter()).enumerate() {
            if !a.domain.admits(v) {
                return Err(MonitorError::Data(DataError::DomainViolation {
                    rel,
                    col,
                    value: v.to_string(),
                }));
            }
        }
        Ok(())
    }

    /// Coalesce the ops into net per-tuple changes against the current
    /// state (last op per `(target, rel, tuple)` wins; changes that restore
    /// the pre-state membership vanish).
    fn net_change(&self, txn: &Txn) -> NetChange {
        let mut finals: BTreeMap<(Target, RelId, &Tuple), bool> = BTreeMap::new();
        for op in &txn.ops {
            let (target, rel, tuple, present) = op.parts();
            finals.insert((target, rel, tuple), present);
        }
        let mut net = NetChange {
            ins_db: Database::empty(&self.schema),
            del_db: Database::empty(&self.schema),
            ins_m: Database::empty(&self.master_schema),
            del_m: Database::empty(&self.master_schema),
            touched_db: BTreeSet::new(),
            touched_m: BTreeSet::new(),
            del_db_rels: BTreeSet::new(),
        };
        for ((target, rel, tuple), post) in finals {
            let (db, touched) = match target {
                Target::Db => (&self.db, &mut net.touched_db),
                Target::Master => (&self.dm, &mut net.touched_m),
            };
            let pre = db.instance(rel).contains(tuple);
            if pre == post {
                continue;
            }
            touched.insert(rel);
            match (target, post) {
                (Target::Db, true) => {
                    net.ins_db.insert(rel, tuple.clone());
                }
                (Target::Db, false) => {
                    net.del_db.insert(rel, tuple.clone());
                    net.del_db_rels.insert(rel);
                }
                (Target::Master, true) => {
                    net.ins_m.insert(rel, tuple.clone());
                }
                (Target::Master, false) => {
                    net.del_m.insert(rel, tuple.clone());
                }
            }
        }
        net
    }

    fn phase_a(&self, s: &Registered, net: &NetChange) -> Result<Action, MonitorError> {
        let touches_db = s.db_rels.intersects(&net.touched_db);
        let touches_m = s.master_rels.intersects(&net.touched_m);
        if !touches_db && !touches_m {
            return Ok(Action::Skip);
        }
        let insert_only = !net.del_db_rels.iter().any(|&r| s.db_rels.contains(r)) && !touches_m;
        if touches_m {
            // The prepared right-hand sides cache `p(D_m)`; any master
            // change in the footprint invalidates them wholesale.
            return Ok(Action::Touch {
                pc: PcPlan::Recompute,
                reprepare: true,
                insert_only,
            });
        }
        let v_touched = s.v_rels.intersects(&net.touched_db);
        let del_in_v = net.del_db_rels.iter().any(|&r| s.v_rels.contains(r));
        let pc = if !v_touched {
            PcPlan::Unchanged
        } else if s.pc && s.upper_monotone {
            // Incremental check on the additive side: if the upper bounds
            // hold on D ∪ Δ⁺ they hold on (D ∖ Δ⁻) ∪ Δ⁺ by downward
            // closure of monotone bodies.
            let ov = Overlay::new(&self.db, &net.ins_db)?;
            match s.prepared.upper_satisfied_delta(&ov)? {
                Some(dc) => {
                    let skipped = dc.skipped as u64;
                    if dc.satisfied {
                        PcPlan::DeltaOk {
                            recheck_lower: s.has_lower && (del_in_v || !s.lower_monotone),
                            skipped,
                        }
                    } else if del_in_v {
                        // The violation on D ∪ Δ⁺ may involve tuples the
                        // transaction also deletes: inconclusive.
                        PcPlan::Recompute
                    } else {
                        PcPlan::Violated { skipped }
                    }
                }
                // No preparation compiled (IND-only set, naive engine).
                None => PcPlan::Recompute,
            }
        } else {
            PcPlan::Recompute
        };
        Ok(Action::Touch {
            pc,
            reprepare: false,
            insert_only,
        })
    }

    fn phase_c(
        &mut self,
        idx: usize,
        action: Action,
        seq: u64,
        guard: &Guard,
        probe: Probe<'_>,
    ) -> Result<(bool, Option<VerdictChange>), MonitorError> {
        let Action::Touch {
            pc,
            reprepare,
            insert_only,
        } = action
        else {
            return Ok((true, None));
        };
        let s = &mut self.settings[idx];
        if reprepare {
            let setting = Setting::new(
                self.schema.clone(),
                self.master_schema.clone(),
                self.dm.clone(),
                s.prepared.setting().v.clone(),
            );
            s.prepared = PreparedSetting::prepare(setting, &self.db, self.budget.engine)?;
            self.counters.reprepare += 1;
            probe.count("monitor.reprepare", 1);
        }
        let pc_post = match pc {
            PcPlan::Unchanged => s.pc,
            PcPlan::Violated { skipped } => {
                self.counters.cc_delta += 1;
                self.counters.cc_delta_skipped += skipped;
                probe.count("monitor.cc.delta", 1);
                false
            }
            PcPlan::DeltaOk {
                recheck_lower,
                skipped,
            } => {
                self.counters.cc_delta += 1;
                self.counters.cc_delta_skipped += skipped;
                probe.count("monitor.cc.delta", 1);
                if recheck_lower {
                    let setting = s.prepared.setting();
                    let mut ok = true;
                    for lb in &setting.v.lower_bounds {
                        if !lb.satisfied(&self.db, &self.dm).map_err(RcError::from)? {
                            ok = false;
                            break;
                        }
                    }
                    ok
                } else {
                    true
                }
            }
            PcPlan::Recompute => {
                self.counters.cc_full += 1;
                probe.count("monitor.cc.full", 1);
                s.prepared
                    .setting()
                    .partially_closed(&self.db)
                    .map_err(RcError::from)?
            }
        };
        let from = s.state.status();
        let new_state = if !pc_post {
            SettingVerdict::NotPartiallyClosed
        } else {
            // Memo first, fast paths second: a revisited state (e.g. a txn
            // undone by its inverse) reproduces its recorded verdict
            // *bitwise*, where the fast paths would only reproduce it up to
            // witness choice. The key is the incrementally maintained
            // content fingerprint, so this lookup is O(1).
            let key = memo_key(self.db_fp, self.dm_fp);
            if let Some(hit) = s.memo_lookup(key) {
                self.counters.memo_hit += 1;
                probe.count("monitor.memo.hit", 1);
                hit
            } else {
                let fast = match (&s.state, insert_only) {
                    // Monotonicity: a counterexample for the grown database
                    // would extend the original, so Complete survives any
                    // insert-only transaction that stays partially closed.
                    (SettingVerdict::Decided(Verdict::Complete), true) => {
                        self.counters.fast_complete += 1;
                        probe.count("monitor.fast_complete", 1);
                        Some(SettingVerdict::Decided(Verdict::Complete))
                    }
                    (SettingVerdict::Decided(Verdict::Incomplete(ce)), _) => {
                        // Re-certify the cached counterexample (polynomial)
                        // before considering an exponential re-decision.
                        let ce = ce.clone();
                        if certify_counterexample(s.prepared.setting(), &s.query, &self.db, &ce)
                            .unwrap_or(false)
                        {
                            self.counters.recert_hit += 1;
                            probe.count("monitor.recert.hit", 1);
                            Some(SettingVerdict::Decided(Verdict::Incomplete(ce)))
                        } else {
                            self.counters.recert_miss += 1;
                            probe.count("monitor.recert.miss", 1);
                            None
                        }
                    }
                    _ => None,
                };
                match fast {
                    // Fast-path outcomes are memoized too, so a later
                    // revisit of this fingerprint replays them exactly.
                    Some(state) => {
                        let evicted = s.memoize(key, &state, self.memo_cap);
                        self.counters.memo_evict += evicted;
                        probe.count("monitor.memo.evict", evicted);
                        state
                    }
                    None => decide(
                        s,
                        key,
                        &self.db,
                        &self.budget,
                        self.memo_cap,
                        guard,
                        probe,
                        &mut self.counters,
                    )?,
                }
            }
        };
        s.pc = pc_post;
        let to = new_state.status();
        s.state = new_state;
        let change = (from != to).then_some(VerdictChange {
            setting: SettingId(idx),
            from,
            to,
            txn_seq: seq,
        });
        Ok((false, change))
    }

    fn emit_gauges(&self, probe: Probe<'_>) {
        if !probe.enabled() {
            return;
        }
        let mut counts = [0u64; 4];
        for s in &self.settings {
            let i = match s.state.status() {
                Status::Complete => 0,
                Status::Incomplete => 1,
                Status::Unknown => 2,
                Status::NotPartiallyClosed => 3,
            };
            counts[i] += 1;
        }
        probe.gauge("monitor.settings.complete", counts[0]);
        probe.gauge("monitor.settings.incomplete", counts[1]);
        probe.gauge("monitor.settings.unknown", counts[2]);
        probe.gauge("monitor.settings.npc", counts[3]);
        probe.gauge("monitor.txn_seq", self.txn_seq);
    }
}

/// FNV-1a hash of one tuple's membership in one relation. Content
/// fingerprints XOR these per present tuple, so inserting and deleting a
/// tuple toggle the same bit pattern and the fingerprint is a pure function
/// of the database's contents (order- and history-independent).
fn tuple_fp(rel: RelId, t: &Tuple) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("r{}|{t:?}", rel.0).bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The content fingerprint of a whole database (used once at construction;
/// transactions maintain it incrementally).
fn content_fp(db: &Database) -> u64 {
    let mut fp = 0u64;
    for (rel, inst) in db.iter() {
        for t in inst.iter() {
            fp ^= tuple_fp(rel, t);
        }
    }
    fp
}

/// The memo key for the current `(D, D_m)` pair. The rotation keeps a tuple
/// moving between the database and the master data from cancelling out.
fn memo_key(db_fp: u64, dm_fp: u64) -> u64 {
    db_fp ^ dm_fp.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15
}

/// Commit net inserts and deletes into one database.
fn apply_net(db: &mut Database, ins: &Database, del: &Database) {
    for (rel, inst) in del.iter() {
        for t in inst.iter() {
            db.instance_mut(rel).remove(t);
        }
    }
    for (rel, inst) in ins.iter() {
        for t in inst.iter() {
            db.insert(rel, t.clone());
        }
    }
}

/// Full re-decision pipeline for one setting on the current database (the
/// caller already computed the memo `key` and found no entry under it):
/// plan-staleness replan, frontier resume, decide, memoize.
#[allow(clippy::too_many_arguments)]
fn decide(
    s: &mut Registered,
    key: u64,
    db: &Database,
    budget: &SearchBudget,
    memo_cap: usize,
    guard: &Guard,
    probe: Probe<'_>,
    counters: &mut MonitorCounters,
) -> Result<SettingVerdict, MonitorError> {
    if budget.engine.is_planned() {
        if s.stale_plan {
            // The previous decision flagged ≥2× drift; replan now, before
            // deciding (recompute-or-degrade: degrade then, recompute now).
            let setting = s.prepared.setting().clone();
            s.prepared = PreparedSetting::prepare(setting, db, budget.engine)?;
            s.stale_plan = false;
            counters.replan += 1;
            probe.count("monitor.replan", 1);
            probe.note("monitor.replan", || s.name.clone());
        } else if plan_drifted(&s.prepared, db) {
            // Decide with the drifted plan (exact, possibly slower) and
            // replan before the next decision.
            s.stale_plan = true;
            counters.plan_stale += 1;
            probe.count("plan.stale", 1);
        }
    }
    counters.redecide += 1;
    probe.count("monitor.redecide", 1);
    let continuing_unknown = matches!(s.state, SettingVerdict::Decided(Verdict::Unknown { .. }));
    let verdict = if continuing_unknown {
        // Continue an interrupted search: resume its committed frontier if
        // the database still matches, restart otherwise. The checkpoint's
        // own [`rcdp_fingerprint`] validates the match (computing it is
        // O(|D|), negligible against the decision this path is about to
        // run). The resumed driver is verdict-identical to an uninterrupted
        // run (DESIGN §10).
        let fp = rcdp_fingerprint(s.prepared.setting(), &s.query, db);
        let prior = s.frontier.take().filter(|c| c.fingerprint == fp);
        if prior.is_some() {
            counters.frontier_resume += 1;
            probe.count("monitor.frontier.resume", 1);
        }
        let res = rcdp_resumed_guarded(
            s.prepared.setting(),
            &s.query,
            db,
            budget,
            guard,
            probe,
            prior.as_ref(),
        )?;
        s.frontier = res.checkpoint;
        res.verdict
    } else {
        match s.prepared.rcdp_guarded(&s.query, db, budget, guard, probe) {
            Ok(v) => v,
            // Defensive: the monitor's own partial-closure tracking said
            // closed; trust the decider's full check if it disagrees.
            Err(RcError::NotPartiallyClosed) => return Ok(SettingVerdict::NotPartiallyClosed),
            Err(e) => return Err(MonitorError::Rc(e)),
        }
    };
    let state = SettingVerdict::Decided(verdict);
    let evicted = s.memoize(key, &state, memo_cap);
    counters.memo_evict += evicted;
    probe.count("monitor.memo.evict", evicted);
    Ok(state)
}

/// Has any planned relation's live cardinality drifted ≥2× (in either
/// direction) from the row count its plan was costed on?
fn plan_drifted(prepared: &PreparedSetting, db: &Database) -> bool {
    prepared.planned_rows().iter().any(|&(rel, planned)| {
        let observed = db.instance(rel).len().max(1);
        let planned = planned.max(1);
        observed >= 2 * planned || planned >= 2 * observed
    })
}

/// `(db_rels, v_rels, master_rels)` for a setting. FO/FP bodies and queries
/// widen their side to [`Footprint::All`]: under active-domain semantics
/// their answers may shift when *any* relation changes.
fn footprints(v: &ConstraintSet, query: &Query) -> (Footprint, Footprint, Footprint) {
    let mut v_rels = Footprint::empty();
    let mut master_rels = Footprint::empty();
    for cc in &v.ccs {
        match cc.body {
            CcBody::Fo(_) | CcBody::Fp(_) => v_rels.widen(),
            _ => v_rels.extend(cc.body.rels()),
        }
        if let ric_constraints::CcRhs::Master(p) = &cc.rhs {
            master_rels.add(p.rel);
        }
    }
    for lb in &v.lower_bounds {
        match lb.body {
            CcBody::Fo(_) | CcBody::Fp(_) => v_rels.widen(),
            _ => v_rels.extend(lb.body.rels()),
        }
        master_rels.add(lb.master.rel);
    }
    let q_rels = match query.rels() {
        Some(rels) => Footprint::Rels(rels),
        None => Footprint::All,
    };
    let db_rels = v_rels.union(&q_rels);
    (db_rels, v_rels, master_rels)
}

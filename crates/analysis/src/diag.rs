//! Typed diagnostics with stable codes.
//!
//! Every analysis finding is a [`Diagnostic`]: a stable machine-readable
//! [`Code`] (`RIC001`, `RIC002`, …), a [`Severity`], a [`Pointer`] to the
//! offending query / constraint / rule, and a human-readable message. The
//! codes are part of the crate's public contract — tools may match on them —
//! so a code is never reused for a different finding (see DESIGN.md §9 for
//! the full table).

use ric_telemetry::Json;
use std::fmt;

/// How bad a finding is.
///
/// `Error` findings describe settings that would crash, loop, or silently
/// mis-answer inside the deciders; the analysis-gated entry points reject
/// them. `Warn` findings are legal but almost certainly unintended (an
/// unsatisfiable query body, a constraint that can never fire). `Info`
/// findings are observations (a certified fragment downgrade, a removable
/// duplicate atom).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// An observation; no action needed.
    Info,
    /// Legal but suspicious; the decision still runs.
    Warn,
    /// The setting is rejected by the gated entry points.
    Error,
}

impl Severity {
    /// Stable lower-case name (`"info"` / `"warn"` / `"error"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// What a diagnostic is about.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pointer {
    /// The query under analysis.
    Query,
    /// Disjunct `i` of the query (UCQ / ∃FO⁺ expansion).
    QueryDisjunct(usize),
    /// Rule `i` of the query's FP program.
    QueryRule(usize),
    /// Upper-bound containment constraint `i` of the setting.
    Constraint(usize),
    /// Lower-bound constraint `i` of the setting.
    LowerBound(usize),
    /// The setting as a whole.
    Setting,
}

impl fmt::Display for Pointer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pointer::Query => write!(f, "query"),
            Pointer::QueryDisjunct(i) => write!(f, "query disjunct {i}"),
            Pointer::QueryRule(i) => write!(f, "query rule {i}"),
            Pointer::Constraint(i) => write!(f, "constraint {i}"),
            Pointer::LowerBound(i) => write!(f, "lower bound {i}"),
            Pointer::Setting => write!(f, "setting"),
        }
    }
}

impl Pointer {
    fn to_json(self) -> Json {
        Json::from(self.to_string())
    }
}

/// Stable diagnostic codes. The numeric identifier (`RIC001`…) never changes
/// meaning across releases; new findings get new codes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Code {
    /// `RIC001` — an FO variable is used where the evaluator would find it
    /// unbound (not in the head, not under a quantifier): unsafe negation /
    /// range-restriction failure.
    FoUnsafeVariable,
    /// `RIC002` — FO formula nesting exceeds the evaluator's depth cap.
    FoTooDeep,
    /// `RIC003` — a query atom names a relation that is not in the schema.
    QueryUnknownRelation,
    /// `RIC004` — a query atom's argument count disagrees with the schema.
    QueryArityMismatch,
    /// `RIC005` — the FP program fails validation (range restriction, IDB
    /// arity, body length).
    FpInvalid,
    /// `RIC006` — an FP rule can never contribute to the output predicate.
    FpUnreachableRule,
    /// `RIC007` — the FP program is negation-free, hence trivially
    /// stratified; the inflationary and least fixpoints coincide.
    FpTriviallyStratified,
    /// `RIC008` — contradictory equalities (`x = a ∧ x = b` with `a ≠ b`)
    /// make a CQ body unsatisfiable.
    CqContradictoryEq,
    /// `RIC009` — a `≠` atom contradicts the equalities (`t ≠ t` after
    /// unification): the CQ body is unsatisfiable.
    CqUnsatisfiableNeq,
    /// `RIC010` — a `≠` atom compares distinct constants: always true,
    /// removable.
    CqTautologicalNeq,
    /// `RIC011` — a duplicate relation atom in a CQ body: removable.
    CqDuplicateAtom,
    /// `RIC020` — a CC body's output arity disagrees with its right-hand
    /// side projection.
    CcArityMismatch,
    /// `RIC021` — a CC projection (either side) selects a column that does
    /// not exist: `p` is not a projection of the named relation.
    CcBadProjection,
    /// `RIC022` — a CC references a relation missing from the corresponding
    /// schema.
    CcUnknownRelation,
    /// `RIC023` — a CC body is statically unsatisfiable: the constraint is
    /// trivially satisfied and never restricts anything.
    CcTriviallySatisfied,
    /// `RIC024` — `π(R) ⊆ ∅` forces `R` to be empty in every partially
    /// closed database.
    CcForcesEmpty,
    /// `RIC030` — a certified fragment downgrade: the object is written in a
    /// larger language than it needs.
    Downgrade,
    /// `RIC031` — a candidate rewrite failed differential certification and
    /// was discarded (the declared fragment is kept).
    UncertifiedRewrite,
    /// `RIC040` — a containment constraint is implied by the rest of `V`
    /// (relative to the fixed master data) and can be dropped from the
    /// per-candidate recheck loop without changing any decision.
    ImpliedCc,
    /// `RIC041` — the query body is statically unsatisfiable under `V`:
    /// no legal extension can ever produce an answer.
    UnsatUnderV,
    /// `RIC042` — the decision is statically `Complete` (certified): either
    /// every query disjunct dies under `V`, or a cover fact applies.
    StaticallyComplete,
    /// `RIC043` — a static conclusion of the symbolic reasoner failed
    /// differential certification and was discarded.
    UncertifiedStatic,
    /// `RIC044` — the symbolic reasoner degraded on a fragment outside its
    /// reach (FO/FP bodies, inequalities, oversized canonical databases).
    ReasonDegraded,
}

impl Code {
    /// The stable identifier, e.g. `"RIC001"`.
    pub fn id(self) -> &'static str {
        match self {
            Code::FoUnsafeVariable => "RIC001",
            Code::FoTooDeep => "RIC002",
            Code::QueryUnknownRelation => "RIC003",
            Code::QueryArityMismatch => "RIC004",
            Code::FpInvalid => "RIC005",
            Code::FpUnreachableRule => "RIC006",
            Code::FpTriviallyStratified => "RIC007",
            Code::CqContradictoryEq => "RIC008",
            Code::CqUnsatisfiableNeq => "RIC009",
            Code::CqTautologicalNeq => "RIC010",
            Code::CqDuplicateAtom => "RIC011",
            Code::CcArityMismatch => "RIC020",
            Code::CcBadProjection => "RIC021",
            Code::CcUnknownRelation => "RIC022",
            Code::CcTriviallySatisfied => "RIC023",
            Code::CcForcesEmpty => "RIC024",
            Code::Downgrade => "RIC030",
            Code::UncertifiedRewrite => "RIC031",
            Code::ImpliedCc => "RIC040",
            Code::UnsatUnderV => "RIC041",
            Code::StaticallyComplete => "RIC042",
            Code::UncertifiedStatic => "RIC043",
            Code::ReasonDegraded => "RIC044",
        }
    }

    /// The severity this code always carries.
    pub fn severity(self) -> Severity {
        match self {
            Code::FoUnsafeVariable
            | Code::FoTooDeep
            | Code::QueryUnknownRelation
            | Code::QueryArityMismatch
            | Code::FpInvalid
            | Code::CcArityMismatch
            | Code::CcBadProjection
            | Code::CcUnknownRelation => Severity::Error,
            Code::FpUnreachableRule
            | Code::CqContradictoryEq
            | Code::CqUnsatisfiableNeq
            | Code::CcTriviallySatisfied
            | Code::CcForcesEmpty
            | Code::UncertifiedRewrite
            | Code::UnsatUnderV
            | Code::UncertifiedStatic => Severity::Warn,
            Code::FpTriviallyStratified
            | Code::CqTautologicalNeq
            | Code::CqDuplicateAtom
            | Code::Downgrade
            | Code::ImpliedCc
            | Code::StaticallyComplete
            | Code::ReasonDegraded => Severity::Info,
        }
    }
}

/// One analysis finding.
#[derive(Clone, PartialEq, Debug)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Severity (always [`Code::severity`]).
    pub severity: Severity,
    /// What the finding is about.
    pub pointer: Pointer,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic with the code's canonical severity.
    pub fn new(code: Code, pointer: Pointer, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            pointer,
            message: message.into(),
        }
    }

    /// Serialize through the telemetry JSON model, e.g. for a
    /// [`ric_telemetry::JsonlSink`]-adjacent artifact.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("code", Json::from(self.code.id())),
            ("severity", Json::from(self.severity.as_str())),
            ("pointer", self.pointer.to_json()),
            ("message", Json::from(self.message.clone())),
        ])
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.code.id(),
            self.severity.as_str(),
            self.pointer,
            self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let all = [
            Code::FoUnsafeVariable,
            Code::FoTooDeep,
            Code::QueryUnknownRelation,
            Code::QueryArityMismatch,
            Code::FpInvalid,
            Code::FpUnreachableRule,
            Code::FpTriviallyStratified,
            Code::CqContradictoryEq,
            Code::CqUnsatisfiableNeq,
            Code::CqTautologicalNeq,
            Code::CqDuplicateAtom,
            Code::CcArityMismatch,
            Code::CcBadProjection,
            Code::CcUnknownRelation,
            Code::CcTriviallySatisfied,
            Code::CcForcesEmpty,
            Code::Downgrade,
            Code::UncertifiedRewrite,
            Code::ImpliedCc,
            Code::UnsatUnderV,
            Code::StaticallyComplete,
            Code::UncertifiedStatic,
            Code::ReasonDegraded,
        ];
        let ids: std::collections::BTreeSet<_> = all.iter().map(|c| c.id()).collect();
        assert_eq!(ids.len(), all.len(), "duplicate diagnostic code");
        for c in all {
            assert!(c.id().starts_with("RIC"));
        }
    }

    #[test]
    fn display_and_json_carry_the_code() {
        let d = Diagnostic::new(Code::FoUnsafeVariable, Pointer::Query, "x is unbound");
        assert!(d.to_string().contains("RIC001"));
        assert_eq!(
            d.to_json().get("code").and_then(Json::as_str),
            Some("RIC001")
        );
        assert_eq!(
            d.to_json().get("severity").and_then(Json::as_str),
            Some("error")
        );
    }

    #[test]
    fn severity_orders_info_warn_error() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }
}

//! `ric-analysis` — static analysis in front of the RCDP/RCQP deciders.
//!
//! The decision problems of the paper are parameterised by the language pair
//! `(L_Q, L_C)`, and the complexity cell (Tables I & II) is determined by the
//! *smallest* fragment the query and constraints actually inhabit — not the
//! syntax they happen to be written in. This crate analyzes a full setting
//! `(Q, V, schema)` *before* any decision runs and produces an
//! [`AnalysisReport`] containing:
//!
//! - typed [`Diagnostic`]s with stable codes (`RIC001`…), a severity
//!   ([`Severity::Error`] / `Warn` / `Info`), and a [`Pointer`] to the
//!   offending query, constraint, or rule;
//! - a certified minimal-fragment [`Classification`] for the query and every
//!   constraint body, with the rewrite in the smaller language as a checkable
//!   witness (validated by differential evaluation on randomized instances).
//!
//! The analyses: FO safety / range restriction (unsafe variables, depth),
//! FP validation / reachability / stratification notes, CQ lints
//! (contradictory equalities, `≠` tautologies and contradictions, duplicate
//! atoms), and containment-constraint well-formedness (arity vs schema,
//! non-projections, unknown relations, trivially-satisfied and
//! forcing-empty constraints).
//!
//! The `ric` facade wires this in: `ric::analyze` produces the report, and
//! the analysis-gated `try_rcdp_analyzed` / `try_rcqp_analyzed` entry points
//! reject Error-level settings and dispatch the certified rewrite to the
//! cheapest cell (see DESIGN.md §9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod diag;
pub mod lints;

pub use classify::{
    classify_body, classify_query, random_database, Classification, CERTIFY_ROUNDS,
    MAX_DNF_DISJUNCTS,
};
pub use diag::{Code, Diagnostic, Pointer, Severity};

use ric_complete::{Query, SearchBudget, Setting};
use ric_constraints::CcBody;
use ric_query::QueryLanguage;
use ric_reason::{ReasonNote, StaticFacts};
use ric_telemetry::Json;

/// Seed for the deterministic differential-certification RNG. Fixed so the
/// same setting always produces the same report.
const CERTIFY_SEED: u64 = 0x5EED_0001;

/// The result of statically analyzing a setting and query.
#[derive(Clone, PartialEq, Debug)]
pub struct AnalysisReport {
    /// All findings, in analysis order (query first, then constraints, then
    /// lower bounds).
    pub diagnostics: Vec<Diagnostic>,
    /// Minimal-fragment classification of the query.
    pub query: Classification<Query>,
    /// Classification of each upper-bound constraint body, indexed like
    /// `setting.v.ccs`.
    pub constraints: Vec<Classification<CcBody>>,
    /// Classification of each lower-bound constraint body, indexed like
    /// `setting.v.lower_bounds`.
    pub lower_bounds: Vec<Classification<CcBody>>,
}

impl AnalysisReport {
    /// Does the report contain any Error-level finding? The gated entry
    /// points reject such settings.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The Error-level findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// The worst severity present, if any finding exists.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// How many objects (query + constraint bodies) were certified into a
    /// strictly smaller fragment. Reported as the `analysis.downgrade`
    /// telemetry counter.
    pub fn downgrade_count(&self) -> usize {
        usize::from(self.query.downgraded())
            + self.constraints.iter().filter(|c| c.downgraded()).count()
            + self.lower_bounds.iter().filter(|c| c.downgraded()).count()
    }

    /// The language cell the *query* dispatches to after downgrades.
    pub fn effective_query_language(&self) -> QueryLanguage {
        self.query.minimal
    }

    /// Rewrite the setting and query into their certified minimal fragments.
    /// Uncertified objects are kept verbatim, so the result is always
    /// equivalent to the input — the rewrites are exactly the witnesses in
    /// the report.
    pub fn apply(&self, setting: &Setting, query: &Query) -> (Setting, Query) {
        let q = match &self.query.rewritten {
            Some(r) if self.query.certified => r.clone(),
            _ => query.clone(),
        };
        let mut s = setting.clone();
        for (c, slot) in self.constraints.iter().zip(s.v.ccs.iter_mut()) {
            if let Some(b) = &c.rewritten {
                if c.certified {
                    slot.body = b.clone();
                }
            }
        }
        for (c, slot) in self.lower_bounds.iter().zip(s.v.lower_bounds.iter_mut()) {
            if let Some(b) = &c.rewritten {
                if c.certified {
                    slot.body = b.clone();
                }
            }
        }
        (s, q)
    }

    /// Serialize through the telemetry JSON model (the same model the JSONL
    /// sinks and table artifacts use).
    pub fn to_json(&self) -> Json {
        fn cls_json<T>(c: &Classification<T>) -> Json {
            Json::obj([
                ("declared", Json::from(format!("{:?}", c.declared))),
                ("minimal", Json::from(format!("{:?}", c.minimal))),
                ("downgraded", Json::from(c.downgraded())),
                ("certified", Json::from(c.certified)),
            ])
        }
        Json::obj([
            ("errors", Json::from(self.errors().count())),
            (
                "warnings",
                Json::from(
                    self.diagnostics
                        .iter()
                        .filter(|d| d.severity == Severity::Warn)
                        .count(),
                ),
            ),
            ("downgrades", Json::from(self.downgrade_count())),
            ("query", cls_json(&self.query)),
            (
                "constraints",
                Json::arr(self.constraints.iter().map(cls_json)),
            ),
            (
                "lower_bounds",
                Json::arr(self.lower_bounds.iter().map(cls_json)),
            ),
            (
                "diagnostics",
                Json::arr(self.diagnostics.iter().map(Diagnostic::to_json)),
            ),
        ])
    }
}

/// Statically analyze a setting and query: run every lint, classify the
/// query and each constraint body into its certified minimal fragment, and
/// collect the findings into an [`AnalysisReport`].
pub fn analyze(setting: &Setting, query: &Query) -> AnalysisReport {
    let mut diagnostics = lints::query_lints(&setting.schema, query);
    let (query_cls, d) = classify_query(&setting.schema, query, CERTIFY_SEED);
    diagnostics.extend(d);

    let mut constraints = Vec::with_capacity(setting.v.ccs.len());
    for (i, cc) in setting.v.ccs.iter().enumerate() {
        diagnostics.extend(lints::cc_lints(
            cc,
            &setting.schema,
            &setting.master_schema,
            i,
        ));
        let (cls, d) = classify_body(
            &setting.schema,
            &cc.body,
            Pointer::Constraint(i),
            CERTIFY_SEED ^ (i as u64 + 1),
        );
        diagnostics.extend(d);
        constraints.push(cls);
    }

    let mut lower_bounds = Vec::with_capacity(setting.v.lower_bounds.len());
    for (i, lb) in setting.v.lower_bounds.iter().enumerate() {
        diagnostics.extend(lints::lower_bound_lints(
            lb,
            &setting.schema,
            &setting.master_schema,
            i,
        ));
        let (cls, d) = classify_body(
            &setting.schema,
            &lb.body,
            Pointer::LowerBound(i),
            CERTIFY_SEED ^ (0x1000 + i as u64),
        );
        diagnostics.extend(d);
        lower_bounds.push(cls);
    }

    // Symbolic pre-decision reasoning (RIC040+): certified implied
    // constraints, static verdicts, and degradation notes. The reasoner runs
    // under its own small budget so analysis stays fast, and every reported
    // conclusion has already survived differential certification.
    let facts = ric_reason::reason(setting, query, &SearchBudget::small());
    diagnostics.extend(reason_diagnostics(&facts));

    AnalysisReport {
        diagnostics,
        query: query_cls,
        constraints,
        lower_bounds,
    }
}

/// Render the reasoner's certified [`StaticFacts`] as stable diagnostics.
pub fn reason_diagnostics(facts: &StaticFacts) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for implied in &facts.implied {
        out.push(Diagnostic::new(
            Code::ImpliedCc,
            Pointer::Constraint(implied.cc),
            format!(
                "constraint is implied by kept constraints {:?} (relative to the fixed master data); the minimized V drops it from the per-candidate recheck loop",
                implied.by
            ),
        ));
    }
    for &di in &facts.unsat_disjuncts {
        out.push(Diagnostic::new(
            Code::UnsatUnderV,
            Pointer::QueryDisjunct(di),
            "disjunct is statically unsatisfiable under V: no legal extension can match it",
        ));
    }
    if facts.statically_complete {
        out.push(Diagnostic::new(
            Code::StaticallyComplete,
            Pointer::Query,
            "every query disjunct dies under V (certified): the RCDP decision is statically Complete",
        ));
    }
    if let Some(cover) = facts.cover {
        out.push(Diagnostic::new(
            Code::StaticallyComplete,
            Pointer::Query,
            format!(
                "query is contained in the body of constraint {} (certified): decisions short-circuit to Complete whenever p(D_m) ⊆ Q(D)",
                cover.cc
            ),
        ));
    }
    for note in &facts.notes {
        match note {
            ReasonNote::Uncertified { what, why } => out.push(Diagnostic::new(
                Code::UncertifiedStatic,
                Pointer::Setting,
                format!("{what} failed differential certification and was discarded: {why}"),
            )),
            ReasonNote::Degraded { place, why } => {
                let pointer = if place == "query" {
                    Pointer::Query
                } else if let Some(i) = place
                    .strip_prefix("cc ")
                    .and_then(|i| i.parse::<usize>().ok())
                {
                    Pointer::Constraint(i)
                } else if let Some(i) = place
                    .strip_prefix("query disjunct ")
                    .and_then(|i| i.parse::<usize>().ok())
                {
                    Pointer::QueryDisjunct(i)
                } else {
                    Pointer::Setting
                };
                out.push(Diagnostic::new(
                    Code::ReasonDegraded,
                    pointer,
                    format!("symbolic reasoning degraded: {why}"),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ric_constraints::{CcBody, ConstraintSet, ContainmentConstraint};
    use ric_data::{Database, RelationSchema, Schema};
    use ric_query::{parse_cq, FoExpr, FoQuery, Var};

    fn schemas() -> (Schema, Schema) {
        let s = Schema::from_relations(vec![
            RelationSchema::infinite("R", &["a", "b"]),
            RelationSchema::infinite("S", &["a"]),
        ])
        .unwrap();
        let m = Schema::from_relations(vec![RelationSchema::infinite("M", &["a"])]).unwrap();
        (s, m)
    }

    fn setting_with(ccs: Vec<ContainmentConstraint>) -> Setting {
        let (s, m) = schemas();
        let dm = Database::empty(&m);
        Setting::new(s, m, dm, ConstraintSet::new(ccs))
    }

    #[test]
    fn clean_setting_produces_no_errors() {
        let (s, _) = schemas();
        let q = parse_cq(&s, "Q(X) :- R(X, Y).").unwrap();
        let m = setting_with(vec![]);
        let report = analyze(&m, &Query::Cq(q));
        assert!(!report.has_errors());
        assert_eq!(report.max_severity(), None);
        assert_eq!(report.downgrade_count(), 0);
    }

    #[test]
    fn unsafe_fo_query_is_rejected_material() {
        let (s, _) = schemas();
        let r = s.rel_id("R").unwrap();
        let q = FoQuery::new(
            vec![Var(0)],
            FoExpr::Atom(ric_query::Atom::new(
                r,
                vec![ric_query::Term::Var(Var(0)), ric_query::Term::Var(Var(1))],
            )),
            vec!["x".into(), "y".into()],
        );
        let m = setting_with(vec![]);
        let report = analyze(&m, &Query::Fo(q));
        assert!(report.has_errors());
        assert!(report.errors().any(|d| d.code == Code::FoUnsafeVariable));
    }

    #[test]
    fn apply_rewrites_query_and_constraint_bodies() {
        let (s, m) = schemas();
        let mrel = m.rel_id("M").unwrap();
        // Projection-shaped CQ body: downgrades to an IND.
        let body = parse_cq(&s, "Q(A) :- S(A).").unwrap();
        let cc = ContainmentConstraint::into_master(CcBody::Cq(body), mrel, vec![0]);
        let setting = setting_with(vec![cc]);
        let q = ric_query::parse_ucq(&s, "Q(X) :- R(X, Y).").unwrap();
        let report = analyze(&setting, &Query::Ucq(q.clone()));
        assert!(!report.has_errors());
        assert_eq!(report.downgrade_count(), 2);
        let (s2, q2) = report.apply(&setting, &Query::Ucq(q));
        assert!(matches!(q2, Query::Cq(_)));
        assert!(s2.v.is_ind_set());
        assert_eq!(report.effective_query_language(), QueryLanguage::Cq);
    }

    #[test]
    fn report_serializes_to_json() {
        let (s, _) = schemas();
        let q = parse_cq(&s, "Q(X) :- R(X, Y), X = 1, X = 2.").unwrap();
        let report = analyze(&setting_with(vec![]), &Query::Cq(q));
        let j = report.to_json();
        assert_eq!(j.get("errors").and_then(Json::as_int), Some(0));
        let diags = j.get("diagnostics").and_then(Json::as_arr).unwrap();
        assert!(diags
            .iter()
            .any(|d| d.get("code").and_then(Json::as_str) == Some("RIC008")));
        // Round-trips through the telemetry JSON parser.
        let text = j.pretty();
        assert!(ric_telemetry::json::parse(&text).is_ok());
    }
}

//! Minimal-fragment classification with certified rewrite witnesses.
//!
//! Tables I and II of the paper assign a complexity cell to the *pair*
//! `(L_Q, L_C)` — and the cell is determined by the smallest language the
//! query (or constraint body) actually inhabits, not the syntax it happens
//! to be written in. An FO-wrapped conjunctive query dispatched as FO lands
//! in an undecidable cell and pays a bounded search; recognized as CQ it
//! gets the exact Σᵖ₂ decider.
//!
//! The classifier is deliberately *sound-by-construction plus certified*:
//! each structural rewrite (FO → ∃FO⁺ rectification, ∃FO⁺ → UCQ via DNF,
//! FP → UCQ for non-recursive output-only programs, singleton UCQ → CQ,
//! projection-shaped CQ → IND) is then validated by differential evaluation
//! on randomized databases; a rewrite that cannot be certified is discarded
//! and the declared fragment kept. The certified rewrite *is* the witness:
//! callers can re-run the differential check themselves.

use crate::diag::{Code, Diagnostic, Pointer};
use ric_complete::Query;
use ric_constraints::{CcBody, Projection};
use ric_data::{Database, Schema, SplitMix64, Tuple, Value};
use ric_query::{
    Cq, EfoExpr, EfoQuery, FoExpr, FoQuery, Literal, Program, QueryLanguage, Term, Ucq, Var,
};
use std::collections::BTreeSet;

/// Cap on the DNF expansion used for ∃FO⁺ → UCQ downgrades: the expansion is
/// worst-case exponential, and a 64-disjunct UCQ already dominates whatever
/// the FO cell would have cost.
pub const MAX_DNF_DISJUNCTS: usize = 64;

/// Differential-certification rounds per rewrite.
pub const CERTIFY_ROUNDS: usize = 24;

/// The minimal-fragment verdict for one query or constraint body.
#[derive(Clone, PartialEq, Debug)]
pub struct Classification<T> {
    /// The language the object is syntactically written in.
    pub declared: QueryLanguage,
    /// The smallest language the analyzer could certify.
    pub minimal: QueryLanguage,
    /// The rewrite witness in the smaller language (`None` when no downgrade
    /// was found — then `minimal == declared`).
    pub rewritten: Option<T>,
    /// Whether the rewrite passed differential certification. Always `true`
    /// when `rewritten` is `Some`; uncertifiable rewrites are discarded.
    pub certified: bool,
}

impl<T> Classification<T> {
    fn unchanged(declared: QueryLanguage) -> Self {
        Classification {
            declared,
            minimal: declared,
            rewritten: None,
            certified: false,
        }
    }

    /// Did the analyzer find a strictly smaller fragment?
    pub fn downgraded(&self) -> bool {
        self.minimal < self.declared
    }
}

/// A random database over `schema` for differential certification, honouring
/// finite attribute domains. Also used by the downgrade property-test suite.
pub fn random_database(
    schema: &Schema,
    rng: &mut SplitMix64,
    max_tuples: usize,
    values: i64,
) -> Database {
    let mut db = Database::empty(schema);
    for (rel, rs) in schema.iter() {
        let n = rng.random_range(0..max_tuples + 1);
        'tuples: for _ in 0..n {
            let mut vals = Vec::with_capacity(rs.arity());
            for col in 0..rs.arity() {
                let v = match schema.domain(rel, col) {
                    Ok(d) if !d.is_infinite() => {
                        let Some(choices) = d.finite_values() else {
                            continue 'tuples;
                        };
                        if choices.is_empty() {
                            continue 'tuples;
                        }
                        choices[rng.random_range(0..choices.len())].clone()
                    }
                    _ => Value::int(rng.random_range(0..values as usize) as i64),
                };
                vals.push(v);
            }
            db.insert(rel, Tuple::new(vals));
        }
    }
    db
}

/// Differential certification: `original` and `rewritten` must produce the
/// same answer set on every randomized instance. Evaluation errors on either
/// side fail certification.
fn certify<T, F>(schema: &Schema, seed: u64, original: &T, rewritten: &T, eval: F) -> bool
where
    F: Fn(&T, &Database) -> Option<BTreeSet<Tuple>>,
{
    let mut rng = SplitMix64::seed_from_u64(seed);
    for _ in 0..CERTIFY_ROUNDS {
        let db = random_database(schema, &mut rng, 8, 6);
        match (eval(original, &db), eval(rewritten, &db)) {
            (Some(a), Some(b)) if a == b => {}
            _ => return false,
        }
    }
    true
}

/// Rectify an FO body into ∃FO⁺ when it is positive-existential in disguise:
/// `∃`, `∧`, `∨`, atoms, `=`, `¬(t = t′)` (as `≠`), and double negation.
/// Requires the formula to be *rectified*: every quantified variable is bound
/// exactly once, never shadows the head, and is only used inside its
/// binder's scope — exactly the discipline that makes pulling all `∃` to the
/// front (the implicit quantification of [`EfoQuery`]) an equivalence.
fn fo_body_to_efo(q: &FoQuery) -> Option<EfoExpr> {
    // Pass 1: binders are globally unique and disjoint from the head.
    fn binders(e: &FoExpr, seen: &mut BTreeSet<Var>, head: &BTreeSet<Var>) -> bool {
        match e {
            FoExpr::Atom(_) | FoExpr::Eq(..) => true,
            FoExpr::Not(x) => binders(x, seen, head),
            FoExpr::And(ps) | FoExpr::Or(ps) => ps.iter().all(|p| binders(p, seen, head)),
            FoExpr::Exists(vs, x) => {
                vs.iter().all(|v| !head.contains(v) && seen.insert(*v)) && binders(x, seen, head)
            }
            FoExpr::Forall(vs, x) => vs.is_empty() && binders(x, seen, head),
        }
    }
    // Pass 2: translate, checking every variable is used in scope.
    fn go(e: &FoExpr, head: &BTreeSet<Var>, scope: &mut BTreeSet<Var>) -> Option<EfoExpr> {
        let term_ok = |t: &Term, scope: &BTreeSet<Var>| match t {
            Term::Const(_) => true,
            Term::Var(v) => head.contains(v) || scope.contains(v),
        };
        match e {
            FoExpr::Atom(a) => a
                .args
                .iter()
                .all(|t| term_ok(t, scope))
                .then(|| EfoExpr::Atom(a.clone())),
            FoExpr::Eq(l, r) => {
                (term_ok(l, scope) && term_ok(r, scope)).then(|| EfoExpr::Eq(l.clone(), r.clone()))
            }
            FoExpr::Not(x) => match &**x {
                FoExpr::Eq(l, r) => (term_ok(l, scope) && term_ok(r, scope))
                    .then(|| EfoExpr::Neq(l.clone(), r.clone())),
                FoExpr::Not(y) => go(y, head, scope),
                _ => None,
            },
            FoExpr::And(ps) => ps
                .iter()
                .map(|p| go(p, head, scope))
                .collect::<Option<Vec<_>>>()
                .map(EfoExpr::And),
            FoExpr::Or(ps) => ps
                .iter()
                .map(|p| go(p, head, scope))
                .collect::<Option<Vec<_>>>()
                .map(EfoExpr::Or),
            FoExpr::Exists(vs, x) => {
                scope.extend(vs.iter().copied());
                let out = go(x, head, scope);
                for v in vs {
                    scope.remove(v);
                }
                out
            }
            FoExpr::Forall(vs, x) if vs.is_empty() => go(x, head, scope),
            FoExpr::Forall(..) => None,
        }
    }
    let head: BTreeSet<Var> = q.head.iter().copied().collect();
    if !binders(&q.body, &mut BTreeSet::new(), &head) {
        return None;
    }
    go(&q.body, &head, &mut BTreeSet::new())
}

/// FP → UCQ for the degenerate (but common in generated settings) shape:
/// every rule defines the output predicate directly from EDB relations — no
/// IDB literals, hence no recursion. The inflationary fixpoint of such a
/// program is exactly the union of its rules read as CQs.
fn fp_to_ucq(p: &Program) -> Option<Ucq> {
    if p.rules.is_empty() || p.validate().is_err() {
        return None;
    }
    let mut disjuncts = Vec::with_capacity(p.rules.len());
    for rule in &p.rules {
        if rule.head != p.output {
            return None;
        }
        let mut atoms = Vec::new();
        let mut eqs = Vec::new();
        let mut neqs = Vec::new();
        for lit in &rule.body {
            match lit {
                Literal::Edb(a) => atoms.push(a.clone()),
                Literal::Eq(l, r) => eqs.push((l.clone(), r.clone())),
                Literal::Neq(l, r) => neqs.push((l.clone(), r.clone())),
                Literal::Idb(..) => return None,
            }
        }
        disjuncts.push(Cq {
            n_vars: rule.n_vars,
            head: rule.head_args.clone(),
            atoms,
            eqs,
            neqs,
            var_names: (0..rule.n_vars).map(|i| format!("V{i}")).collect(),
        });
    }
    Some(Ucq::new(disjuncts))
}

/// CQ → IND for projection-shaped bodies: one atom over pairwise-distinct
/// variables, no comparisons, and a head consisting solely of atom
/// variables. Exactly the `π_cols(R)` form of an inclusion dependency — the
/// downgrade that unlocks the C3/E3-E4 fast paths.
fn cq_to_projection(q: &Cq) -> Option<Projection> {
    if q.atoms.len() != 1 || !q.eqs.is_empty() || !q.neqs.is_empty() {
        return None;
    }
    let atom = &q.atoms[0];
    let mut vars = Vec::with_capacity(atom.args.len());
    for t in &atom.args {
        match t {
            Term::Var(v) if !vars.contains(v) => vars.push(*v),
            _ => return None,
        }
    }
    let mut cols = Vec::with_capacity(q.head.len());
    for t in &q.head {
        let Term::Var(v) = t else { return None };
        cols.push(vars.iter().position(|w| w == v)?);
    }
    Some(Projection::new(atom.rel, cols))
}

/// Shrink a UCQ one more step when possible (singleton → CQ).
fn shrink_ucq(u: Ucq) -> Query {
    if u.disjuncts.len() == 1 {
        Query::Cq(
            u.disjuncts
                .into_iter()
                .next()
                .unwrap_or_else(|| unreachable!("singleton UCQ has one disjunct")),
        )
    } else {
        Query::Ucq(u)
    }
}

/// The candidate rewrite for a query, without certification.
fn query_candidate(q: &Query) -> Option<Query> {
    match q {
        Query::Cq(_) => None,
        Query::Ucq(u) => (u.disjuncts.len() == 1).then(|| shrink_ucq(u.clone())),
        Query::Efo(e) => (e.body.dnf_size() <= MAX_DNF_DISJUNCTS).then(|| shrink_ucq(e.to_ucq())),
        Query::Fo(f) => fo_body_to_efo(f).map(|body| {
            let efo = EfoQuery::new(
                f.head.iter().map(|v| Term::Var(*v)).collect(),
                body,
                f.var_names.clone(),
            );
            if efo.body.dnf_size() <= MAX_DNF_DISJUNCTS {
                shrink_ucq(efo.to_ucq())
            } else {
                Query::Efo(efo)
            }
        }),
        Query::Fp(p) => fp_to_ucq(p).map(shrink_ucq),
    }
}

/// Classify a query against `schema`, emitting the downgrade /
/// uncertified-rewrite diagnostics for `pointer`.
pub fn classify_query(
    schema: &Schema,
    query: &Query,
    seed: u64,
) -> (Classification<Query>, Vec<Diagnostic>) {
    let declared = query.language();
    let Some(candidate) = query_candidate(query) else {
        return (Classification::unchanged(declared), Vec::new());
    };
    let minimal = candidate.language();
    if minimal >= declared {
        return (Classification::unchanged(declared), Vec::new());
    }
    if certify(schema, seed, query, &candidate, |q, db| q.eval(db).ok()) {
        let diag = Diagnostic::new(
            Code::Downgrade,
            Pointer::Query,
            format!("query is {declared:?}-syntax but certified {minimal:?}: dispatching to the smaller cell"),
        );
        (
            Classification {
                declared,
                minimal,
                rewritten: Some(candidate),
                certified: true,
            },
            vec![diag],
        )
    } else {
        let diag = Diagnostic::new(
            Code::UncertifiedRewrite,
            Pointer::Query,
            format!("candidate {minimal:?} rewrite failed differential certification; keeping {declared:?}"),
        );
        (Classification::unchanged(declared), vec![diag])
    }
}

/// Classify one constraint body, emitting diagnostics for `pointer`.
pub fn classify_body(
    schema: &Schema,
    body: &CcBody,
    pointer: Pointer,
    seed: u64,
) -> (Classification<CcBody>, Vec<Diagnostic>) {
    let declared = body.language();
    let candidate: Option<CcBody> = match body {
        CcBody::Proj(_) => None,
        CcBody::Cq(q) => cq_to_projection(q).map(CcBody::Proj),
        CcBody::Ucq(u) => {
            if u.disjuncts.len() == 1 {
                let cq = u.disjuncts[0].clone();
                Some(match cq_to_projection(&cq) {
                    Some(p) => CcBody::Proj(p),
                    None => CcBody::Cq(cq),
                })
            } else {
                None
            }
        }
        CcBody::Efo(e) => {
            (e.body.dnf_size() <= MAX_DNF_DISJUNCTS).then(|| match shrink_ucq(e.to_ucq()) {
                Query::Cq(cq) => match cq_to_projection(&cq) {
                    Some(p) => CcBody::Proj(p),
                    None => CcBody::Cq(cq),
                },
                Query::Ucq(u) => CcBody::Ucq(u),
                _ => unreachable!("shrink_ucq only yields CQ/UCQ"),
            })
        }
        CcBody::Fo(f) => fo_body_to_efo(f).map(|b| {
            let efo = EfoQuery::new(
                f.head.iter().map(|v| Term::Var(*v)).collect(),
                b,
                f.var_names.clone(),
            );
            CcBody::Efo(efo)
        }),
        CcBody::Fp(p) => fp_to_ucq(p).map(|u| match shrink_ucq(u) {
            Query::Cq(cq) => CcBody::Cq(cq),
            Query::Ucq(u) => CcBody::Ucq(u),
            _ => unreachable!("shrink_ucq only yields CQ/UCQ"),
        }),
    };
    let Some(candidate) = candidate else {
        return (Classification::unchanged(declared), Vec::new());
    };
    let minimal = candidate.language();
    if minimal >= declared {
        return (Classification::unchanged(declared), Vec::new());
    }
    if certify(schema, seed, body, &candidate, |b, db| b.eval(db).ok()) {
        let diag = Diagnostic::new(
            Code::Downgrade,
            pointer,
            format!("constraint body is {declared:?}-syntax but certified {minimal:?}"),
        );
        (
            Classification {
                declared,
                minimal,
                rewritten: Some(candidate),
                certified: true,
            },
            vec![diag],
        )
    } else {
        let diag = Diagnostic::new(
            Code::UncertifiedRewrite,
            pointer,
            format!("candidate {minimal:?} rewrite failed differential certification; keeping {declared:?}"),
        );
        (Classification::unchanged(declared), vec![diag])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ric_data::RelationSchema;
    use ric_query::{parse_cq, parse_ucq, Atom};

    fn schema() -> Schema {
        Schema::from_relations(vec![
            RelationSchema::infinite("R", &["a", "b"]),
            RelationSchema::infinite("S", &["a"]),
        ])
        .unwrap()
    }

    /// `Q(x) := ∃y (R(x,y) ∧ ¬¬S(y))` — FO syntax, CQ at heart.
    fn fo_wrapped_cq(s: &Schema) -> FoQuery {
        let r = s.rel_id("R").unwrap();
        let srel = s.rel_id("S").unwrap();
        let (x, y) = (Var(0), Var(1));
        FoQuery::new(
            vec![x],
            FoExpr::Exists(
                vec![y],
                Box::new(FoExpr::And(vec![
                    FoExpr::Atom(Atom::new(r, vec![Term::Var(x), Term::Var(y)])),
                    FoExpr::not(FoExpr::not(FoExpr::Atom(Atom::new(
                        srel,
                        vec![Term::Var(y)],
                    )))),
                ])),
            ),
            vec!["x".into(), "y".into()],
        )
    }

    #[test]
    fn fo_wrapped_cq_downgrades_to_cq() {
        let s = schema();
        let q = Query::Fo(fo_wrapped_cq(&s));
        let (c, diags) = classify_query(&s, &q, 0xA11CE);
        assert_eq!(c.declared, QueryLanguage::Fo);
        assert_eq!(c.minimal, QueryLanguage::Cq);
        assert!(c.certified);
        assert!(matches!(c.rewritten, Some(Query::Cq(_))));
        assert!(diags.iter().any(|d| d.code == Code::Downgrade));
    }

    #[test]
    fn genuine_fo_stays_fo() {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let (x, y) = (Var(0), Var(1));
        // ∀y ¬R(x,y): real negation, no ∃FO⁺ equivalent syntactically.
        let q = Query::Fo(FoQuery::new(
            vec![x],
            FoExpr::Forall(
                vec![y],
                Box::new(FoExpr::not(FoExpr::Atom(Atom::new(
                    r,
                    vec![Term::Var(x), Term::Var(y)],
                )))),
            ),
            vec!["x".into(), "y".into()],
        ));
        let (c, diags) = classify_query(&s, &q, 1);
        assert!(!c.downgraded());
        assert!(diags.is_empty());
    }

    #[test]
    fn shared_binder_is_not_rectifiable() {
        let s = schema();
        let srel = s.rel_id("S").unwrap();
        let y = Var(0);
        // (∃y S(y)) ∧ (∃y S(y)) reuses the binder: flattening would conflate
        // the two scopes, so the classifier must refuse.
        let part = FoExpr::Exists(
            vec![y],
            Box::new(FoExpr::Atom(Atom::new(srel, vec![Term::Var(y)]))),
        );
        let q = FoQuery::new(
            vec![],
            FoExpr::And(vec![part.clone(), part]),
            vec!["y".into()],
        );
        let (c, _) = classify_query(&s, &Query::Fo(q), 2);
        assert!(!c.downgraded());
    }

    #[test]
    fn singleton_ucq_downgrades_to_cq() {
        let s = schema();
        let u = parse_ucq(&s, "Q(X) :- R(X, Y), S(Y).").unwrap();
        let (c, _) = classify_query(&s, &Query::Ucq(u), 3);
        assert_eq!(c.minimal, QueryLanguage::Cq);
        assert!(c.certified);
    }

    #[test]
    fn nonrecursive_output_only_fp_downgrades() {
        let s = schema();
        let p = ric_query::parse_program(&s, "Out(X) :- R(X, Y). Out(X) :- S(X).", "Out").unwrap();
        let (c, _) = classify_query(&s, &Query::Fp(p), 4);
        assert_eq!(c.declared, QueryLanguage::Fp);
        assert_eq!(c.minimal, QueryLanguage::Ucq);
        assert!(c.certified);
    }

    #[test]
    fn recursive_fp_stays_fp() {
        let s = schema();
        let p = ric_query::parse_program(
            &s,
            "Tc(X, Y) :- R(X, Y). Tc(X, Y) :- R(X, Z), Tc(Z, Y).",
            "Tc",
        )
        .unwrap();
        let (c, _) = classify_query(&s, &Query::Fp(p), 5);
        assert!(!c.downgraded());
    }

    #[test]
    fn projection_shaped_cq_body_downgrades_to_ind() {
        let s = schema();
        let q = parse_cq(&s, "Q(B, A) :- R(A, B).").unwrap();
        let (c, diags) = classify_body(&s, &CcBody::Cq(q), Pointer::Constraint(0), 6);
        assert_eq!(c.declared, QueryLanguage::Cq);
        assert_eq!(c.minimal, QueryLanguage::Inds);
        assert!(matches!(c.rewritten, Some(CcBody::Proj(_))));
        assert!(diags.iter().any(|d| d.code == Code::Downgrade));
    }

    #[test]
    fn selective_cq_body_is_not_a_projection() {
        let s = schema();
        let q = parse_cq(&s, "Q(A) :- R(A, B), B = 1.").unwrap();
        let (c, _) = classify_body(&s, &CcBody::Cq(q), Pointer::Constraint(0), 7);
        assert!(!c.downgraded());
    }

    #[test]
    fn random_database_respects_finite_domains() {
        let s = Schema::from_relations(vec![RelationSchema::new(
            "B",
            vec![ric_data::Attribute::boolean("f")],
        )])
        .unwrap();
        let mut rng = SplitMix64::seed_from_u64(9);
        for _ in 0..10 {
            let db = random_database(&s, &mut rng, 6, 6);
            for t in db.instance(s.rel_id("B").unwrap()).iter() {
                assert!(t.get(0) == &Value::int(0) || t.get(0) == &Value::int(1));
            }
        }
    }
}

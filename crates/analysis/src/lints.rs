//! Static well-formedness checks: FO safety, FP sanity, CQ lints, and
//! containment-constraint validation.
//!
//! Everything here is purely syntactic — no database is consulted — so the
//! checks run in time linear-ish in the setting size and can gate a decision
//! before any search starts.

use crate::diag::{Code, Diagnostic, Pointer};
use ric_complete::Query;
use ric_constraints::{CcBody, CcRhs, ContainmentConstraint, LowerBound, Projection};
use ric_data::Schema;
use ric_query::fo::MAX_FO_DEPTH;
use ric_query::{Atom, Cq, EfoExpr, FoExpr, FoQuery, Literal, Program, Term, Var};
use std::collections::{BTreeMap, BTreeSet};

// ---------------------------------------------------------------------------
// FO safety / range restriction
// ---------------------------------------------------------------------------

/// An upper bound on the evaluator's recursion depth for `e`, mirroring how
/// `sat`/`quantify` consume [`MAX_FO_DEPTH`]: one frame per connective, one
/// per quantified variable.
fn fo_depth(e: &FoExpr) -> usize {
    match e {
        FoExpr::Atom(_) | FoExpr::Eq(..) => 0,
        FoExpr::Not(x) => 1 + fo_depth(x),
        FoExpr::And(ps) | FoExpr::Or(ps) => 1 + ps.iter().map(fo_depth).max().unwrap_or(0),
        FoExpr::Exists(vs, x) | FoExpr::Forall(vs, x) => vs.len() + 1 + fo_depth(x),
    }
}

/// FO safety: every variable must be bound when the evaluator reaches it —
/// either a free (head) variable, enumerated over the active domain, or
/// introduced by an enclosing quantifier. A violation is exactly the input
/// on which `FoQuery::try_eval` returns `TableauError::UnsafeVariable` (and
/// `FoQuery::eval`, which the CC checker uses, panics).
pub fn fo_safety(q: &FoQuery, pointer: Pointer) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if fo_depth(&q.body) > MAX_FO_DEPTH {
        out.push(Diagnostic::new(
            Code::FoTooDeep,
            pointer,
            format!(
                "formula nesting exceeds the evaluator depth cap ({MAX_FO_DEPTH}); evaluation would fail"
            ),
        ));
    }
    fn walk(
        e: &FoExpr,
        scope: &mut BTreeSet<Var>,
        names: &[String],
        pointer: Pointer,
        out: &mut Vec<Diagnostic>,
    ) {
        let check = |t: &Term, scope: &BTreeSet<Var>, out: &mut Vec<Diagnostic>| {
            if let Term::Var(v) = t {
                if !scope.contains(v) {
                    let name = names
                        .get(v.idx())
                        .cloned()
                        .unwrap_or_else(|| format!("#{}", v.0));
                    out.push(Diagnostic::new(
                        Code::FoUnsafeVariable,
                        pointer,
                        format!("variable `{name}` is neither free (head) nor quantified: unsafe under active-domain semantics"),
                    ));
                }
            }
        };
        match e {
            FoExpr::Atom(a) => a.args.iter().for_each(|t| check(t, scope, out)),
            FoExpr::Eq(l, r) => {
                check(l, scope, out);
                check(r, scope, out);
            }
            FoExpr::Not(x) => walk(x, scope, names, pointer, out),
            FoExpr::And(ps) | FoExpr::Or(ps) => {
                ps.iter().for_each(|p| walk(p, scope, names, pointer, out));
            }
            FoExpr::Exists(vs, x) | FoExpr::Forall(vs, x) => {
                let added: Vec<Var> = vs.iter().filter(|v| scope.insert(**v)).copied().collect();
                walk(x, scope, names, pointer, out);
                for v in added {
                    scope.remove(&v);
                }
            }
        }
    }
    let mut scope: BTreeSet<Var> = q.head.iter().copied().collect();
    walk(&q.body, &mut scope, &q.var_names, pointer, &mut out);
    out
}

// ---------------------------------------------------------------------------
// FP sanity
// ---------------------------------------------------------------------------

/// FP checks: program validation (range restriction, arities), reachability
/// of every rule from the output predicate, and the stratification note —
/// the FP fragment here is negation-free datalog, so every program is
/// trivially stratified and the inflationary fixpoint coincides with the
/// least fixpoint.
pub fn fp_sanity(p: &Program, pointer: Pointer) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if let Err(e) = p.validate() {
        let rule = match e {
            ric_query::datalog::ProgramError::NotRangeRestricted { rule, .. }
            | ric_query::datalog::ProgramError::ArityMismatch { rule, .. }
            | ric_query::datalog::ProgramError::BodyTooLong { rule, .. } => rule,
        };
        out.push(Diagnostic::new(
            Code::FpInvalid,
            rule_pointer(pointer, rule),
            format!("program fails validation: {e}"),
        ));
        return out;
    }
    // Reachability: which IDB predicates can influence the output?
    let mut reachable: BTreeSet<usize> = BTreeSet::new();
    reachable.insert(p.output.0);
    loop {
        let mut grew = false;
        for rule in &p.rules {
            if !reachable.contains(&rule.head.0) {
                continue;
            }
            for lit in &rule.body {
                if let Literal::Idb(pred, _) = lit {
                    grew |= reachable.insert(pred.0);
                }
            }
        }
        if !grew {
            break;
        }
    }
    for (ri, rule) in p.rules.iter().enumerate() {
        if !reachable.contains(&rule.head.0) {
            let name = p
                .pred_names
                .get(rule.head.0)
                .map(String::as_str)
                .unwrap_or("?");
            out.push(Diagnostic::new(
                Code::FpUnreachableRule,
                rule_pointer(pointer, ri),
                format!(
                    "rule defines `{name}`, which cannot reach the output predicate: dead rule"
                ),
            ));
        }
    }
    out.push(Diagnostic::new(
        Code::FpTriviallyStratified,
        pointer,
        "negation-free datalog: trivially stratified; the inflationary fixpoint equals the least fixpoint",
    ));
    out
}

/// FP diagnostics inside a constraint keep the constraint pointer; inside
/// the query they point at the specific rule.
fn rule_pointer(base: Pointer, rule: usize) -> Pointer {
    match base {
        Pointer::Query => Pointer::QueryRule(rule),
        other => other,
    }
}

// ---------------------------------------------------------------------------
// CQ lints
// ---------------------------------------------------------------------------

/// A tiny union-find over a CQ's variables with constant pinning, shared by
/// the contradiction and `≠` lints.
struct Classes {
    parent: Vec<usize>,
    pinned: BTreeMap<usize, ric_data::Value>,
    contradictory: bool,
}

impl Classes {
    fn new(n: usize) -> Self {
        Classes {
            parent: (0..n).collect(),
            pinned: BTreeMap::new(),
            contradictory: false,
        }
    }

    fn find(&mut self, i: usize) -> usize {
        if self.parent[i] != i {
            let root = self.find(self.parent[i]);
            self.parent[i] = root;
        }
        self.parent[i]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let pa = self.pinned.get(&ra).cloned();
        let pb = self.pinned.get(&rb).cloned();
        if let (Some(ca), Some(cb)) = (&pa, &pb) {
            if ca != cb {
                self.contradictory = true;
            }
        }
        self.parent[rb] = ra;
        if let Some(c) = pb {
            self.pinned.entry(ra).or_insert(c);
        }
    }

    fn pin(&mut self, v: usize, c: &ric_data::Value) {
        let r = self.find(v);
        match self.pinned.get(&r) {
            Some(existing) if existing != c => self.contradictory = true,
            Some(_) => {}
            None => {
                self.pinned.insert(r, c.clone());
            }
        }
    }

    /// Resolve a term to either its pinned constant or its class root.
    fn resolve(&mut self, t: &Term) -> Result<ric_data::Value, usize> {
        match t {
            Term::Const(c) => Ok(c.clone()),
            Term::Var(v) => {
                let r = self.find(v.idx());
                match self.pinned.get(&r) {
                    Some(c) => Ok(c.clone()),
                    None => Err(r),
                }
            }
        }
    }
}

fn classes_of(q: &Cq) -> Classes {
    let mut cls = Classes::new(q.n_vars as usize);
    for (l, r) in &q.eqs {
        match (l, r) {
            (Term::Var(a), Term::Var(b)) => cls.union(a.idx(), b.idx()),
            (Term::Var(a), Term::Const(c)) | (Term::Const(c), Term::Var(a)) => cls.pin(a.idx(), c),
            (Term::Const(a), Term::Const(b)) => {
                if a != b {
                    cls.contradictory = true;
                }
            }
        }
    }
    cls
}

/// Is the CQ body statically unsatisfiable (contradictory equalities, or a
/// `≠` atom refuted by the equalities)?
pub fn cq_statically_unsat(q: &Cq) -> bool {
    let mut cls = classes_of(q);
    if cls.contradictory {
        return true;
    }
    q.neqs.iter().any(|(l, r)| {
        let (a, b) = (cls.resolve(l), cls.resolve(r));
        match (a, b) {
            (Ok(ca), Ok(cb)) => ca == cb,
            (Err(ra), Err(rb)) => ra == rb,
            _ => false,
        }
    })
}

/// Contradictory equalities, tautological / unsatisfiable `≠` atoms, and
/// duplicate atoms.
pub fn cq_lints(q: &Cq, pointer: Pointer) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut cls = classes_of(q);
    if cls.contradictory {
        out.push(Diagnostic::new(
            Code::CqContradictoryEq,
            pointer,
            "contradictory equalities (a variable is equated with two distinct constants): the body is unsatisfiable",
        ));
    }
    for (l, r) in &q.neqs {
        match (cls.resolve(l), cls.resolve(r)) {
            (Ok(ca), Ok(cb)) if ca == cb => out.push(Diagnostic::new(
                Code::CqUnsatisfiableNeq,
                pointer,
                format!("`≠` atom compares terms both equal to {ca}: the body is unsatisfiable"),
            )),
            (Ok(ca), Ok(cb)) => {
                // Only flag literal constant-vs-constant comparisons as
                // removable; constants implied via `=` chains still carry
                // information in the original syntax.
                if matches!((l, r), (Term::Const(_), Term::Const(_))) {
                    out.push(Diagnostic::new(
                        Code::CqTautologicalNeq,
                        pointer,
                        format!("`{ca} ≠ {cb}` is always true: removable"),
                    ));
                }
            }
            (Err(ra), Err(rb)) if ra == rb => out.push(Diagnostic::new(
                Code::CqUnsatisfiableNeq,
                pointer,
                "`≠` atom compares two terms the equalities force equal: the body is unsatisfiable",
            )),
            _ => {}
        }
    }
    for i in 0..q.atoms.len() {
        for j in (i + 1)..q.atoms.len() {
            if q.atoms[i] == q.atoms[j] {
                out.push(Diagnostic::new(
                    Code::CqDuplicateAtom,
                    pointer,
                    format!("atoms {i} and {j} are identical: removable"),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Schema conformance of atoms
// ---------------------------------------------------------------------------

fn check_atom(
    atom: &Atom,
    schema: &Schema,
    pointer: Pointer,
    unknown: Code,
    arity: Code,
    out: &mut Vec<Diagnostic>,
) {
    match schema.arity(atom.rel) {
        Err(_) => out.push(Diagnostic::new(
            unknown,
            pointer,
            format!(
                "atom references relation #{} which is not in the schema",
                atom.rel.0
            ),
        )),
        Ok(a) if a != atom.args.len() => out.push(Diagnostic::new(
            arity,
            pointer,
            format!(
                "atom over `{}` has {} arguments, schema arity is {a}",
                schema
                    .relation(atom.rel)
                    .map(|r| r.name.clone())
                    .unwrap_or_else(|_| format!("#{}", atom.rel.0)),
                atom.args.len()
            ),
        )),
        Ok(_) => {}
    }
}

fn for_each_efo_atom(e: &EfoExpr, f: &mut impl FnMut(&Atom)) {
    match e {
        EfoExpr::Atom(a) => f(a),
        EfoExpr::Eq(..) | EfoExpr::Neq(..) => {}
        EfoExpr::And(ps) | EfoExpr::Or(ps) => ps.iter().for_each(|p| for_each_efo_atom(p, f)),
    }
}

fn for_each_fo_atom(e: &FoExpr, f: &mut impl FnMut(&Atom)) {
    match e {
        FoExpr::Atom(a) => f(a),
        FoExpr::Eq(..) => {}
        FoExpr::Not(x) => for_each_fo_atom(x, f),
        FoExpr::And(ps) | FoExpr::Or(ps) => ps.iter().for_each(|p| for_each_fo_atom(p, f)),
        FoExpr::Exists(_, x) | FoExpr::Forall(_, x) => for_each_fo_atom(x, f),
    }
}

/// All query-side lints: schema conformance for every atom, FO safety, FP
/// sanity, and the CQ lints on every conjunctive component.
pub fn query_lints(schema: &Schema, query: &Query) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let check = |a: &Atom, ptr: Pointer, out: &mut Vec<Diagnostic>| {
        check_atom(
            a,
            schema,
            ptr,
            Code::QueryUnknownRelation,
            Code::QueryArityMismatch,
            out,
        )
    };
    match query {
        Query::Cq(q) => {
            for a in &q.atoms {
                check(a, Pointer::Query, &mut out);
            }
            out.extend(cq_lints(q, Pointer::Query));
        }
        Query::Ucq(u) => {
            for (i, d) in u.disjuncts.iter().enumerate() {
                for a in &d.atoms {
                    check(a, Pointer::QueryDisjunct(i), &mut out);
                }
                out.extend(cq_lints(d, Pointer::QueryDisjunct(i)));
            }
        }
        Query::Efo(e) => {
            for_each_efo_atom(&e.body, &mut |a| check(a, Pointer::Query, &mut out));
        }
        Query::Fo(f) => {
            for_each_fo_atom(&f.body, &mut |a| check(a, Pointer::Query, &mut out));
            out.extend(fo_safety(f, Pointer::Query));
        }
        Query::Fp(p) => {
            for (ri, rule) in p.rules.iter().enumerate() {
                for lit in &rule.body {
                    if let Literal::Edb(a) = lit {
                        check(a, Pointer::QueryRule(ri), &mut out);
                    }
                }
            }
            out.extend(fp_sanity(p, Pointer::Query));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Containment-constraint well-formedness
// ---------------------------------------------------------------------------

/// Validate a projection against a schema: known relation, in-range columns.
/// Returns the relation's arity when the relation exists.
fn check_projection(
    p: &Projection,
    schema: &Schema,
    side: &str,
    pointer: Pointer,
    out: &mut Vec<Diagnostic>,
) -> Option<usize> {
    match schema.arity(p.rel) {
        Err(_) => {
            out.push(Diagnostic::new(
                Code::CcUnknownRelation,
                pointer,
                format!(
                    "{side} projection references relation #{} which is not in the schema",
                    p.rel.0
                ),
            ));
            None
        }
        Ok(a) => {
            for &c in &p.cols {
                if c >= a {
                    out.push(Diagnostic::new(
                        Code::CcBadProjection,
                        pointer,
                        format!("{side} projection selects column {c} of a relation with arity {a}: not a projection"),
                    ));
                }
            }
            Some(a)
        }
    }
}

/// Output arity of a CC body, when determinable.
fn body_arity(body: &CcBody) -> usize {
    match body {
        CcBody::Proj(p) => p.cols.len(),
        CcBody::Cq(q) => q.head_arity(),
        CcBody::Ucq(u) => u.head_arity(),
        CcBody::Efo(e) => e.head.len(),
        CcBody::Fo(f) => f.head.len(),
        CcBody::Fp(p) => p.arities.get(p.output.0).copied().unwrap_or(0),
    }
}

fn body_lints(body: &CcBody, schema: &Schema, pointer: Pointer, out: &mut Vec<Diagnostic>) {
    let check = |a: &Atom, out: &mut Vec<Diagnostic>| {
        check_atom(
            a,
            schema,
            pointer,
            Code::CcUnknownRelation,
            Code::CcArityMismatch,
            out,
        )
    };
    match body {
        CcBody::Proj(p) => {
            check_projection(p, schema, "body", pointer, out);
        }
        CcBody::Cq(q) => {
            for a in &q.atoms {
                check(a, out);
            }
            out.extend(cq_lints(q, pointer));
            if cq_statically_unsat(q) {
                out.push(Diagnostic::new(
                    Code::CcTriviallySatisfied,
                    pointer,
                    "the body is statically unsatisfiable: the constraint never restricts anything",
                ));
            }
        }
        CcBody::Ucq(u) => {
            for d in &u.disjuncts {
                for a in &d.atoms {
                    check(a, out);
                }
                out.extend(cq_lints(d, pointer));
            }
            if u.disjuncts.iter().all(cq_statically_unsat) {
                out.push(Diagnostic::new(
                    Code::CcTriviallySatisfied,
                    pointer,
                    "every disjunct of the body is statically unsatisfiable: the constraint never restricts anything",
                ));
            }
        }
        CcBody::Efo(e) => for_each_efo_atom(&e.body, &mut |a| check(a, out)),
        CcBody::Fo(f) => {
            for_each_fo_atom(&f.body, &mut |a| check(a, out));
            out.extend(fo_safety(f, pointer));
        }
        CcBody::Fp(p) => {
            for rule in &p.rules {
                for lit in &rule.body {
                    if let Literal::Edb(a) = lit {
                        check(a, out);
                    }
                }
            }
            out.extend(fp_sanity(p, pointer));
        }
    }
}

/// Well-formedness of one upper-bound containment constraint.
pub fn cc_lints(
    cc: &ContainmentConstraint,
    schema: &Schema,
    master_schema: &Schema,
    index: usize,
) -> Vec<Diagnostic> {
    let pointer = Pointer::Constraint(index);
    let mut out = Vec::new();
    body_lints(&cc.body, schema, pointer, &mut out);
    match &cc.rhs {
        CcRhs::Empty => {
            if matches!(cc.body, CcBody::Proj(_)) {
                out.push(Diagnostic::new(
                    Code::CcForcesEmpty,
                    pointer,
                    "`π(R) ⊆ ∅` forces R to be empty in every partially closed database",
                ));
            }
        }
        CcRhs::Master(p) => {
            if check_projection(p, master_schema, "right-hand side", pointer, &mut out).is_some()
                && body_arity(&cc.body) != p.cols.len()
            {
                out.push(Diagnostic::new(
                    Code::CcArityMismatch,
                    pointer,
                    format!(
                        "body produces arity {} but the right-hand side projection has {} columns",
                        body_arity(&cc.body),
                        p.cols.len()
                    ),
                ));
            }
        }
    }
    out
}

/// Well-formedness of one lower-bound constraint `p(R_m) ⊆ q(R)`.
pub fn lower_bound_lints(
    lb: &LowerBound,
    schema: &Schema,
    master_schema: &Schema,
    index: usize,
) -> Vec<Diagnostic> {
    let pointer = Pointer::LowerBound(index);
    let mut out = Vec::new();
    body_lints(&lb.body, schema, pointer, &mut out);
    if check_projection(&lb.master, master_schema, "master", pointer, &mut out).is_some()
        && body_arity(&lb.body) != lb.master.cols.len()
    {
        out.push(Diagnostic::new(
            Code::CcArityMismatch,
            pointer,
            format!(
                "body produces arity {} but the master projection has {} columns",
                body_arity(&lb.body),
                lb.master.cols.len()
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ric_data::{RelId, RelationSchema};
    use ric_query::{parse_cq, parse_program};

    fn schema() -> Schema {
        Schema::from_relations(vec![
            RelationSchema::infinite("R", &["a", "b"]),
            RelationSchema::infinite("S", &["a"]),
        ])
        .unwrap()
    }

    fn has(diags: &[Diagnostic], code: Code) -> bool {
        diags.iter().any(|d| d.code == code)
    }

    #[test]
    fn unsafe_fo_variable_is_an_error() {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let (x, y) = (Var(0), Var(1));
        // y is neither free nor quantified.
        let q = FoQuery::new(
            vec![x],
            FoExpr::Atom(Atom::new(r, vec![Term::Var(x), Term::Var(y)])),
            vec!["x".into(), "y".into()],
        );
        let diags = fo_safety(&q, Pointer::Query);
        assert!(has(&diags, Code::FoUnsafeVariable));
        assert_eq!(diags[0].severity, crate::Severity::Error);
    }

    #[test]
    fn deep_fo_formula_is_an_error() {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let x = Var(0);
        let mut body = FoExpr::Atom(Atom::new(r, vec![Term::Var(x), Term::Var(x)]));
        for _ in 0..(MAX_FO_DEPTH + 10) {
            body = FoExpr::not(body);
        }
        let q = FoQuery::new(vec![x], body, vec!["x".into()]);
        assert!(has(&fo_safety(&q, Pointer::Query), Code::FoTooDeep));
    }

    #[test]
    fn quantified_fo_is_safe() {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let (x, y) = (Var(0), Var(1));
        let q = FoQuery::new(
            vec![x],
            FoExpr::Exists(
                vec![y],
                Box::new(FoExpr::Atom(Atom::new(r, vec![Term::Var(x), Term::Var(y)]))),
            ),
            vec!["x".into(), "y".into()],
        );
        assert!(fo_safety(&q, Pointer::Query).is_empty());
    }

    #[test]
    fn unreachable_fp_rule_warns() {
        let s = schema();
        let p = parse_program(&s, "Out(X) :- R(X, Y). Dead(X) :- S(X).", "Out").unwrap();
        let diags = fp_sanity(&p, Pointer::Query);
        assert!(has(&diags, Code::FpUnreachableRule));
        assert!(has(&diags, Code::FpTriviallyStratified));
    }

    #[test]
    fn invalid_fp_program_is_an_error() {
        // Hand-built: head variable not range-restricted.
        let p = Program {
            pred_names: vec!["Out".into()],
            arities: vec![1],
            rules: vec![ric_query::Rule {
                head: ric_query::datalog::PredId(0),
                head_args: vec![Term::Var(Var(0))],
                body: vec![],
                n_vars: 1,
            }],
            output: ric_query::datalog::PredId(0),
        };
        let diags = fp_sanity(&p, Pointer::Query);
        assert!(has(&diags, Code::FpInvalid));
        assert_eq!(diags[0].severity, crate::Severity::Error);
    }

    #[test]
    fn contradictory_equalities_warn() {
        let s = schema();
        let q = parse_cq(&s, "Q(X) :- R(X, Y), X = 1, X = 2.").unwrap();
        let diags = cq_lints(&q, Pointer::Query);
        assert!(has(&diags, Code::CqContradictoryEq));
        assert!(cq_statically_unsat(&q));
    }

    #[test]
    fn unsat_and_tautological_neqs() {
        let s = schema();
        let q = parse_cq(&s, "Q(X) :- R(X, Y), X != X.").unwrap();
        assert!(has(&cq_lints(&q, Pointer::Query), Code::CqUnsatisfiableNeq));
        assert!(cq_statically_unsat(&q));
        let q2 = parse_cq(&s, "Q(X) :- R(X, Y), 1 != 2.").unwrap();
        assert!(has(&cq_lints(&q2, Pointer::Query), Code::CqTautologicalNeq));
        assert!(!cq_statically_unsat(&q2));
        // Unsat through an equality chain: X = Y, X != Y.
        let q3 = parse_cq(&s, "Q(X) :- R(X, Y), X = Y, X != Y.").unwrap();
        assert!(has(
            &cq_lints(&q3, Pointer::Query),
            Code::CqUnsatisfiableNeq
        ));
        assert!(cq_statically_unsat(&q3));
    }

    #[test]
    fn duplicate_atoms_are_info() {
        let s = schema();
        let q = parse_cq(&s, "Q(X) :- R(X, Y), R(X, Y).").unwrap();
        let diags = cq_lints(&q, Pointer::Query);
        assert!(has(&diags, Code::CqDuplicateAtom));
        assert_eq!(
            diags
                .iter()
                .find(|d| d.code == Code::CqDuplicateAtom)
                .map(|d| d.severity),
            Some(crate::Severity::Info)
        );
    }

    #[test]
    fn cc_arity_mismatch_is_an_error() {
        let s = schema();
        let m = Schema::from_relations(vec![RelationSchema::infinite("M", &["a"])]).unwrap();
        let r = s.rel_id("R").unwrap();
        let mrel = m.rel_id("M").unwrap();
        // Body projects two columns, RHS has one.
        let cc = ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(r, vec![0, 1])),
            mrel,
            vec![0],
        );
        let diags = cc_lints(&cc, &s, &m, 0);
        assert!(has(&diags, Code::CcArityMismatch));
    }

    #[test]
    fn cc_bad_projection_and_unknown_relation_are_errors() {
        let s = schema();
        let m = Schema::from_relations(vec![RelationSchema::infinite("M", &["a"])]).unwrap();
        let r = s.rel_id("R").unwrap();
        let mrel = m.rel_id("M").unwrap();
        // Column 7 does not exist on R (arity 2).
        let cc = ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(r, vec![7])),
            mrel,
            vec![0],
        );
        assert!(has(&cc_lints(&cc, &s, &m, 0), Code::CcBadProjection));
        // Relation #9 does not exist in the master schema.
        let cc2 = ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(r, vec![0])),
            RelId(9),
            vec![0],
        );
        assert!(has(&cc_lints(&cc2, &s, &m, 0), Code::CcUnknownRelation));
    }

    #[test]
    fn trivially_satisfied_and_forces_empty_warn() {
        let s = schema();
        let m = Schema::from_relations(vec![RelationSchema::infinite("M", &["a"])]).unwrap();
        let r = s.rel_id("R").unwrap();
        let mrel = m.rel_id("M").unwrap();
        let q = parse_cq(&s, "Q(X) :- R(X, Y), X = 1, X = 2.").unwrap();
        let cc = ContainmentConstraint::into_master(CcBody::Cq(q), mrel, vec![0]);
        assert!(has(&cc_lints(&cc, &s, &m, 0), Code::CcTriviallySatisfied));
        let cc2 = ContainmentConstraint::into_empty(CcBody::Proj(Projection::new(r, vec![0])));
        assert!(has(&cc_lints(&cc2, &s, &m, 0), Code::CcForcesEmpty));
    }

    #[test]
    fn query_atom_schema_conformance() {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        // Arity mismatch: R used with one argument.
        let bad = Cq {
            n_vars: 1,
            head: vec![Term::Var(Var(0))],
            atoms: vec![Atom::new(r, vec![Term::Var(Var(0))])],
            eqs: vec![],
            neqs: vec![],
            var_names: vec!["x".into()],
        };
        let diags = query_lints(&s, &Query::Cq(bad));
        assert!(has(&diags, Code::QueryArityMismatch));
        // Unknown relation id.
        let unknown = Cq {
            n_vars: 1,
            head: vec![Term::Var(Var(0))],
            atoms: vec![Atom::new(RelId(9), vec![Term::Var(Var(0))])],
            eqs: vec![],
            neqs: vec![],
            var_names: vec!["x".into()],
        };
        let diags = query_lints(&s, &Query::Cq(unknown));
        assert!(has(&diags, Code::QueryUnknownRelation));
    }

    #[test]
    fn lower_bound_arity_mismatch() {
        let s = schema();
        let m = Schema::from_relations(vec![RelationSchema::infinite("M", &["a", "b"])]).unwrap();
        let mrel = m.rel_id("M").unwrap();
        let q = parse_cq(&s, "Q(X) :- S(X).").unwrap();
        let lb = LowerBound {
            master: Projection::new(mrel, vec![0, 1]),
            body: CcBody::Cq(q),
        };
        assert!(has(
            &lower_bound_lints(&lb, &s, &m, 0),
            Code::CcArityMismatch
        ));
    }
}

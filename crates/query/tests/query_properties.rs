//! Property-based tests for the query layer: parser round-trips, tableau
//! normalisation invariants, datalog vs CQ agreement on non-recursive
//! programs, and ∃FO⁺ DNF semantics.
//!
//! These suites need the external `proptest` crate, which is unavailable in
//! the offline build; enable the off-by-default `proptest` cargo feature to
//! run them (`cargo test --features proptest`).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use ric_data::{Database, RelationSchema, Schema, Tuple, Value};
use ric_query::tableau::Tableau;
use ric_query::{parse_cq, parse_program, EfoExpr, EfoQuery, Term, Var};

fn schema() -> Schema {
    Schema::from_relations(vec![RelationSchema::infinite("E", &["a", "b"])]).unwrap()
}

prop_compose! {
    fn arb_db()(edges in proptest::collection::vec((0i64..7, 0i64..7), 0..14)) -> Database {
        let s = schema();
        let e = s.rel_id("E").unwrap();
        let mut db = Database::empty(&s);
        for (a, b) in edges {
            db.insert(e, Tuple::new([Value::int(a), Value::int(b)]));
        }
        db
    }
}

proptest! {
    /// Display → parse is the identity on evaluation behaviour.
    #[test]
    fn parse_display_roundtrip(db in arb_db(), qi in 0usize..4) {
        let s = schema();
        let sources = [
            "Q(X) :- E(X, Y).",
            "Q(X, Z) :- E(X, Y), E(Y, Z), X != Z.",
            "Q(Y) :- E(3, Y), Y != 0.",
            "Q() :- E(X, X).",
        ];
        let q = parse_cq(&s, sources[qi]).unwrap();
        let printed = format!("{}.", q.display(&s));
        let reparsed = parse_cq(&s, &printed).unwrap();
        prop_assert_eq!(
            ric_query::eval::eval_cq(&q, &db).unwrap(),
            ric_query::eval::eval_cq(&reparsed, &db).unwrap(),
            "printed form: {}", printed
        );
    }

    /// Tableau normalisation preserves evaluation.
    #[test]
    fn tableau_preserves_semantics(db in arb_db()) {
        let s = schema();
        let e = s.rel_id("E").unwrap();
        // A query with equalities that normalisation must fold away:
        // Q(X) :- E(X, Y), E(Y2, Z), Y = Y2, Z = 4.
        let mut b = ric_query::Cq::builder();
        let (x, y, y2, z) = (b.var("x"), b.var("y"), b.var("y2"), b.var("z"));
        let q = b
            .atom(e, vec![Term::Var(x), Term::Var(y)])
            .atom(e, vec![Term::Var(y2), Term::Var(z)])
            .eq(Term::Var(y), Term::Var(y2))
            .eq(Term::Var(z), Term::from(4))
            .head_vars(vec![x])
            .build();
        let t = Tableau::of(&q).unwrap();
        // After folding: 2 canonical variables remain (x, y), z became 4.
        prop_assert_eq!(t.n_vars, 2);
        // Reference: evaluate an equivalent hand-rewritten query.
        let reference = parse_cq(&s, "Q(X) :- E(X, Y), E(Y, 4).").unwrap();
        prop_assert_eq!(
            ric_query::eval::eval_tableau(&t, &db),
            ric_query::eval::eval_cq(&reference, &db).unwrap()
        );
    }

    /// A non-recursive datalog program is equivalent to its CQ unfolding.
    #[test]
    fn nonrecursive_datalog_equals_cq(db in arb_db()) {
        let s = schema();
        let p = parse_program(
            &s,
            "Hop2(X, Z) :- E(X, Y), E(Y, Z). Out(X) :- Hop2(X, Z), Z = 5.",
            "Out",
        ).unwrap();
        let q = parse_cq(&s, "Q(X) :- E(X, Y), E(Y, 5).").unwrap();
        prop_assert_eq!(
            p.eval(&db),
            ric_query::eval::eval_cq(&q, &db).unwrap()
        );
    }

    /// ∃FO⁺ evaluation distributes over disjunction: Q1 ∨ Q2 answers are
    /// exactly the union of the disjunct answers.
    #[test]
    fn efo_disjunction_is_union(db in arb_db()) {
        let s = schema();
        let e = s.rel_id("E").unwrap();
        let x = Var(0);
        let y = Var(1);
        let left = EfoExpr::And(vec![
            EfoExpr::Atom(ric_query::Atom::new(e, vec![Term::Var(x), Term::Var(y)])),
            EfoExpr::Eq(Term::Var(y), Term::from(1)),
        ]);
        let right = EfoExpr::And(vec![
            EfoExpr::Atom(ric_query::Atom::new(e, vec![Term::Var(x), Term::Var(y)])),
            EfoExpr::Eq(Term::Var(y), Term::from(2)),
        ]);
        let both = EfoQuery::new(
            vec![Term::Var(x)],
            EfoExpr::Or(vec![left.clone(), right.clone()]),
            vec!["x".into(), "y".into()],
        );
        let l = EfoQuery::new(vec![Term::Var(x)], left, vec!["x".into(), "y".into()]);
        let r = EfoQuery::new(vec![Term::Var(x)], right, vec!["x".into(), "y".into()]);
        let mut expected = l.eval(&db).unwrap();
        expected.extend(r.eval(&db).unwrap());
        prop_assert_eq!(both.eval(&db).unwrap(), expected);
    }

    /// The datalog transitive closure agrees with a reachability BFS.
    #[test]
    fn datalog_tc_equals_bfs(db in arb_db()) {
        let s = schema();
        let e = s.rel_id("E").unwrap();
        let p = parse_program(&s, "Tc(X,Y) :- E(X,Y). Tc(X,Y) :- E(X,Z), Tc(Z,Y).", "Tc")
            .unwrap();
        let tc = p.eval(&db);
        // BFS reference.
        let edges: Vec<(Value, Value)> = db
            .instance(e)
            .iter()
            .map(|t| (t.get(0).clone(), t.get(1).clone()))
            .collect();
        let nodes: std::collections::BTreeSet<Value> =
            edges.iter().flat_map(|(a, b)| [a.clone(), b.clone()]).collect();
        let mut expected = std::collections::BTreeSet::new();
        for start in &nodes {
            let mut frontier = vec![start.clone()];
            let mut seen = std::collections::BTreeSet::new();
            while let Some(n) = frontier.pop() {
                for (a, b) in &edges {
                    if a == &n && seen.insert(b.clone()) {
                        frontier.push(b.clone());
                    }
                }
            }
            for b in seen {
                expected.insert(Tuple::new([start.clone(), b]));
            }
        }
        prop_assert_eq!(tc, expected);
    }
}

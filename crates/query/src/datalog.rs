//! Datalog (the paper's FP, Section 2.1(f)): positive rules with `=` and `≠`,
//! evaluated with an inflationary (semi-naive) fixpoint.
//!
//! FP sits on the undecidable side of Tables I and II; like FO it is needed
//! here so the bounded semi-decision procedures can evaluate FP queries (e.g.
//! the transitive-closure query `Q_3` of Example 1.1 and the 2-head-DFA
//! reachability query of Theorem 3.1(3)).

use crate::cq::Atom;
use crate::term::{Term, Var};
use ric_data::{Database, Instance, Tuple, Value};
use std::collections::BTreeSet;
use std::fmt;

/// Identifies an IDB predicate within a [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PredId(pub usize);

/// A body literal.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Literal {
    /// An EDB atom over the database schema.
    Edb(Atom),
    /// An IDB atom over a program predicate.
    Idb(PredId, Vec<Term>),
    /// Equality.
    Eq(Term, Term),
    /// Inequality.
    Neq(Term, Term),
}

/// A rule `p(x̄) ← l_1, …, l_n`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// Head predicate.
    pub head: PredId,
    /// Head arguments.
    pub head_args: Vec<Term>,
    /// Body literals.
    pub body: Vec<Literal>,
    /// Number of variables in the rule (rule-local numbering).
    pub n_vars: u32,
}

/// Hard cap on body literals per rule; beyond it [`Program::validate`]
/// rejects the rule instead of letting the recursive evaluator chew through
/// an adversarial body (each literal adds a recursion frame in `fire_inner`).
pub const MAX_RULE_BODY: usize = 4096;

/// Why a program is ill-formed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProgramError {
    /// A head or comparison variable that occurs in no positive relational
    /// body literal (not range-restricted).
    NotRangeRestricted { rule: usize, var: Var },
    /// An IDB atom whose arity disagrees with the predicate declaration.
    ArityMismatch { rule: usize, pred: PredId },
    /// A rule body with more than [`MAX_RULE_BODY`] literals.
    BodyTooLong { rule: usize, len: usize },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::NotRangeRestricted { rule, var } => {
                write!(f, "rule {rule}: variable {var} is not range-restricted")
            }
            ProgramError::ArityMismatch { rule, pred } => {
                write!(f, "rule {rule}: arity mismatch for predicate P{}", pred.0)
            }
            ProgramError::BodyTooLong { rule, len } => {
                write!(
                    f,
                    "rule {rule}: body has {len} literals (limit {MAX_RULE_BODY})"
                )
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A datalog program with a designated output predicate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    /// Predicate display names.
    pub pred_names: Vec<String>,
    /// Predicate arities.
    pub arities: Vec<usize>,
    /// The rules.
    pub rules: Vec<Rule>,
    /// The output predicate.
    pub output: PredId,
}

impl Program {
    /// Validate range restriction and arities.
    pub fn validate(&self) -> Result<(), ProgramError> {
        for (ri, rule) in self.rules.iter().enumerate() {
            if rule.body.len() > MAX_RULE_BODY {
                return Err(ProgramError::BodyTooLong {
                    rule: ri,
                    len: rule.body.len(),
                });
            }
            // Arities of IDB literals and the head.
            if rule.head_args.len() != self.arities[rule.head.0] {
                return Err(ProgramError::ArityMismatch {
                    rule: ri,
                    pred: rule.head,
                });
            }
            for lit in &rule.body {
                if let Literal::Idb(p, args) = lit {
                    if args.len() != self.arities[p.0] {
                        return Err(ProgramError::ArityMismatch { rule: ri, pred: *p });
                    }
                }
            }
            // Range restriction: variables bound by a positive relational
            // literal, closed under equality propagation (`x = y` or
            // `x = c` makes `x` bound when the other side is).
            let mut positive: BTreeSet<Var> = BTreeSet::new();
            for lit in &rule.body {
                match lit {
                    Literal::Edb(a) => positive.extend(a.vars()),
                    Literal::Idb(_, args) => positive.extend(args.iter().filter_map(Term::as_var)),
                    _ => {}
                }
            }
            loop {
                let mut grew = false;
                for lit in &rule.body {
                    if let Literal::Eq(l, r) = lit {
                        let l_bound = match l {
                            Term::Const(_) => true,
                            Term::Var(v) => positive.contains(v),
                        };
                        let r_bound = match r {
                            Term::Const(_) => true,
                            Term::Var(v) => positive.contains(v),
                        };
                        if l_bound && !r_bound {
                            if let Term::Var(v) = r {
                                grew |= positive.insert(*v);
                            }
                        }
                        if r_bound && !l_bound {
                            if let Term::Var(v) = l {
                                grew |= positive.insert(*v);
                            }
                        }
                    }
                }
                if !grew {
                    break;
                }
            }
            let check = |t: &Term| -> Result<(), ProgramError> {
                if let Term::Var(v) = t {
                    if !positive.contains(v) {
                        return Err(ProgramError::NotRangeRestricted { rule: ri, var: *v });
                    }
                }
                Ok(())
            };
            for t in &rule.head_args {
                check(t)?;
            }
            for lit in &rule.body {
                match lit {
                    Literal::Eq(l, r) | Literal::Neq(l, r) => {
                        check(l)?;
                        check(r)?;
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// Evaluate the program on a database with a semi-naive fixpoint; returns
    /// the output predicate's tuples.
    pub fn eval(&self, db: &Database) -> BTreeSet<Tuple> {
        self.eval_all(db)[self.output.0].iter().cloned().collect()
    }

    /// Evaluate and return every IDB instance (useful for debugging and for
    /// the reduction tests, which inspect auxiliary predicates).
    pub fn eval_all(&self, db: &Database) -> Vec<Instance> {
        let n = self.arities.len();
        let mut idb: Vec<Instance> = vec![Instance::new(); n];
        let mut delta: Vec<Instance> = vec![Instance::new(); n];

        // First round: every rule against the (empty) IDB.
        for rule in &self.rules {
            for t in fire(rule, db, &idb, &delta, None) {
                if idb[rule.head.0].insert(t.clone()) {
                    delta[rule.head.0].insert(t);
                }
            }
        }
        // Semi-naive iteration: each subsequent round requires at least one
        // IDB literal bound to the previous round's delta.
        loop {
            let mut new_delta: Vec<Instance> = vec![Instance::new(); n];
            let mut grew = false;
            for rule in &self.rules {
                let idb_positions: Vec<usize> = rule
                    .body
                    .iter()
                    .enumerate()
                    .filter_map(|(i, l)| matches!(l, Literal::Idb(..)).then_some(i))
                    .collect();
                for &pos in &idb_positions {
                    let Literal::Idb(p, _) = &rule.body[pos] else {
                        unreachable!()
                    };
                    if delta[p.0].is_empty() {
                        continue;
                    }
                    for t in fire(rule, db, &idb, &delta, Some(pos)) {
                        if !idb[rule.head.0].contains(&t) {
                            new_delta[rule.head.0].insert(t);
                            grew = true;
                        }
                    }
                }
            }
            if !grew {
                break;
            }
            for (full, d) in idb.iter_mut().zip(new_delta.iter()) {
                full.union_with(d);
            }
            // Note: classic semi-naive joins delta against "idb before this
            // round" for the delta position; joining against the updated idb
            // is still sound for positive programs (it may only find tuples
            // earlier).
            delta = new_delta;
        }
        idb
    }
}

/// Evaluation context for one rule firing, threaded through the recursion.
struct FireCtx<'a> {
    rule: &'a Rule,
    order: &'a [usize],
    db: &'a Database,
    idb: &'a [Instance],
    delta: &'a [Instance],
    /// Body position whose IDB literal joins against `delta` instead of the
    /// full `idb` — the position-precise semi-naive restriction.
    delta_pos: Option<usize>,
}

/// Evaluate one rule body; if `delta_pos` is set, the IDB literal at that
/// position ranges over the previous round's delta only, so every derived
/// tuple genuinely uses a last-round fact at that position.
fn fire(
    rule: &Rule,
    db: &Database,
    idb: &[Instance],
    delta: &[Instance],
    delta_pos: Option<usize>,
) -> Vec<Tuple> {
    let Some(order) = schedule_body(rule) else {
        // No evaluable ordering (a comparison never gets its variables
        // bound); such a rule cannot derive anything.
        return Vec::new();
    };
    let ctx = FireCtx {
        rule,
        order: &order,
        db,
        idb,
        delta,
        delta_pos,
    };
    let mut out = Vec::new();
    let mut binding: Vec<Option<Value>> = vec![None; rule.n_vars as usize];
    fire_inner(&ctx, 0, &mut binding, &mut out);
    out
}

/// Greedily order the body so every comparison sees the bindings it needs:
/// relational literals are always schedulable (they bind their variables),
/// `l = r` needs at least one side bound (it then binds the other), and
/// `l ≠ r` needs both sides bound. The scan restarts from the front after
/// each pick, so the original literal order is preserved wherever legal.
/// `None` when some comparison can never be scheduled.
#[allow(clippy::needless_range_loop)] // `i` indexes three parallel structures
fn schedule_body(rule: &Rule) -> Option<Vec<usize>> {
    let n = rule.body.len();
    let mut order = Vec::with_capacity(n);
    let mut scheduled = vec![false; n];
    let mut bound = vec![false; rule.n_vars as usize];
    let is_bound = |t: &Term, bound: &[bool]| match t {
        Term::Const(_) => true,
        Term::Var(v) => bound[v.idx()],
    };
    while order.len() < n {
        let mut progressed = false;
        for i in 0..n {
            if scheduled[i] {
                continue;
            }
            let ready = match &rule.body[i] {
                Literal::Edb(_) | Literal::Idb(..) => true,
                Literal::Eq(l, r) => is_bound(l, &bound) || is_bound(r, &bound),
                Literal::Neq(l, r) => is_bound(l, &bound) && is_bound(r, &bound),
            };
            if !ready {
                continue;
            }
            scheduled[i] = true;
            order.push(i);
            match &rule.body[i] {
                Literal::Edb(a) => {
                    for v in a.vars() {
                        bound[v.idx()] = true;
                    }
                }
                Literal::Idb(_, args) => {
                    for v in args.iter().filter_map(Term::as_var) {
                        bound[v.idx()] = true;
                    }
                }
                Literal::Eq(l, r) => {
                    for t in [l, r] {
                        if let Term::Var(v) = t {
                            bound[v.idx()] = true;
                        }
                    }
                }
                Literal::Neq(..) => {}
            }
            progressed = true;
            break;
        }
        if !progressed {
            return None;
        }
    }
    Some(order)
}

fn fire_inner(
    ctx: &FireCtx<'_>,
    depth: usize,
    binding: &mut Vec<Option<Value>>,
    out: &mut Vec<Tuple>,
) {
    if depth == ctx.order.len() {
        out.push(Tuple::new(ctx.rule.head_args.iter().map(|t| {
            match t {
                Term::Var(v) => binding[v.idx()]
                    .clone()
                    .unwrap_or_else(|| unreachable!("head vars are range-restricted")),
                Term::Const(c) => c.clone(),
            }
        })));
        return;
    }
    let pos = ctx.order[depth];
    match &ctx.rule.body[pos] {
        Literal::Eq(l, r) => {
            match (term_val(l, binding), term_val(r, binding)) {
                (Some(a), Some(b)) => {
                    if a == b {
                        fire_inner(ctx, depth + 1, binding, out);
                    }
                }
                (Some(a), None) => {
                    if let Term::Var(v) = r {
                        binding[v.idx()] = Some(a);
                        fire_inner(ctx, depth + 1, binding, out);
                        binding[v.idx()] = None;
                    }
                }
                (None, Some(b)) => {
                    if let Term::Var(v) = l {
                        binding[v.idx()] = Some(b);
                        fire_inner(ctx, depth + 1, binding, out);
                        binding[v.idx()] = None;
                    }
                }
                // The schedule guarantees one side is bound; an unscheduled
                // body never reaches here. Derive nothing rather than panic.
                (None, None) => {}
            }
        }
        Literal::Neq(l, r) => {
            // A half-bound `≠` is unreachable under a valid schedule; the
            // `is_some` guards derive nothing rather than panic.
            let (a, b) = (term_val(l, binding), term_val(r, binding));
            if a.is_some() && b.is_some() && a != b {
                fire_inner(ctx, depth + 1, binding, out);
            }
        }
        Literal::Edb(atom) => {
            join_literal(
                ctx,
                ctx.db.instance(atom.rel),
                &atom.args,
                depth,
                binding,
                out,
            );
        }
        Literal::Idb(p, args) => {
            // The delta position ranges over last round's new facts only.
            let inst = if ctx.delta_pos == Some(pos) {
                &ctx.delta[p.0]
            } else {
                &ctx.idb[p.0]
            };
            join_literal(ctx, inst, args, depth, binding, out);
        }
    }
}

/// Match a relational literal against an instance: probe the per-column
/// index when some argument is already bound, scan otherwise.
fn join_literal(
    ctx: &FireCtx<'_>,
    inst: &Instance,
    args: &[Term],
    depth: usize,
    binding: &mut Vec<Option<Value>>,
    out: &mut Vec<Tuple>,
) {
    let probe_key = args
        .iter()
        .enumerate()
        .find_map(|(col, t)| term_val(t, binding).map(|v| (col, v)));
    match probe_key {
        Some((col, v)) => {
            let idx = inst.index();
            for &id in idx.probe(col, &v) {
                try_match(ctx, args, idx.tuple(id), depth, binding, out);
            }
        }
        None => {
            for tuple in inst.iter() {
                try_match(ctx, args, tuple, depth, binding, out);
            }
        }
    }
}

fn try_match(
    ctx: &FireCtx<'_>,
    args: &[Term],
    tuple: &Tuple,
    depth: usize,
    binding: &mut Vec<Option<Value>>,
    out: &mut Vec<Tuple>,
) {
    if args.len() != tuple.arity() {
        return;
    }
    let mut newly: Vec<usize> = Vec::new();
    for (term, value) in args.iter().zip(tuple.iter()) {
        match term {
            Term::Const(c) => {
                if c != value {
                    for &i in &newly {
                        binding[i] = None;
                    }
                    return;
                }
            }
            Term::Var(v) => match &binding[v.idx()] {
                Some(b) => {
                    if b != value {
                        for &i in &newly {
                            binding[i] = None;
                        }
                        return;
                    }
                }
                None => {
                    binding[v.idx()] = Some(value.clone());
                    newly.push(v.idx());
                }
            },
        }
    }
    fire_inner(ctx, depth + 1, binding, out);
    for &i in &newly {
        binding[i] = None;
    }
}

fn term_val(t: &Term, binding: &[Option<Value>]) -> Option<Value> {
    match t {
        Term::Const(c) => Some(c.clone()),
        Term::Var(v) => binding[v.idx()].clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ric_data::{RelationSchema, Schema};

    fn setup() -> (Schema, Database) {
        let s = Schema::from_relations(vec![RelationSchema::infinite("E", &["a", "b"])]).unwrap();
        let e = s.rel_id("E").unwrap();
        let mut db = Database::empty(&s);
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            db.insert(e, Tuple::new([Value::int(a), Value::int(b)]));
        }
        (s, db)
    }

    /// TC(x,y) ← E(x,y);  TC(x,y) ← E(x,z), TC(z,y).
    fn transitive_closure(s: &Schema) -> Program {
        let e = s.rel_id("E").unwrap();
        let tc = PredId(0);
        let (x, y, z) = (Var(0), Var(1), Var(2));
        let base = Rule {
            head: tc,
            head_args: vec![Term::Var(x), Term::Var(y)],
            body: vec![Literal::Edb(Atom::new(e, vec![Term::Var(x), Term::Var(y)]))],
            n_vars: 2,
        };
        let step = Rule {
            head: tc,
            head_args: vec![Term::Var(x), Term::Var(y)],
            body: vec![
                Literal::Edb(Atom::new(e, vec![Term::Var(x), Term::Var(z)])),
                Literal::Idb(tc, vec![Term::Var(z), Term::Var(y)]),
            ],
            n_vars: 3,
        };
        Program {
            pred_names: vec!["TC".into()],
            arities: vec![2],
            rules: vec![base, step],
            output: tc,
        }
    }

    #[test]
    fn transitive_closure_of_a_path() {
        let (s, db) = setup();
        let p = transitive_closure(&s);
        p.validate().unwrap();
        let res = p.eval(&db);
        assert_eq!(res.len(), 6); // 1-2,1-3,1-4,2-3,2-4,3-4
        assert!(res.contains(&Tuple::new([Value::int(1), Value::int(4)])));
        assert!(!res.contains(&Tuple::new([Value::int(4), Value::int(1)])));
    }

    #[test]
    fn cycle_closes_fully() {
        let (s, mut db) = setup();
        let e = s.rel_id("E").unwrap();
        db.insert(e, Tuple::new([Value::int(4), Value::int(1)]));
        let p = transitive_closure(&s);
        assert_eq!(p.eval(&db).len(), 16);
    }

    #[test]
    fn neq_literal_filters() {
        let (s, mut db) = setup();
        let e = s.rel_id("E").unwrap();
        db.insert(e, Tuple::new([Value::int(5), Value::int(5)]));
        let out = PredId(0);
        let (x, y) = (Var(0), Var(1));
        let p = Program {
            pred_names: vec!["NoLoop".into()],
            arities: vec![2],
            rules: vec![Rule {
                head: out,
                head_args: vec![Term::Var(x), Term::Var(y)],
                body: vec![
                    Literal::Edb(Atom::new(e, vec![Term::Var(x), Term::Var(y)])),
                    Literal::Neq(Term::Var(x), Term::Var(y)),
                ],
                n_vars: 2,
            }],
            output: out,
        };
        p.validate().unwrap();
        assert_eq!(p.eval(&db).len(), 3);
    }

    #[test]
    fn validation_rejects_unrestricted_head() {
        let (s, _) = setup();
        let e = s.rel_id("E").unwrap();
        let out = PredId(0);
        let (x, y, w) = (Var(0), Var(1), Var(2));
        let p = Program {
            pred_names: vec!["Bad".into()],
            arities: vec![1],
            rules: vec![Rule {
                head: out,
                head_args: vec![Term::Var(w)],
                body: vec![Literal::Edb(Atom::new(e, vec![Term::Var(x), Term::Var(y)]))],
                n_vars: 3,
            }],
            output: out,
        };
        assert!(matches!(
            p.validate(),
            Err(ProgramError::NotRangeRestricted { .. })
        ));
    }

    #[test]
    fn validation_rejects_arity_mismatch() {
        let (s, _) = setup();
        let e = s.rel_id("E").unwrap();
        let out = PredId(0);
        let (x, y) = (Var(0), Var(1));
        let p = Program {
            pred_names: vec!["Bad".into()],
            arities: vec![1],
            rules: vec![Rule {
                head: out,
                head_args: vec![Term::Var(x), Term::Var(y)],
                body: vec![Literal::Edb(Atom::new(e, vec![Term::Var(x), Term::Var(y)]))],
                n_vars: 2,
            }],
            output: out,
        };
        assert!(matches!(
            p.validate(),
            Err(ProgramError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn comparison_before_binding_literal_is_reordered_not_panicked() {
        // `Q(X) :- X = Y, E(X, Y).` is range-restricted (equality
        // propagation) but lists the comparison first; the evaluator used to
        // panic here and now schedules E(X,Y) before the equality.
        let (s, mut db) = setup();
        let e = s.rel_id("E").unwrap();
        db.insert(e, Tuple::new([Value::int(7), Value::int(7)]));
        let out = PredId(0);
        let (x, y) = (Var(0), Var(1));
        let p = Program {
            pred_names: vec!["Loop".into()],
            arities: vec![1],
            rules: vec![Rule {
                head: out,
                head_args: vec![Term::Var(x)],
                body: vec![
                    Literal::Eq(Term::Var(x), Term::Var(y)),
                    Literal::Edb(Atom::new(e, vec![Term::Var(x), Term::Var(y)])),
                ],
                n_vars: 2,
            }],
            output: out,
        };
        p.validate().unwrap();
        let res = p.eval(&db);
        assert_eq!(res.len(), 1);
        assert!(res.contains(&Tuple::new([Value::int(7)])));
    }

    #[test]
    fn neq_before_binding_literal_is_reordered() {
        let (s, mut db) = setup();
        let e = s.rel_id("E").unwrap();
        db.insert(e, Tuple::new([Value::int(5), Value::int(5)]));
        let out = PredId(0);
        let (x, y) = (Var(0), Var(1));
        let p = Program {
            pred_names: vec!["NoLoop".into()],
            arities: vec![2],
            rules: vec![Rule {
                head: out,
                head_args: vec![Term::Var(x), Term::Var(y)],
                body: vec![
                    Literal::Neq(Term::Var(x), Term::Var(y)),
                    Literal::Edb(Atom::new(e, vec![Term::Var(x), Term::Var(y)])),
                ],
                n_vars: 2,
            }],
            output: out,
        };
        p.validate().unwrap();
        assert_eq!(p.eval(&db).len(), 3, "the 5-5 loop is filtered");
    }

    #[test]
    fn validation_rejects_oversized_body() {
        let (s, _) = setup();
        let e = s.rel_id("E").unwrap();
        let out = PredId(0);
        let (x, y) = (Var(0), Var(1));
        let lit = Literal::Edb(Atom::new(e, vec![Term::Var(x), Term::Var(y)]));
        let p = Program {
            pred_names: vec!["Big".into()],
            arities: vec![1],
            rules: vec![Rule {
                head: out,
                head_args: vec![Term::Var(x)],
                body: vec![lit; MAX_RULE_BODY + 1],
                n_vars: 2,
            }],
            output: out,
        };
        assert!(matches!(
            p.validate(),
            Err(ProgramError::BodyTooLong { rule: 0, .. })
        ));
    }

    #[test]
    fn mutual_recursion_two_predicates() {
        let (s, db) = setup();
        let e = s.rel_id("E").unwrap();
        // Even(x,y): path of even length; Odd(x,y): odd length.
        let even = PredId(0);
        let odd = PredId(1);
        let (x, y, z) = (Var(0), Var(1), Var(2));
        let p = Program {
            pred_names: vec!["Even".into(), "Odd".into()],
            arities: vec![2, 2],
            rules: vec![
                Rule {
                    head: odd,
                    head_args: vec![Term::Var(x), Term::Var(y)],
                    body: vec![Literal::Edb(Atom::new(e, vec![Term::Var(x), Term::Var(y)]))],
                    n_vars: 2,
                },
                Rule {
                    head: even,
                    head_args: vec![Term::Var(x), Term::Var(y)],
                    body: vec![
                        Literal::Edb(Atom::new(e, vec![Term::Var(x), Term::Var(z)])),
                        Literal::Idb(odd, vec![Term::Var(z), Term::Var(y)]),
                    ],
                    n_vars: 3,
                },
                Rule {
                    head: odd,
                    head_args: vec![Term::Var(x), Term::Var(y)],
                    body: vec![
                        Literal::Edb(Atom::new(e, vec![Term::Var(x), Term::Var(z)])),
                        Literal::Idb(even, vec![Term::Var(z), Term::Var(y)]),
                    ],
                    n_vars: 3,
                },
            ],
            output: even,
        };
        p.validate().unwrap();
        let res = p.eval(&db); // path 1-2-3-4: even paths 1-3, 2-4
        assert_eq!(res.len(), 2);
        assert!(res.contains(&Tuple::new([Value::int(1), Value::int(3)])));
        assert!(res.contains(&Tuple::new([Value::int(2), Value::int(4)])));
    }
}

//! Conjunctive queries with equality and inequality.
//!
//! A CQ is built from relation atoms over the database schema `R`, equality
//! `=` and inequality `≠`, closed under `∧` and `∃` (Section 2.1(a)). We keep
//! the query in "rule body" form — a list of atoms plus explicit `=`/`≠`
//! side conditions — and normalise to the tableau representation
//! ([`crate::tableau::Tableau`]) on demand.

use crate::term::{Term, Var};
use ric_data::{RelId, Schema, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A relation atom `R_i(t_1, …, t_k)`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Atom {
    /// The relation.
    pub rel: RelId,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Build an atom.
    pub fn new(rel: RelId, args: Vec<Term>) -> Self {
        Atom { rel, args }
    }

    /// Variables occurring in the atom, in order of appearance.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.args.iter().filter_map(Term::as_var)
    }
}

/// A conjunctive query `Q(u) :- A_1, …, A_m, eqs, neqs`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cq {
    /// Number of variables; variables are `Var(0) .. Var(n_vars-1)`.
    pub n_vars: u32,
    /// The output summary `u_Q` (terms, usually variables).
    pub head: Vec<Term>,
    /// Relation atoms.
    pub atoms: Vec<Atom>,
    /// Equality side conditions `t = t′`.
    pub eqs: Vec<(Term, Term)>,
    /// Inequality side conditions `t ≠ t′`.
    pub neqs: Vec<(Term, Term)>,
    /// Optional display names, indexed by variable; may be shorter than
    /// `n_vars` (missing entries display as `x<i>`).
    pub var_names: Vec<String>,
}

impl Cq {
    /// Start building a CQ.
    pub fn builder() -> CqBuilder {
        CqBuilder::default()
    }

    /// The set of variables appearing anywhere in the query.
    pub fn all_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        for t in &self.head {
            if let Some(v) = t.as_var() {
                out.insert(v);
            }
        }
        for a in &self.atoms {
            out.extend(a.vars());
        }
        for (l, r) in self.eqs.iter().chain(self.neqs.iter()) {
            if let Some(v) = l.as_var() {
                out.insert(v);
            }
            if let Some(v) = r.as_var() {
                out.insert(v);
            }
        }
        out
    }

    /// All constants appearing in the query (head, atoms, `=`/`≠`).
    pub fn constants(&self) -> BTreeSet<Value> {
        let mut out = BTreeSet::new();
        let mut push = |t: &Term| {
            if let Term::Const(c) = t {
                out.insert(c.clone());
            }
        };
        for t in &self.head {
            push(t);
        }
        for a in &self.atoms {
            for t in &a.args {
                push(t);
            }
        }
        for (l, r) in self.eqs.iter().chain(self.neqs.iter()) {
            push(l);
            push(r);
        }
        out
    }

    /// Output arity.
    pub fn head_arity(&self) -> usize {
        self.head.len()
    }

    /// Is this a Boolean (nullary-head) query?
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// Human-readable variable name.
    pub fn var_name(&self, v: Var) -> String {
        self.var_names
            .get(v.idx())
            .cloned()
            .unwrap_or_else(|| format!("x{}", v.0))
    }

    /// Render against a schema (resolves relation names).
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        CqDisplay { cq: self, schema }
    }
}

struct CqDisplay<'a> {
    cq: &'a Cq,
    schema: &'a Schema,
}

impl fmt::Display for CqDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let term = |t: &Term| match t {
            Term::Var(v) => self.cq.var_name(*v),
            Term::Const(Value::Int(i)) => i.to_string(),
            Term::Const(Value::Str(s)) => format!("'{s}'"),
        };
        write!(f, "Q(")?;
        for (i, t) in self.cq.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", term(t))?;
        }
        write!(f, ") :- ")?;
        let mut first = true;
        for a in &self.cq.atoms {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            let name = self
                .schema
                .relation(a.rel)
                .map(|r| r.name.clone())
                .unwrap_or_else(|_| a.rel.to_string());
            write!(f, "{name}(")?;
            for (i, t) in a.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", term(t))?;
            }
            write!(f, ")")?;
        }
        for (l, r) in &self.cq.eqs {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{} = {}", term(l), term(r))?;
        }
        for (l, r) in &self.cq.neqs {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{} != {}", term(l), term(r))?;
        }
        Ok(())
    }
}

/// Incremental CQ construction with named variables.
#[derive(Default, Debug)]
pub struct CqBuilder {
    names: Vec<String>,
    head: Vec<Term>,
    atoms: Vec<Atom>,
    eqs: Vec<(Term, Term)>,
    neqs: Vec<(Term, Term)>,
}

impl CqBuilder {
    /// Get (or create) the variable with the given display name.
    pub fn var(&mut self, name: &str) -> Var {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return Var(i as u32);
        }
        self.names.push(name.to_string());
        Var((self.names.len() - 1) as u32)
    }

    /// Set the output summary.
    pub fn head(mut self, terms: Vec<Term>) -> Self {
        self.head = terms;
        self
    }

    /// Set the output summary from variables.
    pub fn head_vars(mut self, vars: Vec<Var>) -> Self {
        self.head = vars.into_iter().map(Term::Var).collect();
        self
    }

    /// Add a relation atom.
    pub fn atom(mut self, rel: RelId, args: Vec<Term>) -> Self {
        self.atoms.push(Atom::new(rel, args));
        self
    }

    /// Add an equality `l = r`.
    pub fn eq(mut self, l: impl Into<Term>, r: impl Into<Term>) -> Self {
        self.eqs.push((l.into(), r.into()));
        self
    }

    /// Add an inequality `l ≠ r`.
    pub fn neq(mut self, l: impl Into<Term>, r: impl Into<Term>) -> Self {
        self.neqs.push((l.into(), r.into()));
        self
    }

    /// Finish, producing the CQ.
    pub fn build(self) -> Cq {
        let mut max = self.names.len() as u32;
        let bump = |t: &Term, max: &mut u32| {
            if let Term::Var(v) = t {
                if v.0 + 1 > *max {
                    *max = v.0 + 1;
                }
            }
        };
        for t in &self.head {
            bump(t, &mut max);
        }
        for a in &self.atoms {
            for t in &a.args {
                bump(t, &mut max);
            }
        }
        for (l, r) in self.eqs.iter().chain(self.neqs.iter()) {
            bump(l, &mut max);
            bump(r, &mut max);
        }
        Cq {
            n_vars: max,
            head: self.head,
            atoms: self.atoms,
            eqs: self.eqs,
            neqs: self.neqs,
            var_names: self.names,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ric_data::RelationSchema;

    fn schema() -> Schema {
        Schema::from_relations(vec![RelationSchema::infinite("R", &["a", "b"])]).unwrap()
    }

    #[test]
    fn builder_assigns_dense_vars() {
        let mut b = Cq::builder();
        let x = b.var("x");
        let y = b.var("y");
        let x2 = b.var("x");
        assert_eq!(x, x2);
        assert_ne!(x, y);
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let q = b
            .atom(r, vec![Term::Var(x), Term::Var(y)])
            .neq(Term::Var(x), Term::Var(y))
            .head_vars(vec![x])
            .build();
        assert_eq!(q.n_vars, 2);
        assert_eq!(q.all_vars().len(), 2);
        assert_eq!(q.head_arity(), 1);
        assert!(!q.is_boolean());
    }

    #[test]
    fn constants_collected_from_everywhere() {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let mut b = Cq::builder();
        let x = b.var("x");
        let q = b
            .atom(r, vec![Term::Var(x), Term::from("c")])
            .eq(Term::Var(x), Term::from(1))
            .neq(Term::Var(x), Term::from(2))
            .head(vec![Term::from(3)])
            .build();
        let cs = q.constants();
        assert_eq!(cs.len(), 4);
        assert!(cs.contains(&Value::str("c")));
    }

    #[test]
    fn display_renders_rule_syntax() {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let mut b = Cq::builder();
        let x = b.var("x");
        let y = b.var("y");
        let q = b
            .atom(r, vec![Term::Var(x), Term::Var(y)])
            .neq(Term::Var(y), Term::from("c"))
            .head_vars(vec![x])
            .build();
        assert_eq!(q.display(&s).to_string(), "Q(x) :- R(x, y), y != 'c'");
    }
}

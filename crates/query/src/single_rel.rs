//! The single-relation transform of Lemma 3.2.
//!
//! For every schema `R = (R_1, …, R_n)` there is a single relation schema
//! `R̂`, a linear-time database transform `f_D`, and a linear-time query
//! transform `f_Q` with `Q(D) = f_Q(Q)(f_D(D))`. The construction pads every
//! relation to a uniform arity and appends a tag attribute `A_R ∈ [1, n]`
//! identifying the source relation; `f_Q` rewrites each atom `R_j(x̄)` into a
//! tagged atom over `R̂`.

use crate::cq::{Atom, Cq};
use crate::term::{Term, Var};
use ric_data::{Attribute, Database, RelationSchema, Schema, Tuple, Value};

/// The reusable output of Lemma 3.2 for a fixed source schema.
#[derive(Clone, Debug)]
pub struct SingleRelTransform {
    /// The source schema `R`.
    pub source: Schema,
    /// The single-relation target schema `(R̂)`.
    pub target: Schema,
    /// Uniform attribute count (max arity over the source relations).
    pub width: usize,
    /// The padding constant used by `f_D` for missing columns.
    pub pad: Value,
}

impl SingleRelTransform {
    /// Build the transform for a source schema. `Lemma 3.2` allows any
    /// uniformisation; we pad with a dedicated constant.
    pub fn new(source: &Schema) -> Self {
        let width = source.iter().map(|(_, r)| r.arity()).max().unwrap_or(0);
        let mut attrs: Vec<Attribute> = (0..width)
            .map(|i| Attribute::new(format!("c{i}")))
            .collect();
        attrs.push(Attribute::new("tag"));
        let target = Schema::from_relations(vec![RelationSchema::new("Rhat", attrs)])
            .unwrap_or_else(|e| unreachable!("one fresh relation never collides: {e:?}"));
        SingleRelTransform {
            source: source.clone(),
            target,
            width,
            pad: Value::str("\u{22A5}pad"),
        }
    }

    /// `f_D`: map an instance of the source schema to an instance of `R̂`.
    pub fn map_database(&self, db: &Database) -> Database {
        let mut out = Database::empty(&self.target);
        let rhat = self
            .target
            .rel_id("Rhat")
            .unwrap_or_else(|| unreachable!("target schema has Rhat by construction"));
        for (rel, inst) in db.iter() {
            let tag = Value::int(rel.0 as i64 + 1);
            for t in inst.iter() {
                let mut fields: Vec<Value> = t.iter().cloned().collect();
                fields.resize(self.width, self.pad.clone());
                fields.push(tag.clone());
                out.insert(rhat, Tuple::new(fields));
            }
        }
        out
    }

    /// `f_Q`: rewrite a CQ over the source schema into one over `R̂`. Each
    /// source atom's missing columns become fresh existential variables.
    pub fn map_query(&self, q: &Cq) -> Cq {
        let rhat = self
            .target
            .rel_id("Rhat")
            .unwrap_or_else(|| unreachable!("target schema has Rhat by construction"));
        let mut next = q.n_vars;
        let mut names = q.var_names.clone();
        names.resize(q.n_vars as usize, String::new());
        for (i, n) in names.iter_mut().enumerate() {
            if n.is_empty() {
                *n = format!("x{i}");
            }
        }
        let atoms = q
            .atoms
            .iter()
            .map(|a| {
                let mut args = a.args.clone();
                while args.len() < self.width {
                    names.push(format!("_pad{next}"));
                    args.push(Term::Var(Var(next)));
                    next += 1;
                }
                args.push(Term::from(a.rel.0 as i64 + 1));
                Atom::new(rhat, args)
            })
            .collect();
        Cq {
            n_vars: next,
            head: q.head.clone(),
            atoms,
            eqs: q.eqs.clone(),
            neqs: q.neqs.clone(),
            var_names: names,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_cq;
    use ric_data::RelationSchema;

    fn source() -> Schema {
        Schema::from_relations(vec![
            RelationSchema::infinite("R", &["a"]),
            RelationSchema::infinite("S", &["a", "b", "c"]),
        ])
        .unwrap()
    }

    #[test]
    fn query_answers_preserved() {
        let s = source();
        let (r, srel) = (s.rel_id("R").unwrap(), s.rel_id("S").unwrap());
        let mut db = Database::empty(&s);
        db.insert(r, Tuple::new([Value::int(1)]));
        db.insert(r, Tuple::new([Value::int(2)]));
        db.insert(
            srel,
            Tuple::new([Value::int(1), Value::int(10), Value::int(20)]),
        );
        db.insert(
            srel,
            Tuple::new([Value::int(3), Value::int(30), Value::int(40)]),
        );

        // Q(x, b) :- R(x), S(x, b, c)
        let mut bld = Cq::builder();
        let (x, b, c) = (bld.var("x"), bld.var("b"), bld.var("c"));
        let q = bld
            .atom(r, vec![Term::Var(x)])
            .atom(srel, vec![Term::Var(x), Term::Var(b), Term::Var(c)])
            .head_vars(vec![x, b])
            .build();

        let tr = SingleRelTransform::new(&s);
        let db_hat = tr.map_database(&db);
        let q_hat = tr.map_query(&q);
        assert_eq!(
            eval_cq(&q, &db).unwrap(),
            eval_cq(&q_hat, &db_hat).unwrap(),
            "Lemma 3.2: Q(D) = f_Q(Q)(f_D(D))"
        );
        let expected = eval_cq(&q, &db).unwrap();
        assert_eq!(expected.len(), 1);
    }

    #[test]
    fn tags_separate_relations_of_same_arity() {
        let s = Schema::from_relations(vec![
            RelationSchema::infinite("P", &["a"]),
            RelationSchema::infinite("N", &["a"]),
        ])
        .unwrap();
        let (p, n) = (s.rel_id("P").unwrap(), s.rel_id("N").unwrap());
        let mut db = Database::empty(&s);
        db.insert(p, Tuple::new([Value::int(1)]));
        db.insert(n, Tuple::new([Value::int(2)]));
        let mut bld = Cq::builder();
        let x = bld.var("x");
        let q = bld.atom(p, vec![Term::Var(x)]).head_vars(vec![x]).build();
        let tr = SingleRelTransform::new(&s);
        let res = eval_cq(&tr.map_query(&q), &tr.map_database(&db)).unwrap();
        assert_eq!(res.len(), 1);
        assert!(res.contains(&Tuple::new([Value::int(1)])));
    }

    #[test]
    fn empty_schema_handled() {
        let s = Schema::new();
        let tr = SingleRelTransform::new(&s);
        assert_eq!(tr.width, 0);
        let db = Database::empty(&s);
        let mapped = tr.map_database(&db);
        assert_eq!(mapped.tuple_count(), 0);
    }
}

//! Full first-order queries (Section 2.1(d)), evaluated under active-domain
//! semantics.
//!
//! FO appears in the paper only on the *undecidable* side of Tables I and II
//! (Theorems 3.1 and 4.1): as soon as `L_Q` or `L_C` is FO, both RCDP and
//! RCQP become undecidable. We still need an evaluator — the bounded
//! semi-decision procedures of `ric-complete` search for violating extensions
//! and must evaluate FO queries and FO containment constraints on candidates.
//!
//! Quantifiers range over the *active domain*: every constant of the database
//! plus every constant of the query. This is the standard domain-independent
//! reading and matches how the paper's reductions use FO.

use crate::cq::Atom;
use crate::tableau::TableauError;
use crate::term::{Term, Var};
use ric_data::{Tuple, TupleStore, Value};
use std::collections::BTreeSet;

/// Hard cap on formula nesting depth during evaluation: `sat` recurses once
/// per connective and once per quantified variable, so an adversarially deep
/// formula would otherwise overflow the stack instead of failing cleanly.
pub const MAX_FO_DEPTH: usize = 512;

/// An FO formula.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FoExpr {
    /// A relation atom.
    Atom(Atom),
    /// Equality `t = t′` (negate for `≠`).
    Eq(Term, Term),
    /// Negation.
    Not(Box<FoExpr>),
    /// Conjunction.
    And(Vec<FoExpr>),
    /// Disjunction.
    Or(Vec<FoExpr>),
    /// Existential quantification.
    Exists(Vec<Var>, Box<FoExpr>),
    /// Universal quantification.
    Forall(Vec<Var>, Box<FoExpr>),
}

impl FoExpr {
    /// `¬e`.
    #[allow(clippy::should_implement_trait)] // constructor, not an operator impl
    pub fn not(e: FoExpr) -> FoExpr {
        FoExpr::Not(Box::new(e))
    }

    /// `l → r` as `¬l ∨ r`.
    pub fn implies(l: FoExpr, r: FoExpr) -> FoExpr {
        FoExpr::Or(vec![FoExpr::not(l), r])
    }

    /// `t ≠ t′`.
    pub fn neq(l: Term, r: Term) -> FoExpr {
        FoExpr::not(FoExpr::Eq(l, r))
    }

    /// All constants in the formula.
    pub fn constants(&self, out: &mut BTreeSet<Value>) {
        let push = |t: &Term, out: &mut BTreeSet<Value>| {
            if let Term::Const(c) = t {
                out.insert(c.clone());
            }
        };
        match self {
            FoExpr::Atom(a) => a.args.iter().for_each(|t| push(t, out)),
            FoExpr::Eq(l, r) => {
                push(l, out);
                push(r, out);
            }
            FoExpr::Not(e) => e.constants(out),
            FoExpr::And(ps) | FoExpr::Or(ps) => ps.iter().for_each(|p| p.constants(out)),
            FoExpr::Exists(_, e) | FoExpr::Forall(_, e) => e.constants(out),
        }
    }
}

/// An FO query `{ x̄ | φ(x̄) }` with free variables `head`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FoQuery {
    /// Number of variables (free and bound).
    pub n_vars: u32,
    /// The free (output) variables.
    pub head: Vec<Var>,
    /// The formula.
    pub body: FoExpr,
    /// Display names.
    pub var_names: Vec<String>,
}

impl FoQuery {
    /// Build a query, computing `n_vars` from the formula and head.
    pub fn new(head: Vec<Var>, body: FoExpr, var_names: Vec<String>) -> Self {
        fn scan(e: &FoExpr, max: &mut u32) {
            let bump = |t: &Term, max: &mut u32| {
                if let Term::Var(v) = t {
                    *max = (*max).max(v.0 + 1);
                }
            };
            match e {
                FoExpr::Atom(a) => a.args.iter().for_each(|t| bump(t, max)),
                FoExpr::Eq(l, r) => {
                    bump(l, max);
                    bump(r, max);
                }
                FoExpr::Not(x) => scan(x, max),
                FoExpr::And(ps) | FoExpr::Or(ps) => ps.iter().for_each(|p| scan(p, max)),
                FoExpr::Exists(vs, x) | FoExpr::Forall(vs, x) => {
                    for v in vs {
                        *max = (*max).max(v.0 + 1);
                    }
                    scan(x, max);
                }
            }
        }
        let mut max = var_names.len() as u32;
        for v in &head {
            max = max.max(v.0 + 1);
        }
        scan(&body, &mut max);
        FoQuery {
            n_vars: max,
            head,
            body,
            var_names,
        }
    }

    /// The active domain used for evaluation on `db`.
    pub fn active_domain<S: TupleStore>(&self, db: &S) -> Vec<Value> {
        let mut dom = BTreeSet::new();
        db.active_domain_into(&mut dom);
        self.body.constants(&mut dom);
        dom.into_iter().collect()
    }

    /// Evaluate under active-domain semantics.
    ///
    /// Panics when the formula is malformed (a free variable outside the
    /// head, or nesting beyond [`MAX_FO_DEPTH`]); use [`FoQuery::try_eval`]
    /// for a typed error instead.
    pub fn eval<S: TupleStore>(&self, db: &S) -> BTreeSet<Tuple> {
        self.try_eval(db).unwrap_or_else(|e| {
            panic!("FO evaluation failed ({e}); use try_eval for a typed error")
        })
    }

    /// Evaluate under active-domain semantics, with typed errors: a variable
    /// that is neither in the head nor quantified surfaces as
    /// [`TableauError::UnsafeVariable`], and nesting beyond [`MAX_FO_DEPTH`]
    /// as [`TableauError::TooDeep`] (instead of a stack overflow).
    pub fn try_eval<S: TupleStore>(&self, db: &S) -> Result<BTreeSet<Tuple>, TableauError> {
        let dom = self.active_domain(db);
        let mut out = BTreeSet::new();
        let mut binding: Vec<Option<Value>> = vec![None; self.n_vars as usize];
        self.enumerate_head(db, &dom, 0, &mut binding, &mut out)?;
        Ok(out)
    }

    /// Boolean evaluation (query with empty head). Panics like
    /// [`FoQuery::eval`] on malformed formulas.
    pub fn holds<S: TupleStore>(&self, db: &S) -> bool {
        !self.eval(db).is_empty()
    }

    fn enumerate_head<S: TupleStore>(
        &self,
        db: &S,
        dom: &[Value],
        i: usize,
        binding: &mut Vec<Option<Value>>,
        out: &mut BTreeSet<Tuple>,
    ) -> Result<(), TableauError> {
        if i == self.head.len() {
            if sat(&self.body, db, dom, binding, 0)? {
                let mut head = Vec::with_capacity(self.head.len());
                for v in &self.head {
                    head.push(
                        binding[v.idx()]
                            .clone()
                            .ok_or(TableauError::UnsafeVariable(*v))?,
                    );
                }
                out.insert(Tuple::new(head));
            }
            return Ok(());
        }
        let v = self.head[i];
        for val in dom {
            binding[v.idx()] = Some(val.clone());
            self.enumerate_head(db, dom, i + 1, binding, out)?;
        }
        binding[v.idx()] = None;
        Ok(())
    }
}

fn term_val(t: &Term, binding: &[Option<Value>]) -> Result<Value, TableauError> {
    match t {
        Term::Const(c) => Ok(c.clone()),
        Term::Var(v) => binding[v.idx()]
            .clone()
            .ok_or(TableauError::UnsafeVariable(*v)),
    }
}

fn sat<S: TupleStore>(
    e: &FoExpr,
    db: &S,
    dom: &[Value],
    binding: &mut Vec<Option<Value>>,
    depth: usize,
) -> Result<bool, TableauError> {
    if depth > MAX_FO_DEPTH {
        return Err(TableauError::TooDeep {
            limit: MAX_FO_DEPTH,
        });
    }
    Ok(match e {
        FoExpr::Atom(a) => {
            let mut args = Vec::with_capacity(a.args.len());
            for x in &a.args {
                args.push(term_val(x, binding)?);
            }
            db.contains(a.rel, &Tuple::new(args))
        }
        FoExpr::Eq(l, r) => term_val(l, binding)? == term_val(r, binding)?,
        FoExpr::Not(x) => !sat(x, db, dom, binding, depth + 1)?,
        FoExpr::And(ps) => {
            let mut all = true;
            for p in ps {
                if !sat(p, db, dom, binding, depth + 1)? {
                    all = false;
                    break;
                }
            }
            all
        }
        FoExpr::Or(ps) => {
            let mut any = false;
            for p in ps {
                if sat(p, db, dom, binding, depth + 1)? {
                    any = true;
                    break;
                }
            }
            any
        }
        FoExpr::Exists(vs, x) => quantify(vs, x, db, dom, binding, true, depth)?,
        FoExpr::Forall(vs, x) => !quantify(vs, x, db, dom, binding, false, depth)?,
    })
}

/// Enumerate assignments for `vs`; with `want = true` search for a satisfying
/// one (∃), with `want = false` search for a falsifying one (∀, caller
/// negates).
fn quantify<S: TupleStore>(
    vs: &[Var],
    body: &FoExpr,
    db: &S,
    dom: &[Value],
    binding: &mut Vec<Option<Value>>,
    want: bool,
    depth: usize,
) -> Result<bool, TableauError> {
    #[allow(clippy::too_many_arguments)]
    fn rec<S: TupleStore>(
        vs: &[Var],
        i: usize,
        body: &FoExpr,
        db: &S,
        dom: &[Value],
        binding: &mut Vec<Option<Value>>,
        want: bool,
        depth: usize,
    ) -> Result<bool, TableauError> {
        if depth + i > MAX_FO_DEPTH {
            return Err(TableauError::TooDeep {
                limit: MAX_FO_DEPTH,
            });
        }
        if i == vs.len() {
            return Ok(sat(body, db, dom, binding, depth + i + 1)? == want);
        }
        let v = vs[i];
        let saved = binding[v.idx()].take();
        for val in dom {
            binding[v.idx()] = Some(val.clone());
            match rec(vs, i + 1, body, db, dom, binding, want, depth) {
                Ok(true) => {
                    binding[v.idx()] = saved;
                    return Ok(true);
                }
                Ok(false) => {}
                Err(e) => {
                    binding[v.idx()] = saved;
                    return Err(e);
                }
            }
        }
        binding[v.idx()] = saved;
        Ok(false)
    }
    rec(vs, 0, body, db, dom, binding, want, depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ric_data::{Database, RelationSchema, Schema};

    fn setup() -> (Schema, Database) {
        let s = Schema::from_relations(vec![RelationSchema::infinite("E", &["a", "b"])]).unwrap();
        let e = s.rel_id("E").unwrap();
        let mut db = Database::empty(&s);
        for (a, b) in [(1, 2), (2, 3), (3, 1)] {
            db.insert(e, Tuple::new([Value::int(a), Value::int(b)]));
        }
        (s, db)
    }

    #[test]
    fn negation_finds_non_edges() {
        let (s, db) = setup();
        let e = s.rel_id("E").unwrap();
        let (x, y) = (Var(0), Var(1));
        // Q(x,y) := ∃-free: ¬E(x,y) over active domain
        let q = FoQuery::new(
            vec![x, y],
            FoExpr::not(FoExpr::Atom(Atom::new(e, vec![Term::Var(x), Term::Var(y)]))),
            vec!["x".into(), "y".into()],
        );
        let res = q.eval(&db);
        assert_eq!(res.len(), 9 - 3);
    }

    #[test]
    fn forall_total_relation() {
        let (s, db) = setup();
        let e = s.rel_id("E").unwrap();
        let (x, y) = (Var(0), Var(1));
        // φ := ∀x ∃y E(x, y) — every node has an out-edge (true on the cycle)
        let q = FoQuery::new(
            vec![],
            FoExpr::Forall(
                vec![x],
                Box::new(FoExpr::Exists(
                    vec![y],
                    Box::new(FoExpr::Atom(Atom::new(e, vec![Term::Var(x), Term::Var(y)]))),
                )),
            ),
            vec!["x".into(), "y".into()],
        );
        assert!(q.holds(&db));
        // Break the property: add an isolated endpoint 4 as a target only.
        let mut db2 = db.clone();
        db2.insert(e, Tuple::new([Value::int(3), Value::int(4)]));
        assert!(!q.holds(&db2));
    }

    #[test]
    fn implication_and_neq() {
        let (s, db) = setup();
        let e = s.rel_id("E").unwrap();
        let (x, y) = (Var(0), Var(1));
        // φ := ∀x∀y (E(x,y) → x ≠ y) — irreflexivity
        let q = FoQuery::new(
            vec![],
            FoExpr::Forall(
                vec![x, y],
                Box::new(FoExpr::implies(
                    FoExpr::Atom(Atom::new(e, vec![Term::Var(x), Term::Var(y)])),
                    FoExpr::neq(Term::Var(x), Term::Var(y)),
                )),
            ),
            vec!["x".into(), "y".into()],
        );
        assert!(q.holds(&db));
        let mut db2 = db.clone();
        db2.insert(e, Tuple::new([Value::int(7), Value::int(7)]));
        assert!(!q.holds(&db2));
    }

    #[test]
    fn deeply_nested_formula_errors_instead_of_overflowing() {
        let (s, db) = setup();
        let e = s.rel_id("E").unwrap();
        let x = Var(0);
        let mut body = FoExpr::Atom(Atom::new(e, vec![Term::Var(x), Term::Var(x)]));
        for _ in 0..(MAX_FO_DEPTH + 10) {
            body = FoExpr::Not(Box::new(FoExpr::Not(Box::new(body))));
        }
        let q = FoQuery::new(vec![x], body, vec!["x".into()]);
        assert_eq!(
            q.try_eval(&db),
            Err(TableauError::TooDeep {
                limit: MAX_FO_DEPTH
            })
        );
    }

    #[test]
    fn unbound_variable_errors_instead_of_panicking() {
        let (s, db) = setup();
        let e = s.rel_id("E").unwrap();
        let (x, y) = (Var(0), Var(1));
        // y is neither in the head nor quantified: the formula is not closed.
        let q = FoQuery::new(
            vec![x],
            FoExpr::Atom(Atom::new(e, vec![Term::Var(x), Term::Var(y)])),
            vec!["x".into(), "y".into()],
        );
        assert_eq!(q.try_eval(&db), Err(TableauError::UnsafeVariable(y)));
    }

    #[test]
    fn try_eval_agrees_with_eval_on_well_formed_queries() {
        let (s, db) = setup();
        let e = s.rel_id("E").unwrap();
        let (x, y) = (Var(0), Var(1));
        let q = FoQuery::new(
            vec![x, y],
            FoExpr::not(FoExpr::Atom(Atom::new(e, vec![Term::Var(x), Term::Var(y)]))),
            vec!["x".into(), "y".into()],
        );
        assert_eq!(q.try_eval(&db).unwrap(), q.eval(&db));
    }

    #[test]
    fn query_constants_extend_domain() {
        let (s, db) = setup();
        let e = s.rel_id("E").unwrap();
        let x = Var(0);
        // Q(x) := x = 99 ∧ ¬E(x, x); 99 is not in the database.
        let q = FoQuery::new(
            vec![x],
            FoExpr::And(vec![
                FoExpr::Eq(Term::Var(x), Term::from(99)),
                FoExpr::not(FoExpr::Atom(Atom::new(e, vec![Term::Var(x), Term::Var(x)]))),
            ]),
            vec!["x".into()],
        );
        let res = q.eval(&db);
        assert_eq!(res.len(), 1);
        assert!(res.contains(&Tuple::new([Value::int(99)])));
    }
}

//! Set-semantics evaluation of CQ and UCQ.
//!
//! Evaluation proceeds over the tableau: a backtracking join that binds the
//! canonical variables atom by atom, pruning with inequalities as soon as
//! both sides are bound. Results are ordered sets of output tuples, so
//! `Q(D) = Q(D′)` is a plain comparison — exactly the equality the
//! completeness definition (Section 2.1) is stated in.

use crate::cq::{Atom, Cq};
use crate::tableau::{Tableau, TableauError};
use crate::term::Term;
use crate::ucq::Ucq;
use ric_data::{Database, Tuple, Value};
use std::collections::BTreeSet;

/// The query languages considered by the paper, used to label instances and
/// report which complexity cell of Tables I/II they exercise.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum QueryLanguage {
    /// Projection queries only (inclusion dependencies when used as `L_C`).
    Inds,
    /// Conjunctive queries.
    Cq,
    /// Unions of conjunctive queries.
    Ucq,
    /// Positive existential FO.
    EfoPlus,
    /// Full first-order logic.
    Fo,
    /// Datalog / inflationary fixpoint.
    Fp,
}

impl std::fmt::Display for QueryLanguage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            QueryLanguage::Inds => "INDs",
            QueryLanguage::Cq => "CQ",
            QueryLanguage::Ucq => "UCQ",
            QueryLanguage::EfoPlus => "∃FO+",
            QueryLanguage::Fo => "FO",
            QueryLanguage::Fp => "FP",
        };
        write!(f, "{s}")
    }
}

/// Hard cap on tableau atoms per query: the backtracking join recurses one
/// frame per atom, so an adversarially long body would otherwise overflow
/// the stack instead of failing cleanly.
pub const MAX_EVAL_ATOMS: usize = 10_000;

/// Evaluate a CQ on a database. Unsatisfiable queries return the empty set;
/// unsafe queries surface their error.
pub fn eval_cq(cq: &Cq, db: &Database) -> Result<BTreeSet<Tuple>, TableauError> {
    match Tableau::of(cq) {
        Ok(t) => {
            if t.atoms.len() > MAX_EVAL_ATOMS {
                return Err(TableauError::TooDeep {
                    limit: MAX_EVAL_ATOMS,
                });
            }
            Ok(eval_tableau(&t, db))
        }
        Err(TableauError::Unsatisfiable) => Ok(BTreeSet::new()),
        Err(e) => Err(e),
    }
}

/// Evaluate a UCQ: the union of its disjuncts' answers.
pub fn eval_ucq(q: &Ucq, db: &Database) -> Result<BTreeSet<Tuple>, TableauError> {
    let mut out = BTreeSet::new();
    for cq in &q.disjuncts {
        out.extend(eval_cq(cq, db)?);
    }
    Ok(out)
}

/// Evaluate a normalised tableau query on a database.
pub fn eval_tableau(t: &Tableau, db: &Database) -> BTreeSet<Tuple> {
    let mut out = BTreeSet::new();
    let order = atom_order(t);
    let mut binding: Vec<Option<Value>> = vec![None; t.n_vars as usize];
    search(t, db, &order, 0, &mut binding, &mut out);
    out
}

/// Boolean convenience: is `Q(D)` nonempty?
pub fn holds(t: &Tableau, db: &Database) -> bool {
    // A dedicated early-exit search would be faster; the deciders only call
    // this on tiny tableaux, so reuse the full evaluator.
    !eval_tableau(t, db).is_empty()
}

/// Choose an atom processing order: greedily prefer atoms sharing variables
/// with already-scheduled atoms (keeps intermediate bindings selective).
fn atom_order(t: &Tableau) -> Vec<usize> {
    let n = t.atoms.len();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut bound: BTreeSet<u32> = BTreeSet::new();
    for _ in 0..n {
        let mut best: Option<(usize, usize)> = None; // (score, index)
        for (i, a) in t.atoms.iter().enumerate() {
            if used[i] {
                continue;
            }
            let score = a.vars().filter(|v| bound.contains(&v.0)).count();
            if best.map(|(s, _)| score > s).unwrap_or(true) {
                best = Some((score, i));
            }
        }
        let (_, i) = best.expect("atom count invariant");
        used[i] = true;
        bound.extend(t.atoms[i].vars().map(|v| v.0));
        order.push(i);
    }
    order
}

fn search(
    t: &Tableau,
    db: &Database,
    order: &[usize],
    depth: usize,
    binding: &mut Vec<Option<Value>>,
    out: &mut BTreeSet<Tuple>,
) {
    if depth == order.len() {
        // All atoms matched; all variables are bound (tableau invariant).
        if neqs_hold(t, binding) {
            let head = Tuple::new(t.head.iter().map(|term| match term {
                Term::Var(v) => binding[v.idx()].clone().expect("head var bound"),
                Term::Const(c) => c.clone(),
            }));
            out.insert(head);
        }
        return;
    }
    let atom = &t.atoms[order[depth]];
    let inst = db.instance(atom.rel);
    'tuples: for tuple in inst.iter() {
        if tuple.arity() != atom.args.len() {
            continue;
        }
        let mut newly_bound: Vec<usize> = Vec::new();
        for (term, value) in atom.args.iter().zip(tuple.iter()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        undo(binding, &newly_bound);
                        continue 'tuples;
                    }
                }
                Term::Var(v) => match &binding[v.idx()] {
                    Some(b) => {
                        if b != value {
                            undo(binding, &newly_bound);
                            continue 'tuples;
                        }
                    }
                    None => {
                        binding[v.idx()] = Some(value.clone());
                        newly_bound.push(v.idx());
                    }
                },
            }
        }
        // Eagerly prune with inequalities whose sides are both bound.
        if partial_neqs_hold(t, binding) {
            search(t, db, order, depth + 1, binding, out);
        }
        undo(binding, &newly_bound);
    }
}

fn undo(binding: &mut [Option<Value>], newly: &[usize]) {
    for &i in newly {
        binding[i] = None;
    }
}

fn term_value<'a>(t: &'a Term, binding: &'a [Option<Value>]) -> Option<&'a Value> {
    match t {
        Term::Const(c) => Some(c),
        Term::Var(v) => binding[v.idx()].as_ref(),
    }
}

fn partial_neqs_hold(t: &Tableau, binding: &[Option<Value>]) -> bool {
    t.neqs.iter().all(|(l, r)| {
        match (term_value(l, binding), term_value(r, binding)) {
            (Some(a), Some(b)) => a != b,
            _ => true, // not yet decidable
        }
    })
}

fn neqs_hold(t: &Tableau, binding: &[Option<Value>]) -> bool {
    t.neqs.iter().all(|(l, r)| {
        let a = term_value(l, binding).expect("all vars bound");
        let b = term_value(r, binding).expect("all vars bound");
        a != b
    })
}

/// Reference evaluator used by property tests: enumerate *every* assignment
/// of atoms to tuples (no pruning). Exponential; only for cross-checking.
pub fn eval_tableau_naive(t: &Tableau, db: &Database) -> BTreeSet<Tuple> {
    let mut out = BTreeSet::new();
    let mut binding: Vec<Option<Value>> = vec![None; t.n_vars as usize];
    naive(t, db, 0, &mut binding, &mut out);
    out
}

fn naive(
    t: &Tableau,
    db: &Database,
    depth: usize,
    binding: &mut Vec<Option<Value>>,
    out: &mut BTreeSet<Tuple>,
) {
    if depth == t.atoms.len() {
        if neqs_hold(t, binding) {
            let head = Tuple::new(t.head.iter().map(|term| match term {
                Term::Var(v) => binding[v.idx()].clone().unwrap(),
                Term::Const(c) => c.clone(),
            }));
            out.insert(head);
        }
        return;
    }
    let atom: &Atom = &t.atoms[depth];
    let tuples: Vec<Tuple> = db.instance(atom.rel).iter().cloned().collect();
    for tuple in tuples {
        if tuple.arity() != atom.args.len() {
            continue;
        }
        let saved = binding.clone();
        let mut ok = true;
        for (term, value) in atom.args.iter().zip(tuple.iter()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match &binding[v.idx()] {
                    Some(b) if b != value => {
                        ok = false;
                        break;
                    }
                    Some(_) => {}
                    None => binding[v.idx()] = Some(value.clone()),
                },
            }
        }
        if ok {
            naive(t, db, depth + 1, binding, out);
        }
        *binding = saved;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;
    use ric_data::{RelationSchema, Schema};

    fn setup() -> (Schema, Database) {
        let s =
            Schema::from_relations(vec![RelationSchema::infinite("E", &["src", "dst"])]).unwrap();
        let e = s.rel_id("E").unwrap();
        let mut db = Database::empty(&s);
        for (a, b) in [(1, 2), (2, 3), (3, 1), (1, 1)] {
            db.insert(e, Tuple::new([Value::int(a), Value::int(b)]));
        }
        (s, db)
    }

    #[test]
    fn join_two_hops() {
        let (s, db) = setup();
        let e = s.rel_id("E").unwrap();
        let mut b = Cq::builder();
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        let q = b
            .atom(e, vec![Term::Var(x), Term::Var(y)])
            .atom(e, vec![Term::Var(y), Term::Var(z)])
            .head_vars(vec![x, z])
            .build();
        let res = eval_cq(&q, &db).unwrap();
        // 1->2->3, 2->3->1, 3->1->2, 3->1->1, 1->1->2, 1->1->1, 1->2? (2,3)...
        assert!(res.contains(&Tuple::new([Value::int(1), Value::int(3)])));
        assert!(res.contains(&Tuple::new([Value::int(3), Value::int(2)])));
        assert!(!res.contains(&Tuple::new([Value::int(2), Value::int(2)])));
    }

    #[test]
    fn inequality_filters() {
        let (s, db) = setup();
        let e = s.rel_id("E").unwrap();
        let mut b = Cq::builder();
        let (x, y) = (b.var("x"), b.var("y"));
        let q = b
            .atom(e, vec![Term::Var(x), Term::Var(y)])
            .neq(Term::Var(x), Term::Var(y))
            .head_vars(vec![x, y])
            .build();
        let res = eval_cq(&q, &db).unwrap();
        assert_eq!(res.len(), 3); // (1,1) filtered out
    }

    #[test]
    fn constants_select() {
        let (s, db) = setup();
        let e = s.rel_id("E").unwrap();
        let mut b = Cq::builder();
        let y = b.var("y");
        let q = b
            .atom(e, vec![Term::from(1), Term::Var(y)])
            .head_vars(vec![y])
            .build();
        let res = eval_cq(&q, &db).unwrap();
        assert_eq!(res.len(), 2); // 1->2, 1->1
    }

    #[test]
    fn empty_conjunction_is_true() {
        let (_, db) = setup();
        let q = Cq::builder().head(vec![]).build();
        let res = eval_cq(&q, &db).unwrap();
        assert_eq!(res.len(), 1);
        assert!(res.contains(&Tuple::unit()));
    }

    #[test]
    fn unsatisfiable_query_evaluates_empty() {
        let (s, db) = setup();
        let e = s.rel_id("E").unwrap();
        let mut b = Cq::builder();
        let x = b.var("x");
        let q = b
            .atom(e, vec![Term::Var(x), Term::Var(x)])
            .neq(Term::Var(x), Term::Var(x))
            .head_vars(vec![x])
            .build();
        assert!(eval_cq(&q, &db).unwrap().is_empty());
    }

    #[test]
    fn optimized_matches_naive() {
        let (s, db) = setup();
        let e = s.rel_id("E").unwrap();
        let mut b = Cq::builder();
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        let q = b
            .atom(e, vec![Term::Var(x), Term::Var(y)])
            .atom(e, vec![Term::Var(y), Term::Var(z)])
            .neq(Term::Var(x), Term::Var(z))
            .head_vars(vec![x, y, z])
            .build();
        let t = Tableau::of(&q).unwrap();
        assert_eq!(eval_tableau(&t, &db), eval_tableau_naive(&t, &db));
    }

    #[test]
    fn ucq_unions_disjuncts() {
        let (s, db) = setup();
        let e = s.rel_id("E").unwrap();
        let mut b1 = Cq::builder();
        let y1 = b1.var("y");
        let q1 = b1
            .atom(e, vec![Term::from(1), Term::Var(y1)])
            .head_vars(vec![y1])
            .build();
        let mut b2 = Cq::builder();
        let y2 = b2.var("y");
        let q2 = b2
            .atom(e, vec![Term::from(2), Term::Var(y2)])
            .head_vars(vec![y2])
            .build();
        let u = Ucq::new(vec![q1, q2]);
        let res = eval_ucq(&u, &db).unwrap();
        assert_eq!(res.len(), 3); // {1,2} from 1->*, {3} from 2->3
    }
}

//! Set-semantics evaluation of CQ and UCQ.
//!
//! Evaluation proceeds over the tableau: a backtracking join that binds the
//! canonical variables atom by atom, pruning with inequalities as soon as
//! both sides are bound. Results are ordered sets of output tuples, so
//! `Q(D) = Q(D′)` is a plain comparison — exactly the equality the
//! completeness definition (Section 2.1) is stated in.
//!
//! The join is generic over [`TupleStore`], so the same code evaluates
//! against a plain [`Database`] and against an [`Overlay`] (`D ∪ Δ` without
//! copying `D`). At each step it picks the *most-bound* remaining atom and,
//! when at least one of that atom's columns is already bound, fetches
//! candidate tuples through the store's per-column index instead of
//! scanning. [`eval_tableau_delta`] is the incremental variant: it returns
//! only the answers whose derivation uses at least one novel delta tuple.

use crate::cq::{Atom, Cq};
use crate::tableau::{Tableau, TableauError};
use crate::term::Term;
use crate::ucq::Ucq;
use ric_data::{Database, Overlay, Tuple, TupleStore, Value};
use std::collections::BTreeSet;

/// The query languages considered by the paper, used to label instances and
/// report which complexity cell of Tables I/II they exercise.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum QueryLanguage {
    /// Projection queries only (inclusion dependencies when used as `L_C`).
    Inds,
    /// Conjunctive queries.
    Cq,
    /// Unions of conjunctive queries.
    Ucq,
    /// Positive existential FO.
    EfoPlus,
    /// Full first-order logic.
    Fo,
    /// Datalog / inflationary fixpoint.
    Fp,
}

impl std::fmt::Display for QueryLanguage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            QueryLanguage::Inds => "INDs",
            QueryLanguage::Cq => "CQ",
            QueryLanguage::Ucq => "UCQ",
            QueryLanguage::EfoPlus => "∃FO+",
            QueryLanguage::Fo => "FO",
            QueryLanguage::Fp => "FP",
        };
        write!(f, "{s}")
    }
}

/// Hard cap on tableau atoms per query: the backtracking join recurses one
/// frame per atom, so an adversarially long body would otherwise overflow
/// the stack instead of failing cleanly.
pub const MAX_EVAL_ATOMS: usize = 10_000;

/// Evaluate a CQ on a store. Unsatisfiable queries return the empty set;
/// unsafe queries surface their error.
pub fn eval_cq<S: TupleStore>(cq: &Cq, db: &S) -> Result<BTreeSet<Tuple>, TableauError> {
    match Tableau::of(cq) {
        Ok(t) => {
            if t.atoms.len() > MAX_EVAL_ATOMS {
                return Err(TableauError::TooDeep {
                    limit: MAX_EVAL_ATOMS,
                });
            }
            Ok(eval_tableau(&t, db))
        }
        Err(TableauError::Unsatisfiable) => Ok(BTreeSet::new()),
        Err(e) => Err(e),
    }
}

/// Evaluate a UCQ: the union of its disjuncts' answers.
pub fn eval_ucq<S: TupleStore>(q: &Ucq, db: &S) -> Result<BTreeSet<Tuple>, TableauError> {
    let mut out = BTreeSet::new();
    for cq in &q.disjuncts {
        out.extend(eval_cq(cq, db)?);
    }
    Ok(out)
}

/// Evaluate a normalised tableau query on a store.
pub fn eval_tableau<S: TupleStore>(t: &Tableau, db: &S) -> BTreeSet<Tuple> {
    let mut out = BTreeSet::new();
    let join = Join {
        t,
        store: db,
        early_exit: false,
    };
    let mut used = vec![false; t.atoms.len()];
    let mut binding: Vec<Option<Value>> = vec![None; t.n_vars as usize];
    join.rec(&mut used, 0, &mut binding, &mut out);
    out
}

/// Boolean convenience: is `Q(D)` nonempty? Stops at the first witness.
pub fn holds<S: TupleStore>(t: &Tableau, db: &S) -> bool {
    let mut out = BTreeSet::new();
    let join = Join {
        t,
        store: db,
        early_exit: true,
    };
    let mut used = vec![false; t.atoms.len()];
    let mut binding: Vec<Option<Value>> = vec![None; t.n_vars as usize];
    join.rec(&mut used, 0, &mut binding, &mut out);
    !out.is_empty()
}

/// The incremental answers of `t` on `base ∪ delta`: exactly those whose
/// derivation uses at least one *novel* delta tuple (a tuple of `Δ` absent
/// from the base). When the base answers are already known, the full answer
/// set is their union with this one — the identity incremental constraint
/// checking rests on.
pub fn eval_tableau_delta(t: &Tableau, ov: &Overlay<'_>) -> BTreeSet<Tuple> {
    let mut out = BTreeSet::new();
    // A derivation of an atomless tableau uses no tuples at all, so nothing
    // about it is novel.
    if t.atoms.is_empty() {
        return out;
    }
    let join = Join {
        t,
        store: ov,
        early_exit: false,
    };
    let mut used = vec![false; t.atoms.len()];
    let mut binding: Vec<Option<Value>> = vec![None; t.n_vars as usize];
    for pin in 0..t.atoms.len() {
        // Pin atom `pin` to a novel tuple; the remaining atoms join over the
        // whole overlay. The union over pins covers every derivation with a
        // novel tuple somewhere (duplicates collapse in the output set).
        let atom = &t.atoms[pin];
        used[pin] = true;
        ov.for_each_novel(atom.rel, &mut |tuple| {
            if let Some(newly) = match_atom(atom, tuple, &mut binding) {
                if partial_neqs_hold(t, &binding) {
                    join.rec(&mut used, 1, &mut binding, &mut out);
                }
                undo(&mut binding, &newly);
            }
            true
        });
        used[pin] = false;
    }
    out
}

/// Backtracking join state: at each step the most-bound remaining atom is
/// matched next, through an index probe when any of its columns is bound.
struct Join<'a, S: TupleStore> {
    t: &'a Tableau,
    store: &'a S,
    /// Stop the whole search at the first answer (Boolean evaluation).
    early_exit: bool,
}

impl<S: TupleStore> Join<'_, S> {
    /// Recurse over the unmatched atoms. Returns `false` iff the search was
    /// aborted by `early_exit`.
    fn rec(
        &self,
        used: &mut [bool],
        n_used: usize,
        binding: &mut Vec<Option<Value>>,
        out: &mut BTreeSet<Tuple>,
    ) -> bool {
        if n_used == self.t.atoms.len() {
            // All atoms matched; all variables are bound (tableau invariant).
            if neqs_hold(self.t, binding) {
                let head = Tuple::new(self.t.head.iter().map(|term| {
                    match term {
                        Term::Var(v) => binding[v.idx()]
                            .clone()
                            .unwrap_or_else(|| unreachable!("head var bound")),
                        Term::Const(c) => c.clone(),
                    }
                }));
                out.insert(head);
            }
            // Keep going unless early-exit mode has its first answer.
            return !self.early_exit || out.is_empty();
        }
        let i = self.pick(used, binding);
        let atom = &self.t.atoms[i];
        // Probe on the first bound column, if any; clone the key out of the
        // binding before the visitor borrows it mutably.
        let probe_key: Option<(usize, Value)> = atom
            .args
            .iter()
            .enumerate()
            .find_map(|(col, term)| term_value(term, binding).map(|v| (col, v.clone())));
        used[i] = true;
        let t = self.t;
        let mut visit = |tuple: &Tuple| -> bool {
            let Some(newly) = match_atom(atom, tuple, binding) else {
                return true;
            };
            // Eagerly prune with inequalities whose sides are both bound.
            let keep_going = if partial_neqs_hold(t, binding) {
                self.rec(used, n_used + 1, binding, out)
            } else {
                true
            };
            undo(binding, &newly);
            keep_going
        };
        let completed = match &probe_key {
            Some((col, v)) => self.store.probe(atom.rel, *col, v, &mut visit),
            None => self.store.scan(atom.rel, &mut visit),
        };
        used[i] = false;
        completed
    }

    /// The unmatched atom with the most bound terms (constants count), ties
    /// broken by position for determinism.
    fn pick(&self, used: &[bool], binding: &[Option<Value>]) -> usize {
        let mut best: Option<(usize, usize)> = None; // (score, index)
        for (i, a) in self.t.atoms.iter().enumerate() {
            if used[i] {
                continue;
            }
            let score = a
                .args
                .iter()
                .filter(|term| term_value(term, binding).is_some())
                .count();
            if best.map(|(s, _)| score > s).unwrap_or(true) {
                best = Some((score, i));
            }
        }
        best.unwrap_or_else(|| unreachable!("rec only recurses while atoms remain unmatched"))
            .1
    }
}

/// Try to match `tuple` against `atom` under the current binding, extending
/// it. Returns the newly bound variable slots on success (the caller undoes
/// them after recursing), `None` on mismatch (already undone).
fn match_atom(atom: &Atom, tuple: &Tuple, binding: &mut [Option<Value>]) -> Option<Vec<usize>> {
    if tuple.arity() != atom.args.len() {
        return None;
    }
    let mut newly: Vec<usize> = Vec::new();
    for (term, value) in atom.args.iter().zip(tuple.iter()) {
        let ok = match term {
            Term::Const(c) => c == value,
            Term::Var(v) => match &binding[v.idx()] {
                Some(b) => b == value,
                None => {
                    binding[v.idx()] = Some(value.clone());
                    newly.push(v.idx());
                    true
                }
            },
        };
        if !ok {
            undo(binding, &newly);
            return None;
        }
    }
    Some(newly)
}

fn undo(binding: &mut [Option<Value>], newly: &[usize]) {
    for &i in newly {
        binding[i] = None;
    }
}

fn term_value<'a>(t: &'a Term, binding: &'a [Option<Value>]) -> Option<&'a Value> {
    match t {
        Term::Const(c) => Some(c),
        Term::Var(v) => binding[v.idx()].as_ref(),
    }
}

fn partial_neqs_hold(t: &Tableau, binding: &[Option<Value>]) -> bool {
    t.neqs.iter().all(|(l, r)| {
        match (term_value(l, binding), term_value(r, binding)) {
            (Some(a), Some(b)) => a != b,
            _ => true, // not yet decidable
        }
    })
}

fn neqs_hold(t: &Tableau, binding: &[Option<Value>]) -> bool {
    t.neqs.iter().all(
        |(l, r)| match (term_value(l, binding), term_value(r, binding)) {
            (Some(a), Some(b)) => a != b,
            _ => unreachable!("all vars bound when neqs_hold runs"),
        },
    )
}

/// Reference evaluator used by property tests: enumerate *every* assignment
/// of atoms to tuples (no pruning). Exponential; only for cross-checking.
pub fn eval_tableau_naive(t: &Tableau, db: &Database) -> BTreeSet<Tuple> {
    let mut out = BTreeSet::new();
    let mut binding: Vec<Option<Value>> = vec![None; t.n_vars as usize];
    naive(t, db, 0, &mut binding, &mut out);
    out
}

fn naive(
    t: &Tableau,
    db: &Database,
    depth: usize,
    binding: &mut Vec<Option<Value>>,
    out: &mut BTreeSet<Tuple>,
) {
    if depth == t.atoms.len() {
        if neqs_hold(t, binding) {
            let head = Tuple::new(t.head.iter().map(|term| {
                match term {
                    Term::Var(v) => binding[v.idx()]
                        .clone()
                        .unwrap_or_else(|| unreachable!("all vars bound at full depth")),
                    Term::Const(c) => c.clone(),
                }
            }));
            out.insert(head);
        }
        return;
    }
    let atom: &Atom = &t.atoms[depth];
    let tuples: Vec<Tuple> = db.instance(atom.rel).iter().cloned().collect();
    for tuple in tuples {
        if tuple.arity() != atom.args.len() {
            continue;
        }
        let saved = binding.clone();
        let mut ok = true;
        for (term, value) in atom.args.iter().zip(tuple.iter()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match &binding[v.idx()] {
                    Some(b) if b != value => {
                        ok = false;
                        break;
                    }
                    Some(_) => {}
                    None => binding[v.idx()] = Some(value.clone()),
                },
            }
        }
        if ok {
            naive(t, db, depth + 1, binding, out);
        }
        *binding = saved;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;
    use ric_data::{RelationSchema, Schema};

    fn setup() -> (Schema, Database) {
        let s =
            Schema::from_relations(vec![RelationSchema::infinite("E", &["src", "dst"])]).unwrap();
        let e = s.rel_id("E").unwrap();
        let mut db = Database::empty(&s);
        for (a, b) in [(1, 2), (2, 3), (3, 1), (1, 1)] {
            db.insert(e, Tuple::new([Value::int(a), Value::int(b)]));
        }
        (s, db)
    }

    #[test]
    fn join_two_hops() {
        let (s, db) = setup();
        let e = s.rel_id("E").unwrap();
        let mut b = Cq::builder();
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        let q = b
            .atom(e, vec![Term::Var(x), Term::Var(y)])
            .atom(e, vec![Term::Var(y), Term::Var(z)])
            .head_vars(vec![x, z])
            .build();
        let res = eval_cq(&q, &db).unwrap();
        // 1->2->3, 2->3->1, 3->1->2, 3->1->1, 1->1->2, 1->1->1, 1->2? (2,3)...
        assert!(res.contains(&Tuple::new([Value::int(1), Value::int(3)])));
        assert!(res.contains(&Tuple::new([Value::int(3), Value::int(2)])));
        assert!(!res.contains(&Tuple::new([Value::int(2), Value::int(2)])));
    }

    #[test]
    fn inequality_filters() {
        let (s, db) = setup();
        let e = s.rel_id("E").unwrap();
        let mut b = Cq::builder();
        let (x, y) = (b.var("x"), b.var("y"));
        let q = b
            .atom(e, vec![Term::Var(x), Term::Var(y)])
            .neq(Term::Var(x), Term::Var(y))
            .head_vars(vec![x, y])
            .build();
        let res = eval_cq(&q, &db).unwrap();
        assert_eq!(res.len(), 3); // (1,1) filtered out
    }

    #[test]
    fn constants_select() {
        let (s, db) = setup();
        let e = s.rel_id("E").unwrap();
        let mut b = Cq::builder();
        let y = b.var("y");
        let q = b
            .atom(e, vec![Term::from(1), Term::Var(y)])
            .head_vars(vec![y])
            .build();
        let res = eval_cq(&q, &db).unwrap();
        assert_eq!(res.len(), 2); // 1->2, 1->1
    }

    #[test]
    fn empty_conjunction_is_true() {
        let (_, db) = setup();
        let q = Cq::builder().head(vec![]).build();
        let res = eval_cq(&q, &db).unwrap();
        assert_eq!(res.len(), 1);
        assert!(res.contains(&Tuple::unit()));
    }

    #[test]
    fn unsatisfiable_query_evaluates_empty() {
        let (s, db) = setup();
        let e = s.rel_id("E").unwrap();
        let mut b = Cq::builder();
        let x = b.var("x");
        let q = b
            .atom(e, vec![Term::Var(x), Term::Var(x)])
            .neq(Term::Var(x), Term::Var(x))
            .head_vars(vec![x])
            .build();
        assert!(eval_cq(&q, &db).unwrap().is_empty());
    }

    #[test]
    fn optimized_matches_naive() {
        let (s, db) = setup();
        let e = s.rel_id("E").unwrap();
        let mut b = Cq::builder();
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        let q = b
            .atom(e, vec![Term::Var(x), Term::Var(y)])
            .atom(e, vec![Term::Var(y), Term::Var(z)])
            .neq(Term::Var(x), Term::Var(z))
            .head_vars(vec![x, y, z])
            .build();
        let t = Tableau::of(&q).unwrap();
        assert_eq!(eval_tableau(&t, &db), eval_tableau_naive(&t, &db));
    }

    #[test]
    fn overlay_eval_matches_materialized_union() {
        let (s, db) = setup();
        let e = s.rel_id("E").unwrap();
        let mut delta = Database::empty(&s);
        delta.insert(e, Tuple::new([Value::int(3), Value::int(4)]));
        delta.insert(e, Tuple::new([Value::int(1), Value::int(2)])); // not novel
        let ov = Overlay::new(&db, &delta).unwrap();
        let mut b = Cq::builder();
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        let q = b
            .atom(e, vec![Term::Var(x), Term::Var(y)])
            .atom(e, vec![Term::Var(y), Term::Var(z)])
            .head_vars(vec![x, z])
            .build();
        let t = Tableau::of(&q).unwrap();
        let on_union = eval_tableau(&t, &ov.materialize());
        assert_eq!(eval_tableau(&t, &ov), on_union);
        // Delta answers ∪ base answers = union answers.
        let mut combined = eval_tableau(&t, &db);
        combined.extend(eval_tableau_delta(&t, &ov));
        assert_eq!(combined, on_union);
        // And the delta answers genuinely need the novel tuple.
        assert!(eval_tableau_delta(&t, &ov).contains(&Tuple::new([Value::int(2), Value::int(4)])));
    }

    #[test]
    fn delta_eval_of_atomless_tableau_is_empty() {
        let (s, db) = setup();
        let mut delta = Database::empty(&s);
        delta.insert(
            s.rel_id("E").unwrap(),
            Tuple::new([Value::int(8), Value::int(9)]),
        );
        let ov = Overlay::new(&db, &delta).unwrap();
        let q = Cq::builder().head(vec![]).build();
        let t = Tableau::of(&q).unwrap();
        assert!(eval_tableau_delta(&t, &ov).is_empty());
    }

    #[test]
    fn holds_stops_at_first_witness() {
        let (s, db) = setup();
        let e = s.rel_id("E").unwrap();
        let mut b = Cq::builder();
        let (x, y) = (b.var("x"), b.var("y"));
        let q = b
            .atom(e, vec![Term::Var(x), Term::Var(y)])
            .head_vars(vec![x])
            .build();
        let t = Tableau::of(&q).unwrap();
        assert!(holds(&t, &db));
        let empty = Database::empty(&s);
        assert!(!holds(&t, &empty));
    }

    #[test]
    fn ucq_unions_disjuncts() {
        let (s, db) = setup();
        let e = s.rel_id("E").unwrap();
        let mut b1 = Cq::builder();
        let y1 = b1.var("y");
        let q1 = b1
            .atom(e, vec![Term::from(1), Term::Var(y1)])
            .head_vars(vec![y1])
            .build();
        let mut b2 = Cq::builder();
        let y2 = b2.var("y");
        let q2 = b2
            .atom(e, vec![Term::from(2), Term::Var(y2)])
            .head_vars(vec![y2])
            .build();
        let u = Ucq::new(vec![q1, q2]);
        let res = eval_ucq(&u, &db).unwrap();
        assert_eq!(res.len(), 3); // {1,2} from 1->*, {3} from 2->3
    }
}

//! Unions of conjunctive queries (Section 2.1(b)).

use crate::cq::Cq;
use crate::tableau::{Tableau, TableauError};
use ric_data::Value;
use std::collections::BTreeSet;

/// A UCQ `Q_1 ∪ … ∪ Q_k`. All disjuncts must share the same head arity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ucq {
    /// The component CQs.
    pub disjuncts: Vec<Cq>,
}

impl Ucq {
    /// Build a UCQ; panics if the disjuncts disagree on head arity (a
    /// construction bug, not a data condition).
    pub fn new(disjuncts: Vec<Cq>) -> Self {
        if let Some(first) = disjuncts.first() {
            let arity = first.head_arity();
            assert!(
                disjuncts.iter().all(|d| d.head_arity() == arity),
                "UCQ disjuncts must share head arity"
            );
        }
        Ucq { disjuncts }
    }

    /// A single-disjunct UCQ.
    pub fn single(cq: Cq) -> Self {
        Ucq {
            disjuncts: vec![cq],
        }
    }

    /// Output arity (0 for the empty union).
    pub fn head_arity(&self) -> usize {
        self.disjuncts.first().map(Cq::head_arity).unwrap_or(0)
    }

    /// Tableaux of all *satisfiable* disjuncts (unsatisfiable ones contribute
    /// nothing to any answer and are skipped); unsafe disjuncts error.
    pub fn tableaux(&self) -> Result<Vec<Tableau>, TableauError> {
        let mut out = Vec::with_capacity(self.disjuncts.len());
        for d in &self.disjuncts {
            match Tableau::of(d) {
                Ok(t) => out.push(t),
                Err(TableauError::Unsatisfiable) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// All constants across disjuncts.
    pub fn constants(&self) -> BTreeSet<Value> {
        self.disjuncts.iter().flat_map(|d| d.constants()).collect()
    }
}

impl From<Cq> for Ucq {
    fn from(cq: Cq) -> Self {
        Ucq::single(cq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;
    use ric_data::{RelationSchema, Schema};

    #[test]
    fn tableaux_skip_unsatisfiable_disjuncts() {
        let s = Schema::from_relations(vec![RelationSchema::infinite("R", &["a"])]).unwrap();
        let r = s.rel_id("R").unwrap();
        let mut b1 = Cq::builder();
        let x1 = b1.var("x");
        let sat = b1.atom(r, vec![Term::Var(x1)]).head_vars(vec![x1]).build();
        let mut b2 = Cq::builder();
        let x2 = b2.var("x");
        let unsat = b2
            .atom(r, vec![Term::Var(x2)])
            .neq(Term::Var(x2), Term::Var(x2))
            .head_vars(vec![x2])
            .build();
        let u = Ucq::new(vec![sat, unsat]);
        assert_eq!(u.tableaux().unwrap().len(), 1);
        assert_eq!(u.head_arity(), 1);
    }

    #[test]
    #[should_panic(expected = "head arity")]
    fn mismatched_arities_panic() {
        let s = Schema::from_relations(vec![RelationSchema::infinite("R", &["a"])]).unwrap();
        let r = s.rel_id("R").unwrap();
        let mut b1 = Cq::builder();
        let x1 = b1.var("x");
        let q1 = b1.atom(r, vec![Term::Var(x1)]).head_vars(vec![x1]).build();
        let mut b2 = Cq::builder();
        let x2 = b2.var("x");
        let q2 = b2.atom(r, vec![Term::Var(x2)]).head_vars(vec![]).build();
        let _ = Ucq::new(vec![q1, q2]);
    }
}

//! # `ric-query` — query languages of the relative-completeness framework
//!
//! The paper parameterises both decision problems by a query language `L_Q`
//! and a constraint language `L_C`, ranging over (Section 2.1):
//!
//! * **CQ** — conjunctive queries with `=` and `≠` ([`cq::Cq`]);
//! * **UCQ** — unions of conjunctive queries ([`ucq::Ucq`]);
//! * **∃FO⁺** — positive existential first-order queries ([`efo::EfoQuery`]);
//! * **FO** — full first-order queries ([`fo::FoQuery`]);
//! * **FP** — datalog with an inflationary fixpoint ([`datalog::Program`]).
//!
//! Every language comes with a set-semantics evaluator. CQ additionally gets
//! the *tableau representation* `(T_Q, u_Q)` of Section 3.2
//! ([`tableau::Tableau`]), which is what the deciders enumerate valuations
//! over, and the Lemma 3.2 single-relation transform ([`single_rel`]).
//!
//! A small text parser ([`parser`]) accepts datalog-style rule syntax for CQ,
//! UCQ, and FP so that examples and tests stay readable.

pub mod containment;
pub mod cq;
pub mod datalog;
pub mod efo;
pub mod eval;
pub mod fo;
pub mod parser;
pub mod single_rel;
pub mod tableau;
pub mod term;
pub mod ucq;

pub use cq::{Atom, Cq};
pub use datalog::{Literal, Program, Rule};
pub use efo::{EfoExpr, EfoQuery};
pub use eval::QueryLanguage;
pub use fo::{FoExpr, FoQuery};
pub use parser::{parse_cq, parse_program, parse_ucq, ParseError};
pub use tableau::{Tableau, Valuation};
pub use term::{Term, Var};
pub use ucq::Ucq;

//! Tableau representation of conjunctive queries (Section 3.2).
//!
//! A satisfiable CQ `Q` is represented as a *tableau query* `(T_Q, u_Q)`:
//! equalities are eliminated by merging variable classes (and substituting
//! constants), so the tableau contains only canonical variables, constants,
//! and residual inequalities. The deciders of `ric-complete` enumerate
//! *valuations* `μ` of the tableau variables; `μ(T_Q)` is a set of concrete
//! tuples and `μ(u_Q)` the corresponding output tuple.

use crate::cq::{Atom, Cq};
use crate::term::{Term, Var};
use ric_data::{Database, DomainKind, Schema, Tuple, Value};
use std::collections::BTreeSet;
use std::fmt;

/// Why a CQ has no tableau.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TableauError {
    /// The equality/inequality conditions are contradictory; `Q(D) = ∅` on
    /// every database. (The paper assumes satisfiable queries; the deciders
    /// special-case this.)
    Unsatisfiable,
    /// Some variable of the head or an inequality occurs in no relation atom,
    /// so the query is not domain-independent.
    UnsafeVariable(Var),
    /// The query nests (or joins) beyond the evaluator's recursion limit;
    /// evaluating it would risk a stack overflow, so it is rejected with a
    /// typed error instead.
    TooDeep {
        /// The limit that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for TableauError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableauError::Unsatisfiable => write!(f, "query is unsatisfiable"),
            TableauError::UnsafeVariable(v) => {
                write!(f, "variable {v} occurs in no relation atom (unsafe query)")
            }
            TableauError::TooDeep { limit } => {
                write!(f, "query exceeds the evaluation depth limit of {limit}")
            }
        }
    }
}

impl std::error::Error for TableauError {}

/// The tableau `(T_Q, u_Q)` of a satisfiable, safe CQ.
///
/// Invariants: variables are `Var(0) .. Var(n_vars-1)`; every variable occurs
/// in at least one atom; `neqs` never relate two constants or a term to
/// itself.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Tableau {
    /// Number of canonical variables.
    pub n_vars: u32,
    /// The tuple templates `T_Q`.
    pub atoms: Vec<Atom>,
    /// The output summary `u_Q`.
    pub head: Vec<Term>,
    /// Residual inequalities (at least one side a variable).
    pub neqs: Vec<(Term, Term)>,
    /// Display names for canonical variables.
    pub var_names: Vec<String>,
}

/// Union-find over query variables, with optional constant binding per class.
struct Unifier {
    parent: Vec<usize>,
    constant: Vec<Option<Value>>,
}

impl Unifier {
    fn new(n: usize) -> Self {
        Unifier {
            parent: (0..n).collect(),
            constant: vec![None; n],
        }
    }

    fn find(&mut self, i: usize) -> usize {
        if self.parent[i] != i {
            let root = self.find(self.parent[i]);
            self.parent[i] = root;
        }
        self.parent[i]
    }

    /// Merge the classes of `a` and `b`; `false` on constant conflict.
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return true;
        }
        match (self.constant[ra].clone(), self.constant[rb].clone()) {
            (Some(ca), Some(cb)) if ca != cb => return false,
            (Some(ca), None) => self.constant[rb] = Some(ca),
            _ => {}
        }
        self.parent[ra] = rb;
        true
    }

    /// Bind the class of `a` to constant `c`; `false` on conflict.
    fn bind(&mut self, a: usize, c: &Value) -> bool {
        let r = self.find(a);
        match &self.constant[r] {
            Some(existing) => existing == c,
            None => {
                self.constant[r] = Some(c.clone());
                true
            }
        }
    }
}

impl Tableau {
    /// Normalise a CQ into its tableau (Section 3.2).
    pub fn of(cq: &Cq) -> Result<Tableau, TableauError> {
        let n = cq.n_vars as usize;
        let mut uf = Unifier::new(n);
        // Apply equalities.
        for (l, r) in &cq.eqs {
            let ok = match (l, r) {
                (Term::Var(a), Term::Var(b)) => uf.union(a.idx(), b.idx()),
                (Term::Var(a), Term::Const(c)) | (Term::Const(c), Term::Var(a)) => {
                    uf.bind(a.idx(), c)
                }
                (Term::Const(c1), Term::Const(c2)) => c1 == c2,
            };
            if !ok {
                return Err(TableauError::Unsatisfiable);
            }
        }
        // Canonicalise a term.
        let canon = |t: &Term, uf: &mut Unifier| -> Term {
            match t {
                Term::Const(c) => Term::Const(c.clone()),
                Term::Var(v) => {
                    let r = uf.find(v.idx());
                    match &uf.constant[r] {
                        Some(c) => Term::Const(c.clone()),
                        None => Term::Var(Var(r as u32)),
                    }
                }
            }
        };
        // Rewrite atoms, head, inequalities.
        let raw_atoms: Vec<Atom> = cq
            .atoms
            .iter()
            .map(|a| Atom::new(a.rel, a.args.iter().map(|t| canon(t, &mut uf)).collect()))
            .collect();
        let raw_head: Vec<Term> = cq.head.iter().map(|t| canon(t, &mut uf)).collect();
        let mut raw_neqs = Vec::new();
        for (l, r) in &cq.neqs {
            let (cl, cr) = (canon(l, &mut uf), canon(r, &mut uf));
            match (&cl, &cr) {
                _ if cl == cr => return Err(TableauError::Unsatisfiable),
                (Term::Const(_), Term::Const(_)) => {} // distinct constants: always true
                _ => raw_neqs.push((cl, cr)),
            }
        }
        // Densely renumber the surviving canonical variables; atom order
        // determines numbering so the result is deterministic.
        let mut remap: Vec<Option<u32>> = vec![None; n];
        let mut names: Vec<String> = Vec::new();
        let mut next = 0u32;
        let mut assign = |v: Var, remap: &mut Vec<Option<u32>>, names: &mut Vec<String>| -> Var {
            let slot = &mut remap[v.idx()];
            match slot {
                Some(i) => Var(*i),
                None => {
                    let id = next;
                    next += 1;
                    *slot = Some(id);
                    names.push(cq.var_name(v));
                    Var(id)
                }
            }
        };
        let mut atoms = Vec::with_capacity(raw_atoms.len());
        for a in &raw_atoms {
            let args = a
                .args
                .iter()
                .map(|t| match t {
                    Term::Var(v) => Term::Var(assign(*v, &mut remap, &mut names)),
                    c => c.clone(),
                })
                .collect();
            atoms.push(Atom::new(a.rel, args));
        }
        let map_bound = |t: &Term, remap: &Vec<Option<u32>>| -> Result<Term, TableauError> {
            match t {
                Term::Var(v) => match remap[v.idx()] {
                    Some(i) => Ok(Term::Var(Var(i))),
                    None => Err(TableauError::UnsafeVariable(*v)),
                },
                c => Ok(c.clone()),
            }
        };
        let head = raw_head
            .iter()
            .map(|t| map_bound(t, &remap))
            .collect::<Result<Vec<_>, _>>()?;
        let neqs = raw_neqs
            .iter()
            .map(|(l, r)| Ok((map_bound(l, &remap)?, map_bound(r, &remap)?)))
            .collect::<Result<Vec<_>, TableauError>>()?;
        Ok(Tableau {
            n_vars: next,
            atoms,
            head,
            neqs,
            var_names: names,
        })
    }

    /// Constants appearing in the tableau (atoms, head, inequalities).
    pub fn constants(&self) -> BTreeSet<Value> {
        let mut out = BTreeSet::new();
        let mut push = |t: &Term| {
            if let Term::Const(c) = t {
                out.insert(c.clone());
            }
        };
        for a in &self.atoms {
            for t in &a.args {
                push(t);
            }
        }
        for t in &self.head {
            push(t);
        }
        for (l, r) in &self.neqs {
            push(l);
            push(r);
        }
        out
    }

    /// The variables of the output summary `u_Q`.
    pub fn head_vars(&self) -> BTreeSet<Var> {
        self.head.iter().filter_map(Term::as_var).collect()
    }

    /// Per-variable effective domain with respect to a schema: `None` means
    /// the infinite domain; `Some(set)` is the intersection of the finite
    /// domains of every column the variable occurs in (Section 3.2's
    /// `dom(y)`).
    pub fn var_domains(&self, schema: &Schema) -> Vec<Option<BTreeSet<Value>>> {
        let mut doms: Vec<Option<BTreeSet<Value>>> = vec![None; self.n_vars as usize];
        for a in &self.atoms {
            for (col, t) in a.args.iter().enumerate() {
                let Some(v) = t.as_var() else { continue };
                let Ok(dk) = schema.domain(a.rel, col) else {
                    continue;
                };
                if let DomainKind::Finite(vals) = dk {
                    let set: BTreeSet<Value> = vals.iter().cloned().collect();
                    doms[v.idx()] = Some(match doms[v.idx()].take() {
                        None => set,
                        Some(prev) => prev.intersection(&set).cloned().collect(),
                    });
                }
            }
        }
        doms
    }

    /// Do the constant positions of the tableau respect the schema's finite
    /// domains? (If not, `Q(D) = ∅` on every valid database.)
    pub fn domain_consistent(&self, schema: &Schema) -> bool {
        for a in &self.atoms {
            for (col, t) in a.args.iter().enumerate() {
                if let Term::Const(c) = t {
                    if let Ok(dk) = schema.domain(a.rel, col) {
                        if !dk.admits(c) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// The positions `(relation, column)` where each variable occurs.
    pub fn var_positions(&self) -> Vec<Vec<(ric_data::RelId, usize)>> {
        let mut out: Vec<Vec<(ric_data::RelId, usize)>> = vec![Vec::new(); self.n_vars as usize];
        for a in &self.atoms {
            for (col, t) in a.args.iter().enumerate() {
                if let Some(v) = t.as_var() {
                    out[v.idx()].push((a.rel, col));
                }
            }
        }
        out
    }
}

/// A total assignment of constants to the variables of a [`Tableau`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Valuation(pub Vec<Value>);

impl Valuation {
    /// The value of a term under this valuation.
    pub fn term(&self, t: &Term) -> Value {
        match t {
            Term::Var(v) => self.0[v.idx()].clone(),
            Term::Const(c) => c.clone(),
        }
    }

    /// Does the valuation observe all inequalities of the tableau? Together
    /// with domain membership this is the paper's *valid valuation* condition
    /// (Section 3.2): `Q(μ(T_Q))` is nonempty iff the inequalities hold.
    pub fn satisfies_neqs(&self, t: &Tableau) -> bool {
        t.neqs.iter().all(|(l, r)| self.term(l) != self.term(r))
    }

    /// `μ(T_Q)` as a database over a schema with `n_rels` relations.
    pub fn instantiate(&self, t: &Tableau, n_rels: usize) -> Database {
        let mut db = Database::with_relations(n_rels);
        for a in &t.atoms {
            let tuple = Tuple::new(a.args.iter().map(|x| self.term(x)));
            db.insert(a.rel, tuple);
        }
        db
    }

    /// `μ(u_Q)`, the output tuple.
    pub fn head_tuple(&self, t: &Tableau) -> Tuple {
        Tuple::new(t.head.iter().map(|x| self.term(x)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ric_data::{RelationSchema, Schema};

    fn schema() -> Schema {
        Schema::from_relations(vec![
            RelationSchema::infinite("R", &["a", "b"]),
            RelationSchema::new(
                "B",
                vec![
                    ric_data::Attribute::boolean("x"),
                    ric_data::Attribute::new("y"),
                ],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn equalities_merge_classes() {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let mut b = Cq::builder();
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        let q = b
            .atom(r, vec![Term::Var(x), Term::Var(y)])
            .atom(r, vec![Term::Var(y), Term::Var(z)])
            .eq(Term::Var(x), Term::Var(z))
            .head_vars(vec![x])
            .build();
        let t = Tableau::of(&q).unwrap();
        assert_eq!(t.n_vars, 2); // x=z merged
        assert_eq!(t.atoms.len(), 2);
    }

    #[test]
    fn constant_binding_substitutes() {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let mut b = Cq::builder();
        let (x, y) = (b.var("x"), b.var("y"));
        let q = b
            .atom(r, vec![Term::Var(x), Term::Var(y)])
            .eq(Term::Var(x), Term::from(5))
            .head_vars(vec![y])
            .build();
        let t = Tableau::of(&q).unwrap();
        assert_eq!(t.n_vars, 1);
        assert_eq!(t.atoms[0].args[0], Term::from(5));
    }

    #[test]
    fn conflicting_constants_unsatisfiable() {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let mut b = Cq::builder();
        let x = b.var("x");
        let q = b
            .atom(r, vec![Term::Var(x), Term::Var(x)])
            .eq(Term::Var(x), Term::from(1))
            .eq(Term::Var(x), Term::from(2))
            .head_vars(vec![])
            .build();
        assert_eq!(Tableau::of(&q), Err(TableauError::Unsatisfiable));
    }

    #[test]
    fn neq_on_same_class_unsatisfiable() {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let mut b = Cq::builder();
        let (x, y) = (b.var("x"), b.var("y"));
        let q = b
            .atom(r, vec![Term::Var(x), Term::Var(y)])
            .eq(Term::Var(x), Term::Var(y))
            .neq(Term::Var(x), Term::Var(y))
            .head_vars(vec![])
            .build();
        assert_eq!(Tableau::of(&q), Err(TableauError::Unsatisfiable));
    }

    #[test]
    fn neq_between_distinct_constants_dropped() {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let mut b = Cq::builder();
        let x = b.var("x");
        let q = b
            .atom(r, vec![Term::Var(x), Term::Var(x)])
            .neq(Term::from(1), Term::from(2))
            .head_vars(vec![x])
            .build();
        let t = Tableau::of(&q).unwrap();
        assert!(t.neqs.is_empty());
    }

    #[test]
    fn unsafe_head_variable_rejected() {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let mut b = Cq::builder();
        let x = b.var("x");
        let free = b.var("free");
        let q = b
            .atom(r, vec![Term::Var(x), Term::Var(x)])
            .head_vars(vec![free])
            .build();
        assert!(matches!(
            Tableau::of(&q),
            Err(TableauError::UnsafeVariable(_))
        ));
    }

    #[test]
    fn var_domains_use_finite_columns() {
        let s = schema();
        let bb = s.rel_id("B").unwrap();
        let mut b = Cq::builder();
        let (x, y) = (b.var("x"), b.var("y"));
        let q = b
            .atom(bb, vec![Term::Var(x), Term::Var(y)])
            .head_vars(vec![x, y])
            .build();
        let t = Tableau::of(&q).unwrap();
        let doms = t.var_domains(&s);
        assert_eq!(doms[0].as_ref().unwrap().len(), 2); // boolean column
        assert!(doms[1].is_none()); // infinite column
    }

    #[test]
    fn domain_consistency_detects_bad_constants() {
        let s = schema();
        let bb = s.rel_id("B").unwrap();
        let mut b = Cq::builder();
        let y = b.var("y");
        let q = b
            .atom(bb, vec![Term::from(7), Term::Var(y)])
            .head_vars(vec![y])
            .build();
        let t = Tableau::of(&q).unwrap();
        assert!(!t.domain_consistent(&s));
    }

    #[test]
    fn valuation_instantiates_and_projects() {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let mut b = Cq::builder();
        let (x, y) = (b.var("x"), b.var("y"));
        let q = b
            .atom(r, vec![Term::Var(x), Term::Var(y)])
            .neq(Term::Var(x), Term::Var(y))
            .head_vars(vec![y])
            .build();
        let t = Tableau::of(&q).unwrap();
        let mu = Valuation(vec![Value::int(1), Value::int(2)]);
        assert!(mu.satisfies_neqs(&t));
        let db = mu.instantiate(&t, s.len());
        assert_eq!(db.instance(r).len(), 1);
        assert_eq!(mu.head_tuple(&t), Tuple::new([Value::int(2)]));
        let bad = Valuation(vec![Value::int(1), Value::int(1)]);
        assert!(!bad.satisfies_neqs(&t));
    }
}

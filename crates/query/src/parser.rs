//! A datalog-style text syntax for CQ, UCQ, and FP.
//!
//! ```text
//! Q(X, C) :- Cust(C, N, Cc, A, P), Supt(E, D, C), Cc = 1, X != 'NJ'.
//! ```
//!
//! * identifiers starting with an uppercase letter or `_` are **variables**;
//! * lowercase identifiers and `'quoted strings'` are **string constants**;
//! * integers are integer constants;
//! * body items are relation atoms, `t = t`, or `t != t`; rules end with `.`;
//! * a UCQ is several rules sharing one head predicate;
//! * an FP program may use head predicates that are not in the schema (IDB).

use crate::cq::{Atom, Cq};
use crate::datalog::{Literal, PredId, Program, Rule};
use crate::term::{Term, Var};
use crate::ucq::Ucq;
use ric_data::{Schema, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A parse failure, locating the problem by byte offset *and* 1-based
/// line/column in the source handed to the `parse_*` function.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the source (clamped to the source length; errors at
    /// end-of-input point just past the last byte).
    pub offset: usize,
    /// 1-based line of the offending byte.
    pub line: usize,
    /// 1-based column (byte-based) of the offending byte within its line.
    pub column: usize,
}

impl ParseError {
    /// An error at a byte offset, line/column not yet resolved. The public
    /// `parse_*` entry points resolve them against the full source before
    /// returning (internal sites use `usize::MAX` for "end of input").
    fn new(message: impl Into<String>, offset: usize) -> Self {
        ParseError {
            message: message.into(),
            offset,
            line: 0,
            column: 0,
        }
    }

    /// Resolve `offset` to a 1-based line/column against `src` (clamping
    /// end-of-input markers to just past the last byte).
    fn locate_in(mut self, src: &str) -> Self {
        self.offset = self.offset.min(src.len());
        let before = &src.as_bytes()[..self.offset];
        self.line = 1 + before.iter().filter(|&&b| b == b'\n').count();
        let line_start = before
            .iter()
            .rposition(|&b| b == b'\n')
            .map(|p| p + 1)
            .unwrap_or(0);
        self.column = self.offset - line_start + 1;
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at line {}, column {} (byte {}): {}",
            self.line, self.column, self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Implies, // :-
    Eq,
    Neq,
}

fn tokenize(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '%' => {
                // comment to end of line
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                toks.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, i));
                i += 1;
            }
            ',' => {
                toks.push((Tok::Comma, i));
                i += 1;
            }
            '.' => {
                toks.push((Tok::Dot, i));
                i += 1;
            }
            '=' => {
                toks.push((Tok::Eq, i));
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Neq, i));
                    i += 2;
                } else {
                    return Err(ParseError::new("expected `!=`", i));
                }
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    toks.push((Tok::Implies, i));
                    i += 2;
                } else {
                    return Err(ParseError::new("expected `:-`", i));
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j == bytes.len() {
                    return Err(ParseError::new("unterminated string", i));
                }
                toks.push((Tok::Str(src[start..j].to_string()), i));
                i = j + 1;
            }
            '-' | '0'..='9' => {
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let n: i64 = text
                    .parse()
                    .map_err(|_| ParseError::new(format!("bad integer `{text}`"), start))?;
                toks.push((Tok::Int(n), start));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push((Tok::Ident(src[start..i].to_string()), start));
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{other}`"),
                    i,
                ))
            }
        }
    }
    Ok(toks)
}

struct Parser<'a> {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    schema: &'a Schema,
}

/// One parsed rule, relation names unresolved for the head.
struct RawRule {
    head_name: String,
    head_args: Vec<RawTerm>,
    body: Vec<RawItem>,
    /// Byte offset of the head predicate token.
    offset: usize,
}

enum RawTerm {
    Var(String),
    Const(Value),
}

enum RawItem {
    /// Relation name, arguments, byte offset of the relation-name token.
    Atom(String, Vec<RawTerm>, usize),
    Eq(RawTerm, RawTerm),
    Neq(RawTerm, RawTerm),
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(_, o)| *o)
            .unwrap_or(usize::MAX)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(message, self.offset())
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        match self.bump() {
            Some(ref t) if t == want => Ok(()),
            _ => {
                self.pos -= 1;
                Err(self.err(format!("expected {what}")))
            }
        }
    }

    fn term(&mut self) -> Result<RawTerm, ParseError> {
        match self.bump() {
            Some(Tok::Int(n)) => Ok(RawTerm::Const(Value::int(n))),
            Some(Tok::Str(s)) => Ok(RawTerm::Const(Value::str(s))),
            Some(Tok::Ident(name)) => {
                let first = name.chars().next().unwrap_or('?');
                if first.is_ascii_uppercase() || first == '_' {
                    Ok(RawTerm::Var(name))
                } else {
                    Ok(RawTerm::Const(Value::str(name)))
                }
            }
            _ => {
                self.pos -= 1;
                Err(self.err("expected a term"))
            }
        }
    }

    fn term_list(&mut self) -> Result<Vec<RawTerm>, ParseError> {
        self.expect(&Tok::LParen, "`(`")?;
        let mut out = Vec::new();
        if self.peek() == Some(&Tok::RParen) {
            self.bump();
            return Ok(out);
        }
        loop {
            out.push(self.term()?);
            match self.bump() {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => break,
                _ => {
                    self.pos -= 1;
                    return Err(self.err("expected `,` or `)`"));
                }
            }
        }
        Ok(out)
    }

    fn rule(&mut self) -> Result<RawRule, ParseError> {
        let offset = self.offset();
        let head_name = match self.bump() {
            Some(Tok::Ident(n)) => n,
            _ => {
                self.pos -= 1;
                return Err(self.err("expected a head predicate"));
            }
        };
        let head_args = self.term_list()?;
        let mut body = Vec::new();
        match self.bump() {
            Some(Tok::Dot) => {
                return Ok(RawRule {
                    head_name,
                    head_args,
                    body,
                    offset,
                })
            }
            Some(Tok::Implies) => {}
            _ => {
                self.pos -= 1;
                return Err(self.err("expected `:-` or `.`"));
            }
        }
        loop {
            // An item is IDENT(...) or term (=|!=) term.
            let item = if let Some(Tok::Ident(_)) = self.peek() {
                // Lookahead: IDENT followed by `(` is an atom.
                let is_atom = matches!(self.toks.get(self.pos + 1), Some((Tok::LParen, _)));
                if is_atom {
                    let at = self.offset();
                    let Some(Tok::Ident(name)) = self.bump() else {
                        unreachable!()
                    };
                    let args = self.term_list()?;
                    RawItem::Atom(name, args, at)
                } else {
                    self.comparison()?
                }
            } else {
                self.comparison()?
            };
            body.push(item);
            if body.len() > crate::datalog::MAX_RULE_BODY {
                return Err(self.err(format!(
                    "rule body exceeds {} literals",
                    crate::datalog::MAX_RULE_BODY
                )));
            }
            match self.bump() {
                Some(Tok::Comma) => continue,
                Some(Tok::Dot) => break,
                _ => {
                    self.pos -= 1;
                    return Err(self.err("expected `,` or `.`"));
                }
            }
        }
        Ok(RawRule {
            head_name,
            head_args,
            body,
            offset,
        })
    }

    fn comparison(&mut self) -> Result<RawItem, ParseError> {
        let l = self.term()?;
        match self.bump() {
            Some(Tok::Eq) => Ok(RawItem::Eq(l, self.term()?)),
            Some(Tok::Neq) => Ok(RawItem::Neq(l, self.term()?)),
            _ => {
                self.pos -= 1;
                Err(self.err("expected `=` or `!=`"))
            }
        }
    }

    fn rules(&mut self) -> Result<Vec<RawRule>, ParseError> {
        let mut out = Vec::new();
        while self.peek().is_some() {
            out.push(self.rule()?);
        }
        if out.is_empty() {
            return Err(self.err("no rules"));
        }
        Ok(out)
    }
}

/// Shared var-interning for a single rule.
struct VarScope {
    names: Vec<String>,
}

impl VarScope {
    fn new() -> Self {
        VarScope { names: Vec::new() }
    }

    fn get(&mut self, name: &str) -> Var {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            Var(i as u32)
        } else {
            self.names.push(name.to_string());
            Var((self.names.len() - 1) as u32)
        }
    }

    fn term(&mut self, t: &RawTerm) -> Term {
        match t {
            RawTerm::Var(n) => Term::Var(self.get(n)),
            RawTerm::Const(c) => Term::Const(c.clone()),
        }
    }
}

fn rule_to_cq(rule: &RawRule, schema: &Schema) -> Result<Cq, ParseError> {
    let mut scope = VarScope::new();
    let head: Vec<Term> = rule.head_args.iter().map(|t| scope.term(t)).collect();
    let mut atoms = Vec::new();
    let mut eqs = Vec::new();
    let mut neqs = Vec::new();
    for item in &rule.body {
        match item {
            RawItem::Atom(name, args, at) => {
                let rel = schema
                    .rel_id(name)
                    .ok_or_else(|| ParseError::new(format!("unknown relation `{name}`"), *at))?;
                let arity = schema
                    .relation(rel)
                    .map(|r| r.arity())
                    .unwrap_or_else(|_| unreachable!("rel_id resolved above"));
                if args.len() != arity {
                    return Err(ParseError::new(
                        format!(
                            "relation `{name}` expects {arity} arguments, got {}",
                            args.len()
                        ),
                        *at,
                    ));
                }
                atoms.push(Atom::new(rel, args.iter().map(|t| scope.term(t)).collect()));
            }
            RawItem::Eq(l, r) => eqs.push((scope.term(l), scope.term(r))),
            RawItem::Neq(l, r) => neqs.push((scope.term(l), scope.term(r))),
        }
    }
    Ok(Cq {
        n_vars: scope.names.len() as u32,
        head,
        atoms,
        eqs,
        neqs,
        var_names: scope.names,
    })
}

/// Parse a single CQ rule.
pub fn parse_cq(schema: &Schema, src: &str) -> Result<Cq, ParseError> {
    parse_cq_inner(schema, src).map_err(|e| e.locate_in(src))
}

fn parse_cq_inner(schema: &Schema, src: &str) -> Result<Cq, ParseError> {
    let toks = tokenize(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        schema,
    };
    let rules = p.rules()?;
    if rules.len() != 1 {
        return Err(ParseError::new(
            format!("expected exactly one rule, found {}", rules.len()),
            rules[1].offset,
        ));
    }
    rule_to_cq(&rules[0], p.schema)
}

/// Parse a UCQ: one or more rules sharing one head predicate.
pub fn parse_ucq(schema: &Schema, src: &str) -> Result<Ucq, ParseError> {
    parse_ucq_inner(schema, src).map_err(|e| e.locate_in(src))
}

fn parse_ucq_inner(schema: &Schema, src: &str) -> Result<Ucq, ParseError> {
    let toks = tokenize(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        schema,
    };
    let rules = p.rules()?;
    let head = rules[0].head_name.clone();
    if let Some(odd) = rules.iter().find(|r| r.head_name != head) {
        return Err(ParseError::new(
            format!(
                "all UCQ rules must share one head predicate (`{head}` vs `{}`)",
                odd.head_name
            ),
            odd.offset,
        ));
    }
    let disjuncts = rules
        .iter()
        .map(|r| rule_to_cq(r, schema))
        .collect::<Result<Vec<_>, _>>()?;
    let arity = disjuncts[0].head_arity();
    if let Some(i) = disjuncts.iter().position(|d| d.head_arity() != arity) {
        return Err(ParseError::new(
            "UCQ disjunct head arities differ",
            rules[i].offset,
        ));
    }
    Ok(Ucq::new(disjuncts))
}

/// Parse an FP (datalog) program. Head predicates and body predicates not in
/// the schema become IDB predicates; `output` names the result predicate.
pub fn parse_program(schema: &Schema, src: &str, output: &str) -> Result<Program, ParseError> {
    parse_program_inner(schema, src, output).map_err(|e| e.locate_in(src))
}

fn parse_program_inner(schema: &Schema, src: &str, output: &str) -> Result<Program, ParseError> {
    let toks = tokenize(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        schema,
    };
    let raw = p.rules()?;

    // Collect IDB predicates: anything used as a head, or in a body and not
    // an EDB relation.
    let mut idb: BTreeMap<String, (PredId, usize)> = BTreeMap::new();
    let declare = |name: &str,
                   arity: usize,
                   at: usize,
                   idb: &mut BTreeMap<String, (PredId, usize)>|
     -> Result<PredId, ParseError> {
        if let Some((id, a)) = idb.get(name) {
            if *a != arity {
                return Err(ParseError::new(
                    format!("predicate `{name}` used with arities {a} and {arity}"),
                    at,
                ));
            }
            return Ok(*id);
        }
        let id = PredId(idb.len());
        idb.insert(name.to_string(), (id, arity));
        Ok(id)
    };
    for r in &raw {
        if schema.rel_id(&r.head_name).is_some() {
            return Err(ParseError::new(
                format!("head predicate `{}` is an EDB relation", r.head_name),
                r.offset,
            ));
        }
        declare(&r.head_name, r.head_args.len(), r.offset, &mut idb)?;
    }
    for r in &raw {
        for item in &r.body {
            if let RawItem::Atom(name, args, at) = item {
                if schema.rel_id(name).is_none() {
                    declare(name, args.len(), *at, &mut idb)?;
                }
            }
        }
    }

    let mut rules = Vec::with_capacity(raw.len());
    for r in &raw {
        let mut scope = VarScope::new();
        let head_args: Vec<Term> = r.head_args.iter().map(|t| scope.term(t)).collect();
        let head = idb[&r.head_name].0;
        let mut body = Vec::new();
        for item in &r.body {
            match item {
                RawItem::Atom(name, args, _) => {
                    let terms: Vec<Term> = args.iter().map(|t| scope.term(t)).collect();
                    if let Some(rel) = schema.rel_id(name) {
                        body.push(Literal::Edb(Atom::new(rel, terms)));
                    } else {
                        body.push(Literal::Idb(idb[name].0, terms));
                    }
                }
                RawItem::Eq(l, r2) => body.push(Literal::Eq(scope.term(l), scope.term(r2))),
                RawItem::Neq(l, r2) => body.push(Literal::Neq(scope.term(l), scope.term(r2))),
            }
        }
        rules.push(Rule {
            head,
            head_args,
            body,
            n_vars: scope.names.len() as u32,
        });
    }

    let mut pred_names = vec![String::new(); idb.len()];
    let mut arities = vec![0usize; idb.len()];
    for (name, (id, arity)) in &idb {
        pred_names[id.0] = name.clone();
        arities[id.0] = *arity;
    }
    let out_id = idb.get(output).map(|(id, _)| *id).ok_or_else(|| {
        ParseError::new(
            format!("output predicate `{output}` not defined"),
            usize::MAX,
        )
    })?;
    let program = Program {
        pred_names,
        arities,
        rules,
        output: out_id,
    };
    program.validate().map_err(|e| {
        use crate::datalog::ProgramError as PE;
        let rule = match &e {
            PE::NotRangeRestricted { rule, .. }
            | PE::ArityMismatch { rule, .. }
            | PE::BodyTooLong { rule, .. } => *rule,
        };
        ParseError::new(
            e.to_string(),
            raw.get(rule).map_or(usize::MAX, |r| r.offset),
        )
    })?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_cq, eval_ucq};
    use ric_data::{Database, RelationSchema, Tuple};

    fn setup() -> (Schema, Database) {
        let s = Schema::from_relations(vec![RelationSchema::infinite("E", &["a", "b"])]).unwrap();
        let e = s.rel_id("E").unwrap();
        let mut db = Database::empty(&s);
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            db.insert(e, Tuple::new([Value::int(a), Value::int(b)]));
        }
        (s, db)
    }

    #[test]
    fn parse_and_eval_cq() {
        let (s, db) = setup();
        let q = parse_cq(&s, "Q(X, Z) :- E(X, Y), E(Y, Z), X != Z.").unwrap();
        let res = eval_cq(&q, &db).unwrap();
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn parse_constants_and_strings() {
        let (s, _) = setup();
        let q = parse_cq(&s, "Q(X) :- E(X, 2), X != 'NJ', X != nj.").unwrap();
        assert_eq!(q.atoms.len(), 1);
        assert_eq!(q.neqs.len(), 2);
        assert_eq!(q.neqs[0].1, Term::from("NJ"));
        assert_eq!(q.neqs[1].1, Term::from("nj"));
    }

    #[test]
    fn parse_ucq_shares_head() {
        let (s, db) = setup();
        let u = parse_ucq(&s, "Q(X) :- E(X, 2). Q(X) :- E(X, 3).").unwrap();
        assert_eq!(u.disjuncts.len(), 2);
        let res = eval_ucq(&u, &db).unwrap();
        assert_eq!(res.len(), 2); // 1 and 2
    }

    #[test]
    fn parse_program_transitive_closure() {
        let (s, db) = setup();
        let p = parse_program(
            &s,
            "Tc(X, Y) :- E(X, Y). Tc(X, Y) :- E(X, Z), Tc(Z, Y).",
            "Tc",
        )
        .unwrap();
        assert_eq!(p.eval(&db).len(), 6);
    }

    #[test]
    fn errors_are_located() {
        let (s, _) = setup();
        // Unknown relation: points at the `Nope` token.
        let e = parse_cq(&s, "Q(X) :- Nope(X).").unwrap_err();
        assert_eq!((e.offset, e.line, e.column), (8, 1, 9));
        assert!(e.message.contains("Nope"), "{e}");
        // Arity mismatch: points at the atom, not the start of the source.
        let e = parse_cq(&s, "Q(X) :- E(X).").unwrap_err();
        assert_eq!((e.offset, e.line, e.column), (8, 1, 9));
        // Missing dot: end-of-input clamps to just past the last byte.
        let src = "Q(X) :- E(X, Y)";
        let e = parse_cq(&s, src).unwrap_err();
        assert_eq!((e.offset, e.line, e.column), (src.len(), 1, src.len() + 1));
        // Unterminated string: points at the opening quote.
        let e = parse_cq(&s, "Q(X) :- E(X, 'unterminated.").unwrap_err();
        assert_eq!((e.offset, e.line, e.column), (13, 1, 14));
        // Lexer errors carry their token offset too.
        let e = parse_cq(&s, "Q(X) :- E(X, Y), X ! Y.").unwrap_err();
        assert_eq!((e.offset, e.line, e.column), (19, 1, 20));
    }

    #[test]
    fn multiline_errors_report_line_and_column() {
        let (s, _) = setup();
        // Malformed CQ: the bad atom sits on line 3.
        let src = "% a comment line\nQ(X) :-\n    E(X, Y), Nope(Y).";
        let e = parse_cq(&s, src).unwrap_err();
        assert_eq!((e.line, e.column), (3, 14));
        assert_eq!(&src[e.offset..e.offset + 4], "Nope");
        assert_eq!(
            e.to_string(),
            "parse error at line 3, column 14 (byte 38): unknown relation `Nope`"
        );
        // Malformed UCQ: second rule changes the head predicate; the error
        // points at that rule's head on line 2.
        let src = "Q(X) :- E(X, Y).\nP(X) :- E(X, Y).";
        let e = parse_ucq(&s, src).unwrap_err();
        assert_eq!((e.line, e.column), (2, 1));
        assert!(e.message.contains("head predicate"), "{e}");
        // UCQ disjunct arity mismatch points at the offending rule.
        let src = "Q(X) :- E(X, Y).\nQ(X, Y) :- E(X, Y).";
        let e = parse_ucq(&s, src).unwrap_err();
        assert_eq!((e.line, e.column), (2, 1));
        // Malformed FP: a head predicate that is an EDB relation, on line 2.
        let src = "Tc(X, Y) :- E(X, Y).\nE(X, Y) :- Tc(X, Y).";
        let e = parse_program(&s, src, "Tc").unwrap_err();
        assert_eq!((e.line, e.column), (2, 1));
        assert!(e.message.contains("EDB"), "{e}");
        // FP validation errors (range restriction) map back to the rule.
        let src = "Tc(X, Y) :- E(X, Y).\nTc(X, Z) :- E(X, Y).";
        let e = parse_program(&s, src, "Tc").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("range-restricted"), "{e}");
        // Undefined output predicate: no token to blame, clamps to EOF.
        let src = "Tc(X, Y) :- E(X, Y).";
        let e = parse_program(&s, src, "Missing").unwrap_err();
        assert_eq!(e.offset, src.len());
    }

    #[test]
    fn comments_skipped() {
        let (s, _) = setup();
        let q = parse_cq(&s, "% header\nQ(X) :- E(X, Y). % trailing").unwrap();
        assert_eq!(q.atoms.len(), 1);
    }

    #[test]
    fn boolean_head() {
        let (s, db) = setup();
        let q = parse_cq(&s, "Q() :- E(1, X).").unwrap();
        assert!(q.is_boolean());
        assert_eq!(eval_cq(&q, &db).unwrap().len(), 1);
    }
}

//! A datalog-style text syntax for CQ, UCQ, and FP.
//!
//! ```text
//! Q(X, C) :- Cust(C, N, Cc, A, P), Supt(E, D, C), Cc = 1, X != 'NJ'.
//! ```
//!
//! * identifiers starting with an uppercase letter or `_` are **variables**;
//! * lowercase identifiers and `'quoted strings'` are **string constants**;
//! * integers are integer constants;
//! * body items are relation atoms, `t = t`, or `t != t`; rules end with `.`;
//! * a UCQ is several rules sharing one head predicate;
//! * an FP program may use head predicates that are not in the schema (IDB).

use crate::cq::{Atom, Cq};
use crate::datalog::{Literal, PredId, Program, Rule};
use crate::term::{Term, Var};
use crate::ucq::Ucq;
use ric_data::{Schema, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A parse failure, with a human-readable message and byte offset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the source.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Implies, // :-
    Eq,
    Neq,
}

fn tokenize(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '%' => {
                // comment to end of line
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                toks.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, i));
                i += 1;
            }
            ',' => {
                toks.push((Tok::Comma, i));
                i += 1;
            }
            '.' => {
                toks.push((Tok::Dot, i));
                i += 1;
            }
            '=' => {
                toks.push((Tok::Eq, i));
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Neq, i));
                    i += 2;
                } else {
                    return Err(ParseError {
                        message: "expected `!=`".into(),
                        offset: i,
                    });
                }
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    toks.push((Tok::Implies, i));
                    i += 2;
                } else {
                    return Err(ParseError {
                        message: "expected `:-`".into(),
                        offset: i,
                    });
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j == bytes.len() {
                    return Err(ParseError {
                        message: "unterminated string".into(),
                        offset: i,
                    });
                }
                toks.push((Tok::Str(src[start..j].to_string()), i));
                i = j + 1;
            }
            '-' | '0'..='9' => {
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let n: i64 = text.parse().map_err(|_| ParseError {
                    message: format!("bad integer `{text}`"),
                    offset: start,
                })?;
                toks.push((Tok::Int(n), start));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push((Tok::Ident(src[start..i].to_string()), start));
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character `{other}`"),
                    offset: i,
                })
            }
        }
    }
    Ok(toks)
}

struct Parser<'a> {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    schema: &'a Schema,
}

/// One parsed rule, relation names unresolved for the head.
struct RawRule {
    head_name: String,
    head_args: Vec<RawTerm>,
    body: Vec<RawItem>,
}

enum RawTerm {
    Var(String),
    Const(Value),
}

enum RawItem {
    Atom(String, Vec<RawTerm>),
    Eq(RawTerm, RawTerm),
    Neq(RawTerm, RawTerm),
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(_, o)| *o)
            .unwrap_or(usize::MAX)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.offset(),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        match self.bump() {
            Some(ref t) if t == want => Ok(()),
            _ => {
                self.pos -= 1;
                Err(self.err(format!("expected {what}")))
            }
        }
    }

    fn term(&mut self) -> Result<RawTerm, ParseError> {
        match self.bump() {
            Some(Tok::Int(n)) => Ok(RawTerm::Const(Value::int(n))),
            Some(Tok::Str(s)) => Ok(RawTerm::Const(Value::str(s))),
            Some(Tok::Ident(name)) => {
                let first = name.chars().next().unwrap();
                if first.is_ascii_uppercase() || first == '_' {
                    Ok(RawTerm::Var(name))
                } else {
                    Ok(RawTerm::Const(Value::str(name)))
                }
            }
            _ => {
                self.pos -= 1;
                Err(self.err("expected a term"))
            }
        }
    }

    fn term_list(&mut self) -> Result<Vec<RawTerm>, ParseError> {
        self.expect(&Tok::LParen, "`(`")?;
        let mut out = Vec::new();
        if self.peek() == Some(&Tok::RParen) {
            self.bump();
            return Ok(out);
        }
        loop {
            out.push(self.term()?);
            match self.bump() {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => break,
                _ => {
                    self.pos -= 1;
                    return Err(self.err("expected `,` or `)`"));
                }
            }
        }
        Ok(out)
    }

    fn rule(&mut self) -> Result<RawRule, ParseError> {
        let head_name = match self.bump() {
            Some(Tok::Ident(n)) => n,
            _ => {
                self.pos -= 1;
                return Err(self.err("expected a head predicate"));
            }
        };
        let head_args = self.term_list()?;
        let mut body = Vec::new();
        match self.bump() {
            Some(Tok::Dot) => {
                return Ok(RawRule {
                    head_name,
                    head_args,
                    body,
                })
            }
            Some(Tok::Implies) => {}
            _ => {
                self.pos -= 1;
                return Err(self.err("expected `:-` or `.`"));
            }
        }
        loop {
            // An item is IDENT(...) or term (=|!=) term.
            let item = if let Some(Tok::Ident(_)) = self.peek() {
                // Lookahead: IDENT followed by `(` is an atom.
                let is_atom = matches!(self.toks.get(self.pos + 1), Some((Tok::LParen, _)));
                if is_atom {
                    let Some(Tok::Ident(name)) = self.bump() else {
                        unreachable!()
                    };
                    let args = self.term_list()?;
                    RawItem::Atom(name, args)
                } else {
                    self.comparison()?
                }
            } else {
                self.comparison()?
            };
            body.push(item);
            if body.len() > crate::datalog::MAX_RULE_BODY {
                return Err(self.err(format!(
                    "rule body exceeds {} literals",
                    crate::datalog::MAX_RULE_BODY
                )));
            }
            match self.bump() {
                Some(Tok::Comma) => continue,
                Some(Tok::Dot) => break,
                _ => {
                    self.pos -= 1;
                    return Err(self.err("expected `,` or `.`"));
                }
            }
        }
        Ok(RawRule {
            head_name,
            head_args,
            body,
        })
    }

    fn comparison(&mut self) -> Result<RawItem, ParseError> {
        let l = self.term()?;
        match self.bump() {
            Some(Tok::Eq) => Ok(RawItem::Eq(l, self.term()?)),
            Some(Tok::Neq) => Ok(RawItem::Neq(l, self.term()?)),
            _ => {
                self.pos -= 1;
                Err(self.err("expected `=` or `!=`"))
            }
        }
    }

    fn rules(&mut self) -> Result<Vec<RawRule>, ParseError> {
        let mut out = Vec::new();
        while self.peek().is_some() {
            out.push(self.rule()?);
        }
        if out.is_empty() {
            return Err(self.err("no rules"));
        }
        Ok(out)
    }
}

/// Shared var-interning for a single rule.
struct VarScope {
    names: Vec<String>,
}

impl VarScope {
    fn new() -> Self {
        VarScope { names: Vec::new() }
    }

    fn get(&mut self, name: &str) -> Var {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            Var(i as u32)
        } else {
            self.names.push(name.to_string());
            Var((self.names.len() - 1) as u32)
        }
    }

    fn term(&mut self, t: &RawTerm) -> Term {
        match t {
            RawTerm::Var(n) => Term::Var(self.get(n)),
            RawTerm::Const(c) => Term::Const(c.clone()),
        }
    }
}

fn rule_to_cq(rule: &RawRule, schema: &Schema) -> Result<Cq, ParseError> {
    let mut scope = VarScope::new();
    let head: Vec<Term> = rule.head_args.iter().map(|t| scope.term(t)).collect();
    let mut atoms = Vec::new();
    let mut eqs = Vec::new();
    let mut neqs = Vec::new();
    for item in &rule.body {
        match item {
            RawItem::Atom(name, args) => {
                let rel = schema.rel_id(name).ok_or_else(|| ParseError {
                    message: format!("unknown relation `{name}`"),
                    offset: 0,
                })?;
                let arity = schema.relation(rel).expect("validated").arity();
                if args.len() != arity {
                    return Err(ParseError {
                        message: format!(
                            "relation `{name}` expects {arity} arguments, got {}",
                            args.len()
                        ),
                        offset: 0,
                    });
                }
                atoms.push(Atom::new(rel, args.iter().map(|t| scope.term(t)).collect()));
            }
            RawItem::Eq(l, r) => eqs.push((scope.term(l), scope.term(r))),
            RawItem::Neq(l, r) => neqs.push((scope.term(l), scope.term(r))),
        }
    }
    Ok(Cq {
        n_vars: scope.names.len() as u32,
        head,
        atoms,
        eqs,
        neqs,
        var_names: scope.names,
    })
}

/// Parse a single CQ rule.
pub fn parse_cq(schema: &Schema, src: &str) -> Result<Cq, ParseError> {
    let toks = tokenize(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        schema,
    };
    let rules = p.rules()?;
    if rules.len() != 1 {
        return Err(ParseError {
            message: format!("expected exactly one rule, found {}", rules.len()),
            offset: 0,
        });
    }
    rule_to_cq(&rules[0], p.schema)
}

/// Parse a UCQ: one or more rules sharing one head predicate.
pub fn parse_ucq(schema: &Schema, src: &str) -> Result<Ucq, ParseError> {
    let toks = tokenize(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        schema,
    };
    let rules = p.rules()?;
    let head = rules[0].head_name.clone();
    if rules.iter().any(|r| r.head_name != head) {
        return Err(ParseError {
            message: "all UCQ rules must share one head predicate".into(),
            offset: 0,
        });
    }
    let disjuncts = rules
        .iter()
        .map(|r| rule_to_cq(r, schema))
        .collect::<Result<Vec<_>, _>>()?;
    let arity = disjuncts[0].head_arity();
    if disjuncts.iter().any(|d| d.head_arity() != arity) {
        return Err(ParseError {
            message: "UCQ disjunct head arities differ".into(),
            offset: 0,
        });
    }
    Ok(Ucq::new(disjuncts))
}

/// Parse an FP (datalog) program. Head predicates and body predicates not in
/// the schema become IDB predicates; `output` names the result predicate.
pub fn parse_program(schema: &Schema, src: &str, output: &str) -> Result<Program, ParseError> {
    let toks = tokenize(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        schema,
    };
    let raw = p.rules()?;

    // Collect IDB predicates: anything used as a head, or in a body and not
    // an EDB relation.
    let mut idb: BTreeMap<String, (PredId, usize)> = BTreeMap::new();
    let declare = |name: &str,
                   arity: usize,
                   idb: &mut BTreeMap<String, (PredId, usize)>|
     -> Result<PredId, ParseError> {
        if let Some((id, a)) = idb.get(name) {
            if *a != arity {
                return Err(ParseError {
                    message: format!("predicate `{name}` used with arities {a} and {arity}"),
                    offset: 0,
                });
            }
            return Ok(*id);
        }
        let id = PredId(idb.len());
        idb.insert(name.to_string(), (id, arity));
        Ok(id)
    };
    for r in &raw {
        if schema.rel_id(&r.head_name).is_some() {
            return Err(ParseError {
                message: format!("head predicate `{}` is an EDB relation", r.head_name),
                offset: 0,
            });
        }
        declare(&r.head_name, r.head_args.len(), &mut idb)?;
    }
    for r in &raw {
        for item in &r.body {
            if let RawItem::Atom(name, args) = item {
                if schema.rel_id(name).is_none() {
                    declare(name, args.len(), &mut idb)?;
                }
            }
        }
    }

    let mut rules = Vec::with_capacity(raw.len());
    for r in &raw {
        let mut scope = VarScope::new();
        let head_args: Vec<Term> = r.head_args.iter().map(|t| scope.term(t)).collect();
        let head = idb[&r.head_name].0;
        let mut body = Vec::new();
        for item in &r.body {
            match item {
                RawItem::Atom(name, args) => {
                    let terms: Vec<Term> = args.iter().map(|t| scope.term(t)).collect();
                    if let Some(rel) = schema.rel_id(name) {
                        body.push(Literal::Edb(Atom::new(rel, terms)));
                    } else {
                        body.push(Literal::Idb(idb[name].0, terms));
                    }
                }
                RawItem::Eq(l, r2) => body.push(Literal::Eq(scope.term(l), scope.term(r2))),
                RawItem::Neq(l, r2) => body.push(Literal::Neq(scope.term(l), scope.term(r2))),
            }
        }
        rules.push(Rule {
            head,
            head_args,
            body,
            n_vars: scope.names.len() as u32,
        });
    }

    let mut pred_names = vec![String::new(); idb.len()];
    let mut arities = vec![0usize; idb.len()];
    for (name, (id, arity)) in &idb {
        pred_names[id.0] = name.clone();
        arities[id.0] = *arity;
    }
    let out_id = idb
        .get(output)
        .map(|(id, _)| *id)
        .ok_or_else(|| ParseError {
            message: format!("output predicate `{output}` not defined"),
            offset: 0,
        })?;
    let program = Program {
        pred_names,
        arities,
        rules,
        output: out_id,
    };
    program.validate().map_err(|e| ParseError {
        message: e.to_string(),
        offset: 0,
    })?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_cq, eval_ucq};
    use ric_data::{Database, RelationSchema, Tuple};

    fn setup() -> (Schema, Database) {
        let s = Schema::from_relations(vec![RelationSchema::infinite("E", &["a", "b"])]).unwrap();
        let e = s.rel_id("E").unwrap();
        let mut db = Database::empty(&s);
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            db.insert(e, Tuple::new([Value::int(a), Value::int(b)]));
        }
        (s, db)
    }

    #[test]
    fn parse_and_eval_cq() {
        let (s, db) = setup();
        let q = parse_cq(&s, "Q(X, Z) :- E(X, Y), E(Y, Z), X != Z.").unwrap();
        let res = eval_cq(&q, &db).unwrap();
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn parse_constants_and_strings() {
        let (s, _) = setup();
        let q = parse_cq(&s, "Q(X) :- E(X, 2), X != 'NJ', X != nj.").unwrap();
        assert_eq!(q.atoms.len(), 1);
        assert_eq!(q.neqs.len(), 2);
        assert_eq!(q.neqs[0].1, Term::from("NJ"));
        assert_eq!(q.neqs[1].1, Term::from("nj"));
    }

    #[test]
    fn parse_ucq_shares_head() {
        let (s, db) = setup();
        let u = parse_ucq(&s, "Q(X) :- E(X, 2). Q(X) :- E(X, 3).").unwrap();
        assert_eq!(u.disjuncts.len(), 2);
        let res = eval_ucq(&u, &db).unwrap();
        assert_eq!(res.len(), 2); // 1 and 2
    }

    #[test]
    fn parse_program_transitive_closure() {
        let (s, db) = setup();
        let p = parse_program(
            &s,
            "Tc(X, Y) :- E(X, Y). Tc(X, Y) :- E(X, Z), Tc(Z, Y).",
            "Tc",
        )
        .unwrap();
        assert_eq!(p.eval(&db).len(), 6);
    }

    #[test]
    fn errors_are_located() {
        let (s, _) = setup();
        assert!(parse_cq(&s, "Q(X) :- Nope(X).").is_err());
        assert!(parse_cq(&s, "Q(X) :- E(X).").is_err()); // arity
        assert!(parse_cq(&s, "Q(X) :- E(X, Y)").is_err()); // missing dot
        assert!(parse_cq(&s, "Q(X) :- E(X, 'unterminated.").is_err());
        assert!(parse_ucq(&s, "Q(X) :- E(X, Y). P(X) :- E(X, Y).").is_err());
    }

    #[test]
    fn comments_skipped() {
        let (s, _) = setup();
        let q = parse_cq(&s, "% header\nQ(X) :- E(X, Y). % trailing").unwrap();
        assert_eq!(q.atoms.len(), 1);
    }

    #[test]
    fn boolean_head() {
        let (s, db) = setup();
        let q = parse_cq(&s, "Q() :- E(1, X).").unwrap();
        assert!(q.is_boolean());
        assert_eq!(eval_cq(&q, &db).unwrap().len(), 1);
    }
}

//! Variables and terms.

use ric_data::Value;
use std::fmt;

/// A query variable, identified by a dense index within its query.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

impl Var {
    /// The index as `usize`, for table lookups.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A term: a variable or a constant.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A constant.
    Const(Value),
}

impl Term {
    /// The variable inside, if any.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant inside, if any.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }

    /// Is this a variable?
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

impl From<i64> for Term {
    fn from(i: i64) -> Self {
        Term::Const(Value::int(i))
    }
}

impl From<&str> for Term {
    fn from(s: &str) -> Self {
        Term::Const(Value::str(s))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => match c {
                Value::Int(i) => write!(f, "{i}"),
                Value::Str(s) => write!(f, "'{s}'"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_accessors() {
        let t = Term::Var(Var(3));
        assert_eq!(t.as_var(), Some(Var(3)));
        assert!(t.is_var());
        let c = Term::from(5);
        assert_eq!(c.as_const(), Some(&Value::int(5)));
        assert!(!c.is_var());
    }

    #[test]
    fn display_quotes_strings() {
        assert_eq!(Term::from("NJ").to_string(), "'NJ'");
        assert_eq!(Term::from(7).to_string(), "7");
        assert_eq!(Term::Var(Var(0)).to_string(), "x0");
    }
}

//! Positive existential first-order queries, ∃FO⁺ (Section 2.1(c)).
//!
//! Built from atomic formulas by closing under `∧`, `∨`, and `∃`. Every
//! ∃FO⁺ query is equivalent to a (possibly exponentially larger) UCQ; the
//! deciders use [`EfoQuery::to_ucq`] and the paper's observation that the
//! blow-up only affects the *number* of disjuncts, not the complexity class
//! (Theorem 3.6(4), Theorem 4.5(2c)).

use crate::cq::{Atom, Cq};
use crate::term::Term;
use crate::ucq::Ucq;
use ric_data::{Tuple, Value};
use std::collections::BTreeSet;

/// Body of an ∃FO⁺ query. Existential quantification is implicit: every
/// variable not in the head is existentially quantified.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EfoExpr {
    /// A relation atom.
    Atom(Atom),
    /// Equality `t = t′`.
    Eq(Term, Term),
    /// Inequality `t ≠ t′`.
    Neq(Term, Term),
    /// Conjunction.
    And(Vec<EfoExpr>),
    /// Disjunction.
    Or(Vec<EfoExpr>),
}

impl EfoExpr {
    /// Conjunction helper.
    pub fn and(parts: Vec<EfoExpr>) -> EfoExpr {
        EfoExpr::And(parts)
    }

    /// Disjunction helper.
    pub fn or(parts: Vec<EfoExpr>) -> EfoExpr {
        EfoExpr::Or(parts)
    }

    /// Number of DNF clauses this expression expands to.
    pub fn dnf_size(&self) -> usize {
        match self {
            EfoExpr::Atom(_) | EfoExpr::Eq(..) | EfoExpr::Neq(..) => 1,
            EfoExpr::And(parts) => parts.iter().map(EfoExpr::dnf_size).product(),
            EfoExpr::Or(parts) => parts.iter().map(EfoExpr::dnf_size).sum(),
        }
    }
}

/// One literal of a DNF clause.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Leaf {
    Atom(Atom),
    Eq(Term, Term),
    Neq(Term, Term),
}

/// An ∃FO⁺ query with an output summary.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EfoQuery {
    /// Number of variables.
    pub n_vars: u32,
    /// Output summary.
    pub head: Vec<Term>,
    /// The body formula.
    pub body: EfoExpr,
    /// Display names, indexed by variable.
    pub var_names: Vec<String>,
}

impl EfoQuery {
    /// Build a query, computing `n_vars` from the formula.
    pub fn new(head: Vec<Term>, body: EfoExpr, var_names: Vec<String>) -> Self {
        let mut max = var_names.len() as u32;
        fn scan(e: &EfoExpr, max: &mut u32) {
            let bump = |t: &Term, max: &mut u32| {
                if let Term::Var(v) = t {
                    *max = (*max).max(v.0 + 1);
                }
            };
            match e {
                EfoExpr::Atom(a) => a.args.iter().for_each(|t| bump(t, max)),
                EfoExpr::Eq(l, r) | EfoExpr::Neq(l, r) => {
                    bump(l, max);
                    bump(r, max);
                }
                EfoExpr::And(ps) | EfoExpr::Or(ps) => ps.iter().for_each(|p| scan(p, max)),
            }
        }
        scan(&body, &mut max);
        for t in &head {
            if let Term::Var(v) = t {
                max = max.max(v.0 + 1);
            }
        }
        EfoQuery {
            n_vars: max,
            head,
            body,
            var_names,
        }
    }

    /// Expand to the equivalent UCQ (DNF). Exponential in the worst case —
    /// callers that only need one disjunct at a time should iterate the
    /// result's `disjuncts` lazily by index.
    pub fn to_ucq(&self) -> Ucq {
        let clauses = dnf(&self.body);
        let disjuncts = clauses
            .into_iter()
            .map(|leaves| {
                let mut atoms = Vec::new();
                let mut eqs = Vec::new();
                let mut neqs = Vec::new();
                for leaf in leaves {
                    match leaf {
                        Leaf::Atom(a) => atoms.push(a),
                        Leaf::Eq(l, r) => eqs.push((l, r)),
                        Leaf::Neq(l, r) => neqs.push((l, r)),
                    }
                }
                Cq {
                    n_vars: self.n_vars,
                    head: self.head.clone(),
                    atoms,
                    eqs,
                    neqs,
                    var_names: self.var_names.clone(),
                }
            })
            .collect();
        Ucq::new(disjuncts)
    }

    /// Evaluate via the UCQ expansion.
    pub fn eval<S: ric_data::TupleStore>(
        &self,
        db: &S,
    ) -> Result<BTreeSet<Tuple>, crate::tableau::TableauError> {
        crate::eval::eval_ucq(&self.to_ucq(), db)
    }

    /// All constants in the query.
    pub fn constants(&self) -> BTreeSet<Value> {
        let mut out = BTreeSet::new();
        fn scan(e: &EfoExpr, out: &mut BTreeSet<Value>) {
            let push = |t: &Term, out: &mut BTreeSet<Value>| {
                if let Term::Const(c) = t {
                    out.insert(c.clone());
                }
            };
            match e {
                EfoExpr::Atom(a) => a.args.iter().for_each(|t| push(t, out)),
                EfoExpr::Eq(l, r) | EfoExpr::Neq(l, r) => {
                    push(l, out);
                    push(r, out);
                }
                EfoExpr::And(ps) | EfoExpr::Or(ps) => ps.iter().for_each(|p| scan(p, out)),
            }
        }
        scan(&self.body, &mut out);
        for t in &self.head {
            if let Term::Const(c) = t {
                out.insert(c.clone());
            }
        }
        out
    }
}

fn dnf(e: &EfoExpr) -> Vec<Vec<Leaf>> {
    match e {
        EfoExpr::Atom(a) => vec![vec![Leaf::Atom(a.clone())]],
        EfoExpr::Eq(l, r) => vec![vec![Leaf::Eq(l.clone(), r.clone())]],
        EfoExpr::Neq(l, r) => vec![vec![Leaf::Neq(l.clone(), r.clone())]],
        EfoExpr::Or(parts) => parts.iter().flat_map(dnf).collect(),
        EfoExpr::And(parts) => {
            let mut acc: Vec<Vec<Leaf>> = vec![vec![]];
            for p in parts {
                let clauses = dnf(p);
                let mut next = Vec::with_capacity(acc.len() * clauses.len());
                for a in &acc {
                    for c in &clauses {
                        let mut merged = a.clone();
                        merged.extend(c.iter().cloned());
                        next.push(merged);
                    }
                }
                acc = next;
            }
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Var;
    use ric_data::{Database, RelationSchema, Schema};

    fn setup() -> (Schema, Database) {
        let s = Schema::from_relations(vec![RelationSchema::infinite("R", &["a", "b"])]).unwrap();
        let r = s.rel_id("R").unwrap();
        let mut db = Database::empty(&s);
        for (a, b) in [(1, 2), (2, 3), (5, 5)] {
            db.insert(r, Tuple::new([Value::int(a), Value::int(b)]));
        }
        (s, db)
    }

    #[test]
    fn dnf_size_counts_clauses() {
        let a = EfoExpr::Eq(Term::from(1), Term::from(1));
        let two = EfoExpr::or(vec![a.clone(), a.clone()]);
        let q = EfoExpr::and(vec![two.clone(), two.clone(), a.clone()]);
        assert_eq!(q.dnf_size(), 4);
    }

    #[test]
    fn disjunction_of_selections() {
        let (s, db) = setup();
        let r = s.rel_id("R").unwrap();
        let x = Var(0);
        let y = Var(1);
        // Q(x,y) := R(x,y) ∧ (x = 1 ∨ x = 5)
        let body = EfoExpr::and(vec![
            EfoExpr::Atom(Atom::new(r, vec![Term::Var(x), Term::Var(y)])),
            EfoExpr::or(vec![
                EfoExpr::Eq(Term::Var(x), Term::from(1)),
                EfoExpr::Eq(Term::Var(x), Term::from(5)),
            ]),
        ]);
        let q = EfoQuery::new(
            vec![Term::Var(x), Term::Var(y)],
            body,
            vec!["x".into(), "y".into()],
        );
        assert_eq!(q.to_ucq().disjuncts.len(), 2);
        let res = q.eval(&db).unwrap();
        assert_eq!(res.len(), 2);
        assert!(res.contains(&Tuple::new([Value::int(5), Value::int(5)])));
    }

    #[test]
    fn nested_and_or_distributes() {
        let (s, db) = setup();
        let r = s.rel_id("R").unwrap();
        let x = Var(0);
        // Q(x) := ∃y (R(x,y) ∨ R(y,x)) ∧ (x ≠ 5)
        let y = Var(1);
        let body = EfoExpr::and(vec![
            EfoExpr::or(vec![
                EfoExpr::Atom(Atom::new(r, vec![Term::Var(x), Term::Var(y)])),
                EfoExpr::Atom(Atom::new(r, vec![Term::Var(y), Term::Var(x)])),
            ]),
            EfoExpr::Neq(Term::Var(x), Term::from(5)),
        ]);
        let q = EfoQuery::new(vec![Term::Var(x)], body, vec!["x".into(), "y".into()]);
        let res = q.eval(&db).unwrap();
        // sources: 1,2 (not 5); targets: 2,3 (not 5)
        assert_eq!(
            res,
            [1, 2, 3]
                .into_iter()
                .map(|i| Tuple::new([Value::int(i)]))
                .collect()
        );
    }
}

//! CQ containment via canonical databases (Chandra & Merlin 1977).
//!
//! The paper's Σᵖ₂ upper bound (Theorem 3.6) cites the Chandra–Merlin NP
//! bound for "is a tuple in the answer of a CQ"; this module provides the
//! classical containment test itself, used by the test suite to validate the
//! evaluators and by `ric-constraints` to simplify constraint sets.
//!
//! The homomorphism test is exact for inequality-free CQs. For queries with
//! `≠` the function refuses rather than silently giving a one-sided answer.

use crate::cq::Cq;
use crate::eval::eval_tableau;
use crate::tableau::{Tableau, TableauError, Valuation};
use ric_data::{Database, Value};

/// Why containment could not be decided.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ContainmentError {
    /// One of the queries has inequalities; the classical homomorphism test
    /// does not apply.
    HasInequalities,
    /// Head arities differ, so containment is trivially false — reported as
    /// an error because it is almost always a construction mistake.
    ArityMismatch,
    /// A query is unsafe.
    Tableau(TableauError),
}

impl From<TableauError> for ContainmentError {
    fn from(e: TableauError) -> Self {
        ContainmentError::Tableau(e)
    }
}

/// Is `q1 ⊆ q2` — does `q1(D) ⊆ q2(D)` hold on every database over `n_rels`
/// relations? Exact for inequality-free CQs.
pub fn contained_in(q1: &Cq, q2: &Cq, n_rels: usize) -> Result<bool, ContainmentError> {
    if q1.head_arity() != q2.head_arity() {
        return Err(ContainmentError::ArityMismatch);
    }
    if !q1.neqs.is_empty() || !q2.neqs.is_empty() {
        return Err(ContainmentError::HasInequalities);
    }
    let t1 = match Tableau::of(q1) {
        Ok(t) => t,
        // Unsatisfiable q1 is contained in everything.
        Err(TableauError::Unsatisfiable) => return Ok(true),
        Err(e) => return Err(e.into()),
    };
    let t2 = match Tableau::of(q2) {
        Ok(t) => t,
        Err(TableauError::Unsatisfiable) => {
            // q2 empty: containment iff q1 is also empty — q1 is satisfiable
            // here, so false.
            return Ok(false);
        }
        Err(e) => return Err(e.into()),
    };
    // Freeze q1: map each variable to a distinct fresh constant, materialise
    // the canonical database, and test whether q2 retrieves the frozen head.
    let mut fresh = ric_data::FreshValues::new();
    for c in t1.constants().iter().chain(t2.constants().iter()) {
        fresh.observe(c);
    }
    let frozen: Vec<Value> = fresh.fresh_n(t1.n_vars as usize);
    let mu = Valuation(frozen);
    let canonical: Database = mu.instantiate(&t1, n_rels);
    let frozen_head = mu.head_tuple(&t1);
    Ok(eval_tableau(&t2, &canonical).contains(&frozen_head))
}

/// Are `q1` and `q2` equivalent (mutual containment)?
pub fn equivalent(q1: &Cq, q2: &Cq, n_rels: usize) -> Result<bool, ContainmentError> {
    Ok(contained_in(q1, q2, n_rels)? && contained_in(q2, q1, n_rels)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term as T;
    use ric_data::{RelationSchema, Schema};

    fn schema() -> Schema {
        Schema::from_relations(vec![RelationSchema::infinite("E", &["a", "b"])]).unwrap()
    }

    #[test]
    fn longer_path_contained_in_shorter() {
        let s = schema();
        let e = s.rel_id("E").unwrap();
        // q1(x,z) :- E(x,y), E(y,z)  (2-hop)
        let mut b1 = Cq::builder();
        let (x, y, z) = (b1.var("x"), b1.var("y"), b1.var("z"));
        let q1 = b1
            .atom(e, vec![T::Var(x), T::Var(y)])
            .atom(e, vec![T::Var(y), T::Var(z)])
            .head_vars(vec![x, z])
            .build();
        // q2(x,z) :- E(x,y1), E(y2,z)  (disconnected endpoints)
        let mut b2 = Cq::builder();
        let (x2, y1, y2, z2) = (b2.var("x"), b2.var("y1"), b2.var("y2"), b2.var("z"));
        let q2 = b2
            .atom(e, vec![T::Var(x2), T::Var(y1)])
            .atom(e, vec![T::Var(y2), T::Var(z2)])
            .head_vars(vec![x2, z2])
            .build();
        assert!(contained_in(&q1, &q2, s.len()).unwrap());
        assert!(!contained_in(&q2, &q1, s.len()).unwrap());
        assert!(!equivalent(&q1, &q2, s.len()).unwrap());
    }

    #[test]
    fn redundant_atom_is_equivalent() {
        let s = schema();
        let e = s.rel_id("E").unwrap();
        let mut b1 = Cq::builder();
        let (x, y) = (b1.var("x"), b1.var("y"));
        let q1 = b1
            .atom(e, vec![T::Var(x), T::Var(y)])
            .head_vars(vec![x, y])
            .build();
        // Same plus a duplicate atom with a redundant variable.
        let mut b2 = Cq::builder();
        let (x2, y2, w) = (b2.var("x"), b2.var("y"), b2.var("w"));
        let q2 = b2
            .atom(e, vec![T::Var(x2), T::Var(y2)])
            .atom(e, vec![T::Var(x2), T::Var(w)])
            .head_vars(vec![x2, y2])
            .build();
        assert!(equivalent(&q1, &q2, s.len()).unwrap());
    }

    #[test]
    fn inequalities_are_refused() {
        let s = schema();
        let e = s.rel_id("E").unwrap();
        let mut b = Cq::builder();
        let (x, y) = (b.var("x"), b.var("y"));
        let q = b
            .atom(e, vec![T::Var(x), T::Var(y)])
            .neq(T::Var(x), T::Var(y))
            .head_vars(vec![x, y])
            .build();
        assert_eq!(
            contained_in(&q, &q, s.len()),
            Err(ContainmentError::HasInequalities)
        );
    }

    #[test]
    fn constants_must_match() {
        let s = schema();
        let e = s.rel_id("E").unwrap();
        let mut b1 = Cq::builder();
        let y = b1.var("y");
        let q1 = b1
            .atom(e, vec![T::from(1), T::Var(y)])
            .head_vars(vec![y])
            .build();
        let mut b2 = Cq::builder();
        let y2 = b2.var("y");
        let q2 = b2
            .atom(e, vec![T::from(2), T::Var(y2)])
            .head_vars(vec![y2])
            .build();
        assert!(!contained_in(&q1, &q2, s.len()).unwrap());
        let mut b3 = Cq::builder();
        let (x3, y3) = (b3.var("x"), b3.var("y"));
        let q3 = b3
            .atom(e, vec![T::Var(x3), T::Var(y3)])
            .head_vars(vec![y3])
            .build();
        assert!(contained_in(&q1, &q3, s.len()).unwrap());
    }
}

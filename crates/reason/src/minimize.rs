//! Certified V-minimization.
//!
//! A constraint `φ_i` is *implied* by the rest of `V` (relative to the fixed
//! master data) when every database satisfying `V \ {φ_i}` also satisfies
//! `φ_i`. Dropping implied constraints shrinks the per-candidate recheck
//! loop inside the deciders without changing which candidate extensions are
//! legal — so verdicts, witnesses, and search counters are preserved
//! exactly.
//!
//! Implication is established per body disjunct `d` of `φ_i` by chasing its
//! canonical database with the kept constraints:
//!
//! * **Rule A (denial subsumption)** — some kept denial fires on
//!   `canon(d)`, or a kept master constraint produces a robust all-constant
//!   obligation missing from `p(D_m)`: then no legal database matches `d`
//!   at all, and the disjunct imposes nothing.
//! * **Rule B (containment subsumption)** — `φ_i = q_i ⊆ p_i(R_m)` and some
//!   kept `φ_j = q_j ⊆ p_j(R_m)` with `d ⊆ q_j` (canonical test) and
//!   `p_j(D_m) ⊆ p_i(D_m)` (direct evaluation on the fixed master data):
//!   then `d(D) ⊆ q_j(D) ⊆ p_j(D_m) ⊆ p_i(D_m)` on every legal `D`.
//!
//! Two additional gates keep the rewrite observationally silent:
//!
//! * **constants preservation** — the deciders seed their candidate pool
//!   from the constants of `V`; a drop that removed a constant would change
//!   the search itself, so it is refused outright;
//! * **certification** — every tentative drop is checked by
//!   [`certify_kept_mask`] before it is committed; an uncertified drop is
//!   discarded with a note, keeping the constraint in place.

use crate::certify::certify_kept_mask;
use crate::chase::{canon_contained, disjunct_fate, Contained, Fate, ReasonEnv};
use crate::{ImpliedCc, ReasonNote};
use ric_complete::{Guard, Setting};
use ric_constraints::CcRhs;
use ric_data::Value;
use std::collections::BTreeSet;

/// The outcome of a minimization pass.
#[derive(Clone, Debug, Default)]
pub struct Minimization {
    /// Per-constraint keep flag (`false` = dropped as implied).
    pub kept: Vec<bool>,
    /// The dropped constraints with their justifying witnesses.
    pub implied: Vec<ImpliedCc>,
    /// Refused or degraded drops.
    pub notes: Vec<ReasonNote>,
}

/// Greedy certified minimization: constraints are considered in order, and
/// each drop is justified against the constraints still kept at that point —
/// so two mutually implied constraints can never both disappear.
pub(crate) fn minimize(
    setting: &Setting,
    env: &ReasonEnv,
    guard: &Guard,
    seed: u64,
) -> (Minimization, bool) {
    let n = setting.v.ccs.len();
    let mut m = Minimization {
        kept: vec![true; n],
        ..Minimization::default()
    };
    // Try to drop the most expensive bodies first: when two constraints
    // imply each other, the cheap one (an IND beats a CQ, fewer atoms beat
    // more) should survive into the per-candidate recheck loop. Ties break
    // on index for determinism.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(body_cost(&setting.v.ccs[i].body)), i));
    for i in order {
        if guard.check().is_some() {
            return (m, true);
        }
        let Some(by) = implied_by_kept(setting, env, &m.kept, i) else {
            continue;
        };
        if !constants_preserved(setting, &m.kept, i) {
            m.notes.push(ReasonNote::Degraded {
                place: format!("cc {i}"),
                why: "drop refused: it would remove constants from the candidate pool".into(),
            });
            continue;
        }
        let mut tentative = m.kept.clone();
        tentative[i] = false;
        match certify_kept_mask(setting, &tentative, seed ^ (i as u64 + 1)) {
            Ok(()) => {
                m.kept[i] = false;
                m.implied.push(ImpliedCc { cc: i, by });
            }
            Err(why) => m.notes.push(ReasonNote::Uncertified {
                what: format!("drop of implied cc {i}"),
                why,
            }),
        }
    }
    (m, false)
}

/// Certification-only application of externally supplied drop candidates, in
/// order. This is the same gate the minimizer runs after its implication
/// rules: a candidate whose drop fails differential certification is
/// discarded with an [`ReasonNote::Uncertified`] note and the constraint
/// stays. Exposed so suites can prove that deliberately wrong implications
/// never reach a decision.
pub fn apply_candidates(setting: &Setting, candidates: &[usize], seed: u64) -> Minimization {
    let n = setting.v.ccs.len();
    let mut m = Minimization {
        kept: vec![true; n],
        ..Minimization::default()
    };
    for &i in candidates {
        if i >= n {
            m.notes.push(ReasonNote::Uncertified {
                what: format!("drop of cc {i}"),
                why: format!("no such constraint (V has {n})"),
            });
            continue;
        }
        if !constants_preserved(setting, &m.kept, i) {
            m.notes.push(ReasonNote::Degraded {
                place: format!("cc {i}"),
                why: "drop refused: it would remove constants from the candidate pool".into(),
            });
            continue;
        }
        let mut tentative = m.kept.clone();
        tentative[i] = false;
        match certify_kept_mask(setting, &tentative, seed ^ (i as u64 + 1)) {
            Ok(()) => {
                m.kept[i] = false;
                m.implied.push(ImpliedCc {
                    cc: i,
                    by: Vec::new(),
                });
            }
            Err(why) => m.notes.push(ReasonNote::Uncertified {
                what: format!("drop of cc {i}"),
                why,
            }),
        }
    }
    m
}

/// Is `φ_i` implied by the *kept* constraints other than itself? Returns the
/// justifying constraint indices (one per disjunct, deduplicated).
fn implied_by_kept(
    setting: &Setting,
    env: &ReasonEnv,
    kept: &[bool],
    i: usize,
) -> Option<Vec<usize>> {
    let cc = &setting.v.ccs[i];
    // The dropped side may use its full body — inequalities and all: they
    // only shrink the disjunct, and shrinking preserves both rules.
    let ucq = cc.body.as_ucq(&setting.schema)?;
    if ucq.disjuncts.is_empty() {
        return None;
    }
    let usable = |j: usize| j != i && kept[j];
    let mut by = BTreeSet::new();
    for d in &ucq.disjuncts {
        match disjunct_fate(d, env, usable) {
            Fate::Unsat => continue,
            Fate::Killed { by: j } => {
                by.insert(j);
                continue;
            }
            Fate::Degraded(_) => return None,
            Fate::Open => {}
        }
        // Rule B needs a master rhs on both sides.
        let CcRhs::Master(p_i) = &cc.rhs else {
            return None;
        };
        let p_i_dm = p_i.eval(&setting.dm);
        let mut covered = false;
        for (j, rhs) in env.rhs_vals.iter().enumerate() {
            if !usable(j) {
                continue;
            }
            let Some(p_j_dm) = rhs else { continue };
            if !p_j_dm.is_subset(&p_i_dm) {
                continue;
            }
            match canon_contained(d, env, j) {
                Contained::Yes | Contained::UnsatLhs => {
                    by.insert(j);
                    covered = true;
                    break;
                }
                Contained::No | Contained::Degraded => {}
            }
        }
        if !covered {
            return None;
        }
    }
    Some(by.into_iter().collect())
}

/// Relative evaluation cost of a constraint body in the per-candidate
/// recheck loop (advisory only — it orders drop attempts, nothing else).
fn body_cost(body: &ric_constraints::CcBody) -> usize {
    use ric_constraints::CcBody;
    match body {
        CcBody::Proj(_) => 0,
        CcBody::Cq(q) => 1 + q.atoms.len(),
        CcBody::Ucq(u) => 1 + u.disjuncts.iter().map(|d| d.atoms.len()).sum::<usize>(),
        // FO/FP bodies are never droppable (outside the reasoned fragment),
        // so their cost only affects attempt order, not outcomes.
        CcBody::Efo(_) | CcBody::Fo(_) | CcBody::Fp(_) => 2,
    }
}

/// Would dropping `φ_i` remove constants from `V`'s pool? The deciders seed
/// candidate tuples from `ConstraintSet::constants`, so the constant set
/// must survive the drop exactly for decisions to stay bit-identical.
fn constants_preserved(setting: &Setting, kept: &[bool], i: usize) -> bool {
    let dropped: BTreeSet<Value> = setting.v.ccs[i].body.constants();
    if dropped.is_empty() {
        return true;
    }
    // `ConstraintSet::constants` collects body constants of the upper
    // constraints only, so only kept bodies count toward preservation.
    let mut remaining: BTreeSet<Value> = BTreeSet::new();
    for (j, cc) in setting.v.ccs.iter().enumerate() {
        if j != i && kept[j] {
            remaining.extend(cc.body.constants());
        }
    }
    dropped.is_subset(&remaining)
}

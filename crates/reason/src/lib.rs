//! # `ric-reason` — a symbolic pre-decision prover
//!
//! The deciders treat every setting as opaque: they enumerate candidate
//! extensions even when the constraint set `V` is redundant or the query is
//! already pinned down by what the master data guarantees. This crate runs
//! **once per setting** and extracts a certified [`StaticFacts`] artifact
//! that every downstream layer can consume:
//!
//! * **V-minimization** ([`minimize::apply_candidates`], driven by
//!   [`reason`]) — constraints implied by the rest of `V` relative to the
//!   fixed master data are dropped from the per-candidate recheck loop;
//! * **static unsatisfiability** — every query disjunct dies under `V`
//!   by a specialization-robust violation, so *no* legal extension can ever
//!   produce an answer and the decision is `Complete` without search;
//! * **cover facts** — the query is contained in the body of a constraint
//!   `q_j ⊆ p_j(R_m)`; whenever `p_j(D_m) ⊆ Q(D)` at decision time, the
//!   answer is already complete (`Q(D) ⊆ Q(D∪ΔD) ⊆ p_j(D_m) ⊆ Q(D)`);
//! * **cardinality caps** ([`CardinalityCap`]) — IND-style constraints
//!   bound column cardinalities of any legal database by the fixed master
//!   data, which the cost-based planner may consume as tighter advisory
//!   statistics.
//!
//! Everything is *certified before use*: symbolic conclusions are checked by
//! seeded differential evaluation ([`certify`]) and uncertified rewrites are
//! discarded with a typed note — the decision-level differential suites then
//! pin surviving conclusions verdict-, witness-, and counter-identical to
//! the unmodified search. FO/FP bodies, inequalities on used constraint
//! bodies, and oversized canonical databases degrade gracefully: the
//! reasoner simply concludes less ([`ReasonNote::Degraded`]).

pub mod canon;
pub mod certify;
mod chase;
pub mod minimize;

use crate::chase::{canon_contained, disjunct_fate, Contained, Fate, ReasonEnv};
use ric_complete::{Guard, Query, SearchBudget, Setting};
use ric_constraints::{CcBody, CcRhs, ConstraintSet};
use ric_data::RelId;
use ric_telemetry::Probe;
use std::fmt;

pub use canon::CanonDb;
pub use certify::{certify_cover, certify_kept_mask, certify_unsat, CERTIFY_ROUNDS};
pub use minimize::{apply_candidates, Minimization};

/// Deterministic seed for the reasoner's certification batteries (distinct
/// from the analyzer's `CERTIFY_SEED` so the two batteries never share a
/// random stream).
pub const REASON_SEED: u64 = 0x5EED_0002;

/// Largest canonical database (in atoms) the reasoner will freeze; larger
/// disjuncts degrade instead of risking an expensive symbolic evaluation.
pub const MAX_CANON_ATOMS: usize = 32;

/// A dropped constraint together with the kept constraints justifying it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ImpliedCc {
    /// Index of the dropped constraint in `V`.
    pub cc: usize,
    /// Indices of the kept constraints that imply it (empty when the drop
    /// was supplied externally and justified by certification alone).
    pub by: Vec<usize>,
}

/// A query-cover fact: `Q ⊆ body(φ_cc)` where `φ_cc` has a master
/// right-hand side.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CoverFact {
    /// Index of the covering constraint in `V`.
    pub cc: usize,
}

/// A chase-derived cardinality bound on every legal database: advisory
/// planner statistics, never verdict-affecting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CardinalityCap {
    /// The bounded database relation.
    pub rel: RelId,
    /// What is bounded.
    pub kind: CapKind,
}

/// The bounded quantity of a [`CardinalityCap`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CapKind {
    /// Total rows of the relation are at most `limit` (the projection covers
    /// every column, so tuples embed injectively into `p(D_m)`).
    Rows {
        /// The row bound.
        limit: usize,
    },
    /// Distinct values in column `col` are at most `limit`.
    DistinctAt {
        /// The bounded column.
        col: usize,
        /// The distinct-count bound.
        limit: usize,
    },
}

/// Why the reasoner declined (or refused) to conclude something.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReasonNote {
    /// A fragment outside the reasoner's reach (FO/FP bodies, inequalities
    /// on used bodies, oversized canonical databases) or a refused rewrite.
    Degraded {
        /// Where (query, or `cc <i>`).
        place: String,
        /// Why nothing was concluded.
        why: String,
    },
    /// A symbolic conclusion that failed differential certification and was
    /// discarded.
    Uncertified {
        /// The discarded conclusion.
        what: String,
        /// The certification failure.
        why: String,
    },
}

impl ReasonNote {
    /// Is this a discarded (uncertified) conclusion?
    pub fn is_uncertified(&self) -> bool {
        matches!(self, ReasonNote::Uncertified { .. })
    }
}

impl fmt::Display for ReasonNote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReasonNote::Degraded { place, why } => write!(f, "degraded at {place}: {why}"),
            ReasonNote::Uncertified { what, why } => {
                write!(f, "uncertified (discarded): {what}: {why}")
            }
        }
    }
}

/// The certified static artifact of one `(setting, query)` pair.
#[derive(Clone, Debug)]
pub struct StaticFacts {
    /// Per-constraint keep flag; `false` entries are certified-implied and
    /// safe to drop from the per-candidate recheck loop.
    pub kept: Vec<bool>,
    /// The dropped constraints with justifications.
    pub implied: Vec<ImpliedCc>,
    /// Query disjuncts proven unsatisfiable under `V` (indices into the
    /// query's UCQ form).
    pub unsat_disjuncts: Vec<usize>,
    /// Every query disjunct is unsatisfiable under `V`: the decision is
    /// statically `Complete` (certified).
    pub statically_complete: bool,
    /// A certified cover fact, if one was found.
    pub cover: Option<CoverFact>,
    /// Chase-derived advisory cardinality bounds.
    pub caps: Vec<CardinalityCap>,
    /// Degradations and discarded conclusions.
    pub notes: Vec<ReasonNote>,
    /// The budget guard interrupted reasoning; the facts derived before the
    /// interrupt are still certified, but later conclusions were skipped.
    pub budget_exhausted: bool,
}

impl StaticFacts {
    /// The trivial artifact: nothing concluded, everything kept.
    pub fn trivial(n_ccs: usize) -> StaticFacts {
        StaticFacts {
            kept: vec![true; n_ccs],
            implied: Vec::new(),
            unsat_disjuncts: Vec::new(),
            statically_complete: false,
            cover: None,
            caps: Vec::new(),
            notes: Vec::new(),
            budget_exhausted: false,
        }
    }

    /// Number of dropped constraints.
    pub fn dropped(&self) -> usize {
        self.kept.iter().filter(|k| !**k).count()
    }

    /// `V` restricted to the kept constraints (lower bounds unchanged).
    pub fn minimized_v(&self, v: &ConstraintSet) -> ConstraintSet {
        certify::masked_constraints(v, &self.kept)
    }

    /// The setting with `V` minimized. By certification the two settings
    /// admit exactly the same legal databases, so decisions agree
    /// bit-for-bit.
    pub fn minimized_setting(&self, setting: &Setting) -> Setting {
        Setting::new(
            setting.schema.clone(),
            setting.master_schema.clone(),
            setting.dm.clone(),
            self.minimized_v(&setting.v),
        )
    }
}

/// Run the reasoner with an internal guard over `budget`.
pub fn reason(setting: &Setting, query: &Query, budget: &SearchBudget) -> StaticFacts {
    reason_probed(setting, query, budget, Probe::disabled())
}

/// [`reason`] with telemetry.
pub fn reason_probed(
    setting: &Setting,
    query: &Query,
    budget: &SearchBudget,
    probe: Probe<'_>,
) -> StaticFacts {
    let guard = Guard::new(budget);
    reason_guarded(setting, query, &guard, probe)
}

/// [`reason`] against a caller-owned guard: an interrupt stops further
/// derivation (setting `budget_exhausted`) but keeps the certified facts
/// produced so far — the reasoner is sound under partial results because
/// every fact is individually certified.
pub fn reason_guarded(
    setting: &Setting,
    query: &Query,
    guard: &Guard,
    probe: Probe<'_>,
) -> StaticFacts {
    let _span = probe.span("reason");
    let mut facts = StaticFacts::trivial(setting.v.ccs.len());
    facts.caps = master_caps(setting);
    probe.count("reason.caps", facts.caps.len() as u64);

    let env = ReasonEnv::build(setting, query);
    for (idx, why) in &env.degraded {
        facts.notes.push(ReasonNote::Degraded {
            place: format!("cc {idx}"),
            why: why.clone(),
        });
    }

    let (minimization, interrupted) = minimize::minimize(setting, &env, guard, REASON_SEED);
    facts.kept = minimization.kept;
    facts.implied = minimization.implied;
    facts.notes.extend(minimization.notes);
    if interrupted {
        facts.budget_exhausted = true;
        emit_counters(&facts, probe);
        return facts;
    }

    derive_static_verdicts(setting, query, &env, guard, &mut facts);
    emit_counters(&facts, probe);
    facts
}

/// Static unsatisfiability and cover facts for the query. Both require the
/// query in (monotone) UCQ form; FO/FP queries degrade.
fn derive_static_verdicts(
    setting: &Setting,
    query: &Query,
    env: &ReasonEnv,
    guard: &Guard,
    facts: &mut StaticFacts,
) {
    let Some(ucq) = query.as_ucq() else {
        facts.notes.push(ReasonNote::Degraded {
            place: "query".into(),
            why: "FO/FP query is outside the reasoned fragment".into(),
        });
        return;
    };
    if ucq.disjuncts.is_empty() {
        return;
    }
    // Justify only from kept constraints so the facts remain derivable from
    // the minimized setting alone.
    let usable = |j: usize| facts.kept[j];
    let mut all_killed = true;
    for (di, d) in ucq.disjuncts.iter().enumerate() {
        if guard.check().is_some() {
            facts.budget_exhausted = true;
            return;
        }
        match disjunct_fate(d, env, usable) {
            Fate::Unsat | Fate::Killed { .. } => facts.unsat_disjuncts.push(di),
            Fate::Open => all_killed = false,
            Fate::Degraded(why) => {
                all_killed = false;
                facts.notes.push(ReasonNote::Degraded {
                    place: format!("query disjunct {di}"),
                    why,
                });
            }
        }
    }
    if all_killed {
        match certify_unsat(setting, query, REASON_SEED ^ 0x0100_0000) {
            Ok(()) => {
                facts.statically_complete = true;
                return;
            }
            Err(why) => {
                facts.unsat_disjuncts.clear();
                facts.notes.push(ReasonNote::Uncertified {
                    what: "static unsatisfiability of the query under V".into(),
                    why,
                });
            }
        }
    }

    // Cover: a kept master constraint whose body contains every disjunct.
    'targets: for (j, rhs) in env.rhs_vals.iter().enumerate() {
        if !facts.kept[j] || rhs.is_none() {
            continue;
        }
        if guard.check().is_some() {
            facts.budget_exhausted = true;
            return;
        }
        for d in &ucq.disjuncts {
            match canon_contained(d, env, j) {
                Contained::Yes | Contained::UnsatLhs => {}
                Contained::No | Contained::Degraded => continue 'targets,
            }
        }
        match certify_cover(setting, query, j, REASON_SEED ^ 0x0200_0000) {
            Ok(()) => {
                facts.cover = Some(CoverFact { cc: j });
                return;
            }
            Err(why) => facts.notes.push(ReasonNote::Uncertified {
                what: format!("cover of the query by cc {j}"),
                why,
            }),
        }
    }
}

/// Chase-derived cardinality caps from IND-style constraints: for
/// `π_cols(R) ⊆ p(R_m)`, every legal database satisfies
/// `|distinct(R.cols[k])| ≤ |distinct(p(D_m) at k)|`, and when `cols` covers
/// every column of `R` injectively, `|R| ≤ |p(D_m)|`.
pub fn master_caps(setting: &Setting) -> Vec<CardinalityCap> {
    let mut caps = Vec::new();
    for cc in &setting.v.ccs {
        let CcBody::Proj(body) = &cc.body else {
            continue;
        };
        let CcRhs::Master(p) = &cc.rhs else {
            continue;
        };
        let p_dm = p.eval(&setting.dm);
        for (k, &col) in body.cols.iter().enumerate() {
            let distinct = p_dm
                .iter()
                .map(|t| t.iter().nth(k))
                .collect::<std::collections::BTreeSet<_>>()
                .len();
            caps.push(CardinalityCap {
                rel: body.rel,
                kind: CapKind::DistinctAt {
                    col,
                    limit: distinct,
                },
            });
        }
        let arity = setting.schema.arity(body.rel).unwrap_or(usize::MAX);
        let mut cols = body.cols.clone();
        cols.sort_unstable();
        cols.dedup();
        if cols.len() == body.cols.len() && cols == (0..arity).collect::<Vec<_>>() {
            caps.push(CardinalityCap {
                rel: body.rel,
                kind: CapKind::Rows { limit: p_dm.len() },
            });
        }
    }
    caps
}

fn emit_counters(facts: &StaticFacts, probe: Probe<'_>) {
    probe.count("reason.cc.dropped", facts.dropped() as u64);
    probe.count("reason.unsat.disjuncts", facts.unsat_disjuncts.len() as u64);
    if facts.statically_complete {
        probe.count("reason.static.complete", 1);
    }
    if facts.cover.is_some() {
        probe.count("reason.cover", 1);
    }
    probe.count(
        "reason.uncertified",
        facts.notes.iter().filter(|n| n.is_uncertified()).count() as u64,
    );
    probe.count(
        "reason.degraded",
        facts.notes.iter().filter(|n| !n.is_uncertified()).count() as u64,
    );
    if facts.budget_exhausted {
        probe.count("reason.budget_exhausted", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ric_constraints::{ContainmentConstraint, Projection};
    use ric_data::{Database, RelationSchema, Schema, Tuple, Value};
    use ric_query::{Cq, Term};

    /// `R(a, b)` on the database side, `Rm(a)` and `Rm2(a, b)` as master.
    fn schemas() -> (Schema, Schema) {
        let schema =
            Schema::from_relations(vec![RelationSchema::infinite("R", &["a", "b"])]).unwrap();
        let master = Schema::from_relations(vec![
            RelationSchema::infinite("Rm", &["a"]),
            RelationSchema::infinite("Rm2", &["a", "b"]),
        ])
        .unwrap();
        (schema, master)
    }

    fn rel(s: &Schema, name: &str) -> ric_data::RelId {
        s.rel_id(name).unwrap()
    }

    /// `q(x) :- R(x, y)`.
    fn first_col_cq(schema: &Schema) -> Cq {
        let r = rel(schema, "R");
        let mut b = Cq::builder();
        let x = b.var("x");
        let y = b.var("y");
        b.atom(r, vec![Term::Var(x), Term::Var(y)])
            .head_vars(vec![x])
            .build()
    }

    /// `q(x, y) :- R(x, y)`.
    fn both_cols_cq(schema: &Schema) -> Cq {
        let r = rel(schema, "R");
        let mut b = Cq::builder();
        let x = b.var("x");
        let y = b.var("y");
        b.atom(r, vec![Term::Var(x), Term::Var(y)])
            .head_vars(vec![x, y])
            .build()
    }

    fn budget() -> SearchBudget {
        SearchBudget::small()
    }

    #[test]
    fn redundant_cq_cc_is_dropped_under_the_matching_ind() {
        let (schema, master) = schemas();
        let r = rel(&schema, "R");
        let rm = rel(&master, "Rm");
        let mut dm = Database::empty(&master);
        dm.insert(rm, Tuple::new([Value::int(1)]));
        let v = ConstraintSet::new(vec![
            // φ0: π_0(R) ⊆ Rm  (IND form)
            ContainmentConstraint::into_master(
                CcBody::Proj(Projection::new(r, vec![0])),
                rm,
                vec![0],
            ),
            // φ1: q(x) :- R(x, y) ⊆ Rm — semantically identical, implied.
            ContainmentConstraint::into_master(CcBody::Cq(first_col_cq(&schema)), rm, vec![0]),
        ]);
        let setting = Setting::new(schema.clone(), master, dm, v);
        let query = Query::Cq(both_cols_cq(&schema));
        let facts = reason(&setting, &query, &budget());
        assert_eq!(facts.kept, vec![true, false]);
        assert_eq!(facts.implied.len(), 1);
        assert_eq!(facts.implied[0].cc, 1);
        assert_eq!(facts.implied[0].by, vec![0]);
        assert!(!facts.budget_exhausted);
        // The minimized setting admits exactly the kept constraint.
        assert_eq!(facts.minimized_v(&setting.v).ccs.len(), 1);
    }

    #[test]
    fn denial_on_the_query_relation_yields_a_static_complete() {
        let (schema, master) = schemas();
        let r = rel(&schema, "R");
        let dm = Database::empty(&master);
        // φ0: q() :- R(x, y) ⊆ ∅ — R must be empty in every legal database.
        let mut b = Cq::builder();
        let x = b.var("x");
        let y = b.var("y");
        let denial_body = b.atom(r, vec![Term::Var(x), Term::Var(y)]).build();
        let v = ConstraintSet::new(vec![ContainmentConstraint::into_empty(CcBody::Cq(
            denial_body,
        ))]);
        let setting = Setting::new(schema.clone(), master, dm, v);
        let query = Query::Cq(first_col_cq(&schema));
        let facts = reason(&setting, &query, &budget());
        assert!(facts.statically_complete);
        assert_eq!(facts.unsat_disjuncts, vec![0]);
    }

    #[test]
    fn fragile_master_violation_concludes_nothing() {
        // V: q(x) :- R(x, y) ⊆ Rm with EMPTY master data. The canonical
        // obligation is a frozen value — a specialization could map it onto
        // anything, so the query must stay open even though the canonical
        // database itself violates V.
        let (schema, master) = schemas();
        let rm = rel(&master, "Rm");
        let dm = Database::empty(&master);
        let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
            CcBody::Cq(first_col_cq(&schema)),
            rm,
            vec![0],
        )]);
        let setting = Setting::new(schema.clone(), master, dm, v);
        let query = Query::Cq(both_cols_cq(&schema));
        let facts = reason(&setting, &query, &budget());
        assert!(!facts.statically_complete);
        assert!(facts.unsat_disjuncts.is_empty());
    }

    #[test]
    fn all_constant_obligation_missing_from_dm_kills_the_query() {
        // V: q(c) :- R(c, y) for the constant 9 ⊆ Rm, with 9 ∉ Rm(D_m): any
        // database containing R(9, _) violates V, so a query pinned to 9 is
        // statically empty.
        let (schema, master) = schemas();
        let r = rel(&schema, "R");
        let rm = rel(&master, "Rm");
        let mut dm = Database::empty(&master);
        dm.insert(rm, Tuple::new([Value::int(1)]));
        let mut b = Cq::builder();
        let y = b.var("y");
        let body = b
            .atom(r, vec![Term::Const(Value::int(9)), Term::Var(y)])
            .head(vec![Term::Const(Value::int(9))])
            .build();
        let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
            CcBody::Cq(body),
            rm,
            vec![0],
        )]);
        let setting = Setting::new(schema.clone(), master, dm, v);
        // Q(y) :- R(9, y): every match forces the forbidden obligation.
        let mut qb = Cq::builder();
        let qy = qb.var("y");
        let q = qb
            .atom(r, vec![Term::Const(Value::int(9)), Term::Var(qy)])
            .head_vars(vec![qy])
            .build();
        let facts = reason(&setting, &Query::Cq(q), &budget());
        assert!(facts.statically_complete, "notes: {:?}", facts.notes);
    }

    #[test]
    fn cover_fact_is_found_for_a_fully_contained_query() {
        let (schema, master) = schemas();
        let rm2 = rel(&master, "Rm2");
        let mut dm = Database::empty(&master);
        dm.insert(rm2, Tuple::new([Value::int(1), Value::int(2)]));
        // φ0: q(x, y) :- R(x, y) ⊆ π_{0,1}(Rm2).
        let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
            CcBody::Cq(both_cols_cq(&schema)),
            rm2,
            vec![0, 1],
        )]);
        let setting = Setting::new(schema.clone(), master, dm, v);
        let query = Query::Cq(both_cols_cq(&schema));
        let facts = reason(&setting, &query, &budget());
        assert_eq!(facts.cover, Some(CoverFact { cc: 0 }));
    }

    #[test]
    fn wrong_drop_candidate_is_discarded_by_certification() {
        // V holds a single load-bearing IND; claiming it is implied by the
        // (empty) rest of V is wrong, and the certification battery proves
        // it: on sampled databases with a nonempty R, V fails but the
        // "minimized" empty V holds.
        let (schema, master) = schemas();
        let r = rel(&schema, "R");
        let rm = rel(&master, "Rm");
        let dm = Database::empty(&master);
        let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(r, vec![0])),
            rm,
            vec![0],
        )]);
        let setting = Setting::new(schema, master, dm, v);
        let m = apply_candidates(&setting, &[0], REASON_SEED);
        assert_eq!(m.kept, vec![true], "wrong drop must be kept");
        assert!(m.implied.is_empty());
        assert!(
            m.notes.iter().any(ReasonNote::is_uncertified),
            "a typed uncertified note must record the discard: {:?}",
            m.notes
        );
        assert!(certify_kept_mask(&setting, &[false], REASON_SEED).is_err());
    }

    #[test]
    fn constants_guard_refuses_a_pool_shrinking_drop() {
        // φ0: q() :- R(x, y) ⊆ ∅ implies φ1: q() :- R(x, 7) ⊆ ∅, but φ1
        // carries the constant 7 that seeds the candidate pool — the drop is
        // refused so decisions stay bit-identical.
        let (schema, master) = schemas();
        let r = rel(&schema, "R");
        let dm = Database::empty(&master);
        let mut b0 = Cq::builder();
        let x0 = b0.var("x");
        let y0 = b0.var("y");
        let body0 = b0.atom(r, vec![Term::Var(x0), Term::Var(y0)]).build();
        let mut b1 = Cq::builder();
        let x1 = b1.var("x");
        let body1 = b1
            .atom(r, vec![Term::Var(x1), Term::Const(Value::int(7))])
            .build();
        let v = ConstraintSet::new(vec![
            ContainmentConstraint::into_empty(CcBody::Cq(body0)),
            ContainmentConstraint::into_empty(CcBody::Cq(body1)),
        ]);
        let setting = Setting::new(schema.clone(), master, dm, v);
        let query = Query::Cq(both_cols_cq(&schema));
        let facts = reason(&setting, &query, &budget());
        assert_eq!(facts.kept, vec![true, true]);
        assert!(facts
            .notes
            .iter()
            .any(|n| matches!(n, ReasonNote::Degraded { place, .. } if place == "cc 1")));
    }

    #[test]
    fn ind_ccs_produce_cardinality_caps() {
        let (schema, master) = schemas();
        let r = rel(&schema, "R");
        let rm2 = rel(&master, "Rm2");
        let mut dm = Database::empty(&master);
        dm.insert(rm2, Tuple::new([Value::int(1), Value::int(2)]));
        dm.insert(rm2, Tuple::new([Value::int(1), Value::int(3)]));
        let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(r, vec![0, 1])),
            rm2,
            vec![0, 1],
        )]);
        let setting = Setting::new(schema, master, dm, v);
        let caps = master_caps(&setting);
        assert!(caps.contains(&CardinalityCap {
            rel: r,
            kind: CapKind::DistinctAt { col: 0, limit: 1 },
        }));
        assert!(caps.contains(&CardinalityCap {
            rel: r,
            kind: CapKind::DistinctAt { col: 1, limit: 2 },
        }));
        assert!(caps.contains(&CardinalityCap {
            rel: r,
            kind: CapKind::Rows { limit: 2 },
        }));
    }

    #[test]
    fn fo_query_degrades_with_a_note() {
        let (schema, master) = schemas();
        let dm = Database::empty(&master);
        let v = ConstraintSet::empty();
        let setting = Setting::new(schema.clone(), master, dm, v);
        let query = Query::Fo(ric_query::FoQuery::new(
            vec![],
            ric_query::FoExpr::And(vec![]),
            vec![],
        ));
        let facts = reason(&setting, &query, &budget());
        assert!(!facts.statically_complete);
        assert!(facts
            .notes
            .iter()
            .any(|n| matches!(n, ReasonNote::Degraded { place, .. } if place == "query")));
    }
}

//! Canonical databases: freezing a tableau into a concrete instance.
//!
//! The classical containment machinery (Chandra–Merlin) turns a symbolic
//! question — does every match of `Q₁` yield a match of `Q₂`? — into one
//! concrete evaluation: freeze the variables of `Q₁` into fresh distinct
//! constants, evaluate `Q₂` on the resulting *canonical database*, and look
//! for the frozen head. The soundness argument used throughout this crate is
//! that any valuation `v` of the frozen tableau into a real database `D`
//! factors through the freezing: composing a homomorphism found on the
//! canonical database with the specialization `σ: frozen → v` transports
//! every canonical match into `D`.
//!
//! Frozen values are allocated by [`FreshValues`], strictly above every
//! observed constant — in particular above every value of the fixed master
//! data — so a canonical answer containing no frozen value is a genuine
//! all-constant tuple that survives *any* specialization.

use ric_data::{Database, FreshValues, Tuple, Value};
use ric_query::{Tableau, Valuation};
use std::collections::BTreeSet;

/// A frozen tableau: the canonical database, the frozen head tuple, and the
/// set of fresh values standing in for variables.
#[derive(Clone, Debug)]
pub struct CanonDb {
    /// The canonical instance `μ(T)` over the database schema.
    pub db: Database,
    /// The frozen output tuple `μ(u)`.
    pub frozen_head: Tuple,
    /// The fresh values standing in for the tableau's variables.
    frozen: BTreeSet<Value>,
}

impl CanonDb {
    /// Freeze `t` over a schema with `n_rels` relations. Every value in
    /// `observe` (setting constants, master-data domain, query constants) is
    /// registered first so fresh values cannot collide with it.
    pub fn freeze(t: &Tableau, n_rels: usize, observe: &BTreeSet<Value>) -> CanonDb {
        let mut fresh = FreshValues::new();
        fresh.observe_all(observe.iter());
        let own = t.constants();
        fresh.observe_all(own.iter());
        let values = fresh.fresh_n(t.n_vars as usize);
        let frozen: BTreeSet<Value> = values.iter().cloned().collect();
        let mu = Valuation(values);
        CanonDb {
            db: mu.instantiate(t, n_rels),
            frozen_head: mu.head_tuple(t),
            frozen,
        }
    }

    /// Is `v` one of the fresh values introduced by freezing?
    pub fn is_frozen(&self, v: &Value) -> bool {
        self.frozen.contains(v)
    }

    /// Does `t` consist purely of constants (no frozen value)? All-constant
    /// tuples are *specialization-robust*: `σ` fixes every constant, so the
    /// tuple survives unchanged into any real database.
    pub fn all_constant(&self, t: &Tuple) -> bool {
        t.iter().all(|v| !self.is_frozen(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ric_data::RelId;
    use ric_query::{Cq, Term};

    fn r() -> RelId {
        RelId(0)
    }

    #[test]
    fn freezing_builds_the_canonical_instance() {
        let mut b = Cq::builder();
        let x = b.var("x");
        let y = b.var("y");
        let q = b
            .atom(r(), vec![Term::Var(x), Term::Var(y)])
            .head_vars(vec![x])
            .build();
        let t = Tableau::of(&q).unwrap();
        let canon = CanonDb::freeze(&t, 1, &BTreeSet::new());
        assert_eq!(canon.db.instance(r()).len(), 1);
        assert_eq!(canon.frozen_head.arity(), 1);
        assert!(canon.frozen_head.iter().all(|v| canon.is_frozen(v)));
    }

    #[test]
    fn observed_values_are_never_frozen() {
        let mut b = Cq::builder();
        let x = b.var("x");
        let q = b.atom(r(), vec![Term::Var(x)]).head_vars(vec![x]).build();
        let t = Tableau::of(&q).unwrap();
        let observe: BTreeSet<Value> = [Value::int(5_000_000)].into_iter().collect();
        let canon = CanonDb::freeze(&t, 1, &observe);
        assert!(!canon.is_frozen(&Value::int(5_000_000)));
        assert!(canon.frozen_head.iter().all(|v| canon.is_frozen(v)));
    }

    #[test]
    fn constant_tuples_are_robust() {
        let mut b = Cq::builder();
        let x = b.var("x");
        let q = b
            .atom(r(), vec![Term::Var(x), Term::Const(Value::int(7))])
            .head_vars(vec![x])
            .build();
        let t = Tableau::of(&q).unwrap();
        let canon = CanonDb::freeze(&t, 1, &BTreeSet::new());
        assert!(canon.all_constant(&Tuple::new([Value::int(7), Value::str("a")])));
        assert!(!canon.all_constant(&canon.frozen_head));
    }
}

//! A bounded chase of containment constraints over canonical databases.
//!
//! Chasing a canonical database `canon(d)` with a containment constraint
//! `φ = q ⊆ p(R_m)` means evaluating `q` on `canon(d)` and recording the
//! resulting *obligations*: tuples that must belong to `p(D_m)` in any legal
//! database containing an image of `d`. Because every right-hand side lives
//! in the fixed, closed-world master data, the chase never adds tuples to
//! the database side — it saturates in a single round, and the only bound
//! needed is a cap on the canonical database's size ([`MAX_CANON_ATOMS`]).
//!
//! Obligation classification (the soundness core of the crate):
//!
//! * a **denial hit** — `q(canon(d)) ≠ ∅` for a constraint with right-hand
//!   side `∅` — is always specialization-robust: homomorphisms compose, so
//!   any real match of `d` produces a real match of `q`;
//! * an **all-constant obligation** `a ∉ p(D_m)` is robust because
//!   specializations fix constants — `a` itself appears in `q(D)` for every
//!   database `D` containing an image of `d`;
//! * an obligation containing a frozen value is **fragile**: a
//!   specialization may map the frozen value onto one that `p(D_m)` does
//!   cover, so nothing is concluded from it.
//!
//! Only inequality-free constraint bodies participate: frozen values are
//! pairwise distinct, so a canonical match of a body with `≠` conditions
//! need not survive specializations that merge values.

use crate::canon::CanonDb;
use crate::MAX_CANON_ATOMS;
use ric_complete::{Query, Setting};
use ric_constraints::{CcRhs, ContainmentConstraint};
use ric_data::{Tuple, Value};
use ric_query::eval::eval_tableau;
use ric_query::tableau::TableauError;
use ric_query::{Cq, Tableau};
use std::collections::BTreeSet;

/// Precomputed per-setting reasoning context: usable constraint-body
/// tableaux, right-hand sides evaluated on the fixed master data, and the
/// constant set fresh values must avoid.
pub(crate) struct ReasonEnv {
    pub n_rels: usize,
    /// Constants of `V`, `Q`, and the master data's active domain.
    pub observe: BTreeSet<Value>,
    /// Per constraint: inequality-free tableaux of its body, or `None` when
    /// the body is outside the reasoned fragment (FO/FP, oversized, or every
    /// disjunct carries inequalities).
    pub bodies: Vec<Option<Vec<Tableau>>>,
    /// Per constraint: `p(D_m)` for `Master` right-hand sides, `None` for
    /// denials.
    pub rhs_vals: Vec<Option<BTreeSet<Tuple>>>,
    /// Human-readable notes about constraints excluded from reasoning.
    pub degraded: Vec<(usize, String)>,
}

impl ReasonEnv {
    pub fn build(setting: &Setting, query: &Query) -> ReasonEnv {
        let n_rels = setting.schema.len();
        let mut observe: BTreeSet<Value> = setting.v.constants();
        observe.extend(query.constants());
        observe.extend(setting.dm.active_domain().iter().cloned());
        let mut bodies = Vec::with_capacity(setting.v.ccs.len());
        let mut rhs_vals = Vec::with_capacity(setting.v.ccs.len());
        let mut degraded = Vec::new();
        for (i, cc) in setting.v.ccs.iter().enumerate() {
            bodies.push(usable_tableaux(cc, setting, i, &mut degraded));
            rhs_vals.push(match &cc.rhs {
                CcRhs::Empty => None,
                CcRhs::Master(p) => Some(p.eval(&setting.dm)),
            });
        }
        ReasonEnv {
            n_rels,
            observe,
            bodies,
            rhs_vals,
            degraded,
        }
    }

    /// Freeze one query or constraint-body disjunct, or explain why not.
    /// The disjunct's `≠` conditions are deliberately ignored: dropping them
    /// only enlarges the query, which is sound for every use here (proving
    /// the disjunct empty, or proving it contained in something).
    pub fn freeze(&self, d: &Cq) -> Result<CanonDb, Frozen> {
        let t = match Tableau::of(d) {
            Ok(t) => t,
            Err(TableauError::Unsatisfiable) => return Err(Frozen::Unsat),
            Err(e) => return Err(Frozen::Degraded(format!("tableau rejected: {e:?}"))),
        };
        if t.atoms.len() > MAX_CANON_ATOMS {
            return Err(Frozen::Degraded(format!(
                "canonical database too large ({} atoms > {MAX_CANON_ATOMS})",
                t.atoms.len()
            )));
        }
        Ok(CanonDb::freeze(&t, self.n_rels, &self.observe))
    }
}

/// Why a disjunct could not be frozen.
pub(crate) enum Frozen {
    /// The disjunct is unsatisfiable: it contributes nothing anywhere.
    Unsat,
    /// Outside the reasoned fragment; no conclusion may be drawn.
    Degraded(String),
}

/// The fate of one disjunct after chasing its canonical database.
pub(crate) enum Fate {
    /// Contradictory side conditions: the disjunct has no match anywhere.
    Unsat,
    /// A specialization-robust violation of constraint `by`: no legal
    /// database contains an image of this disjunct.
    Killed { by: usize },
    /// No robust violation found; the disjunct may fire on legal databases.
    Open,
    /// Outside the reasoned fragment.
    Degraded(String),
}

/// Chase `canon(d)` with every usable constraint allowed by `usable` and
/// classify the disjunct. `usable` receives the constraint index; implication
/// tests exclude the candidate itself and already-dropped constraints.
pub(crate) fn disjunct_fate(d: &Cq, env: &ReasonEnv, usable: impl Fn(usize) -> bool) -> Fate {
    let canon = match env.freeze(d) {
        Ok(c) => c,
        Err(Frozen::Unsat) => return Fate::Unsat,
        Err(Frozen::Degraded(why)) => return Fate::Degraded(why),
    };
    for (j, tabs) in env.bodies.iter().enumerate() {
        if !usable(j) {
            continue;
        }
        let Some(tabs) = tabs else { continue };
        match &env.rhs_vals[j] {
            // Denial: any canonical match is a robust violation.
            None => {
                if tabs.iter().any(|t| !eval_tableau(t, &canon.db).is_empty()) {
                    return Fate::Killed { by: j };
                }
            }
            // Master rhs: only an all-constant obligation missing from
            // p(D_m) is robust.
            Some(p_dm) => {
                for t in tabs {
                    for ans in eval_tableau(t, &canon.db) {
                        if canon.all_constant(&ans) && !p_dm.contains(&ans) {
                            return Fate::Killed { by: j };
                        }
                    }
                }
            }
        }
    }
    Fate::Open
}

/// Result of the canonical containment test `d ⊆ body(φ_j)`.
pub(crate) enum Contained {
    Yes,
    No,
    /// The left-hand side is unsatisfiable (trivially contained).
    UnsatLhs,
    /// Either side is outside the reasoned fragment.
    Degraded,
}

/// Canonical containment of disjunct `d` in the body of constraint `j`: the
/// frozen head of `d` must appear among the answers of some (inequality-free)
/// body disjunct on `canon(d)`. Exact for inequality-free CQs against UCQs
/// (Sagiv–Yannakakis); `d`'s own inequalities are ignored, which is sound for
/// the `⊆` direction.
pub(crate) fn canon_contained(d: &Cq, env: &ReasonEnv, j: usize) -> Contained {
    let Some(tabs) = &env.bodies[j] else {
        return Contained::Degraded;
    };
    let canon = match env.freeze(d) {
        Ok(c) => c,
        Err(Frozen::Unsat) => return Contained::UnsatLhs,
        Err(Frozen::Degraded(_)) => return Contained::Degraded,
    };
    for t in tabs {
        if eval_tableau(t, &canon.db).contains(&canon.frozen_head) {
            return Contained::Yes;
        }
    }
    Contained::No
}

/// The inequality-free tableaux of a constraint's body, or `None` (with a
/// degradation note) when the body cannot participate in symbolic reasoning.
fn usable_tableaux(
    cc: &ContainmentConstraint,
    setting: &Setting,
    idx: usize,
    degraded: &mut Vec<(usize, String)>,
) -> Option<Vec<Tableau>> {
    let Some(ucq) = cc.body.as_ucq(&setting.schema) else {
        degraded.push((idx, "FO/FP body is outside the reasoned fragment".into()));
        return None;
    };
    let mut out = Vec::with_capacity(ucq.disjuncts.len());
    let mut skipped_neq = false;
    for d in &ucq.disjuncts {
        match Tableau::of(d) {
            Ok(t) if !t.neqs.is_empty() => skipped_neq = true,
            Ok(t) if t.atoms.len() > MAX_CANON_ATOMS => {
                degraded.push((
                    idx,
                    "body disjunct too large for canonical evaluation".into(),
                ));
                return None;
            }
            Ok(t) => out.push(t),
            // Unsatisfiable disjuncts contribute nothing to any answer.
            Err(TableauError::Unsatisfiable) => {}
            Err(e) => {
                degraded.push((idx, format!("body tableau rejected: {e:?}")));
                return None;
            }
        }
    }
    if out.is_empty() {
        if skipped_neq {
            degraded.push((
                idx,
                "every body disjunct carries inequalities; frozen matches need not survive specialization".into(),
            ));
        }
        return None;
    }
    if skipped_neq {
        degraded.push((idx, "body disjuncts with inequalities were skipped".into()));
    }
    Some(out)
}

//! Differential certification of symbolic conclusions.
//!
//! Every rewrite or static fact the reasoner proposes is checked against
//! plain evaluation on a battery of seeded random databases before it is
//! allowed to influence a decision — the same discipline the analyzer uses
//! for certified query downgrades. Certification can only *reject* sound
//! conclusions (a false alarm keeps the original, slower path); it can never
//! admit an unsound one that the battery detects. The decision-level
//! differential suites in `tests/` then pin the surviving conclusions
//! verdict-, witness-, and counter-identical to the unmodified search.
//!
//! Half of the battery draws values from the setting's own pool (master
//! data's active domain plus constraint and query constants) so constraints
//! have a realistic chance of being satisfied; the other half draws small
//! integers to probe generic shapes.

use ric_complete::{Query, Setting};
use ric_constraints::ConstraintSet;
use ric_data::rng::SplitMix64;
use ric_data::{Database, Schema, Tuple, Value};

/// Rounds in every certification battery (mirrors the analyzer's certified
/// downgrades).
pub const CERTIFY_ROUNDS: u32 = 24;

/// Build `V` restricted to the kept constraints (lower bounds are never
/// dropped and are carried over unchanged).
pub fn masked_constraints(v: &ConstraintSet, kept: &[bool]) -> ConstraintSet {
    let mut out = ConstraintSet::new(
        v.ccs
            .iter()
            .zip(kept.iter())
            .filter(|(_, k)| **k)
            .map(|(cc, _)| cc.clone())
            .collect(),
    );
    out.lower_bounds = v.lower_bounds.clone();
    out
}

/// Certify a kept-mask: on every sampled database, `D ⊨ V_min` must agree
/// with `D ⊨ V` (upper constraints only — the lower bounds are untouched).
/// Any evaluation error fails certification: a conclusion that cannot be
/// checked is discarded, not trusted.
pub fn certify_kept_mask(setting: &Setting, kept: &[bool], seed: u64) -> Result<(), String> {
    if kept.len() != setting.v.ccs.len() {
        return Err(format!(
            "kept-mask arity mismatch: {} entries for {} constraints",
            kept.len(),
            setting.v.ccs.len()
        ));
    }
    let v_min = masked_constraints(&setting.v, kept);
    let pool = value_pool(setting);
    let mut rng = SplitMix64::seed_from_u64(seed);
    for round in 0..CERTIFY_ROUNDS {
        let db = sample_database(&setting.schema, &mut rng, 8, round_pool(round, &pool));
        let full = setting
            .v
            .upper_satisfied(&db, &setting.dm)
            .map_err(|e| format!("round {round}: full V evaluation failed: {e:?}"))?;
        let min = v_min
            .upper_satisfied(&db, &setting.dm)
            .map_err(|e| format!("round {round}: minimized V evaluation failed: {e:?}"))?;
        if full != min {
            return Err(format!(
                "round {round}: minimized V disagrees with V (full={full}, minimized={min})"
            ));
        }
    }
    Ok(())
}

/// Certify a static unsatisfiability verdict: on every sampled database that
/// satisfies `V`, the query must evaluate to the empty answer.
pub fn certify_unsat(setting: &Setting, query: &Query, seed: u64) -> Result<(), String> {
    let pool = value_pool(setting);
    let mut rng = SplitMix64::seed_from_u64(seed);
    for round in 0..CERTIFY_ROUNDS {
        let db = sample_database(&setting.schema, &mut rng, 8, round_pool(round, &pool));
        let legal = setting
            .v
            .satisfied(&db, &setting.dm)
            .map_err(|e| format!("round {round}: V evaluation failed: {e:?}"))?;
        if !legal {
            continue;
        }
        let ans = query
            .eval(&db)
            .map_err(|e| format!("round {round}: query evaluation failed: {e:?}"))?;
        if !ans.is_empty() {
            return Err(format!(
                "round {round}: query returned {} answers on a V-consistent database claimed unsatisfiable",
                ans.len()
            ));
        }
    }
    Ok(())
}

/// Certify a cover fact `Q ⊆ body(φ_j)`: on every sampled database — legal
/// or not, containment is a pure query property — the query's answers must
/// be a subset of the body's answers.
pub fn certify_cover(setting: &Setting, query: &Query, cc: usize, seed: u64) -> Result<(), String> {
    let Some(target) = setting.v.ccs.get(cc) else {
        return Err(format!(
            "cover certification against unknown constraint {cc}"
        ));
    };
    let pool = value_pool(setting);
    let mut rng = SplitMix64::seed_from_u64(seed);
    for round in 0..CERTIFY_ROUNDS {
        let db = sample_database(&setting.schema, &mut rng, 8, round_pool(round, &pool));
        let q_ans = query
            .eval(&db)
            .map_err(|e| format!("round {round}: query evaluation failed: {e:?}"))?;
        let body_ans = target
            .body
            .eval(&db)
            .map_err(|e| format!("round {round}: body evaluation failed: {e:?}"))?;
        if !q_ans.is_subset(&body_ans) {
            return Err(format!(
                "round {round}: query answer escapes the covering body (|Q|={}, |body|={})",
                q_ans.len(),
                body_ans.len()
            ));
        }
    }
    Ok(())
}

/// Values likely to matter for this setting: the master data's active domain
/// plus every constraint and lower-bound constant.
fn value_pool(setting: &Setting) -> Vec<Value> {
    let mut pool: Vec<Value> = setting.dm.active_domain().iter().cloned().collect();
    for v in setting.v.constants() {
        if !pool.contains(&v) {
            pool.push(v);
        }
    }
    pool
}

/// Alternate pool-biased and generic rounds.
fn round_pool(round: u32, pool: &[Value]) -> &[Value] {
    if round.is_multiple_of(2) {
        &[]
    } else {
        pool
    }
}

/// A random database over `schema`: up to `max_tuples` tuples per relation.
/// Finite-domain columns draw from their domain; infinite columns draw from
/// `pool` when one is supplied, otherwise small integers.
pub fn sample_database(
    schema: &Schema,
    rng: &mut SplitMix64,
    max_tuples: usize,
    pool: &[Value],
) -> Database {
    let mut db = Database::empty(schema);
    for (rel, rs) in schema.iter() {
        let n = rng.random_range(0..max_tuples + 1);
        'tuples: for _ in 0..n {
            let mut vals = Vec::with_capacity(rs.arity());
            for col in 0..rs.arity() {
                let v = match schema.domain(rel, col) {
                    Ok(d) if !d.is_infinite() => {
                        let Some(choices) = d.finite_values() else {
                            continue 'tuples;
                        };
                        if choices.is_empty() {
                            continue 'tuples;
                        }
                        choices[rng.random_range(0..choices.len())].clone()
                    }
                    _ if !pool.is_empty() => pool[rng.random_range(0..pool.len())].clone(),
                    _ => Value::int(rng.random_range(0..6) as i64),
                };
                vals.push(v);
            }
            db.insert(rel, Tuple::new(vals));
        }
    }
    db
}

//! The Section 5 extension: containment constraints *from master data into
//! the database* (`p(D_m) ⊆ q(D)`), as Example 1.1 needs for
//! `Manage ⊇ Manage_m`.

use ric_complete::{rcdp, rcqp, Query, QueryVerdict, RcError, SearchBudget, Setting, Verdict};
use ric_constraints::{CcBody, ConstraintSet, ContainmentConstraint, LowerBound, Projection};
use ric_data::{Database, RelationSchema, Schema, Tuple, Value};
use ric_query::parse_cq;

/// Manage(up, down) must contain the master hierarchy Manage_m, and its
/// participants are bounded by the master employee list.
fn hierarchy_setting() -> Setting {
    let schema =
        Schema::from_relations(vec![RelationSchema::infinite("Manage", &["up", "down"])]).unwrap();
    let manage = schema.rel_id("Manage").unwrap();
    let mschema = Schema::from_relations(vec![
        RelationSchema::infinite("ManageM", &["up", "down"]),
        RelationSchema::infinite("Emp", &["eid"]),
    ])
    .unwrap();
    let manage_m = mschema.rel_id("ManageM").unwrap();
    let emp = mschema.rel_id("Emp").unwrap();
    let mut dm = Database::empty(&mschema);
    for (a, b) in [("e2", "e1"), ("e1", "e0")] {
        dm.insert(manage_m, Tuple::new([Value::str(a), Value::str(b)]));
    }
    for e in ["e0", "e1", "e2", "e3"] {
        dm.insert(emp, Tuple::new([Value::str(e)]));
    }
    let mut v = ConstraintSet::new(vec![
        ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(manage, vec![0])),
            emp,
            vec![0],
        ),
        ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(manage, vec![1])),
            emp,
            vec![0],
        ),
    ]);
    // The Section 5 lower bound: Manage ⊇ Manage_m.
    v.push_lower_bound(LowerBound {
        master: Projection::new(manage_m, vec![0, 1]),
        body: CcBody::Proj(Projection::new(manage, vec![0, 1])),
    });
    Setting::new(schema, mschema, dm, v)
}

#[test]
fn databases_missing_master_edges_are_not_partially_closed() {
    let setting = hierarchy_setting();
    let manage = setting.schema.rel_id("Manage").unwrap();
    let q: Query = parse_cq(&setting.schema, "Q(X) :- Manage(X, 'e0').")
        .unwrap()
        .into();

    // Missing the master hierarchy: rejected as input.
    let empty = Database::empty(&setting.schema);
    assert_eq!(
        rcdp(&setting, &q, &empty, &SearchBudget::default()),
        Err(RcError::NotPartiallyClosed)
    );

    // Containing it: accepted, and the bounded employee list makes the
    // one-hop query decidable as usual.
    let mut db = Database::empty(&setting.schema);
    for (a, b) in [("e2", "e1"), ("e1", "e0")] {
        db.insert(manage, Tuple::new([Value::str(a), Value::str(b)]));
    }
    let verdict = rcdp(&setting, &q, &db, &SearchBudget::default()).unwrap();
    // e3 (a master employee not yet in Manage) could still manage e0.
    match verdict {
        Verdict::Incomplete(ce) => {
            assert!(ric_complete::rcdp::certify_counterexample(&setting, &q, &db, &ce).unwrap());
        }
        other => panic!("expected incomplete, got {other:?}"),
    }

    // Saturate the up-column possibilities for e0: complete.
    for e in ["e0", "e1", "e2", "e3"] {
        db.insert(manage, Tuple::new([Value::str(e), Value::str("e0")]));
    }
    assert_eq!(
        rcdp(&setting, &q, &db, &SearchBudget::default()).unwrap(),
        Verdict::Complete
    );
}

#[test]
fn rcqp_seeds_candidates_with_the_forced_content() {
    let setting = hierarchy_setting();
    let q: Query = parse_cq(&setting.schema, "Q(X) :- Manage(X, 'e0').")
        .unwrap()
        .into();
    match rcqp(&setting, &q, &SearchBudget::default()).unwrap() {
        QueryVerdict::Nonempty { witness: Some(w) } => {
            // The witness contains the forced master hierarchy…
            let manage = setting.schema.rel_id("Manage").unwrap();
            assert!(w
                .instance(manage)
                .contains(&Tuple::new([Value::str("e1"), Value::str("e0")])));
            // …and is certified complete.
            assert_eq!(
                rcdp(&setting, &q, &w, &SearchBudget::default()).unwrap(),
                Verdict::Complete
            );
        }
        other => panic!("expected nonempty with witness, got {other:?}"),
    }
}

#[test]
fn lower_bound_satisfaction_is_preserved_under_extension() {
    let setting = hierarchy_setting();
    let manage = setting.schema.rel_id("Manage").unwrap();
    let mut db = Database::empty(&setting.schema);
    for (a, b) in [("e2", "e1"), ("e1", "e0")] {
        db.insert(manage, Tuple::new([Value::str(a), Value::str(b)]));
    }
    assert!(setting.partially_closed(&db).unwrap());
    // Any extension keeps the lower bound satisfied (monotone body).
    db.insert(manage, Tuple::new([Value::str("e3"), Value::str("e2")]));
    assert!(setting.partially_closed(&db).unwrap());
}

#[test]
fn non_projection_lower_bound_reports_unknown_for_rcqp() {
    let schema = Schema::from_relations(vec![RelationSchema::infinite("R", &["a", "b"])]).unwrap();
    let r = schema.rel_id("R").unwrap();
    let mschema = Schema::from_relations(vec![RelationSchema::infinite("M", &["a"])]).unwrap();
    let m = mschema.rel_id("M").unwrap();
    let mut dm = Database::empty(&mschema);
    dm.insert(m, Tuple::new([Value::int(1)]));
    let mut v = ConstraintSet::empty();
    // Lower bound with a join body: no canonical seed.
    let body = parse_cq(&schema, "Q(X) :- R(X, Y), R(Y, X).").unwrap();
    v.push_lower_bound(LowerBound {
        master: Projection::new(m, vec![0]),
        body: CcBody::Cq(body),
    });
    // Add an upper bound so the setting is not a pure IND set.
    v.push(ContainmentConstraint::into_master(
        CcBody::Proj(Projection::new(r, vec![0])),
        m,
        vec![0],
    ));
    let setting = Setting::new(schema.clone(), mschema, dm, v);
    let q: Query = parse_cq(&schema, "Q(X) :- R(X, Y).").unwrap().into();
    match rcqp(&setting, &q, &SearchBudget::default()).unwrap() {
        QueryVerdict::Unknown { .. } => {}
        other => panic!("expected honest unknown, got {other:?}"),
    }
}

//! Seeded round-trip property suite for [`Checkpoint`] serialization:
//! `from_json ∘ to_json = id` over generated checkpoints (compact and pretty
//! printings), typed rejection of unknown schema versions, and typed errors
//! — never panics — for every malformed-document shape a torn write or a
//! foreign tool could produce. Same pattern as the telemetry crate's
//! `json_roundtrip.rs` suite.

use ric_complete::{
    Checkpoint, CheckpointError, DecisionKind, Frontier, Progress, CHECKPOINT_VERSION,
};

/// SplitMix64 (Steele et al.): tiny, seedable, deterministic.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn gen_progress(rng: &mut SplitMix64) -> Progress {
    let vec = |rng: &mut SplitMix64| (0..rng.below(6)).map(|_| rng.below(10_000)).collect();
    Progress {
        ticks: rng.next(),
        cc_checks: rng.below(1 << 40),
        cc_skipped: rng.below(1 << 40),
        probes: rng.below(1 << 40),
        query_evals: rng.below(1 << 20),
        head_prunes: rng.below(1 << 20),
        depth_candidates: vec(rng),
        depth_pruned: vec(rng),
        cc_viol: vec(rng),
    }
}

fn gen_frontier(rng: &mut SplitMix64) -> Frontier {
    match rng.below(3) {
        0 => {
            let n_chunks = rng.below(12) + 1;
            let cleared = (0..rng.below(n_chunks + 1))
                .map(|i| (i, gen_progress(rng)))
                .collect();
            Frontier::RcdpChunks { n_chunks, cleared }
        }
        1 => Frontier::BoundedSizes {
            next_size: rng.below(8) + 1,
            progress: gen_progress(rng),
        },
        _ => Frontier::Restart,
    }
}

fn gen_checkpoint(rng: &mut SplitMix64) -> Checkpoint {
    Checkpoint {
        version: CHECKPOINT_VERSION,
        kind: if rng.below(2) == 0 {
            DecisionKind::Rcdp
        } else {
            DecisionKind::Rcqp
        },
        fingerprint: rng.next(),
        attempt: (rng.below(10) + 1) as u32,
        spent_ticks: rng.next(),
        frontier: gen_frontier(rng),
    }
}

#[test]
fn to_json_from_json_identity_over_seeded_checkpoints() {
    let mut rng = SplitMix64(0xc0de_0001);
    for case in 0..500 {
        let cp = gen_checkpoint(&mut rng);
        let compact = cp.to_json().to_string();
        let back = Checkpoint::from_json_str(&compact)
            .unwrap_or_else(|e| panic!("case {case}: {e} in {compact}"));
        assert_eq!(back, cp, "case {case}: compact round-trip");
        let pretty = cp.to_json().pretty();
        let back = Checkpoint::from_json_str(&pretty)
            .unwrap_or_else(|e| panic!("case {case}: {e} in {pretty}"));
        assert_eq!(back, cp, "case {case}: pretty round-trip");
    }
}

#[test]
fn round_tripped_checkpoints_validate_like_the_original() {
    // Serialization must not change what a checkpoint accepts: the same
    // (kind, fingerprint) pair passes, every other pair fails, before and
    // after a JSON round-trip — that is what "identical resume behavior"
    // means at the facade boundary, where validate() gates the resume.
    let mut rng = SplitMix64(0xc0de_0002);
    for case in 0..200 {
        let cp = gen_checkpoint(&mut rng);
        let back = Checkpoint::from_json_str(&cp.to_json().to_string()).unwrap();
        let other_kind = match cp.kind {
            DecisionKind::Rcdp => DecisionKind::Rcqp,
            DecisionKind::Rcqp => DecisionKind::Rcdp,
        };
        assert!(
            back.validate(cp.kind, cp.fingerprint).is_ok(),
            "case {case}"
        );
        assert_eq!(
            back.validate(other_kind, cp.fingerprint).is_err(),
            cp.validate(other_kind, cp.fingerprint).is_err(),
            "case {case}: kind mismatch parity"
        );
        let wrong_fp = cp.fingerprint.wrapping_add(1);
        assert_eq!(
            back.validate(cp.kind, wrong_fp).is_err(),
            cp.validate(cp.kind, wrong_fp).is_err(),
            "case {case}: fingerprint mismatch parity"
        );
    }
}

#[test]
fn unknown_schema_versions_are_typed_rejections() {
    let mut rng = SplitMix64(0xc0de_0003);
    for case in 0..100 {
        let mut cp = gen_checkpoint(&mut rng);
        cp.version = CHECKPOINT_VERSION + 1 + rng.below(1000);
        let doc = cp.to_json().to_string();
        match Checkpoint::from_json_str(&doc) {
            Err(CheckpointError::UnsupportedVersion { found }) => {
                assert_eq!(found, cp.version, "case {case}")
            }
            other => panic!("case {case}: expected UnsupportedVersion, got {other:?}"),
        }
    }
}

#[test]
fn truncations_of_valid_documents_never_panic() {
    // Every prefix of a valid serialized checkpoint is either valid (it
    // cannot be, except the full document) or a typed error. This is the
    // torn-write scenario: the process died mid-write.
    let mut rng = SplitMix64(0xc0de_0004);
    for _ in 0..25 {
        let cp = gen_checkpoint(&mut rng);
        let full = cp.to_json().to_string();
        for cut in 0..full.len() {
            if !full.is_char_boundary(cut) {
                continue;
            }
            let torn = &full[..cut];
            assert!(
                Checkpoint::from_json_str(torn).is_err(),
                "prefix of length {cut} of {full} parsed as a checkpoint"
            );
        }
    }
}

#[test]
fn malformed_documents_are_typed_errors() {
    for doc in [
        "",
        "not json at all",
        "42",
        "[]",
        "{}",
        r#"{"version":1}"#,
        r#"{"version":1,"kind":"nope","fingerprint":0,"attempt":1,"spent_ticks":0,"frontier":{"type":"restart"}}"#,
        r#"{"version":1,"kind":"rcdp","fingerprint":0,"attempt":1,"spent_ticks":0,"frontier":{"type":"wat"}}"#,
        r#"{"version":1,"kind":"rcdp","fingerprint":-3,"attempt":1,"spent_ticks":0,"frontier":{"type":"restart"}}"#,
        r#"{"version":"one","kind":"rcdp","fingerprint":0,"attempt":1,"spent_ticks":0,"frontier":{"type":"restart"}}"#,
    ] {
        assert!(
            Checkpoint::from_json_str(doc).is_err(),
            "document {doc:?} should be rejected"
        );
    }
}

//! Edge cases for the deciders: Boolean queries, mixed UCQ disjuncts, ∃FO⁺
//! dispatch, and the budget/Unknown paths.

use ric_complete::{rcdp, rcqp, Query, QueryVerdict, SearchBudget, Setting, Verdict};
use ric_constraints::{CcBody, ConstraintSet, ContainmentConstraint, Projection};
use ric_data::{Database, RelationSchema, Schema, Tuple, Value};
use ric_query::{parse_cq, parse_ucq, EfoExpr, EfoQuery, Term, Var};

fn open_schema() -> Schema {
    Schema::from_relations(vec![RelationSchema::infinite("R", &["a", "b"])]).unwrap()
}

/// Boolean queries have a finite (empty) head: they are always relatively
/// complete, and a database answering `true` is complete.
#[test]
fn boolean_query_lifecycle() {
    let schema = open_schema();
    let r = schema.rel_id("R").unwrap();
    let setting = Setting::open_world(schema.clone());
    let q: Query = parse_cq(&schema, "Q() :- R(X, X).").unwrap().into();

    // Empty database: incomplete (the Boolean answer can still flip).
    let empty = Database::empty(&schema);
    let verdict = rcdp(&setting, &q, &empty, &SearchBudget::default()).unwrap();
    assert!(verdict.is_incomplete());

    // A database answering true is complete: the answer can never flip back
    // (CQ is monotone).
    let mut db = Database::empty(&schema);
    db.insert(r, Tuple::new([Value::int(1), Value::int(1)]));
    assert_eq!(
        rcdp(&setting, &q, &db, &SearchBudget::default()).unwrap(),
        Verdict::Complete
    );

    // And RCQP is nonempty with a certified witness.
    match rcqp(&setting, &q, &SearchBudget::default()).unwrap() {
        QueryVerdict::Nonempty { witness: Some(w) } => {
            assert_eq!(
                rcdp(&setting, &q, &w, &SearchBudget::default()).unwrap(),
                Verdict::Complete
            );
        }
        other => panic!("expected nonempty, got {other:?}"),
    }
}

/// A UCQ mixing a satisfiable and an unsatisfiable disjunct behaves like the
/// satisfiable disjunct alone.
#[test]
fn ucq_with_unsatisfiable_disjunct() {
    let schema = open_schema();
    let setting = Setting::open_world(schema.clone());
    let u: Query = parse_ucq(&schema, "Q(X) :- R(X, Y), X != X. Q(X) :- R(X, 1).")
        .unwrap()
        .into();
    let db = Database::empty(&schema);
    let verdict = rcdp(&setting, &u, &db, &SearchBudget::default()).unwrap();
    assert!(verdict.is_incomplete(), "the live disjunct is open world");
}

/// ∃FO⁺ queries dispatch through the same exact machinery.
#[test]
fn efo_query_exact_dispatch() {
    let schema = open_schema();
    let r = schema.rel_id("R").unwrap();
    let mschema = Schema::from_relations(vec![RelationSchema::infinite("M", &["a"])]).unwrap();
    let m = mschema.rel_id("M").unwrap();
    let mut dm = Database::empty(&mschema);
    dm.insert(m, Tuple::new([Value::int(1)]));
    dm.insert(m, Tuple::new([Value::int(2)]));
    let v = ConstraintSet::new(vec![
        ContainmentConstraint::into_master(CcBody::Proj(Projection::new(r, vec![0])), m, vec![0]),
        ContainmentConstraint::into_master(CcBody::Proj(Projection::new(r, vec![1])), m, vec![0]),
    ]);
    let setting = Setting::new(schema.clone(), mschema, dm, v);
    // Q(x) := ∃y (R(x,y) ∧ (y = 1 ∨ y = 2))
    let (x, y) = (Var(0), Var(1));
    let body = EfoExpr::And(vec![
        EfoExpr::Atom(ric_query::Atom::new(r, vec![Term::Var(x), Term::Var(y)])),
        EfoExpr::Or(vec![
            EfoExpr::Eq(Term::Var(y), Term::from(1)),
            EfoExpr::Eq(Term::Var(y), Term::from(2)),
        ]),
    ]);
    let q: Query = EfoQuery::new(vec![Term::Var(x)], body, vec!["x".into(), "y".into()]).into();

    // Full database over the master domain: complete.
    let mut db = Database::empty(&schema);
    for a in [1i64, 2] {
        for b in [1i64, 2] {
            db.insert(r, Tuple::new([Value::int(a), Value::int(b)]));
        }
    }
    assert_eq!(
        rcdp(&setting, &q, &db, &SearchBudget::default()).unwrap(),
        Verdict::Complete
    );
    // Remove one source value: incomplete.
    let mut partial = Database::empty(&schema);
    partial.insert(r, Tuple::new([Value::int(1), Value::int(1)]));
    assert!(rcdp(&setting, &q, &partial, &SearchBudget::default())
        .unwrap()
        .is_incomplete());
}

/// The RCQP budget path: a tiny candidate budget yields `Unknown`, never a
/// wrong `Empty`.
#[test]
fn rcqp_budget_exhaustion_is_honest() {
    let schema =
        Schema::from_relations(vec![RelationSchema::infinite("Supt", &["eid", "dept"])]).unwrap();
    let supt = schema.rel_id("Supt").unwrap();
    let fd = ric_constraints::Fd::new(supt, vec![0], vec![1]);
    let v = ConstraintSet::new(ric_constraints::compile::fd_to_ccs(&fd, &schema));
    let setting = Setting::new(
        schema.clone(),
        Schema::new(),
        Database::with_relations(0),
        v,
    );
    let q: Query = parse_cq(&schema, "Q(E) :- Supt(E, 'd0'), E = 'e0'.")
        .unwrap()
        .into();
    let tiny = SearchBudget {
        fresh_values: 3,
        max_candidates: 1,
        max_valuations: 50, // also starves the greedy probe
        ..SearchBudget::default()
    };
    match rcqp(&setting, &q, &tiny).unwrap() {
        QueryVerdict::Unknown { .. } | QueryVerdict::Nonempty { .. } => {}
        QueryVerdict::Empty => panic!("budget exhaustion must not fabricate emptiness"),
    }
}

/// Completeness is monotone along the greedy completion path: every prefix
/// of the collected extension keeps the database partially closed.
#[test]
fn completion_path_stays_partially_closed() {
    let schema =
        Schema::from_relations(vec![RelationSchema::infinite("Supt", &["eid", "cid"])]).unwrap();
    let supt = schema.rel_id("Supt").unwrap();
    let mschema =
        Schema::from_relations(vec![RelationSchema::infinite("DCust", &["cid"])]).unwrap();
    let dcust = mschema.rel_id("DCust").unwrap();
    let mut dm = Database::empty(&mschema);
    for c in 0..4 {
        dm.insert(dcust, Tuple::new([Value::str(format!("c{c}"))]));
    }
    let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
        CcBody::Proj(Projection::new(supt, vec![1])),
        dcust,
        vec![0],
    )]);
    let setting = Setting::new(schema.clone(), mschema, dm, v);
    let q: Query = parse_cq(&schema, "Q(C) :- Supt('e0', C).").unwrap().into();
    let db = Database::empty(&schema);
    match ric_complete::extend::complete_extension(&setting, &q, &db, &SearchBudget::default())
        .unwrap()
    {
        ric_complete::extend::CompletionOutcome::Completed { added, result } => {
            assert_eq!(added.tuple_count(), 4);
            assert!(setting.partially_closed(&result).unwrap());
            // Add the tuples one at a time: every prefix is partially closed.
            let mut current = db.clone();
            for (rel, inst) in added.iter() {
                for t in inst.iter() {
                    current.insert(rel, t.clone());
                    assert!(setting.partially_closed(&current).unwrap());
                }
            }
        }
        other => panic!("expected completion, got {other:?}"),
    }
}

/// Nested master projections: a CC whose right-hand side projects a *wider*
/// master relation onto a column subset.
#[test]
fn master_projection_subset_columns() {
    let schema = Schema::from_relations(vec![RelationSchema::infinite("T", &["k"])]).unwrap();
    let t = schema.rel_id("T").unwrap();
    let mschema =
        Schema::from_relations(vec![RelationSchema::infinite("Wide", &["k", "x", "y"])]).unwrap();
    let wide = mschema.rel_id("Wide").unwrap();
    let mut dm = Database::empty(&mschema);
    dm.insert(
        wide,
        Tuple::new([Value::int(1), Value::int(10), Value::int(20)]),
    );
    dm.insert(
        wide,
        Tuple::new([Value::int(2), Value::int(30), Value::int(40)]),
    );
    let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
        CcBody::Proj(Projection::new(t, vec![0])),
        wide,
        vec![0],
    )]);
    let setting = Setting::new(schema.clone(), mschema, dm, v);
    let q: Query = parse_cq(&schema, "Q(K) :- T(K).").unwrap().into();
    let mut db = Database::empty(&schema);
    db.insert(t, Tuple::new([Value::int(1)]));
    let verdict = rcdp(&setting, &q, &db, &SearchBudget::default()).unwrap();
    match verdict {
        Verdict::Incomplete(ce) => {
            assert_eq!(ce.new_answer, Tuple::new([Value::int(2)]));
        }
        other => panic!("expected incomplete (key 2 missing), got {other:?}"),
    }
    db.insert(t, Tuple::new([Value::int(2)]));
    assert_eq!(
        rcdp(&setting, &q, &db, &SearchBudget::default()).unwrap(),
        Verdict::Complete
    );
}

//! Completing a database: the Section 2.3 paradigm *"guidance for what data
//! should be collected"*.
//!
//! When RCDP says `D` is incomplete for `Q`, the counterexample is itself the
//! guidance: it names tuples whose absence makes the answer untrustworthy.
//! [`complete_extension`] iterates this — repeatedly adding the violating
//! extension — until the database becomes complete or the budget runs out.
//! For bounded queries the loop terminates: every round adds a new answer
//! tuple, and bounded queries only have finitely many achievable answers over
//! the (stable) extended active domain.

use crate::budget::SearchBudget;
use crate::guard::Guard;
use crate::query::Query;
use crate::setting::Setting;
use crate::verdict::{RcError, Verdict};
use ric_data::Database;
use ric_telemetry::Probe;

/// Outcome of the greedy completion loop.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompletionOutcome {
    /// The input database was already complete.
    AlreadyComplete,
    /// Completion succeeded.
    Completed {
        /// The tuples that had to be collected.
        added: Database,
        /// The completed database (`D ∪ added`).
        result: Database,
    },
    /// The budget ran out (or a decision came back `Unknown`) before the
    /// database became complete; `partial` is the best extension so far.
    Budget {
        /// Tuples added before giving up.
        added: Database,
        /// `D ∪ added`.
        partial: Database,
    },
}

/// Greedily extend `db` until it is complete for `query` relative to the
/// setting. Every returned `Completed`/`AlreadyComplete` outcome is certified
/// by the RCDP decider.
pub fn complete_extension(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
) -> Result<CompletionOutcome, RcError> {
    complete_extension_probed(setting, query, db, budget, Probe::disabled())
}

/// [`complete_extension`] with a telemetry probe attached: reports the
/// number of completion rounds, the tuples collected, and the outcome.
pub fn complete_extension_probed(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
    probe: Probe<'_>,
) -> Result<CompletionOutcome, RcError> {
    complete_extension_guarded(setting, query, db, budget, &Guard::new(budget), probe)
}

/// [`complete_extension`] under an externally shared [`Guard`]: the deadline
/// spans the *whole* loop (every round's RCDP decision polls the same clock),
/// and a trip breaks to `CompletionOutcome::Budget` with the progress so far.
pub fn complete_extension_guarded(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
) -> Result<CompletionOutcome, RcError> {
    let probe = probe.with_ticks(guard);
    // Validate the input once; the loop preserves partial closure by
    // construction (every round's delta comes from a counterexample whose
    // extended database satisfied `V`), so the per-round decisions can skip
    // straight to the dispatch target instead of re-checking the whole
    // growing database each time.
    crate::rcdp::validate_fp_bodies(setting, query)?;
    if !setting.partially_closed(db)? {
        return Err(RcError::NotPartiallyClosed);
    }
    let exact = crate::rcdp::exactly_decidable(query.language())
        && crate::rcdp::exactly_decidable(setting.v.language());
    // Compile the upper-bound preparation once for the whole loop: the
    // constraint set is fixed across rounds, and the statistics that steer
    // planned join orders only affect timing, so reusing the base-database
    // plans as `current` grows is sound.
    let reuse = crate::prepared::prepare_upper(setting, budget.engine, db)?;
    crate::rcdp::emit_plan_telemetry(probe, setting, budget.engine, reuse.as_ref(), false, db);
    let span = probe.span("extend.completion");
    let mut current = db.clone();
    let mut added = Database::with_relations(setting.schema.len());
    let mut first = true;
    let mut rounds: u64 = 0;
    let outcome = loop {
        rounds += 1;
        // Poll the guard once per round so a trip is observed even when the
        // per-round decision is too cheap to reach its own meter check.
        if let Some(interrupt) = guard.check_now() {
            probe.interrupt("extend.interrupt", interrupt.name(), guard.ticks());
            break CompletionOutcome::Budget {
                added,
                partial: current,
            };
        }
        // The per-round decisions run unprobed: an unbounded query can take
        // hundreds of rounds, and each round's counters would swamp the
        // sink; rounds and collected tuples summarise the loop.
        let verdict = if exact {
            crate::rcdp::rcdp_exact_reusing(
                setting,
                query,
                &current,
                budget,
                guard,
                Probe::disabled(),
                reuse.as_ref(),
            )?
        } else {
            crate::semidecide::rcdp_bounded_guarded_reusing(
                setting,
                query,
                &current,
                budget,
                guard,
                Probe::disabled(),
                reuse.as_ref(),
            )?
        };
        match verdict {
            Verdict::Complete => {
                break if first {
                    CompletionOutcome::AlreadyComplete
                } else {
                    CompletionOutcome::Completed {
                        added,
                        result: current,
                    }
                };
            }
            Verdict::Incomplete(ce) => {
                first = false;
                added.union_with(&ce.delta).unwrap_or_else(|e| {
                    unreachable!("counterexample shares the setting schema: {e:?}")
                });
                current.union_with(&ce.delta).unwrap_or_else(|e| {
                    unreachable!("counterexample shares the setting schema: {e:?}")
                });
                if added.tuple_count() > budget.max_witness_tuples {
                    break CompletionOutcome::Budget {
                        added,
                        partial: current,
                    };
                }
            }
            Verdict::Unknown { .. } => {
                break CompletionOutcome::Budget {
                    added,
                    partial: current,
                };
            }
        }
    };
    drop(span);
    probe.count("extend.rounds", rounds);
    match &outcome {
        CompletionOutcome::AlreadyComplete => {
            probe.note("extend.outcome", || "already_complete".into());
        }
        CompletionOutcome::Completed { added, .. } => {
            probe.count("extend.added_tuples", added.tuple_count() as u64);
            probe.note("extend.outcome", || "completed".into());
        }
        CompletionOutcome::Budget { added, .. } => {
            probe.count("extend.added_tuples", added.tuple_count() as u64);
            probe.note("extend.outcome", || "budget".into());
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ric_constraints::{CcBody, ConstraintSet, ContainmentConstraint, Projection};
    use ric_data::{RelationSchema, Schema, Tuple, Value};
    use ric_query::parse_cq;

    /// Supt(eid, cid) with cid bounded by master DCust; completing the query
    /// "customers of e0" must pull in exactly the missing master customers.
    #[test]
    fn completion_collects_missing_master_customers() {
        let schema =
            Schema::from_relations(vec![RelationSchema::infinite("Supt", &["eid", "cid"])])
                .unwrap();
        let supt = schema.rel_id("Supt").unwrap();
        let mschema =
            Schema::from_relations(vec![RelationSchema::infinite("DCust", &["cid"])]).unwrap();
        let dcust = mschema.rel_id("DCust").unwrap();
        let mut dm = Database::empty(&mschema);
        for c in ["c1", "c2", "c3"] {
            dm.insert(dcust, Tuple::new([Value::str(c)]));
        }
        let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(supt, vec![1])),
            dcust,
            vec![0],
        )]);
        let setting = Setting::new(schema.clone(), mschema, dm, v);
        let q: Query = parse_cq(&schema, "Q(C) :- Supt('e0', C).").unwrap().into();

        let mut db = Database::empty(&schema);
        db.insert(supt, Tuple::new([Value::str("e0"), Value::str("c1")]));

        match complete_extension(&setting, &q, &db, &SearchBudget::default()).unwrap() {
            CompletionOutcome::Completed { added, result } => {
                // The two missing master customers had to be collected.
                assert_eq!(added.tuple_count(), 2);
                let answers = q.eval(&result).unwrap();
                assert_eq!(answers.len(), 3);
                assert_eq!(
                    crate::rcdp(&setting, &q, &result, &SearchBudget::default()).unwrap(),
                    Verdict::Complete
                );
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn already_complete_detected() {
        let schema = Schema::from_relations(vec![RelationSchema::infinite("R", &["a"])]).unwrap();
        let setting = Setting::open_world(schema.clone());
        let q: Query = parse_cq(&schema, "Q(X) :- R(X), X != X.").unwrap().into();
        let db = Database::empty(&schema);
        assert_eq!(
            complete_extension(&setting, &q, &db, &SearchBudget::default()).unwrap(),
            CompletionOutcome::AlreadyComplete
        );
    }

    #[test]
    fn unbounded_query_hits_budget() {
        // Open world, no constraints: Q can never be completed; the loop must
        // stop at the budget rather than diverge.
        let schema = Schema::from_relations(vec![RelationSchema::infinite("R", &["a"])]).unwrap();
        let setting = Setting::open_world(schema.clone());
        let q: Query = parse_cq(&schema, "Q(X) :- R(X).").unwrap().into();
        let db = Database::empty(&schema);
        let budget = SearchBudget {
            max_witness_tuples: 5,
            ..SearchBudget::default()
        };
        match complete_extension(&setting, &q, &db, &budget).unwrap() {
            CompletionOutcome::Budget { added, .. } => {
                assert!(added.tuple_count() > 5);
            }
            other => panic!("expected budget outcome, got {other:?}"),
        }
    }
}

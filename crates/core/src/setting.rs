//! The `(D_m, V)` context shared by both decision problems.

use ric_constraints::ConstraintSet;
use ric_data::{Database, Schema};
use ric_query::tableau::TableauError;

/// Master data plus containment constraints, with both schemas.
///
/// A database `D` over [`Setting::schema`] is *partially closed* with respect
/// to the setting when `(D, D_m) |= V` ([`Setting::partially_closed`]).
#[derive(Clone, Debug)]
pub struct Setting {
    /// The database schema `R`.
    pub schema: Schema,
    /// The master-data schema `R_m`.
    pub master_schema: Schema,
    /// The master data `D_m` (closed world).
    pub dm: Database,
    /// The containment constraints `V`.
    pub v: ConstraintSet,
}

impl Setting {
    /// Build a setting; the master database must match the master schema in
    /// relation count (tuple-level checks are the caller's responsibility via
    /// `insert_checked`).
    pub fn new(schema: Schema, master_schema: Schema, dm: Database, v: ConstraintSet) -> Self {
        assert_eq!(
            dm.len(),
            master_schema.len(),
            "master data must have one instance per master relation"
        );
        Setting {
            schema,
            master_schema,
            dm,
            v,
        }
    }

    /// A setting with no master data and no constraints: the pure open-world
    /// case, where almost no query has a complete database.
    pub fn open_world(schema: Schema) -> Self {
        Setting {
            schema,
            master_schema: Schema::new(),
            dm: Database::with_relations(0),
            v: ConstraintSet::empty(),
        }
    }

    /// `(D, D_m) |= V`.
    pub fn partially_closed(&self, db: &Database) -> Result<bool, TableauError> {
        self.v.satisfied(db, &self.dm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ric_data::{RelationSchema, Tuple, Value};

    #[test]
    fn open_world_accepts_everything() {
        let schema = Schema::from_relations(vec![RelationSchema::infinite("R", &["a"])]).unwrap();
        let setting = Setting::open_world(schema.clone());
        let mut db = Database::empty(&schema);
        db.insert(schema.rel_id("R").unwrap(), Tuple::new([Value::int(1)]));
        assert!(setting.partially_closed(&db).unwrap());
    }

    #[test]
    #[should_panic(expected = "one instance per master relation")]
    fn master_mismatch_panics() {
        let schema = Schema::from_relations(vec![RelationSchema::infinite("R", &["a"])]).unwrap();
        let m = Schema::from_relations(vec![RelationSchema::infinite("M", &["a"])]).unwrap();
        let _ = Setting::new(
            schema,
            m,
            Database::with_relations(2),
            ConstraintSet::empty(),
        );
    }
}

//! The `L_Q` parameter: a query in any of the paper's five languages.

use ric_data::{Database, Tuple, Value};
use ric_query::tableau::TableauError;
use ric_query::{Cq, EfoQuery, FoQuery, Program, QueryLanguage, Ucq};
use std::collections::BTreeSet;

/// A query in one of the languages of Section 2.1.
#[derive(Clone, PartialEq, Debug)]
pub enum Query {
    /// Conjunctive query.
    Cq(Cq),
    /// Union of conjunctive queries.
    Ucq(Ucq),
    /// Positive existential FO.
    Efo(EfoQuery),
    /// First-order.
    Fo(FoQuery),
    /// Datalog (FP).
    Fp(Program),
}

impl Query {
    /// The language of the query.
    pub fn language(&self) -> QueryLanguage {
        match self {
            Query::Cq(_) => QueryLanguage::Cq,
            Query::Ucq(_) => QueryLanguage::Ucq,
            Query::Efo(_) => QueryLanguage::EfoPlus,
            Query::Fo(_) => QueryLanguage::Fo,
            Query::Fp(_) => QueryLanguage::Fp,
        }
    }

    /// Evaluate on a database.
    pub fn eval(&self, db: &Database) -> Result<BTreeSet<Tuple>, TableauError> {
        match self {
            Query::Cq(q) => ric_query::eval::eval_cq(q, db),
            Query::Ucq(q) => ric_query::eval::eval_ucq(q, db),
            Query::Efo(q) => q.eval(db),
            Query::Fo(q) => q.try_eval(db),
            Query::Fp(p) => Ok(p.eval(db)),
        }
    }

    /// All constants appearing in the query (for `Adom`).
    pub fn constants(&self) -> BTreeSet<Value> {
        match self {
            Query::Cq(q) => q.constants(),
            Query::Ucq(q) => q.constants(),
            Query::Efo(q) => q.constants(),
            Query::Fo(q) => {
                let mut out = BTreeSet::new();
                q.body.constants(&mut out);
                out
            }
            Query::Fp(p) => {
                let mut out = BTreeSet::new();
                for rule in &p.rules {
                    let mut push = |t: &ric_query::Term| {
                        if let ric_query::Term::Const(c) = t {
                            out.insert(c.clone());
                        }
                    };
                    for t in &rule.head_args {
                        push(t);
                    }
                    for lit in &rule.body {
                        match lit {
                            ric_query::Literal::Edb(a) => a.args.iter().for_each(&mut push),
                            ric_query::Literal::Idb(_, args) => args.iter().for_each(&mut push),
                            ric_query::Literal::Eq(l, r) | ric_query::Literal::Neq(l, r) => {
                                push(l);
                                push(r);
                            }
                        }
                    }
                }
                out
            }
        }
    }

    /// The database relations this query reads, when that set is
    /// syntactically meaningful: the atom relations for CQ/UCQ/∃FO⁺.
    ///
    /// `None` for FO/FP: under active-domain semantics an FO query's answer
    /// can change when *any* relation changes (quantifiers range over the
    /// whole database's constants), and a datalog program's fixpoint can
    /// feed any EDB into any IDB — so their footprint is the entire schema.
    /// Streaming invalidation (`ric-monitor`) treats `None` as "touches
    /// everything".
    pub fn rels(&self) -> Option<std::collections::BTreeSet<ric_data::RelId>> {
        self.as_ucq().map(|u| {
            u.disjuncts
                .iter()
                .flat_map(|d| d.atoms.iter())
                .map(|a| a.rel)
                .collect()
        })
    }

    /// The UCQ view of the query, when it is in a UCQ-expressible language
    /// (CQ, UCQ, ∃FO⁺). `None` for FO/FP.
    pub fn as_ucq(&self) -> Option<Ucq> {
        match self {
            Query::Cq(q) => Some(Ucq::single(q.clone())),
            Query::Ucq(q) => Some(q.clone()),
            Query::Efo(q) => Some(q.to_ucq()),
            Query::Fo(_) | Query::Fp(_) => None,
        }
    }
}

impl From<Cq> for Query {
    fn from(q: Cq) -> Self {
        Query::Cq(q)
    }
}

impl From<Ucq> for Query {
    fn from(q: Ucq) -> Self {
        Query::Ucq(q)
    }
}

impl From<EfoQuery> for Query {
    fn from(q: EfoQuery) -> Self {
        Query::Efo(q)
    }
}

impl From<FoQuery> for Query {
    fn from(q: FoQuery) -> Self {
        Query::Fo(q)
    }
}

impl From<Program> for Query {
    fn from(p: Program) -> Self {
        Query::Fp(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ric_data::{RelationSchema, Schema};
    use ric_query::parse_cq;

    #[test]
    fn language_dispatch() {
        let s = Schema::from_relations(vec![RelationSchema::infinite("R", &["a"])]).unwrap();
        let cq = parse_cq(&s, "Q(X) :- R(X).").unwrap();
        let q: Query = cq.clone().into();
        assert_eq!(q.language(), QueryLanguage::Cq);
        assert!(q.as_ucq().is_some());
        let u: Query = Ucq::new(vec![cq]).into();
        assert_eq!(u.language(), QueryLanguage::Ucq);
    }

    #[test]
    fn constants_come_from_the_body() {
        let s = Schema::from_relations(vec![RelationSchema::infinite("R", &["a", "b"])]).unwrap();
        let q: Query = parse_cq(&s, "Q(X) :- R(X, 7), X != 'c'.").unwrap().into();
        let cs = q.constants();
        assert!(cs.contains(&Value::int(7)));
        assert!(cs.contains(&Value::str("c")));
    }
}

//! Prepared decision settings: compile the constraint machinery **once**,
//! decide many times.
//!
//! Every decider entry point re-derives the same artifacts per call: the
//! upper-bound delta preparation (per-constraint tableaux plus, under
//! [`Engine::Planned`], cost-based compiled plans for each tableau body).
//! For a one-shot decision that is invisible; for a workload that asks many
//! decisions against the same `(R, R_m, D_m, V)` setting — the extension
//! loop, a benchmark sweep, a service holding a fixed schema — it is pure
//! rework. [`PreparedSetting`] hoists the compilation out of the loop and
//! hands the shared preparation ([`std::sync::Arc`]-backed, so parallel
//! workers share it too) to every decision.
//!
//! Preparation never changes verdicts: plans fix the join *order* of checks
//! whose result is order-independent, and the statistics that steer the
//! order are advisory. A `PreparedSetting` built from one database may
//! legally decide another — only timing shifts.

use crate::budget::{Engine, SearchBudget};
use crate::guard::Guard;
use crate::query::Query;
use crate::setting::Setting;
use crate::verdict::{QueryVerdict, RcError, Verdict};
use ric_constraints::{PreparedUpper, StatsProvider};
use ric_data::Database;
use ric_telemetry::Probe;
use std::sync::Arc;

/// Build the shared upper-bound preparation `engine` wants for `setting`,
/// or `None` when the engine never consults one (naive engines use the
/// materialized union; IND-only settings use the C3 delta identity with no
/// tableaux to prepare).
pub(crate) fn prepare_upper(
    setting: &Setting,
    engine: Engine,
    stats: &dyn StatsProvider,
) -> Result<Option<Arc<PreparedUpper>>, RcError> {
    if setting.v.is_ind_set() || !engine.indexed() {
        return Ok(None);
    }
    let prep = if engine.is_planned() {
        PreparedUpper::with_plans(&setting.v, &setting.schema, &setting.dm, stats)?
    } else {
        PreparedUpper::new(&setting.v, &setting.schema, &setting.dm)?
    };
    Ok(Some(Arc::new(prep)))
}

/// A [`Setting`] with its per-engine constraint compilation done up front.
///
/// Build one with [`PreparedSetting::prepare`], then call the mirrored
/// decider methods ([`Self::rcdp`], [`Self::rcqp`], …) any number of times:
/// each decision reuses the shared preparation instead of recompiling, and
/// under [`Engine::Planned`] emits `plan.reuse` instead of `plan.compile`.
pub struct PreparedSetting {
    setting: Setting,
    engine: Engine,
    upper: Option<Arc<PreparedUpper>>,
}

impl PreparedSetting {
    /// Compile `setting`'s upper bounds once for `engine`. Under
    /// [`Engine::Planned`] the join orders are costed from `stats_db`'s
    /// statistics; with empty or absent statistics every plan falls back to
    /// the static greedy order (the indexed engine's dynamic choice), so
    /// preparation degrades to [`Engine::Indexed`] behavior rather than
    /// failing.
    pub fn prepare(setting: Setting, stats_db: &Database, engine: Engine) -> Result<Self, RcError> {
        Self::prepare_with_stats(setting, stats_db, engine)
    }

    /// Like [`PreparedSetting::prepare`], but the join-order statistics come
    /// from an arbitrary [`StatsProvider`] — e.g. a live database clamped by
    /// chase-derived cardinality caps, or precomputed workload statistics.
    /// Statistics are advisory everywhere: they steer join order under
    /// [`Engine::Planned`] and never change answers.
    pub fn prepare_with_stats(
        setting: Setting,
        stats: &dyn StatsProvider,
        engine: Engine,
    ) -> Result<Self, RcError> {
        let upper = prepare_upper(&setting, engine, stats)?;
        Ok(PreparedSetting {
            setting,
            engine,
            upper,
        })
    }

    /// The underlying setting.
    pub fn setting(&self) -> &Setting {
        &self.setting
    }

    /// The engine this preparation was compiled for.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// `(plans compiled, static fallbacks, summed estimated cost)` across
    /// the prepared constraint bodies, when a preparation exists and plans
    /// were compiled (planned engine only).
    pub fn plan_summary(&self) -> Option<(usize, usize, f64)> {
        let (compiled, fallbacks, cost) = self.upper.as_ref()?.plan_summary();
        (compiled > 0).then_some((compiled, fallbacks, cost))
    }

    /// Human-readable rendering of every compiled plan (the Explain note),
    /// empty when no plans were compiled.
    pub fn render_plans(&self) -> String {
        match &self.upper {
            Some(prep) => prep.render_plans(|rel| {
                self.setting
                    .schema
                    .relation(rel)
                    .map(|r| r.name.clone())
                    .unwrap_or_else(|_| format!("r{}", rel.0))
            }),
            None => String::new(),
        }
    }

    /// The per-relation row counts the compiled plans were costed from,
    /// empty when no plans were compiled (non-planned engines, IND-only
    /// settings). Streaming callers (`ric-monitor`) compare these against
    /// live cardinalities to detect statistics drift and replan.
    pub fn planned_rows(&self) -> Vec<(ric_data::RelId, usize)> {
        self.upper
            .as_ref()
            .map(|u| u.planned_rows().to_vec())
            .unwrap_or_default()
    }

    /// Incremental upper-bound check against this preparation: given that
    /// the upper bounds hold on `ov.base()` (minus any tombstones), do they
    /// hold on the effective view? `Ok(None)` when the engine compiled no
    /// preparation (naive engines, IND-only settings) — the caller falls
    /// back to a full check.
    pub fn upper_satisfied_delta(
        &self,
        ov: &ric_data::Overlay<'_>,
    ) -> Result<Option<ric_constraints::DeltaCheck>, RcError> {
        match &self.upper {
            Some(prep) => Ok(Some(prep.satisfied_delta(&self.setting.v, ov)?)),
            None => Ok(None),
        }
    }

    /// The shared preparation, for the `*_reusing` decider internals.
    pub(crate) fn upper(&self) -> Option<&Arc<PreparedUpper>> {
        self.upper.as_ref()
    }

    /// The budget this preparation expects: the caller's limits with the
    /// engine pinned to the prepared one.
    fn budget_for(&self, budget: &SearchBudget) -> SearchBudget {
        let mut b = *budget;
        b.engine = self.engine;
        b
    }

    /// [`crate::rcdp::rcdp`] reusing this preparation.
    pub fn rcdp(
        &self,
        query: &Query,
        db: &Database,
        budget: &SearchBudget,
    ) -> Result<Verdict, RcError> {
        self.rcdp_probed(query, db, budget, Probe::disabled())
    }

    /// [`crate::rcdp::rcdp_probed`] reusing this preparation.
    pub fn rcdp_probed(
        &self,
        query: &Query,
        db: &Database,
        budget: &SearchBudget,
        probe: Probe<'_>,
    ) -> Result<Verdict, RcError> {
        let budget = self.budget_for(budget);
        self.rcdp_guarded(query, db, &budget, &Guard::new(&budget), probe)
    }

    /// [`crate::rcdp::rcdp_guarded`] reusing this preparation.
    pub fn rcdp_guarded(
        &self,
        query: &Query,
        db: &Database,
        budget: &SearchBudget,
        guard: &Guard,
        probe: Probe<'_>,
    ) -> Result<Verdict, RcError> {
        let budget = self.budget_for(budget);
        crate::rcdp::rcdp_guarded_reusing(
            &self.setting,
            query,
            db,
            &budget,
            guard,
            probe,
            self.upper(),
        )
    }

    /// [`crate::rcqp::rcqp`] reusing this preparation.
    pub fn rcqp(&self, query: &Query, budget: &SearchBudget) -> Result<QueryVerdict, RcError> {
        self.rcqp_probed(query, budget, Probe::disabled())
    }

    /// [`crate::rcqp::rcqp_probed`] reusing this preparation.
    pub fn rcqp_probed(
        &self,
        query: &Query,
        budget: &SearchBudget,
        probe: Probe<'_>,
    ) -> Result<QueryVerdict, RcError> {
        let budget = self.budget_for(budget);
        self.rcqp_guarded(query, &budget, &Guard::new(&budget), probe)
    }

    /// [`crate::rcqp::rcqp_guarded`] reusing this preparation.
    pub fn rcqp_guarded(
        &self,
        query: &Query,
        budget: &SearchBudget,
        guard: &Guard,
        probe: Probe<'_>,
    ) -> Result<QueryVerdict, RcError> {
        let budget = self.budget_for(budget);
        crate::rcqp::rcqp_guarded_reusing(&self.setting, query, &budget, guard, probe, self.upper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ric_constraints::{CcBody, ConstraintSet, ContainmentConstraint};
    use ric_data::{RelationSchema, Schema, Tuple, Value};
    use ric_query::parse_cq;

    fn setting_and_db() -> (Setting, Database) {
        let schema = Schema::from_relations(vec![RelationSchema::infinite(
            "Supt",
            &["eid", "dept", "cid"],
        )])
        .unwrap();
        let supt = schema.rel_id("Supt").unwrap();
        let m_schema =
            Schema::from_relations(vec![RelationSchema::infinite("Cust", &["cid"])]).unwrap();
        let cust = m_schema.rel_id("Cust").unwrap();
        let mut dm = Database::empty(&m_schema);
        for c in [1, 2, 3] {
            dm.insert(cust, Tuple::new([Value::int(c)]));
        }
        // CQ body (not a bare projection) so the constraint set is not an
        // IND set and the delta preparation actually compiles.
        let q = parse_cq(&schema, "Q(C) :- Supt(E, D, C), D = 1.").unwrap();
        let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
            CcBody::Cq(q),
            cust,
            vec![0],
        )]);
        let setting = Setting::new(schema, m_schema, dm, v);
        let mut db = Database::empty(&setting.schema);
        db.insert(
            supt,
            Tuple::new([Value::int(10), Value::int(1), Value::int(1)]),
        );
        (setting, db)
    }

    #[test]
    fn prepared_rcdp_matches_fresh_decision_per_engine() {
        let (setting, db) = setting_and_db();
        let query = Query::Cq(parse_cq(&setting.schema, "Q(E) :- Supt(E, D, C).").unwrap());
        for engine in [
            Engine::Indexed,
            Engine::planned(1),
            Engine::planned(2),
            Engine::parallel(2),
        ] {
            let budget = SearchBudget {
                engine,
                ..SearchBudget::default()
            };
            let fresh = crate::rcdp::rcdp(&setting, &query, &db, &budget).unwrap();
            let prepared = PreparedSetting::prepare(setting.clone(), &db, engine).unwrap();
            let reused = prepared.rcdp(&query, &db, &budget).unwrap();
            assert_eq!(
                format!("{fresh:?}"),
                format!("{reused:?}"),
                "engine {engine}"
            );
            // A second decision reuses the same Arc — no recompilation.
            let again = prepared.rcdp(&query, &db, &budget).unwrap();
            assert_eq!(format!("{fresh:?}"), format!("{again:?}"));
        }
    }

    #[test]
    fn planned_preparation_exposes_summary_and_render() {
        let (setting, db) = setting_and_db();
        let prepared = PreparedSetting::prepare(setting.clone(), &db, Engine::planned(1)).unwrap();
        let (compiled, _fallbacks, _cost) = prepared.plan_summary().expect("plans compiled");
        assert!(compiled >= 1);
        assert!(prepared.render_plans().contains("est="));
        // Indexed preparation compiles tableaux but no plans.
        let indexed = PreparedSetting::prepare(setting, &db, Engine::Indexed).unwrap();
        assert!(indexed.plan_summary().is_none());
    }
}

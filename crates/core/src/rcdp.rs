//! RCDP — the *relatively complete database* problem (Section 3).
//!
//! Given `Q`, `(D_m, V)`, and a partially closed `D`, decide whether
//! `D ∈ RCQ(Q, D_m, V)`. For `L_Q, L_C` among INDs/CQ/UCQ/∃FO⁺ the decision
//! is exact and follows the paper's characterizations:
//!
//! > `D` is complete iff for every valid valuation `μ` of a disjunct tableau
//! > `(T_i, u_i)` over `Adom`: `(D ∪ μ(T_i), D_m) |= V  ⇒  μ(u_i) ∈ Q(D)`.
//!
//! This folds C1 and C2 (Proposition 3.3: when `Q(D) = ∅` the right-hand side
//! is unsatisfiable, giving C1), C3 (Corollary 3.4: for INDs,
//! `(D ∪ μ(T), D_m) |= V` simplifies to `(μ(T), D_m) |= V` because `D` is
//! partially closed and projections distribute over unions), and the
//! per-disjunct reading of C4 (Corollary 3.5: CC satisfaction with monotone
//! bodies is inherited by sub-extensions, so a UCQ extension changes the
//! answer iff some single disjunct instantiation does).
//!
//! When `L_Q` or `L_C` is FO or FP the problem is undecidable (Theorem 3.1);
//! [`rcdp`] automatically falls back to the bounded extension search of
//! [`crate::semidecide`], which can certify incompleteness but reports
//! `Unknown` otherwise.

use crate::adom::Adom;
use crate::budget::{Engine, Meter, MeterKind, SearchBudget};
use crate::guard::Guard;
use crate::query::Query;
use crate::setting::Setting;
use crate::valuations::{EnumOutcome, ValuationSpace};
use crate::verdict::{BudgetLimit, CounterExample, RcError, SearchStats, Verdict};
use ric_constraints::PreparedUpper;
use ric_data::{index::probe_count, Database, Overlay, Tuple};
use ric_query::QueryLanguage;
use ric_telemetry::Probe;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// How the inner loop checks `(D ∪ Δ, D_m) |= V` per candidate.
pub(crate) enum CheckMode {
    /// IND constraint sets: projections distribute over unions and `D` is
    /// partially closed, so checking `Δ` alone is equivalent (C3).
    IndOnly,
    /// Materialize `D ∪ Δ` and re-check every constraint (naive engine).
    Union,
    /// Overlay `D ∪ Δ` and re-check only what the novel tuples can break.
    /// Shared (`Arc`) so a [`crate::PreparedSetting`] can compile once and
    /// hand the same preparation to every decision.
    Delta(Arc<PreparedUpper>),
}

impl CheckMode {
    /// Pick the mode for this decision. The delta mode's precondition —
    /// upper bounds hold on the base — is the partial-closure input
    /// requirement, verified by the callers. `db` supplies the statistics
    /// the planned engine compiles its join orders from.
    pub(crate) fn select(
        setting: &Setting,
        engine: Engine,
        db: &Database,
    ) -> Result<CheckMode, RcError> {
        Self::select_reusing(setting, engine, db, None)
    }

    /// [`Self::select`] with an optional pre-built preparation (the
    /// prepared-decision path): when `reuse` is given and the decision wants
    /// the delta mode, the shared preparation is cloned instead of
    /// recompiled.
    pub(crate) fn select_reusing(
        setting: &Setting,
        engine: Engine,
        db: &Database,
        reuse: Option<&Arc<PreparedUpper>>,
    ) -> Result<CheckMode, RcError> {
        if setting.v.is_ind_set() {
            Ok(CheckMode::IndOnly)
        } else if !engine.indexed() {
            Ok(CheckMode::Union)
        } else if let Some(prep) = reuse {
            Ok(CheckMode::Delta(Arc::clone(prep)))
        } else if engine.is_planned() {
            Ok(CheckMode::Delta(Arc::new(PreparedUpper::with_plans(
                &setting.v,
                &setting.schema,
                &setting.dm,
                db,
            )?)))
        } else {
            Ok(CheckMode::Delta(Arc::new(PreparedUpper::new(
                &setting.v,
                &setting.schema,
                &setting.dm,
            )?)))
        }
    }

    /// The shared preparation backing the delta mode, if any.
    pub(crate) fn prepared(&self) -> Option<&Arc<PreparedUpper>> {
        match self {
            CheckMode::Delta(prep) => Some(prep),
            _ => None,
        }
    }

    /// Is `(D ∪ Δ, D_m) |= V` for the delta overlaid on `db`? Counts skipped
    /// constraints into `cc_skipped`.
    pub(crate) fn upper_satisfied(
        &self,
        setting: &Setting,
        db: &Database,
        delta: &Database,
        cc_skipped: &Cell<u64>,
    ) -> bool {
        self.upper_check(setting, db, delta, cc_skipped).is_none()
    }

    /// Like [`Self::upper_satisfied`], reporting the index of the first
    /// violated constraint (`None` = satisfied). Every strategy evaluates the
    /// constraints in set order and short-circuits on the first violation, so
    /// this does exactly the work of the boolean check — the search profiler
    /// keys its `prune.cc.NN` attribution counters on the result without
    /// perturbing any other counter.
    pub(crate) fn upper_check(
        &self,
        setting: &Setting,
        db: &Database,
        delta: &Database,
        cc_skipped: &Cell<u64>,
    ) -> Option<usize> {
        match self {
            CheckMode::IndOnly => setting
                .v
                .first_violated_upper(delta, &setting.dm)
                .unwrap_or_else(|e| {
                    unreachable!("constraint bodies validated by the precondition check: {e:?}")
                }),
            CheckMode::Union => {
                let extended = db
                    .union(delta)
                    .unwrap_or_else(|e| unreachable!("delta shares the setting schema: {e:?}"));
                setting
                    .v
                    .first_violated_upper(&extended, &setting.dm)
                    .unwrap_or_else(|e| {
                        unreachable!("constraint bodies validated by the precondition check: {e:?}")
                    })
            }
            CheckMode::Delta(prepared) => {
                let ov = Overlay::new(db, delta)
                    .unwrap_or_else(|e| unreachable!("delta shares the setting schema: {e:?}"));
                let res = prepared
                    .satisfied_delta(&setting.v, &ov)
                    .unwrap_or_else(|e| {
                        unreachable!("constraint bodies validated by the precondition check: {e:?}")
                    });
                cc_skipped.set(cc_skipped.get() + res.skipped as u64);
                res.violated
            }
        }
    }
}

/// Stable counter names for pruning attribution by containment-constraint
/// index: `prune.cc.NN` counts candidate rejections whose first violated
/// constraint was `V[NN]` (slot 15 absorbs larger sets).
pub(crate) const PRUNE_CC: [&str; crate::par::CC_ATTR] = [
    "prune.cc.00",
    "prune.cc.01",
    "prune.cc.02",
    "prune.cc.03",
    "prune.cc.04",
    "prune.cc.05",
    "prune.cc.06",
    "prune.cc.07",
    "prune.cc.08",
    "prune.cc.09",
    "prune.cc.10",
    "prune.cc.11",
    "prune.cc.12",
    "prune.cc.13",
    "prune.cc.14",
    "prune.cc.15",
];

/// Emit nonzero `prune.cc.NN` attribution counters.
pub(crate) fn emit_cc_attribution(probe: Probe<'_>, viol: &[u64; crate::par::CC_ATTR]) {
    for (name, &v) in PRUNE_CC.iter().zip(viol) {
        probe.count(name, v);
    }
}

/// Bump the attribution slot for constraint index `i` (clamped).
fn bump_viol(viol: &[Cell<u64>; crate::par::CC_ATTR], i: usize) {
    let c = &viol[i.min(crate::par::CC_ATTR - 1)];
    c.set(c.get() + 1);
}

/// Is the language exactly decidable by the Σᵖ₂ procedure?
pub(crate) fn exactly_decidable(l: QueryLanguage) -> bool {
    matches!(
        l,
        QueryLanguage::Inds | QueryLanguage::Cq | QueryLanguage::Ucq | QueryLanguage::EfoPlus
    )
}

/// Decide RCDP. Dispatches to the exact Σᵖ₂ decider when both `L_Q` and
/// `L_C` avoid negation and recursion, and to the bounded semi-decision
/// procedure otherwise.
///
/// Errors if `D` is not partially closed with respect to `(D_m, V)` — both
/// decision problems take partially closed databases as input.
pub fn rcdp(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
) -> Result<Verdict, RcError> {
    rcdp_probed(setting, query, db, budget, Probe::disabled())
}

/// [`rcdp`] with a telemetry probe attached: reports the dispatch strategy,
/// active-domain size, valuations enumerated, CC checks, query evaluations,
/// per-phase wall time, and the outcome (see the crate-level Observability
/// notes).
pub fn rcdp_probed(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
    probe: Probe<'_>,
) -> Result<Verdict, RcError> {
    rcdp_guarded(setting, query, db, budget, &Guard::new(budget), probe)
}

/// [`rcdp_probed`] under a caller-supplied [`Guard`], so one deadline and one
/// [`CancelToken`](crate::CancelToken) span this decision (and any nested
/// decider calls). This is the entry point the facade's cancellable API uses;
/// `rcdp`/`rcdp_probed` delegate here with a fresh guard built from the
/// budget.
pub fn rcdp_guarded(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
) -> Result<Verdict, RcError> {
    rcdp_guarded_reusing(setting, query, db, budget, guard, probe, None)
}

/// [`rcdp_guarded`] with an optional pre-built upper-bound preparation from a
/// [`crate::PreparedSetting`]: when given, the exact and bounded paths reuse
/// the shared plans instead of recompiling them per decision.
pub(crate) fn rcdp_guarded_reusing(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
    reuse: Option<&Arc<PreparedUpper>>,
) -> Result<Verdict, RcError> {
    // The guard is the decision's deterministic timebase: spans opened below
    // carry tick deltas alongside wall-clock micros.
    let probe = probe.with_ticks(guard);
    validate_fp_bodies(setting, query)?;
    if !setting.partially_closed(db)? {
        return Err(RcError::NotPartiallyClosed);
    }
    if exactly_decidable(query.language()) && exactly_decidable(setting.v.language()) {
        probe.note("rcdp.strategy", || "exact".into());
        rcdp_exact_reusing(setting, query, db, budget, guard, probe, reuse)
    } else {
        probe.note("rcdp.strategy", || "bounded".into());
        crate::semidecide::rcdp_bounded_guarded_reusing(
            setting, query, db, budget, guard, probe, reuse,
        )
    }
}

/// The exact decider; callers must have verified the language combination
/// and partial closure. Exposed for the characterization cross-checks.
pub fn rcdp_exact(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
) -> Result<Verdict, RcError> {
    rcdp_exact_probed(setting, query, db, budget, Probe::disabled())
}

/// [`rcdp_exact`] with a telemetry probe attached.
pub fn rcdp_exact_probed(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
    probe: Probe<'_>,
) -> Result<Verdict, RcError> {
    rcdp_exact_guarded(setting, query, db, budget, &Guard::new(budget), probe)
}

/// [`rcdp_exact`] under a caller-supplied [`Guard`].
pub fn rcdp_exact_guarded(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
) -> Result<Verdict, RcError> {
    rcdp_exact_reusing(setting, query, db, budget, guard, probe, None)
}

/// Emit `plan.*` telemetry for a planned-engine decision: compile/reuse,
/// static-fallback count, total estimated cost, the rendered plan note, and
/// the planned-vs-actual cardinality note (`plan.cards`) comparing the row
/// counts the planner costed against with the decision database `db`.
/// No-ops for every other engine so the indexed counter stream is untouched.
pub(crate) fn emit_plan_telemetry(
    probe: Probe<'_>,
    setting: &Setting,
    engine: Engine,
    prep: Option<&Arc<PreparedUpper>>,
    reused: bool,
    db: &Database,
) {
    if !engine.is_planned() {
        return;
    }
    let Some(prep) = prep else { return };
    let rel_name = |rel: ric_data::RelId| {
        setting
            .schema
            .relation(rel)
            .map(|r| r.name.clone())
            .unwrap_or_else(|_| format!("r{}", rel.0))
    };
    let (compiled, fallbacks, cost) = prep.plan_summary();
    if reused {
        probe.count("plan.reuse", 1);
    } else {
        probe.count("plan.compile", compiled as u64);
    }
    probe.count("plan.fallback", fallbacks as u64);
    probe.count("plan.cost", cost as u64);
    probe.note("plan.explain", || prep.render_plans(rel_name));
    probe.note("plan.cards", || {
        use ric_data::TupleStore;
        prep.planned_rows()
            .iter()
            .map(|&(rel, planned)| {
                format!(
                    "{} planned={planned} actual={}",
                    rel_name(rel),
                    db.rel_len(rel)
                )
            })
            .collect::<Vec<_>>()
            .join("; ")
    });
    // Export the planner's statistics as gauges so metrics snapshots carry
    // the row counts each plan was costed against, keyed by relation id like
    // the `prune.cc.NN` attribution family (gauges max-merge, and the
    // planning snapshot is fixed per preparation, so workers agree).
    for &(rel, planned) in prep.planned_rows() {
        let slot = rel.0.min(STATS_ROWS.len() - 1);
        probe.gauge(STATS_ROWS[slot], planned as u64);
    }
}

/// Stable gauge names for the planner's per-relation statistics by relation
/// id: `stats.rows.NN` is the row count relation `NN` reported to the
/// planner (slot 15 absorbs larger schemas, maximum wins).
pub(crate) const STATS_ROWS: [&str; 16] = [
    "stats.rows.00",
    "stats.rows.01",
    "stats.rows.02",
    "stats.rows.03",
    "stats.rows.04",
    "stats.rows.05",
    "stats.rows.06",
    "stats.rows.07",
    "stats.rows.08",
    "stats.rows.09",
    "stats.rows.10",
    "stats.rows.11",
    "stats.rows.12",
    "stats.rows.13",
    "stats.rows.14",
    "stats.rows.15",
];

/// [`rcdp_exact_guarded`] with an optional shared preparation (see
/// [`CheckMode::select_reusing`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn rcdp_exact_reusing(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
    reuse: Option<&Arc<PreparedUpper>>,
) -> Result<Verdict, RcError> {
    let probe = probe.with_ticks(guard);
    let Some(ucq) = query.as_ucq() else {
        return Err(RcError::Unsupported(format!(
            "exact RCDP requires a UCQ-expressible query, got {:?}",
            query.language()
        )));
    };
    let tableaux = ucq.tableaux()?;
    if tableaux.is_empty() {
        // Unsatisfiable query: every partially closed database is complete.
        probe.note("rcdp.outcome", || "complete".into());
        return Ok(Verdict::Complete);
    }
    let q_d: BTreeSet<Tuple> = query.eval(db)?;
    probe.count("rcdp.query_evals", 1);
    let n_fresh = tableaux
        .iter()
        .map(|t| t.n_vars as usize)
        .max()
        .unwrap_or(0)
        .max(1);
    let adom = Adom::build(db, setting, query, n_fresh);
    probe.gauge("rcdp.adom_size", adom.len() as u64);
    let mode = CheckMode::select_reusing(setting, budget.engine, db, reuse)?;
    emit_plan_telemetry(
        probe,
        setting,
        budget.engine,
        mode.prepared(),
        reuse.is_some(),
        db,
    );
    if budget.engine.sharded() {
        return rcdp_exact_parallel(
            setting, db, budget, guard, probe, &tableaux, &q_d, &adom, &mode,
        );
    }
    let mut meter = Meter::guarded(MeterKind::Valuations, budget.max_valuations, guard);
    let cc_checks = Cell::new(0u64);
    let cc_skipped = Cell::new(0u64);
    let cc_viol: [Cell<u64>; crate::par::CC_ATTR] = Default::default();
    let probes_before = probe_count();
    // Scratch delta reused across candidates: steady-state, a candidate
    // costs index probes and a few inserts, never a clone of `db`.
    let scratch = RefCell::new(Database::with_relations(setting.schema.len()));

    let span = probe.span("rcdp.enumerate");
    let mut verdict = Verdict::Complete;
    for (ti, t) in tableaux.iter().enumerate() {
        if !t.domain_consistent(&setting.schema) {
            // Constants outside finite domains: this disjunct matches no
            // valid tuple and cannot witness incompleteness.
            continue;
        }
        let space = ValuationSpace::new(t, &setting.schema, &adom);
        let mut found: Option<CounterExample> = None;
        let head_terms = t.head.clone();
        let outcome = space.for_each_valid_pruned_probed(
            probe,
            &mut meter,
            |binding| {
                // Prune: if the candidate output tuple is already answered,
                // no valuation with these head values is a counterexample.
                let tuple = Tuple::new(head_terms.iter().map(|term| {
                    match term {
                        ric_query::Term::Var(v) => binding[v.idx()]
                            .clone()
                            .unwrap_or_else(|| unreachable!("head vars bound first")),
                        ric_query::Term::Const(c) => c.clone(),
                    }
                }));
                !q_d.contains(&tuple)
            },
            |binding| {
                // Prune subtrees whose already-instantiated tuples violate V:
                // constraint bodies are monotone, so the violation persists
                // in every completion.
                let bound = space.bound_atoms(binding);
                if bound.is_empty() {
                    return true;
                }
                let mut delta = scratch.borrow_mut();
                delta.clear_tuples();
                for (rel, tuple) in bound {
                    delta.insert(rel, tuple);
                }
                // Upper bounds only: lower bounds hold on D and are
                // preserved by extension (monotone bodies).
                cc_checks.set(cc_checks.get() + 1);
                match mode.upper_check(setting, db, &delta, &cc_skipped) {
                    None => true,
                    Some(i) => {
                        bump_viol(&cc_viol, i);
                        false
                    }
                }
            },
            |mu| {
                let delta = mu.instantiate(t, setting.schema.len());
                cc_checks.set(cc_checks.get() + 1);
                let violated = mode.upper_check(setting, db, &delta, &cc_skipped);
                if let Some(i) = violated {
                    bump_viol(&cc_viol, i);
                }
                if violated.is_none() {
                    let new_answer = mu.head_tuple(t);
                    let added = delta
                        .difference(db)
                        .unwrap_or_else(|e| unreachable!("delta shares the setting schema: {e:?}"));
                    found = Some(CounterExample {
                        delta: added,
                        new_answer,
                    });
                    return std::ops::ControlFlow::Break(());
                }
                std::ops::ControlFlow::Continue(())
            },
        );
        match outcome {
            EnumOutcome::Stopped => {
                verdict =
                    Verdict::Incomplete(found.unwrap_or_else(|| {
                        unreachable!("found is set before the enumeration breaks")
                    }));
                break;
            }
            EnumOutcome::BudgetExceeded => {
                verdict = Verdict::unknown(
                    SearchStats::new(
                        meter.stop_limit(BudgetLimit::MaxValuations),
                        meter.stop_detail("valuation"),
                    )
                    .with_valuations(meter.used()),
                );
                if let Some(interrupt) = meter.interrupt() {
                    probe.interrupt("rcdp.interrupt", interrupt.name(), guard.ticks());
                }
                probe.note("explain.frontier", || {
                    format!(
                        "stopped in disjunct {}/{} after {} assignment(s); \
                         later disjuncts unexplored",
                        ti + 1,
                        tableaux.len(),
                        meter.used()
                    )
                });
                break;
            }
            EnumOutcome::Exhausted => {}
        }
    }
    drop(span);
    probe.count("rcdp.valuations", meter.used());
    probe.count("rcdp.cc_checks", cc_checks.get());
    probe.count("cc.skipped_by_delta", cc_skipped.get());
    // Thread-local counter: exact for this decision even when concurrent
    // decisions probe on other threads.
    probe.count("index.probe", probe_count().saturating_sub(probes_before));
    emit_cc_attribution(probe, &std::array::from_fn(|i| cc_viol[i].get()));
    emit_verdict(probe, &verdict);
    Ok(verdict)
}

/// The exact decider's enumeration, sharded across the worker pool: one
/// chunk per (tableau, depth-0 candidate) pair, concatenating — in chunk
/// index order — to exactly the sequence the sequential engine enumerates.
/// The merge is first-terminal-by-index, so the verdict and witness are
/// independent of thread count and interleaving; per-chunk stats summed up
/// to the deciding chunk reproduce the sequential telemetry counters.
#[allow(clippy::too_many_arguments)]
fn rcdp_exact_parallel(
    setting: &Setting,
    db: &Database,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
    tableaux: &[ric_query::tableau::Tableau],
    q_d: &BTreeSet<Tuple>,
    adom: &Adom,
    mode: &CheckMode,
) -> Result<Verdict, RcError> {
    let (spaces, chunks) = exact_chunk_layout(tableaux, setting, adom);
    if chunks.is_empty() {
        let verdict = Verdict::Complete;
        emit_verdict(probe, &verdict);
        return Ok(verdict);
    }
    let (verdict, _) = exact_chunks_parallel(
        setting,
        db,
        budget,
        guard,
        probe,
        tableaux,
        q_d,
        mode,
        &spaces,
        &chunks,
        BTreeMap::new(),
    );
    Ok(verdict)
}

/// The domain-consistent valuation spaces plus the `(space index, split
/// point)` chunk list derived from them.
type ExactChunkLayout<'a> = (
    Vec<(usize, ValuationSpace<'a>)>,
    Vec<(usize, Option<(ric_data::Value, usize)>)>,
);

/// A resumable exact run's committed ledger: the number of frontier chunks
/// already settled and the per-chunk stats backing the checkpoint.
pub(crate) type ExactLedger = (usize, Vec<(usize, crate::par::ChunkStats)>);

/// The exact decider's canonical chunk decomposition: one chunk per depth-0
/// candidate of each domain-consistent disjunct's valuation space; a
/// zero-variable space is one unsplittable chunk. A space with no depth-0
/// candidates at all enumerates nothing and contributes no chunk (and no
/// metered ticks), exactly like the sequential loop. This list — and its
/// order — is shared by the parallel scheduler, the resumable sequential
/// driver, and the checkpoint frontier, so a chunk index means the same
/// thing in all three.
fn exact_chunk_layout<'a>(
    tableaux: &'a [ric_query::tableau::Tableau],
    setting: &'a Setting,
    adom: &'a Adom,
) -> ExactChunkLayout<'a> {
    let spaces: Vec<(usize, ValuationSpace)> = tableaux
        .iter()
        .enumerate()
        .filter(|(_, t)| t.domain_consistent(&setting.schema))
        .map(|(i, t)| (i, ValuationSpace::new(t, &setting.schema, adom)))
        .collect();
    let mut chunks: Vec<(usize, Option<(ric_data::Value, usize)>)> = Vec::new();
    for (si, (_, space)) in spaces.iter().enumerate() {
        match space.split_points() {
            Some(points) => chunks.extend(points.into_iter().map(|p| (si, Some(p)))),
            None => chunks.push((si, None)),
        }
    }
    (spaces, chunks)
}

/// Enumerate one chunk of the exact search against `meter`, producing the
/// chunk-pool result shape. Used verbatim by the parallel job (per-chunk
/// meter slice) and the resumable sequential driver (one shared meter), so
/// the per-chunk work — and therefore the committed checkpoint stats — are
/// engine-independent.
#[allow(clippy::too_many_arguments)]
fn run_exact_chunk(
    setting: &Setting,
    db: &Database,
    mode: &CheckMode,
    q_d: &BTreeSet<Tuple>,
    t: &ric_query::tableau::Tableau,
    space: &ValuationSpace<'_>,
    point: Option<&(ric_data::Value, usize)>,
    meter: &mut Meter<'_>,
) -> crate::par::ChunkResult<CounterExample> {
    use crate::par::{self, ChunkEvent, ChunkResult, ChunkStats};
    let used_before = meter.used();
    let probes_before = probe_count();
    let cc_checks = Cell::new(0u64);
    let cc_skipped = Cell::new(0u64);
    let cc_viol: [Cell<u64>; par::CC_ATTR] = Default::default();
    let profile = crate::valuations::DepthProfile::new();
    let scratch = RefCell::new(Database::with_relations(setting.schema.len()));
    let mut found: Option<CounterExample> = None;
    let head_terms = &t.head;
    let head_filter = |binding: &[Option<ric_data::Value>]| {
        let tuple = Tuple::new(head_terms.iter().map(|term| {
            match term {
                ric_query::Term::Var(v) => binding[v.idx()]
                    .clone()
                    .unwrap_or_else(|| unreachable!("head vars bound first")),
                ric_query::Term::Const(c) => c.clone(),
            }
        }));
        !q_d.contains(&tuple)
    };
    let partial_filter = |binding: &[Option<ric_data::Value>]| {
        let bound = space.bound_atoms(binding);
        if bound.is_empty() {
            return true;
        }
        let mut delta = scratch.borrow_mut();
        delta.clear_tuples();
        for (rel, tuple) in bound {
            delta.insert(rel, tuple);
        }
        cc_checks.set(cc_checks.get() + 1);
        match mode.upper_check(setting, db, &delta, &cc_skipped) {
            None => true,
            Some(i) => {
                bump_viol(&cc_viol, i);
                false
            }
        }
    };
    let visit = |mu: &ric_query::tableau::Valuation| {
        let delta = mu.instantiate(t, setting.schema.len());
        cc_checks.set(cc_checks.get() + 1);
        let violated = mode.upper_check(setting, db, &delta, &cc_skipped);
        if let Some(i) = violated {
            bump_viol(&cc_viol, i);
        }
        if violated.is_none() {
            let new_answer = mu.head_tuple(t);
            let added = delta
                .difference(db)
                .unwrap_or_else(|e| unreachable!("delta shares the setting schema: {e:?}"));
            found = Some(CounterExample {
                delta: added,
                new_answer,
            });
            return std::ops::ControlFlow::Break(());
        }
        std::ops::ControlFlow::Continue(())
    };
    let outcome = match point {
        Some(p) => space.for_each_valid_pruned_chunk_profiled(
            &profile,
            p.clone(),
            meter,
            head_filter,
            partial_filter,
            visit,
        ),
        None => space.for_each_valid_pruned_profiled(
            &profile,
            meter,
            head_filter,
            partial_filter,
            visit,
        ),
    };
    let event = match outcome {
        EnumOutcome::Stopped => ChunkEvent::Hit,
        EnumOutcome::Exhausted => ChunkEvent::Clear,
        EnumOutcome::BudgetExceeded => match meter.interrupt() {
            Some(interrupt) => ChunkEvent::Interrupted(interrupt),
            None => ChunkEvent::Exhausted,
        },
    };
    ChunkResult {
        event,
        value: found,
        stats: ChunkStats {
            ticks: meter.used() - used_before,
            cc_checks: cc_checks.get(),
            cc_skipped: cc_skipped.get(),
            probes: probe_count().saturating_sub(probes_before),
            query_evals: 0,
            depth_candidates: profile.candidates(),
            depth_pruned: profile.pruned(),
            head_prunes: profile.head_prunes(),
            cc_viol: std::array::from_fn(|i| cc_viol[i].get()),
        },
    }
}

/// The resumable sequential exact search: walk the canonical chunk list in
/// index order under ONE meter primed with the committed ticks, skipping
/// chunks already cleared by an earlier installment. Because chunk
/// concatenation reproduces the sequential enumeration order and tick
/// sequence exactly (pinned in `valuations.rs`), the verdict, witness, and
/// scoped counters are identical to an uninterrupted sequential run at the
/// same budget. Returns the cleared-chunk ledger when the search stopped on
/// a budget-like limit.
#[allow(clippy::too_many_arguments)]
fn exact_chunks_sequential(
    setting: &Setting,
    db: &Database,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
    tableaux: &[ric_query::tableau::Tableau],
    q_d: &BTreeSet<Tuple>,
    mode: &CheckMode,
    spaces: &[(usize, ValuationSpace<'_>)],
    chunks: &[(usize, Option<(ric_data::Value, usize)>)],
    committed: BTreeMap<usize, crate::par::ChunkStats>,
) -> (Verdict, Option<Vec<(usize, crate::par::ChunkStats)>>) {
    use crate::par::{ChunkEvent, ChunkStats};
    let committed_ticks: u64 = committed.values().map(|s| s.ticks).sum();
    let mut totals = ChunkStats::default();
    for stats in committed.values() {
        totals.absorb(stats);
    }
    let mut meter = Meter::guarded_primed(
        MeterKind::Valuations,
        budget.max_valuations,
        committed_ticks,
        guard,
    );
    let mut ledger: Vec<(usize, ChunkStats)> = committed.iter().map(|(&i, s)| (i, *s)).collect();
    let mut frontier = None;
    let n_chunks = chunks.len();

    let span = probe.span("rcdp.enumerate");
    let mut verdict = Verdict::Complete;
    for (idx, (si, point)) in chunks.iter().enumerate() {
        if committed.contains_key(&idx) {
            continue;
        }
        let (ti, space) = &spaces[*si];
        let result = run_exact_chunk(
            setting,
            db,
            mode,
            q_d,
            &tableaux[*ti],
            space,
            point.as_ref(),
            &mut meter,
        );
        totals.absorb(&result.stats);
        match result.event {
            ChunkEvent::Clear => ledger.push((idx, result.stats)),
            ChunkEvent::Hit => {
                verdict = Verdict::Incomplete(
                    result
                        .value
                        .unwrap_or_else(|| unreachable!("hit chunks carry a counterexample")),
                );
                break;
            }
            ChunkEvent::Exhausted | ChunkEvent::Interrupted(_) => {
                if let Some(interrupt) = meter.interrupt() {
                    probe.interrupt("rcdp.interrupt", interrupt.name(), guard.ticks());
                }
                probe.note("explain.frontier", || {
                    format!(
                        "stopped in chunk {}/{} after {} assignment(s); \
                         uncleared chunks unexplored",
                        idx + 1,
                        n_chunks,
                        meter.used()
                    )
                });
                verdict = Verdict::unknown(
                    SearchStats::new(
                        meter.stop_limit(BudgetLimit::MaxValuations),
                        meter.stop_detail("valuation"),
                    )
                    .with_valuations(meter.used()),
                );
                ledger.sort_unstable_by_key(|&(i, _)| i);
                frontier = Some(std::mem::take(&mut ledger));
                break;
            }
        }
    }
    drop(span);
    probe.count("valuations.assignments", totals.ticks);
    probe.count("rcdp.valuations", totals.ticks);
    probe.count("rcdp.cc_checks", totals.cc_checks);
    probe.count("cc.skipped_by_delta", totals.cc_skipped);
    probe.count("index.probe", totals.probes);
    crate::valuations::emit_profile(
        probe,
        &totals.depth_candidates,
        &totals.depth_pruned,
        totals.head_prunes,
    );
    emit_cc_attribution(probe, &totals.cc_viol);
    emit_verdict(probe, &verdict);
    (verdict, frontier)
}

/// The parallel exact search over the canonical chunk list, resumable and
/// loss-tolerant: chunks cleared by an earlier installment become
/// synthesized cleared slots (a cleared chunk's stats are independent of its
/// budget slice — clearing means the whole subtree fit), the remaining
/// chunks run under their *current-budget* slices, and a chunk that dies
/// twice (see [`crate::par::run_chunks_recovering`]) triggers the
/// degradation ladder: commit every cleared chunk and finish on the indexed
/// sequential driver, recording `degrade.engine`.
#[allow(clippy::too_many_arguments)]
fn exact_chunks_parallel(
    setting: &Setting,
    db: &Database,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
    tableaux: &[ric_query::tableau::Tableau],
    q_d: &BTreeSet<Tuple>,
    mode: &CheckMode,
    spaces: &[(usize, ValuationSpace<'_>)],
    chunks: &[(usize, Option<(ric_data::Value, usize)>)],
    committed: BTreeMap<usize, crate::par::ChunkStats>,
) -> (Verdict, Option<Vec<(usize, crate::par::ChunkStats)>>) {
    use crate::par::{self, ChunkEvent, ChunkResult, ChunkSlot, ChunkStats, PoolOutcome, PoolRun};

    let n_chunks = chunks.len();
    let total_valuations = budget.max_valuations;
    let todo: Vec<usize> = (0..n_chunks)
        .filter(|i| !committed.contains_key(i))
        .collect();

    let job = |pos: usize, wguard: &Guard| -> ChunkResult<CounterExample> {
        let idx = todo[pos];
        let (si, point) = &chunks[idx];
        let (ti, space) = &spaces[*si];
        // The slice is computed from the *current* budget and the chunk's
        // canonical index: an uninterrupted run at this budget hands the
        // chunk exactly this slice, which is what the resume invariant pins.
        let mut meter = Meter::guarded(
            MeterKind::Valuations,
            par::chunk_budget(total_valuations, n_chunks, idx),
            wguard,
        );
        run_exact_chunk(
            setting,
            db,
            mode,
            q_d,
            &tableaux[*ti],
            space,
            point.as_ref(),
            &mut meter,
        )
    };

    let span = probe.span("rcdp.enumerate");
    let recovered = par::run_chunks_recovering(budget.engine.workers(), todo.len(), guard, &job);
    probe.count("recover.chunk", recovered.recovered);
    if !recovered.lost.is_empty() {
        probe.count("degrade.chunk", recovered.lost.len() as u64);
        probe.note("degrade.engine", || {
            format!(
                "parallel engine lost {} chunk(s) after quarantine retry; \
                 downgrading to the sequential indexed engine",
                recovered.lost.len()
            )
        });
        let mut ledger = committed;
        for (pos, slot) in recovered.run.slots.iter().enumerate() {
            if let Some(ChunkSlot::Done(result)) = slot {
                if matches!(result.event, ChunkEvent::Clear) {
                    ledger.insert(todo[pos], result.stats);
                }
            }
        }
        drop(span);
        return exact_chunks_sequential(
            setting, db, budget, guard, probe, tableaux, q_d, mode, spaces, chunks, ledger,
        );
    }

    let run = recovered.run;
    if probe.trace().is_some() {
        for entry in &run.timeline {
            let e = *entry;
            let chunk = todo.get(e.chunk).copied().unwrap_or(e.chunk);
            probe.note("par.timeline", || {
                format!(
                    "worker {} chunk {} {}..{}us",
                    e.worker, chunk, e.start_micros, e.end_micros
                )
            });
        }
    }
    // Compose the full canonical slot list: committed chunks appear as
    // synthesized cleared slots, fresh chunks take their pool slot (both
    // walks ascend, so the zip is positional).
    let mut fresh = run.slots.into_iter();
    let slots: Vec<Option<ChunkSlot<CounterExample>>> = (0..n_chunks)
        .map(|idx| match committed.get(&idx) {
            Some(stats) => Some(ChunkSlot::Done(Box::new(ChunkResult {
                event: ChunkEvent::Clear,
                value: None,
                stats: *stats,
            }))),
            None => fresh
                .next()
                .unwrap_or_else(|| unreachable!("one pool slot per uncommitted chunk")),
        })
        .collect();
    let mut ledger: Vec<(usize, ChunkStats)> = Vec::new();
    for (idx, slot) in slots.iter().enumerate() {
        if let Some(ChunkSlot::Done(result)) = slot {
            if matches!(result.event, ChunkEvent::Clear) {
                ledger.push((idx, result.stats));
            }
        }
    }
    let full = PoolRun {
        slots,
        steals: run.steals,
        executed: run.executed,
        timeline: Vec::new(),
    };
    let merged = full.merge_search();
    drop(span);

    probe.count("par.chunk", merged.executed);
    probe.count("par.steal", merged.steals);
    probe.count("valuations.assignments", merged.stats.ticks);
    probe.count("rcdp.valuations", merged.stats.ticks);
    probe.count("rcdp.cc_checks", merged.stats.cc_checks);
    probe.count("cc.skipped_by_delta", merged.stats.cc_skipped);
    probe.count("index.probe", merged.stats.probes);
    crate::valuations::emit_profile(
        probe,
        &merged.stats.depth_candidates,
        &merged.stats.depth_pruned,
        merged.stats.head_prunes,
    );
    emit_cc_attribution(probe, &merged.stats.cc_viol);
    let deciding = merged.deciding;
    let resumable = matches!(
        merged.outcome,
        PoolOutcome::Exhausted | PoolOutcome::Interrupted(_)
    );
    if resumable {
        probe.note("explain.frontier", || {
            let at = deciding.map_or(n_chunks, |k| k + 1);
            format!(
                "parallel fan-out stopped at chunk {at}/{n_chunks}; higher-index chunks unexplored"
            )
        });
    }
    let verdict = match merged.outcome {
        PoolOutcome::Clear => Verdict::Complete,
        PoolOutcome::Hit(ce) => Verdict::Incomplete(ce),
        PoolOutcome::Exhausted => Verdict::unknown(
            SearchStats::new(
                BudgetLimit::MaxValuations,
                format!("valuation budget of {total_valuations} exhausted"),
            )
            .with_valuations(merged.stats.ticks),
        ),
        PoolOutcome::Interrupted(interrupt) => {
            probe.interrupt("rcdp.interrupt", interrupt.name(), merged.stats.ticks);
            Verdict::unknown(
                SearchStats::new(
                    interrupt.limit(),
                    par::interrupt_detail(interrupt, merged.stats.ticks, "valuation"),
                )
                .with_valuations(merged.stats.ticks),
            )
        }
    };
    emit_verdict(probe, &verdict);
    (verdict, resumable.then_some(ledger))
}

/// The resumable exact decider: [`rcdp_exact_guarded`] with a cleared-chunk
/// ledger in and out. `committed` is `(n_chunks, cleared)` from a prior
/// installment's checkpoint; a ledger whose chunk count does not match this
/// decision's canonical layout is discarded (with a `resume.discarded` note)
/// rather than trusted. Setup (query evaluation, active domain, check-mode
/// selection) re-runs every installment — it is deterministic, so the
/// telemetry the facade compares stays installment-independent.
#[allow(clippy::too_many_arguments)]
pub(crate) fn rcdp_exact_resumed(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
    committed: Option<ExactLedger>,
) -> Result<(Verdict, Option<ExactLedger>), RcError> {
    let probe = probe.with_ticks(guard);
    let Some(ucq) = query.as_ucq() else {
        return Err(RcError::Unsupported(format!(
            "exact RCDP requires a UCQ-expressible query, got {:?}",
            query.language()
        )));
    };
    let tableaux = ucq.tableaux()?;
    if tableaux.is_empty() {
        probe.note("rcdp.outcome", || "complete".into());
        return Ok((Verdict::Complete, None));
    }
    let q_d: BTreeSet<Tuple> = query.eval(db)?;
    probe.count("rcdp.query_evals", 1);
    let n_fresh = tableaux
        .iter()
        .map(|t| t.n_vars as usize)
        .max()
        .unwrap_or(0)
        .max(1);
    let adom = Adom::build(db, setting, query, n_fresh);
    probe.gauge("rcdp.adom_size", adom.len() as u64);
    let mode = CheckMode::select(setting, budget.engine, db)?;
    emit_plan_telemetry(probe, setting, budget.engine, mode.prepared(), false, db);
    let (spaces, chunks) = exact_chunk_layout(&tableaux, setting, &adom);
    if chunks.is_empty() {
        let verdict = Verdict::Complete;
        emit_verdict(probe, &verdict);
        return Ok((verdict, None));
    }
    let n_chunks = chunks.len();
    let committed: BTreeMap<usize, crate::par::ChunkStats> = match committed {
        Some((n, cleared)) if n == n_chunks && cleared.iter().all(|&(i, _)| i < n_chunks) => {
            cleared.into_iter().collect()
        }
        Some(_) => {
            probe.note("resume.discarded", || {
                "checkpoint frontier does not match this decision's chunk layout; restarting".into()
            });
            BTreeMap::new()
        }
        None => BTreeMap::new(),
    };
    let (verdict, ledger) = if budget.engine.sharded() {
        exact_chunks_parallel(
            setting, db, budget, guard, probe, &tableaux, &q_d, &mode, &spaces, &chunks, committed,
        )
    } else {
        exact_chunks_sequential(
            setting, db, budget, guard, probe, &tableaux, &q_d, &mode, &spaces, &chunks, committed,
        )
    };
    Ok((verdict, ledger.map(|l| (n_chunks, l))))
}

/// Emit the outcome note (and the exhausted limit, for `Unknown`) for an
/// RCDP verdict.
pub(crate) fn emit_verdict(probe: Probe<'_>, verdict: &Verdict) {
    match verdict {
        Verdict::Complete => probe.note("rcdp.outcome", || "complete".into()),
        Verdict::Incomplete(_) => probe.note("rcdp.outcome", || "incomplete".into()),
        Verdict::Unknown { stats } => {
            probe.note("rcdp.outcome", || "unknown".into());
            probe.note("rcdp.limit", || stats.limit.name().into());
        }
    }
}

/// Check a claimed counterexample: `(D ∪ Δ, D_m) |= V` and
/// `Q(D ∪ Δ) ≠ Q(D)`. Used by tests and by downstream consumers that want to
/// re-verify certificates.
pub fn certify_counterexample(
    setting: &Setting,
    query: &Query,
    db: &Database,
    ce: &CounterExample,
) -> Result<bool, RcError> {
    let extended = db
        .union(&ce.delta)
        .map_err(|_| RcError::NotPartiallyClosed)?;
    if !setting.partially_closed(&extended)? {
        return Ok(false);
    }
    let before = query.eval(db)?;
    let after = query.eval(&extended)?;
    Ok(before != after && (after.contains(&ce.new_answer) != before.contains(&ce.new_answer)))
}

pub(crate) fn validate_fp_bodies(setting: &Setting, query: &Query) -> Result<(), RcError> {
    if let Query::Fp(p) = query {
        p.validate().map_err(|e| RcError::Program(e.to_string()))?;
    }
    for cc in &setting.v.ccs {
        if let ric_constraints::CcBody::Fp(p) = &cc.body {
            p.validate().map_err(|e| RcError::Program(e.to_string()))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ric_constraints::{CcBody, ConstraintSet, ContainmentConstraint, Projection};
    use ric_data::{RelationSchema, Schema, Value};
    use ric_query::parse_cq;

    /// Example 1.1 / 2.2 style setting: Supt(eid, dept, cid) with master
    /// relation DCust(cid) bounding the customers employee e0 may support.
    fn supt_setting() -> (Setting, ric_data::RelId) {
        let schema = Schema::from_relations(vec![RelationSchema::infinite(
            "Supt",
            &["eid", "dept", "cid"],
        )])
        .unwrap();
        let supt = schema.rel_id("Supt").unwrap();
        let mschema =
            Schema::from_relations(vec![RelationSchema::infinite("DCust", &["cid"])]).unwrap();
        let dcust = mschema.rel_id("DCust").unwrap();
        let mut dm = Database::empty(&mschema);
        for c in ["c1", "c2"] {
            dm.insert(dcust, Tuple::new([Value::str(c)]));
        }
        // All supported customers must be master customers.
        let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(supt, vec![2])),
            dcust,
            vec![0],
        )]);
        (Setting::new(schema, mschema, dm, v), supt)
    }

    fn t3(a: &str, b: &str, c: &str) -> Tuple {
        Tuple::new([Value::str(a), Value::str(b), Value::str(c)])
    }

    #[test]
    fn open_world_database_is_incomplete() {
        let schema = Schema::from_relations(vec![RelationSchema::infinite("R", &["a"])]).unwrap();
        let setting = Setting::open_world(schema.clone());
        let q: Query = parse_cq(&schema, "Q(X) :- R(X).").unwrap().into();
        let db = Database::empty(&schema);
        let verdict = rcdp(&setting, &q, &db, &SearchBudget::default()).unwrap();
        match &verdict {
            Verdict::Incomplete(ce) => {
                assert!(certify_counterexample(&setting, &q, &db, ce).unwrap());
            }
            other => panic!("expected incomplete, got {other:?}"),
        }
    }

    #[test]
    fn database_covering_master_is_complete() {
        let (setting, supt) = supt_setting();
        // Q: customers supported by e0.
        let q: Query = parse_cq(&setting.schema, "Q(C) :- Supt('e0', D, C).")
            .unwrap()
            .into();
        let mut db = Database::empty(&setting.schema);
        db.insert(supt, t3("e0", "d", "c1"));
        db.insert(supt, t3("e0", "d", "c2"));
        let verdict = rcdp(&setting, &q, &db, &SearchBudget::default()).unwrap();
        assert_eq!(verdict, Verdict::Complete);
    }

    #[test]
    fn database_missing_master_customer_is_incomplete() {
        let (setting, supt) = supt_setting();
        let q: Query = parse_cq(&setting.schema, "Q(C) :- Supt('e0', D, C).")
            .unwrap()
            .into();
        let mut db = Database::empty(&setting.schema);
        db.insert(supt, t3("e0", "d", "c1")); // c2 still possible
        let verdict = rcdp(&setting, &q, &db, &SearchBudget::default()).unwrap();
        match &verdict {
            Verdict::Incomplete(ce) => {
                assert!(certify_counterexample(&setting, &q, &db, ce).unwrap());
                assert_eq!(ce.new_answer, Tuple::new([Value::str("c2")]));
            }
            other => panic!("expected incomplete, got {other:?}"),
        }
    }

    #[test]
    fn not_partially_closed_is_an_error() {
        let (setting, supt) = supt_setting();
        let q: Query = parse_cq(&setting.schema, "Q(C) :- Supt('e0', D, C).")
            .unwrap()
            .into();
        let mut db = Database::empty(&setting.schema);
        db.insert(supt, t3("e0", "d", "c-unknown"));
        assert_eq!(
            rcdp(&setting, &q, &db, &SearchBudget::default()),
            Err(RcError::NotPartiallyClosed)
        );
    }

    #[test]
    fn unsatisfiable_query_trivially_complete() {
        let schema = Schema::from_relations(vec![RelationSchema::infinite("R", &["a"])]).unwrap();
        let setting = Setting::open_world(schema.clone());
        let q: Query = parse_cq(&schema, "Q(X) :- R(X), X != X.").unwrap().into();
        let db = Database::empty(&schema);
        assert_eq!(
            rcdp(&setting, &q, &db, &SearchBudget::default()).unwrap(),
            Verdict::Complete
        );
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let schema =
            Schema::from_relations(vec![RelationSchema::infinite("R", &["a", "b", "c"])]).unwrap();
        let setting = Setting::open_world(schema.clone());
        let q: Query = parse_cq(&schema, "Q(X, Y, Z) :- R(X, Y, Z).")
            .unwrap()
            .into();
        let db = Database::empty(&schema);
        let tiny = SearchBudget {
            max_valuations: 0,
            ..SearchBudget::small()
        };
        match rcdp(&setting, &q, &db, &tiny).unwrap() {
            Verdict::Unknown { .. } => {}
            other => panic!("expected unknown, got {other:?}"),
        }
    }

    /// Example 3.1, first part: with the "at most k customers per employee"
    /// CC in place, a database already holding k answers is complete.
    #[test]
    fn at_most_k_makes_full_database_complete() {
        let schema = Schema::from_relations(vec![RelationSchema::infinite(
            "Supt",
            &["eid", "dept", "cid"],
        )])
        .unwrap();
        let supt = schema.rel_id("Supt").unwrap();
        let denial = ric_constraints::classical::at_most_k_per_key(supt, 0, 2, 2, 3);
        let v = ConstraintSet::new(vec![ric_constraints::compile::denial_to_cc(&denial)]);
        let setting = Setting::new(
            schema.clone(),
            Schema::new(),
            Database::with_relations(0),
            v,
        );
        let q: Query = parse_cq(&schema, "Q(C) :- Supt('e0', D, C).")
            .unwrap()
            .into();
        // k = 2 customers already supported: complete.
        let mut db = Database::empty(&schema);
        db.insert(supt, t3("e0", "d", "c1"));
        db.insert(supt, t3("e0", "d", "c2"));
        assert_eq!(
            rcdp(&setting, &q, &db, &SearchBudget::default()).unwrap(),
            Verdict::Complete
        );
        // Only one: still incomplete.
        let mut db1 = Database::empty(&schema);
        db1.insert(supt, t3("e0", "d", "c1"));
        let verdict = rcdp(&setting, &q, &db1, &SearchBudget::default()).unwrap();
        assert!(verdict.is_incomplete(), "got {verdict:?}");
    }

    /// Example 3.1, second part: under the FD eid → dept,cid a database with
    /// no e0 tuple is incomplete, but any database with one e0 tuple is
    /// complete for Q2.
    #[test]
    fn fd_blocks_after_one_tuple() {
        let schema = Schema::from_relations(vec![RelationSchema::infinite(
            "Supt",
            &["eid", "dept", "cid"],
        )])
        .unwrap();
        let supt = schema.rel_id("Supt").unwrap();
        let fd = ric_constraints::Fd::new(supt, vec![0], vec![1, 2]);
        let v = ConstraintSet::new(ric_constraints::compile::fd_to_ccs(&fd, &schema));
        let setting = Setting::new(
            schema.clone(),
            Schema::new(),
            Database::with_relations(0),
            v,
        );
        let q: Query = parse_cq(&schema, "Q(C) :- Supt('e0', D, C).")
            .unwrap()
            .into();

        let empty = Database::empty(&schema);
        let verdict = rcdp(&setting, &q, &empty, &SearchBudget::default()).unwrap();
        assert!(verdict.is_incomplete(), "empty Supt should be incomplete");

        let mut db = Database::empty(&schema);
        db.insert(supt, t3("e0", "d0", "c0"));
        assert_eq!(
            rcdp(&setting, &q, &db, &SearchBudget::default()).unwrap(),
            Verdict::Complete,
            "FD pins e0's single (dept, cid) pair"
        );
    }

    #[test]
    fn ucq_per_disjunct_counterexample() {
        let (setting, supt) = supt_setting();
        // Heads carry the employee, so the disjuncts do not overlap.
        let q: Query = ric_query::parse_ucq(
            &setting.schema,
            "Q(E, C) :- Supt(E, D, C), E = 'e0'. Q(E, C) :- Supt(E, D, C), E = 'e1'.",
        )
        .unwrap()
        .into();
        let mut db = Database::empty(&setting.schema);
        // e0 saturated, e1 not.
        db.insert(supt, t3("e0", "d", "c1"));
        db.insert(supt, t3("e0", "d", "c2"));
        db.insert(supt, t3("e1", "d", "c1"));
        let verdict = rcdp(&setting, &q, &db, &SearchBudget::default()).unwrap();
        match &verdict {
            Verdict::Incomplete(ce) => {
                assert!(certify_counterexample(&setting, &q, &db, ce).unwrap());
                assert_eq!(
                    ce.new_answer,
                    Tuple::new([Value::str("e1"), Value::str("c2")])
                );
            }
            other => panic!("expected incomplete, got {other:?}"),
        }

        // A database where both disjuncts saturate the master list is
        // complete even though the per-employee answers differ.
        let mut full = db.clone();
        full.insert(supt, t3("e1", "d", "c2"));
        assert_eq!(
            rcdp(&setting, &q, &full, &SearchBudget::default()).unwrap(),
            Verdict::Complete
        );
    }
}

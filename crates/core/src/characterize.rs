//! The paper's characterizations as checkable predicates.
//!
//! * **C1/C2** (Proposition 3.3, `L_Q = L_C =` CQ), **C3** (Corollary 3.4,
//!   `L_C` = INDs), **C4** (Corollary 3.5, UCQ): a database is relatively
//!   complete iff it is *bounded* — these delegate to the unified valuation
//!   check in [`crate::rcdp()`], which implements exactly those conditions.
//! * [`brute_force_complete`] — an independent reference decision procedure
//!   that enumerates *every* extension over the extended active domain. It is
//!   doubly exponential and only usable on tiny instances, which is exactly
//!   what the cross-validation tests need: the small-model property behind
//!   Proposition 3.3 guarantees it agrees with the Σᵖ₂ decider for CQ/UCQ.
//! * **E1/E3/E4** (Propositions 4.2 and 4.3): syntactic boundedness of
//!   queries, and **E2** for an explicitly supplied candidate `D_𝒱`.

use crate::adom::Adom;
use crate::budget::{Meter, MeterKind, SearchBudget};
use crate::guard::Guard;
use crate::query::Query;
use crate::setting::Setting;
use crate::valuations::{EnumOutcome, ValuationSpace};
use crate::verdict::{RcError, Verdict};
use ric_constraints::{CcBody, CcRhs};
use ric_data::{Database, Value};
use ric_query::tableau::Tableau;
use ric_query::{Cq, Ucq};
use ric_telemetry::Probe;
use std::collections::BTreeSet;
use std::ops::ControlFlow;

/// C1/C2: is the CQ-constrained database bounded by `(D_m, V)` for `Q`?
/// Equivalent to membership in `RCQ(Q, D_m, V)` by Proposition 3.3.
pub fn bounded_database_cq(
    setting: &Setting,
    q: &Cq,
    db: &Database,
    budget: &SearchBudget,
) -> Result<Option<bool>, RcError> {
    verdict_to_bool(crate::rcdp::rcdp_exact(
        setting,
        &Query::Cq(q.clone()),
        db,
        budget,
    ))
}

/// C3: the IND specialisation (Corollary 3.4). Panics if `V` is not a set of
/// INDs — that is a caller bug, not a data condition.
pub fn bounded_database_ind(
    setting: &Setting,
    q: &Cq,
    db: &Database,
    budget: &SearchBudget,
) -> Result<Option<bool>, RcError> {
    assert!(setting.v.is_ind_set(), "C3 requires V to be a set of INDs");
    bounded_database_cq(setting, q, db, budget)
}

/// C4: the UCQ characterization (Corollary 3.5), evaluated per disjunct.
pub fn bounded_database_ucq(
    setting: &Setting,
    q: &Ucq,
    db: &Database,
    budget: &SearchBudget,
) -> Result<Option<bool>, RcError> {
    verdict_to_bool(crate::rcdp::rcdp_exact(
        setting,
        &Query::Ucq(q.clone()),
        db,
        budget,
    ))
}

fn verdict_to_bool(v: Result<Verdict, RcError>) -> Result<Option<bool>, RcError> {
    Ok(match v? {
        Verdict::Complete => Some(true),
        Verdict::Incomplete(_) => Some(false),
        Verdict::Unknown { .. } => None,
    })
}

/// Reference decision by exhaustive extension enumeration.
///
/// Enumerates all subsets of the candidate tuple pool (active domain plus
/// `fresh` values) as extensions Δ and checks the definition of relative
/// completeness directly. Returns `None` when the pool exceeds `max_pool`
/// (the subset space would be too large) — callers choose instances small
/// enough to avoid this.
pub fn brute_force_complete(
    setting: &Setting,
    query: &Query,
    db: &Database,
    fresh: usize,
    max_pool: usize,
) -> Result<Option<bool>, RcError> {
    if !setting.partially_closed(db)? {
        return Err(RcError::NotPartiallyClosed);
    }
    let adom = Adom::build(db, setting, query, fresh);
    let mut values = adom.constants.clone();
    values.extend(adom.fresh.iter().cloned());
    let pool = crate::semidecide::tuple_pool(setting, db, &values);
    if pool.len() > max_pool {
        return Ok(None);
    }
    let q_d = query.eval(db)?;
    // Every nonempty subset of the pool.
    let n = pool.len();
    for mask in 1u64..(1u64 << n) {
        let mut extended = db.clone();
        for (i, (rel, t)) in pool.iter().enumerate() {
            if mask & (1 << i) != 0 {
                extended.insert(*rel, t.clone());
            }
        }
        if setting.partially_closed(&extended)? && query.eval(&extended)? != q_d {
            return Ok(Some(false));
        }
    }
    Ok(Some(true))
}

/// E1/E5: every head variable (of every disjunct) draws from a finite
/// domain, making the query trivially relatively complete.
pub fn finite_head(q: &Ucq, schema: &ric_data::Schema) -> Result<bool, RcError> {
    for t in q.tableaux()? {
        let doms = t.var_domains(schema);
        for v in t.head_vars() {
            if doms[v.idx()].is_none() {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// E3/E4 (Proposition 4.3): with `V` a set of INDs, a disjunct tableau is
/// *bounded* when each head variable either has a finite domain (E3) or
/// occurs in a column covered by an IND into master data (E4).
pub fn ind_bounded(t: &Tableau, schema: &ric_data::Schema, setting: &Setting) -> bool {
    let doms = t.var_domains(schema);
    let positions = t.var_positions();
    't_vars: for v in t.head_vars() {
        if doms[v.idx()].is_some() {
            continue; // E3
        }
        for (rel, col) in &positions[v.idx()] {
            for cc in &setting.v.ccs {
                if let CcBody::Proj(p) = &cc.body {
                    if p.rel == *rel && p.cols.contains(col) && matches!(cc.rhs, CcRhs::Master(_)) {
                        continue 't_vars; // E4
                    }
                }
            }
        }
        return false;
    }
    true
}

/// E2 (Proposition 4.2), for an explicitly supplied candidate:
/// `dv` plays the role of `D_𝒱` and `bound_values` the union of the
/// `ν_j(u_j)` head values of the chosen partial valuations. Checks that
/// `(D_𝒱, D_m) |= V` and that every valid valuation `μ` with
/// `(D_𝒱 ∪ μ(T_Q), D_m) |= V` keeps all infinite-domain head variables
/// inside `bound_values`.
pub fn e2_check(
    setting: &Setting,
    q: &Cq,
    dv: &Database,
    bound_values: &BTreeSet<Value>,
    budget: &SearchBudget,
) -> Result<Option<bool>, RcError> {
    e2_check_probed(setting, q, dv, bound_values, budget, Probe::disabled())
}

/// [`e2_check`] with a telemetry probe attached: reports the valuations
/// enumerated (`characterize.e2_valuations`) and the check's wall time.
pub fn e2_check_probed(
    setting: &Setting,
    q: &Cq,
    dv: &Database,
    bound_values: &BTreeSet<Value>,
    budget: &SearchBudget,
    probe: Probe<'_>,
) -> Result<Option<bool>, RcError> {
    e2_check_guarded_probed(
        setting,
        q,
        dv,
        bound_values,
        budget,
        &Guard::new(budget),
        probe,
    )
}

/// [`e2_check`] under an externally shared [`Guard`]: a deadline or
/// cancellation observed mid-enumeration makes the check inconclusive
/// (`Ok(None)`), and the *caller* must consult [`Guard::tripped`] before
/// treating an inconclusive check as plain budget exhaustion.
pub fn e2_check_guarded(
    setting: &Setting,
    q: &Cq,
    dv: &Database,
    bound_values: &BTreeSet<Value>,
    budget: &SearchBudget,
    guard: &Guard,
) -> Result<Option<bool>, RcError> {
    e2_check_guarded_probed(
        setting,
        q,
        dv,
        bound_values,
        budget,
        guard,
        Probe::disabled(),
    )
}

#[allow(clippy::too_many_arguments)]
fn e2_check_guarded_probed(
    setting: &Setting,
    q: &Cq,
    dv: &Database,
    bound_values: &BTreeSet<Value>,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
) -> Result<Option<bool>, RcError> {
    let span = probe.span("characterize.e2_check");
    let result = e2_check_inner(setting, q, dv, bound_values, budget, guard, probe);
    drop(span);
    result
}

#[allow(clippy::too_many_arguments)]
fn e2_check_inner(
    setting: &Setting,
    q: &Cq,
    dv: &Database,
    bound_values: &BTreeSet<Value>,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
) -> Result<Option<bool>, RcError> {
    if !setting.partially_closed(dv)? {
        return Ok(Some(false));
    }
    let t = match Tableau::of(q) {
        Ok(t) => t,
        Err(ric_query::tableau::TableauError::Unsatisfiable) => return Ok(Some(true)),
        Err(e) => return Err(e.into()),
    };
    let query = Query::Cq(q.clone());
    let adom = Adom::build(dv, setting, &query, (t.n_vars as usize).max(1));
    let doms = t.var_domains(&setting.schema);
    let infinite_head: Vec<_> = t
        .head_vars()
        .into_iter()
        .filter(|v| doms[v.idx()].is_none())
        .collect();
    let space = ValuationSpace::new(&t, &setting.schema, &adom);
    let mut meter = Meter::guarded(MeterKind::Valuations, budget.max_valuations, guard);
    // `D_𝒱` is partially closed (checked above) and lower bounds are
    // preserved under extension, so `(D_𝒱 ∪ Δ, D_m) |= V` reduces to the
    // upper bounds — exactly what the engine's check mode answers.
    let mode = crate::rcdp::CheckMode::select(setting, budget.engine, dv)?;
    let cc_skipped = std::cell::Cell::new(0u64);
    let mut ok = true;
    let outcome = space.for_each_valid(
        &mut meter,
        |_| true,
        |mu| {
            let delta = mu.instantiate(&t, setting.schema.len());
            let closed = mode.upper_satisfied(setting, dv, &delta, &cc_skipped);
            if closed {
                for v in &infinite_head {
                    if !bound_values.contains(&mu.0[v.idx()]) {
                        ok = false;
                        return ControlFlow::Break(());
                    }
                }
            }
            ControlFlow::Continue(())
        },
    );
    probe.count("characterize.e2_valuations", meter.used());
    probe.count("cc.skipped_by_delta", cc_skipped.get());
    match outcome {
        EnumOutcome::BudgetExceeded => Ok(None),
        _ => Ok(Some(ok)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ric_constraints::{ConstraintSet, ContainmentConstraint, Projection};
    use ric_data::{Attribute, RelationSchema, Schema, Tuple};
    use ric_query::parse_cq;

    fn supt_ind_setting() -> Setting {
        let schema =
            Schema::from_relations(vec![RelationSchema::infinite("Supt", &["eid", "cid"])])
                .unwrap();
        let supt = schema.rel_id("Supt").unwrap();
        let mschema =
            Schema::from_relations(vec![RelationSchema::infinite("DCust", &["cid"])]).unwrap();
        let dcust = mschema.rel_id("DCust").unwrap();
        let mut dm = Database::empty(&mschema);
        dm.insert(dcust, Tuple::new([Value::str("c1")]));
        let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(supt, vec![1])),
            dcust,
            vec![0],
        )]);
        Setting::new(schema, mschema, dm, v)
    }

    #[test]
    fn brute_force_agrees_with_exact_decider() {
        let setting = supt_ind_setting();
        let q = parse_cq(&setting.schema, "Q(C) :- Supt('e0', C).").unwrap();
        let query = Query::Cq(q.clone());
        for tuples in [vec![], vec![("e0", "c1")]] {
            let mut db = Database::empty(&setting.schema);
            let supt = setting.schema.rel_id("Supt").unwrap();
            for (e, c) in &tuples {
                db.insert(supt, Tuple::new([Value::str(e), Value::str(c)]));
            }
            let exact = bounded_database_cq(&setting, &q, &db, &SearchBudget::default()).unwrap();
            let brute = brute_force_complete(&setting, &query, &db, 1, 12).unwrap();
            assert_eq!(exact, brute, "disagreement on db {db}");
        }
    }

    #[test]
    fn ind_boundedness_detects_covered_and_uncovered_vars() {
        let setting = supt_ind_setting();
        // cid column covered by the IND: bounded.
        let q1 = parse_cq(&setting.schema, "Q(C) :- Supt(E, C).").unwrap();
        let t1 = Tableau::of(&q1).unwrap();
        assert!(ind_bounded(&t1, &setting.schema, &setting));
        // eid column uncovered: unbounded.
        let q2 = parse_cq(&setting.schema, "Q(E) :- Supt(E, C).").unwrap();
        let t2 = Tableau::of(&q2).unwrap();
        assert!(!ind_bounded(&t2, &setting.schema, &setting));
    }

    #[test]
    fn finite_head_detected() {
        let schema = Schema::from_relations(vec![RelationSchema::new(
            "B",
            vec![Attribute::boolean("x"), Attribute::new("y")],
        )])
        .unwrap();
        let q_fin = parse_cq(&schema, "Q(X) :- B(X, Y).").unwrap();
        let q_inf = parse_cq(&schema, "Q(Y) :- B(X, Y).").unwrap();
        assert!(finite_head(&Ucq::single(q_fin), &schema).unwrap());
        assert!(!finite_head(&Ucq::single(q_inf), &schema).unwrap());
    }

    #[test]
    fn e2_check_accepts_master_covering_dv() {
        let setting = supt_ind_setting();
        let supt = setting.schema.rel_id("Supt").unwrap();
        let q = parse_cq(&setting.schema, "Q(C) :- Supt(E, C).").unwrap();
        // D_𝒱 realising the single master customer; its cid is the bound
        // value. Head var C is then bounded; head var E is existential.
        let mut dv = Database::empty(&setting.schema);
        dv.insert(supt, Tuple::new([Value::str("e0"), Value::str("c1")]));
        let bounds: BTreeSet<Value> = [Value::str("c1")].into_iter().collect();
        assert_eq!(
            e2_check(&setting, &q, &dv, &bounds, &SearchBudget::default()).unwrap(),
            Some(true)
        );
        // Without the bound value registered, the check fails.
        let empty_bounds = BTreeSet::new();
        assert_eq!(
            e2_check(&setting, &q, &dv, &empty_bounds, &SearchBudget::default()).unwrap(),
            Some(false)
        );
    }
}

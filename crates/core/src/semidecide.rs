//! Bounded semi-decision for the undecidable cells of Tables I and II.
//!
//! When `L_Q` or `L_C` is FO or FP, RCDP and RCQP are undecidable (Theorems
//! 3.1 and 4.1) — no terminating procedure can decide them. What *is*
//! possible, and what this module provides, is a bounded search over
//! candidate extensions:
//!
//! * [`rcdp_bounded`] — enumerate extensions `Δ` built from tuples over the
//!   active domain plus a small fresh pool, up to `budget.max_delta_tuples`
//!   tuples. Finding `Δ` with `(D ∪ Δ, D_m) |= V` and `Q(D ∪ Δ) ≠ Q(D)`
//!   *certifies* incompleteness; exhausting the bound yields `Unknown`.
//! * [`rcqp_bounded`] — search for a candidate database that `rcdp_bounded`
//!   cannot refute within the bound. Because completeness itself is
//!   undecidable here, a surviving candidate is only evidence, so the result
//!   is at best `Unknown` with a description of how far the search went —
//!   exactly the epistemic state the undecidability theorems force.

use crate::adom::Adom;
use crate::budget::{Engine, Meter, MeterKind, SearchBudget};
use crate::guard::Guard;
use crate::par::ChunkStats;
use crate::query::Query;
use crate::setting::Setting;
use crate::verdict::{BudgetLimit, CounterExample, QueryVerdict, RcError, SearchStats, Verdict};
use ric_constraints::PreparedUpper;
use ric_data::{index::probe_count, Database, Overlay, RelId, Tuple, Value};
use ric_telemetry::Probe;
use std::cell::Cell;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Upper bound on the materialised candidate pool; beyond it the bounded
/// searches report `Unknown` instead of exhausting memory.
const MAX_POOL: usize = 100_000;

/// Estimated pool size (saturating): Σ over relations of |values|^arity.
pub(crate) fn pool_estimate(setting: &Setting, n_values: usize) -> usize {
    let mut total = 0usize;
    for (_, rs) in setting.schema.iter() {
        let mut per = 1usize;
        for attr in &rs.attributes {
            let base = match attr.domain.finite_values() {
                Some(d) => d.len(),
                None => n_values,
            };
            per = per.saturating_mul(base.max(1));
        }
        total = total.saturating_add(per);
    }
    total
}

/// All candidate tuples over `values`, per relation, respecting finite
/// domains, excluding tuples already in `db`.
pub(crate) fn tuple_pool(
    setting: &Setting,
    db: &Database,
    values: &[Value],
) -> Vec<(RelId, Tuple)> {
    let mut pool = Vec::new();
    for (rel, rs) in setting.schema.iter() {
        let arity = rs.arity();
        let mut current: Vec<Value> = Vec::with_capacity(arity);
        fill(rs, values, 0, &mut current, &mut |t: Tuple| {
            if !db.instance(rel).contains(&t) {
                pool.push((rel, t));
            }
        });
    }
    pool
}

/// Per-candidate closure check for the bounded search. Unlike the exact
/// decider's [`CheckMode`](crate::rcdp::CheckMode), this one must hand back a
/// materialized union for the surviving candidates: `L_Q` here may be FO/FP,
/// which the query evaluator wants as a concrete [`Database`].
enum BoundedCheck {
    /// Materialize every candidate union and check `V` in full.
    Full,
    /// Check upper bounds incrementally on the overlay and materialize only
    /// the survivors. Requires the upper bounds to hold on the base.
    Delta {
        prepared: Arc<PreparedUpper>,
        /// Lower bounds must be re-checked on each surviving union — some
        /// body is FO/FP (not monotone) or the base does not satisfy them
        /// yet (an extension can repair a missing lower bound).
        recheck_lower: bool,
    },
}

impl BoundedCheck {
    fn select(
        setting: &Setting,
        db: &Database,
        engine: Engine,
        reuse: Option<&Arc<PreparedUpper>>,
    ) -> Result<Self, RcError> {
        // The incremental identity for monotone upper bodies needs the upper
        // bounds to hold on the base; when they do not (possible here —
        // `rcdp_bounded` is a public entry that does not demand partial
        // closure), the naive path keeps the original semantics.
        if !engine.indexed() || !setting.v.upper_satisfied(db, &setting.dm)? {
            return Ok(BoundedCheck::Full);
        }
        let mut recheck_lower = false;
        for lb in &setting.v.lower_bounds {
            if !crate::rcdp::exactly_decidable(lb.body.language())
                || !lb.satisfied(db, &setting.dm)?
            {
                recheck_lower = true;
                break;
            }
        }
        let prepared = match reuse {
            Some(prep) => Arc::clone(prep),
            None if engine.is_planned() => Arc::new(PreparedUpper::with_plans(
                &setting.v,
                &setting.schema,
                &setting.dm,
                db,
            )?),
            None => Arc::new(PreparedUpper::new(
                &setting.v,
                &setting.schema,
                &setting.dm,
            )?),
        };
        Ok(BoundedCheck::Delta {
            prepared,
            recheck_lower,
        })
    }

    /// The shared preparation backing the delta mode, if any.
    fn prepared(&self) -> Option<&Arc<PreparedUpper>> {
        match self {
            BoundedCheck::Delta { prepared, .. } => Some(prepared),
            BoundedCheck::Full => None,
        }
    }

    /// `(D ∪ Δ, D_m) |= V`? Returns the materialized union for survivors so
    /// the caller can evaluate the query on it, `None` for rejects.
    fn closed_union(
        &self,
        setting: &Setting,
        db: &Database,
        delta: &Database,
        cc_skipped: &Cell<u64>,
    ) -> Result<Option<Database>, RcError> {
        match self {
            BoundedCheck::Full => {
                let extended = db
                    .union(delta)
                    .unwrap_or_else(|e| unreachable!("delta shares the setting schema: {e:?}"));
                if setting.partially_closed(&extended)? {
                    Ok(Some(extended))
                } else {
                    Ok(None)
                }
            }
            BoundedCheck::Delta {
                prepared,
                recheck_lower,
            } => {
                let ov = Overlay::new(db, delta)
                    .unwrap_or_else(|e| unreachable!("delta shares the setting schema: {e:?}"));
                let res = prepared.satisfied_delta(&setting.v, &ov)?;
                cc_skipped.set(cc_skipped.get() + res.skipped as u64);
                if !res.satisfied {
                    return Ok(None);
                }
                let extended = ov.materialize();
                if *recheck_lower {
                    for lb in &setting.v.lower_bounds {
                        if !lb.satisfied(&extended, &setting.dm)? {
                            return Ok(None);
                        }
                    }
                }
                Ok(Some(extended))
            }
        }
    }
}

fn fill(
    rs: &ric_data::RelationSchema,
    values: &[Value],
    col: usize,
    current: &mut Vec<Value>,
    out: &mut impl FnMut(Tuple),
) {
    if col == rs.arity() {
        out(Tuple::new(current.iter().cloned()));
        return;
    }
    match rs.attributes[col].domain.finite_values() {
        Some(dom) => {
            for v in dom {
                current.push(v.clone());
                fill(rs, values, col + 1, current, out);
                current.pop();
            }
        }
        None => {
            for v in values {
                current.push(v.clone());
                fill(rs, values, col + 1, current, out);
                current.pop();
            }
        }
    }
}

/// Bounded RCDP: certify incompleteness with a small witness extension, or
/// report `Unknown`.
pub fn rcdp_bounded(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
) -> Result<Verdict, RcError> {
    rcdp_bounded_probed(setting, query, db, budget, Probe::disabled())
}

/// [`rcdp_bounded`] with a telemetry probe attached.
pub fn rcdp_bounded_probed(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
    probe: Probe<'_>,
) -> Result<Verdict, RcError> {
    rcdp_bounded_guarded(setting, query, db, budget, &Guard::new(budget), probe)
}

/// [`rcdp_bounded`] with an explicit [`Guard`] (deadline / cancellation /
/// fault plan) and a telemetry probe attached.
pub fn rcdp_bounded_guarded(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
) -> Result<Verdict, RcError> {
    rcdp_bounded_guarded_reusing(setting, query, db, budget, guard, probe, None)
}

/// [`rcdp_bounded_guarded`] with an optional pre-built upper-bound
/// preparation from a [`crate::PreparedSetting`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn rcdp_bounded_guarded_reusing(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
    reuse: Option<&Arc<PreparedUpper>>,
) -> Result<Verdict, RcError> {
    let probe = probe.with_ticks(guard);
    let verdict = rcdp_bounded_inner(setting, query, db, budget, guard, probe, reuse)?;
    crate::rcdp::emit_verdict(probe, &verdict);
    Ok(verdict)
}

#[allow(clippy::too_many_arguments)]
fn rcdp_bounded_inner(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
    reuse: Option<&Arc<PreparedUpper>>,
) -> Result<Verdict, RcError> {
    let q_d = query.eval(db)?;
    let probes_before = probe_count();
    let check = BoundedCheck::select(setting, db, budget.engine, reuse)?;
    crate::rcdp::emit_plan_telemetry(
        probe,
        setting,
        budget.engine,
        check.prepared(),
        reuse.is_some(),
        db,
    );
    let adom = Adom::build(db, setting, query, budget.fresh_values);
    let mut values = adom.constants.clone();
    values.extend(adom.fresh.iter().cloned());
    probe.gauge("semidecide.adom_size", values.len() as u64);
    if pool_estimate(setting, values.len()) > MAX_POOL {
        probe.count("semidecide.query_evals", 1);
        return Ok(Verdict::unknown(SearchStats::new(
            BudgetLimit::PoolBound,
            format!(
                "candidate tuple space exceeds {MAX_POOL} over {} values; \
                 narrow the schema or shrink the database",
                values.len()
            ),
        )));
    }
    let pool = tuple_pool(setting, db, &values);
    probe.gauge("semidecide.pool_size", pool.len() as u64);
    if budget.engine.sharded() {
        let (verdict, _) = rcdp_bounded_parallel(
            setting,
            query,
            db,
            budget,
            guard,
            probe,
            &q_d,
            &check,
            &pool,
            probes_before,
            1,
            &ChunkStats::default(),
        )?;
        return Ok(verdict);
    }
    let probes_offset = probe_count().saturating_sub(probes_before);
    let (verdict, _) = bounded_search_sequential(
        setting,
        query,
        db,
        budget,
        guard,
        probe,
        &q_d,
        &check,
        &pool,
        1,
        &ChunkStats::default(),
        probes_offset,
    )?;
    Ok(verdict)
}

/// A bounded-search resume point: every extension size below `next_size` is
/// fully searched, with `stats` the cumulative committed work over those
/// sizes. The public mirror is
/// [`Frontier::BoundedSizes`](crate::checkpoint::Frontier).
#[derive(Clone, Copy, Debug)]
pub(crate) struct BoundedResume {
    /// First unexplored extension size.
    pub next_size: usize,
    /// Cumulative stats over the fully-searched smaller sizes.
    pub stats: ChunkStats,
}

/// The (resumable) sequential bounded extension search. `start_size` and
/// `committed` come from a prior installment's checkpoint (size 1 and empty
/// stats for a fresh run): the meter is primed with the committed ticks and
/// the counter cells with the committed totals, so the search rejects — and
/// reports — at exactly the point an uninterrupted run at the same budget
/// would. `probes_offset` is the caller's setup probe count plus any probes
/// committed by earlier installments; the emitted `index.probe` counter is
/// `probes_offset` + this call's own probes, keeping the counter
/// installment-independent. Returns the resume point alongside the verdict
/// when the search stopped on a budget-like limit.
#[allow(clippy::too_many_arguments)]
fn bounded_search_sequential(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
    q_d: &BTreeSet<Tuple>,
    check: &BoundedCheck,
    pool: &[(RelId, Tuple)],
    start_size: usize,
    committed: &ChunkStats,
    probes_offset: u64,
) -> Result<(Verdict, Option<BoundedResume>), RcError> {
    let entry_probes = probe_count();
    let mut meter = Meter::guarded_primed(
        MeterKind::Candidates,
        budget.max_candidates,
        committed.ticks,
        guard,
    );
    let query_evals = Cell::new(1 + committed.query_evals);
    let cc_checks = Cell::new(committed.cc_checks);
    let cc_skipped = Cell::new(committed.cc_skipped);
    let mut ledger = *committed;
    let mut frontier = None;

    let span = probe.span("semidecide.extension_search");
    let mut verdict = None;
    for size in start_size..=budget.max_delta_tuples.min(pool.len()) {
        let mut chosen: Vec<usize> = Vec::with_capacity(size);
        let found = choose(
            pool,
            0,
            size,
            &mut chosen,
            &mut meter,
            &mut |subset: &[usize]| -> Result<Option<CounterExample>, RcError> {
                let mut delta = Database::with_relations(setting.schema.len());
                for &i in subset {
                    let (rel, t) = &pool[i];
                    delta.insert(*rel, t.clone());
                }
                cc_checks.set(cc_checks.get() + 1);
                let Some(extended) = check.closed_union(setting, db, &delta, &cc_skipped)? else {
                    return Ok(None);
                };
                let q_after = query.eval(&extended)?;
                query_evals.set(query_evals.get() + 1);
                if q_after != *q_d {
                    // For non-monotone L_Q an addition can also *remove*
                    // answers; report any distinguishing tuple.
                    let new_answer = q_after
                        .symmetric_difference(q_d)
                        .next()
                        .unwrap_or_else(|| unreachable!("answers differ"))
                        .clone();
                    return Ok(Some(CounterExample { delta, new_answer }));
                }
                Ok(None)
            },
        )?;
        match found {
            ChooseOutcome::Found(ce) => {
                verdict = Some(Verdict::Incomplete(ce));
                break;
            }
            ChooseOutcome::Budget => {
                let detail = match meter.interrupt() {
                    Some(interrupt) => {
                        probe.interrupt("semidecide.interrupt", interrupt.name(), guard.ticks());
                        meter.stop_detail("candidate")
                    }
                    None => format!(
                        "bounded search: candidate budget {} exhausted at extension \
                         size {size}",
                        meter.limit()
                    ),
                };
                let max = budget.max_delta_tuples.min(pool.len());
                probe.note("explain.frontier", || {
                    format!(
                        "bounded search stopped at extension size {size}/{max}; \
                         remaining subsets of size {size} and all larger sizes unexplored"
                    )
                });
                verdict = Some(Verdict::unknown(
                    SearchStats::new(meter.stop_limit(BudgetLimit::MaxCandidates), detail)
                        .with_candidates(meter.used()),
                ));
                frontier = Some(BoundedResume {
                    next_size: size,
                    stats: ledger,
                });
                break;
            }
            ChooseOutcome::Exhausted => {
                // Commit this fully-searched size: the cumulative totals are
                // what a resumed installment primes its meter and cells with.
                ledger = ChunkStats {
                    ticks: meter.used(),
                    cc_checks: cc_checks.get(),
                    cc_skipped: cc_skipped.get(),
                    query_evals: query_evals.get() - 1,
                    probes: committed.probes + probe_count().saturating_sub(entry_probes),
                    ..ChunkStats::default()
                };
            }
        }
    }
    drop(span);
    probe.count("semidecide.candidates", meter.used());
    probe.count("semidecide.cc_checks", cc_checks.get());
    probe.count("semidecide.query_evals", query_evals.get());
    probe.count("cc.skipped_by_delta", cc_skipped.get());
    // Thread-local counter: exact even when other threads probe concurrently.
    probe.count(
        "index.probe",
        probes_offset + probe_count().saturating_sub(entry_probes),
    );
    let verdict = verdict.unwrap_or_else(|| {
        Verdict::unknown(
            SearchStats::new(
                BudgetLimit::MaxDeltaTuples,
                format!(
                    "bounded search: no violating extension with ≤ {} tuple(s) over {} \
                     candidate tuple(s) ({} fresh value(s))",
                    budget.max_delta_tuples.min(pool.len()),
                    pool.len(),
                    budget.fresh_values
                ),
            )
            .with_candidates(meter.used()),
        )
    });
    Ok((verdict, frontier))
}

/// The resumable bounded decider: [`rcdp_bounded_guarded`] with a size-level
/// resume point in and out. Setup (query evaluation, check-mode selection,
/// active domain, candidate pool) re-runs every installment — it is
/// deterministic, so the emitted telemetry stays installment-independent.
#[allow(clippy::too_many_arguments)]
pub(crate) fn rcdp_bounded_resumed(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
    prior: Option<&BoundedResume>,
) -> Result<(Verdict, Option<BoundedResume>), RcError> {
    let probe = probe.with_ticks(guard);
    let q_d = query.eval(db)?;
    let probes_before = probe_count();
    let check = BoundedCheck::select(setting, db, budget.engine, None)?;
    crate::rcdp::emit_plan_telemetry(probe, setting, budget.engine, check.prepared(), false, db);
    let adom = Adom::build(db, setting, query, budget.fresh_values);
    let mut values = adom.constants.clone();
    values.extend(adom.fresh.iter().cloned());
    probe.gauge("semidecide.adom_size", values.len() as u64);
    if pool_estimate(setting, values.len()) > MAX_POOL {
        probe.count("semidecide.query_evals", 1);
        let verdict = Verdict::unknown(SearchStats::new(
            BudgetLimit::PoolBound,
            format!(
                "candidate tuple space exceeds {MAX_POOL} over {} values; \
                 narrow the schema or shrink the database",
                values.len()
            ),
        ));
        crate::rcdp::emit_verdict(probe, &verdict);
        return Ok((verdict, None));
    }
    let pool = tuple_pool(setting, db, &values);
    probe.gauge("semidecide.pool_size", pool.len() as u64);
    let start_size = prior.map_or(1, |r| r.next_size);
    let committed = prior.map_or_else(ChunkStats::default, |r| r.stats);
    let (verdict, frontier) = if budget.engine.sharded() {
        rcdp_bounded_parallel(
            setting,
            query,
            db,
            budget,
            guard,
            probe,
            &q_d,
            &check,
            &pool,
            probes_before,
            start_size,
            &committed,
        )?
    } else {
        let probes_offset = probe_count().saturating_sub(probes_before) + committed.probes;
        bounded_search_sequential(
            setting,
            query,
            db,
            budget,
            guard,
            probe,
            &q_d,
            &check,
            &pool,
            start_size,
            &committed,
            probes_offset,
        )?
    };
    crate::rcdp::emit_verdict(probe, &verdict);
    Ok((verdict, frontier))
}

/// The bounded extension search, sharded across the worker pool: for each
/// extension size, one chunk per choice of the subset's *first* pool index.
/// Chunk `i`'s subtree enumerates exactly the subsets the sequential
/// [`choose`] visits after pushing `i` first, so concatenating the chunks in
/// index order reproduces the sequential candidate order and the
/// first-terminal-by-index merge keeps the verdict schedule-independent. A
/// decider error inside a chunk rides the `Hit` channel as `Err`, so the
/// earliest erroring/finding chunk — the one the sequential engine would
/// have reached first — decides.
///
/// Resumable at size granularity: `start_size`/`committed` skip the sizes an
/// earlier installment fully searched, and the per-size `remaining` budget is
/// derived from the committed ticks exactly as an uninterrupted run would. A
/// chunk lost twice (panic plus failed quarantine retry, see
/// [`par::run_chunks_recovering`]) downgrades the rest of the decision to
/// the sequential driver, re-running the failed size from its start —
/// verdict- and witness-sound, though the sequential meter's death point may
/// differ from the parallel slicing's.
#[allow(clippy::too_many_arguments)]
fn rcdp_bounded_parallel(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
    q_d: &BTreeSet<Tuple>,
    check: &BoundedCheck,
    pool: &[(RelId, Tuple)],
    probes_before: u64,
    start_size: usize,
    committed: &ChunkStats,
) -> Result<(Verdict, Option<BoundedResume>), RcError> {
    use crate::par::{self, ChunkEvent, ChunkResult, PoolOutcome};

    // Probes issued while building the check mode, active domain, and pool —
    // the sequential path counts them too, before its enumeration begins.
    let setup_probes = probe_count().saturating_sub(probes_before);
    let mut totals = *committed;
    let mut ledger = *committed;
    let mut executed = 0u64;
    let mut steals = 0u64;
    let mut verdict = None;
    let mut frontier = None;

    let span = probe.span("semidecide.extension_search");
    let max_size = budget.max_delta_tuples.min(pool.len());
    for size in start_size..=max_size {
        let remaining = budget.max_candidates.saturating_sub(totals.ticks);
        if remaining == 0 {
            verdict = Some(Verdict::unknown(
                SearchStats::new(
                    BudgetLimit::MaxCandidates,
                    format!(
                        "bounded search: candidate budget {} exhausted at extension \
                         size {size}",
                        budget.max_candidates
                    ),
                )
                .with_candidates(totals.ticks),
            ));
            frontier = Some(BoundedResume {
                next_size: size,
                stats: ledger,
            });
            break;
        }
        // Subsets of `size` tuples whose smallest pool index is `i` exist
        // for i ≤ pool.len() - size.
        let n_chunks = pool.len() - size + 1;
        let job = |idx: usize, wguard: &Guard| -> ChunkResult<Result<CounterExample, RcError>> {
            let worker_probes_before = probe_count();
            let mut meter = Meter::guarded(
                MeterKind::Candidates,
                par::chunk_budget(remaining, n_chunks, idx),
                wguard,
            );
            let cc_checks = Cell::new(0u64);
            let cc_skipped = Cell::new(0u64);
            let query_evals = Cell::new(0u64);
            let mut chosen: Vec<usize> = Vec::with_capacity(size);
            chosen.push(idx);
            let found = choose(
                pool,
                idx + 1,
                size - 1,
                &mut chosen,
                &mut meter,
                &mut |subset: &[usize]| -> Result<Option<CounterExample>, RcError> {
                    let mut delta = Database::with_relations(setting.schema.len());
                    for &i in subset {
                        let (rel, t) = &pool[i];
                        delta.insert(*rel, t.clone());
                    }
                    cc_checks.set(cc_checks.get() + 1);
                    let Some(extended) = check.closed_union(setting, db, &delta, &cc_skipped)?
                    else {
                        return Ok(None);
                    };
                    let q_after = query.eval(&extended)?;
                    query_evals.set(query_evals.get() + 1);
                    if q_after != *q_d {
                        let new_answer = q_after
                            .symmetric_difference(q_d)
                            .next()
                            .unwrap_or_else(|| unreachable!("answers differ"))
                            .clone();
                        return Ok(Some(CounterExample { delta, new_answer }));
                    }
                    Ok(None)
                },
            );
            let (event, value) = match found {
                Ok(ChooseOutcome::Found(ce)) => (ChunkEvent::Hit, Some(Ok(ce))),
                Ok(ChooseOutcome::Budget) => match meter.interrupt() {
                    Some(interrupt) => (ChunkEvent::Interrupted(interrupt), None),
                    None => (ChunkEvent::Exhausted, None),
                },
                Ok(ChooseOutcome::Exhausted) => (ChunkEvent::Clear, None),
                Err(e) => (ChunkEvent::Hit, Some(Err(e))),
            };
            ChunkResult {
                event,
                value,
                stats: ChunkStats {
                    ticks: meter.used(),
                    cc_checks: cc_checks.get(),
                    cc_skipped: cc_skipped.get(),
                    probes: probe_count().saturating_sub(worker_probes_before),
                    query_evals: query_evals.get(),
                    // The bounded search enumerates tuple subsets, not
                    // valuation trees — no depth profile applies.
                    ..ChunkStats::default()
                },
            }
        };
        let recovered = par::run_chunks_recovering(budget.engine.workers(), n_chunks, guard, &job);
        probe.count("recover.chunk", recovered.recovered);
        if !recovered.lost.is_empty() {
            // Degradation ladder: quarantine retry failed too. Commit the
            // fully-searched sizes and finish sequentially, re-running the
            // failed size from its start.
            probe.count("degrade.chunk", recovered.lost.len() as u64);
            probe.note("degrade.engine", || {
                format!(
                    "parallel engine lost {} chunk(s) after quarantine retry; \
                     downgrading to the sequential indexed engine",
                    recovered.lost.len()
                )
            });
            executed += recovered.run.executed;
            steals += recovered.run.steals;
            drop(span);
            probe.count("par.chunk", executed);
            probe.count("par.steal", steals);
            return bounded_search_sequential(
                setting,
                query,
                db,
                budget,
                guard,
                probe,
                q_d,
                check,
                pool,
                size,
                &ledger,
                setup_probes + ledger.probes,
            );
        }
        let run = recovered.run;
        if probe.trace().is_some() {
            for entry in &run.timeline {
                let e = *entry;
                probe.note("par.timeline", || {
                    format!(
                        "worker {} chunk {} {}..{}us",
                        e.worker, e.chunk, e.start_micros, e.end_micros
                    )
                });
            }
        }
        let merged = run.merge_search();
        totals.absorb(&merged.stats);
        executed += merged.executed;
        steals += merged.steals;
        match merged.outcome {
            PoolOutcome::Clear => {
                // Commit this fully-searched size for the resume frontier.
                ledger = totals;
                continue;
            }
            PoolOutcome::Hit(Ok(ce)) => {
                verdict = Some(Verdict::Incomplete(ce));
            }
            PoolOutcome::Hit(Err(e)) => return Err(e),
            PoolOutcome::Exhausted => {
                let deciding = merged.deciding;
                probe.note("explain.frontier", || {
                    let at = deciding.map_or(n_chunks, |k| k + 1);
                    format!(
                        "bounded search stopped at extension size {size}/{max_size} \
                         (chunk {at}/{n_chunks}); larger sizes unexplored"
                    )
                });
                verdict = Some(Verdict::unknown(
                    SearchStats::new(
                        BudgetLimit::MaxCandidates,
                        format!(
                            "bounded search: candidate budget {} exhausted at extension \
                             size {size}",
                            budget.max_candidates
                        ),
                    )
                    .with_candidates(totals.ticks),
                ));
                frontier = Some(BoundedResume {
                    next_size: size,
                    stats: ledger,
                });
            }
            PoolOutcome::Interrupted(interrupt) => {
                probe.interrupt("semidecide.interrupt", interrupt.name(), guard.ticks());
                let deciding = merged.deciding;
                probe.note("explain.frontier", || {
                    let at = deciding.map_or(n_chunks, |k| k + 1);
                    format!(
                        "bounded search interrupted at extension size {size}/{max_size} \
                         (chunk {at}/{n_chunks}); larger sizes unexplored"
                    )
                });
                verdict = Some(Verdict::unknown(
                    SearchStats::new(
                        interrupt.limit(),
                        par::interrupt_detail(interrupt, totals.ticks, "candidate"),
                    )
                    .with_candidates(totals.ticks),
                ));
                frontier = Some(BoundedResume {
                    next_size: size,
                    stats: ledger,
                });
            }
        }
        break;
    }
    drop(span);
    probe.count("par.chunk", executed);
    probe.count("par.steal", steals);
    probe.count("semidecide.candidates", totals.ticks);
    probe.count("semidecide.cc_checks", totals.cc_checks);
    probe.count("semidecide.query_evals", 1 + totals.query_evals);
    probe.count("cc.skipped_by_delta", totals.cc_skipped);
    probe.count("index.probe", setup_probes + totals.probes);
    let verdict = verdict.unwrap_or_else(|| {
        Verdict::unknown(
            SearchStats::new(
                BudgetLimit::MaxDeltaTuples,
                format!(
                    "bounded search: no violating extension with ≤ {} tuple(s) over {} \
                     candidate tuple(s) ({} fresh value(s))",
                    budget.max_delta_tuples.min(pool.len()),
                    pool.len(),
                    budget.fresh_values
                ),
            )
            .with_candidates(totals.ticks),
        )
    });
    Ok((verdict, frontier))
}

enum ChooseOutcome {
    Found(CounterExample),
    Budget,
    Exhausted,
}

fn choose(
    pool: &[(RelId, Tuple)],
    start: usize,
    remaining: usize,
    chosen: &mut Vec<usize>,
    meter: &mut Meter<'_>,
    check: &mut impl FnMut(&[usize]) -> Result<Option<CounterExample>, RcError>,
) -> Result<ChooseOutcome, RcError> {
    if remaining == 0 {
        if !meter.tick() {
            return Ok(ChooseOutcome::Budget);
        }
        if let Some(ce) = check(chosen)? {
            return Ok(ChooseOutcome::Found(ce));
        }
        return Ok(ChooseOutcome::Exhausted);
    }
    for i in start..pool.len() {
        chosen.push(i);
        let outcome = choose(pool, i + 1, remaining - 1, chosen, meter, check)?;
        chosen.pop();
        match outcome {
            ChooseOutcome::Exhausted => {}
            other => return Ok(other),
        }
    }
    Ok(ChooseOutcome::Exhausted)
}

/// Bounded RCQP for undecidable language combinations: search small candidate
/// databases; a candidate that survives [`rcdp_bounded`] within budget is
/// reported (as evidence, not proof) in the `Unknown` description; finding a
/// certified violating extension for *every* candidate is likewise not a
/// proof of emptiness, because the candidate space is unbounded.
pub fn rcqp_bounded(
    setting: &Setting,
    query: &Query,
    budget: &SearchBudget,
) -> Result<QueryVerdict, RcError> {
    rcqp_bounded_probed(setting, query, budget, Probe::disabled())
}

/// [`rcqp_bounded`] with a telemetry probe attached.
pub fn rcqp_bounded_probed(
    setting: &Setting,
    query: &Query,
    budget: &SearchBudget,
    probe: Probe<'_>,
) -> Result<QueryVerdict, RcError> {
    rcqp_bounded_guarded(setting, query, budget, &Guard::new(budget), probe)
}

/// [`rcqp_bounded`] with an explicit [`Guard`] and a telemetry probe.
pub fn rcqp_bounded_guarded(
    setting: &Setting,
    query: &Query,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
) -> Result<QueryVerdict, RcError> {
    let probe = probe.with_ticks(guard);
    let verdict = rcqp_bounded_inner(setting, query, budget, guard, probe)?;
    crate::rcqp::emit_query_verdict(probe, &verdict);
    Ok(verdict)
}

pub(crate) fn rcqp_bounded_inner(
    setting: &Setting,
    query: &Query,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
) -> Result<QueryVerdict, RcError> {
    let empty = Database::empty(&setting.schema);
    let adom = Adom::build(&empty, setting, query, budget.fresh_values);
    let mut values = adom.constants.clone();
    values.extend(adom.fresh.iter().cloned());
    probe.gauge("semidecide.adom_size", values.len() as u64);
    if pool_estimate(setting, values.len()) > MAX_POOL {
        return Ok(QueryVerdict::unknown(SearchStats::new(
            BudgetLimit::PoolBound,
            format!("candidate tuple space exceeds {MAX_POOL}"),
        )));
    }
    let pool = tuple_pool(setting, &empty, &values);
    probe.gauge("semidecide.pool_size", pool.len() as u64);
    let mut meter = Meter::guarded(MeterKind::Candidates, budget.max_candidates, guard);
    let cc_checks = Cell::new(0u64);

    let span = probe.span("semidecide.candidate_search");
    let mut verdict = None;
    let max_size = budget.max_delta_tuples.min(pool.len());
    'sizes: for size in 0..=max_size {
        let mut chosen: Vec<usize> = Vec::with_capacity(size);
        let mut survivor: Option<Database> = None;
        let outcome = choose(
            &pool,
            0,
            size,
            &mut chosen,
            &mut meter,
            &mut |subset: &[usize]| -> Result<Option<CounterExample>, RcError> {
                let mut db = Database::with_relations(setting.schema.len());
                for &i in subset {
                    let (rel, t) = &pool[i];
                    db.insert(*rel, t.clone());
                }
                cc_checks.set(cc_checks.get() + 1);
                if !setting.partially_closed(&db)? {
                    return Ok(None);
                }
                // The per-candidate refutation runs unprobed: thousands of
                // candidates would flood the sink with inner-search events;
                // the outer meter already accounts for the work. The guard is
                // shared so a deadline covers the inner searches too.
                if let Verdict::Unknown { .. } =
                    rcdp_bounded_inner(setting, query, &db, budget, guard, Probe::disabled(), None)?
                {
                    // An Unknown caused by a guard trip is not evidence that
                    // the candidate survived — the refutation search was cut
                    // short. Report nothing; the tripped guard ends the outer
                    // enumeration at its next tick.
                    if guard.tripped().is_some() {
                        return Ok(None);
                    }
                    // No refutation within bound: treat as a survivor and
                    // abuse the Found channel to stop the search.
                    survivor = Some(db);
                    return Ok(Some(CounterExample {
                        delta: Database::with_relations(setting.schema.len()),
                        new_answer: Tuple::unit(),
                    }));
                }
                Ok(None)
            },
        )?;
        match outcome {
            ChooseOutcome::Found(_) => {
                let db = survivor.unwrap_or_else(|| unreachable!("survivor is set before Found"));
                verdict = Some(QueryVerdict::unknown(
                    SearchStats::new(
                        BudgetLimit::MaxDeltaTuples,
                        format!(
                            "undecidable combination: candidate with {} tuple(s) not refuted \
                             within extension bound {} (evidence only)",
                            db.tuple_count(),
                            budget.max_delta_tuples
                        ),
                    )
                    .with_candidates(meter.used()),
                ));
                break 'sizes;
            }
            ChooseOutcome::Budget => {
                let detail = match meter.interrupt() {
                    Some(interrupt) => {
                        probe.interrupt("semidecide.interrupt", interrupt.name(), guard.ticks());
                        meter.stop_detail("candidate")
                    }
                    None => "candidate budget exhausted".to_string(),
                };
                probe.note("explain.frontier", || {
                    format!(
                        "candidate search stopped at database size {size}/{max_size}; \
                         remaining candidates of size {size} and all larger sizes unexplored"
                    )
                });
                verdict = Some(QueryVerdict::unknown(
                    SearchStats::new(meter.stop_limit(BudgetLimit::MaxCandidates), detail)
                        .with_candidates(meter.used()),
                ));
                break 'sizes;
            }
            ChooseOutcome::Exhausted => {}
        }
    }
    drop(span);
    probe.count("semidecide.candidates", meter.used());
    probe.count("semidecide.cc_checks", cc_checks.get());
    // A trip inside the very last candidate's inner refutation leaves the
    // outer loop "exhausted" without another tick to observe it; the blanket
    // claim below would then overstate coverage.
    if verdict.is_none() {
        if let Some(interrupt) = guard.tripped() {
            probe.interrupt("semidecide.interrupt", interrupt.name(), guard.ticks());
            verdict = Some(QueryVerdict::unknown(
                SearchStats::new(
                    interrupt.limit(),
                    match interrupt {
                        crate::guard::Interrupt::Deadline => format!(
                            "wall-clock deadline expired after {} candidate(s)",
                            meter.used()
                        ),
                        crate::guard::Interrupt::Cancelled => {
                            format!("cancelled after {} candidate(s)", meter.used())
                        }
                    },
                )
                .with_candidates(meter.used()),
            ));
        }
    }
    Ok(verdict.unwrap_or_else(|| {
        QueryVerdict::unknown(
            SearchStats::new(
                BudgetLimit::MaxDeltaTuples,
                format!(
                    "undecidable combination: every candidate database with ≤ {max_size} \
                     tuple(s) was refuted within the extension bound"
                ),
            )
            .with_candidates(meter.used()),
        )
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ric_constraints::ConstraintSet;
    use ric_data::{RelationSchema, Schema};
    use ric_query::{parse_program, FoExpr, FoQuery, Term, Var};

    fn edge_schema() -> Schema {
        Schema::from_relations(vec![RelationSchema::infinite("E", &["a", "b"])]).unwrap()
    }

    #[test]
    fn fp_query_incompleteness_found() {
        // Transitive closure query on an open-world edge relation: adding an
        // edge changes the answer, so any finite DB is incomplete; the
        // bounded search certifies this.
        let schema = edge_schema();
        let setting = Setting::open_world(schema.clone());
        let p = parse_program(
            &schema,
            "Tc(X,Y) :- E(X,Y). Tc(X,Y) :- E(X,Z), Tc(Z,Y).",
            "Tc",
        )
        .unwrap();
        let q: Query = p.into();
        let db = Database::empty(&schema);
        let verdict = crate::rcdp(&setting, &q, &db, &SearchBudget::default()).unwrap();
        match verdict {
            Verdict::Incomplete(ce) => {
                assert!(crate::rcdp::certify_counterexample(&setting, &q, &db, &ce).unwrap());
            }
            other => panic!("expected incomplete, got {other:?}"),
        }
    }

    #[test]
    fn fo_query_with_blocking_constraint_reports_unknown() {
        // Q := ∀x∀y ¬E(x,y) (emptiness of E) with a CC forbidding any E
        // tuple: no extension is allowed, so the bounded search finds no
        // counterexample and honestly reports Unknown.
        let schema = edge_schema();
        let e = schema.rel_id("E").unwrap();
        let (x, y) = (Var(0), Var(1));
        let fo = FoQuery::new(
            vec![],
            FoExpr::Forall(
                vec![x, y],
                Box::new(FoExpr::not(FoExpr::Atom(ric_query::Atom::new(
                    e,
                    vec![Term::Var(x), Term::Var(y)],
                )))),
            ),
            vec!["x".into(), "y".into()],
        );
        let block = ric_query::parse_cq(&schema, "Q(X, Y) :- E(X, Y).").unwrap();
        let v = ConstraintSet::new(vec![ric_constraints::ContainmentConstraint::into_empty(
            ric_constraints::CcBody::Cq(block),
        )]);
        let setting = Setting::new(
            schema.clone(),
            Schema::new(),
            Database::with_relations(0),
            v,
        );
        let db = Database::empty(&schema);
        let verdict = crate::rcdp(&setting, &Query::Fo(fo), &db, &SearchBudget::small()).unwrap();
        match verdict {
            Verdict::Unknown { .. } => {}
            other => panic!("expected unknown, got {other:?}"),
        }
    }

    #[test]
    fn fo_query_answer_can_shrink() {
        // Q(x) := E(x,x) ∧ ∀y ¬E(x,y) is non-monotone-ish; simpler: Q :=
        // ¬∃x E(x,x). Adding a loop removes the empty-tuple answer.
        let schema = edge_schema();
        let e = schema.rel_id("E").unwrap();
        let x = Var(0);
        let fo = FoQuery::new(
            vec![],
            FoExpr::not(FoExpr::Exists(
                vec![x],
                Box::new(FoExpr::Atom(ric_query::Atom::new(
                    e,
                    vec![Term::Var(x), Term::Var(x)],
                ))),
            )),
            vec!["x".into()],
        );
        let setting = Setting::open_world(schema.clone());
        let mut db = Database::empty(&schema);
        db.insert(e, Tuple::new([Value::int(1), Value::int(2)]));
        let verdict = crate::rcdp(
            &setting,
            &Query::Fo(fo.clone()),
            &db,
            &SearchBudget::default(),
        )
        .unwrap();
        match verdict {
            Verdict::Incomplete(ce) => {
                // The distinguishing tuple is the unit tuple leaving the
                // answer set.
                assert_eq!(ce.new_answer, Tuple::unit());
            }
            other => panic!("expected incomplete, got {other:?}"),
        }
    }

    #[test]
    fn tuple_pool_respects_finite_domains_and_db() {
        let schema = Schema::from_relations(vec![RelationSchema::new(
            "B",
            vec![ric_data::Attribute::boolean("x")],
        )])
        .unwrap();
        let b = schema.rel_id("B").unwrap();
        let setting = Setting::open_world(schema.clone());
        let mut db = Database::empty(&schema);
        db.insert(b, Tuple::new([Value::int(0)]));
        let pool = tuple_pool(&setting, &db, &[Value::int(42)]);
        // Only (1) remains: (0) is in db and 42 is outside the domain.
        assert_eq!(pool.len(), 1);
        assert_eq!(pool[0].1, Tuple::new([Value::int(1)]));
    }

    #[test]
    fn rcqp_bounded_reports_unknown_with_evidence() {
        let schema = edge_schema();
        let setting = Setting::open_world(schema.clone());
        let p = parse_program(
            &schema,
            "Tc(X,Y) :- E(X,Y). Tc(X,Y) :- E(X,Z), Tc(Z,Y).",
            "Tc",
        )
        .unwrap();
        let verdict = rcqp_bounded(&setting, &Query::Fp(p), &SearchBudget::small()).unwrap();
        match verdict {
            QueryVerdict::Unknown { .. } => {}
            other => panic!("expected unknown, got {other:?}"),
        }
    }
}

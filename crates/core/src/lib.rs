//! # `ric-complete` — relative information completeness
//!
//! The paper's primary contribution (Fan & Geerts, PODS 2009 / TODS 2010):
//! decide whether a *partially closed* database has complete information for
//! a query, relative to master data and containment constraints.
//!
//! * [`Setting`] bundles the database schema `R`, master schema `R_m`, master
//!   data `D_m`, and the constraint set `V` — the "(D_m, V)" of the paper.
//! * [`rcdp::rcdp`] decides **RCDP**: is `D ∈ RCQ(Q, D_m, V)`? Exact for
//!   `L_Q, L_C` among INDs/CQ/UCQ/∃FO⁺ (the Σᵖ₂ cells of Table I, via the
//!   characterizations C1–C4); bounded semi-decision for FO/FP (undecidable
//!   cells, Theorem 3.1).
//! * [`rcqp::rcqp`] decides **RCQP**: is `RCQ(Q, D_m, V)` nonempty? Syntactic
//!   E3/E4 check when `L_C` is INDs (coNP, Proposition 4.3); small-model
//!   search certified by RCDP otherwise (NEXPTIME, Proposition 4.2).
//! * [`characterize`] exposes the characterizations themselves — bounded
//!   databases (C1–C4) and bounded queries (E1–E6) — as checkable predicates.
//! * [`extend::complete_extension`] implements the Section 2.3 paradigm
//!   "guidance for what data should be collected": greedily grow `D` until it
//!   is complete for `Q`, reporting the added tuples.
//! * [`semidecide`] hosts the bounded extension search used for the FO/FP
//!   cells: it can certify *incompleteness* with a witness and otherwise
//!   reports how far it searched.
//!
//! Every positive verdict carries a checkable certificate: `Incomplete` holds
//! a violating extension Δ with `(D ∪ Δ, D_m) |= V` and `Q(D ∪ Δ) ≠ Q(D)`;
//! `Nonempty` holds a database that the RCDP decider certifies complete.
//!
//! ## Observability
//!
//! Every `Unknown` verdict carries a [`SearchStats`] naming the specific
//! [`BudgetLimit`] that ended the search. For live insight into a running
//! decision, the `*_probed` entry points ([`rcdp::rcdp_probed`],
//! [`rcqp::rcqp_probed`], …) accept a [`ric_telemetry::Probe`]: attach a
//! [`ric_telemetry::Collector`] to get counters (valuations enumerated,
//! candidates built, CC checks, query evaluations), gauges (active-domain
//! size, pool size), and per-phase span timings. The plain entry points
//! delegate with a disabled probe, which costs one branch per emission site.

pub mod adom;
pub mod budget;
pub mod characterize;
pub mod checkpoint;
pub mod extend;
pub mod guard;
pub(crate) mod par;
pub mod prepared;
pub mod query;
pub mod rcdp;
pub mod rcqp;
pub mod semidecide;
pub mod setting;
pub mod valuations;
pub mod verdict;

pub use adom::Adom;
pub use budget::{Engine, Meter, MeterKind, SearchBudget};
pub use checkpoint::{
    rcdp_fingerprint, rcdp_resumed_guarded, rcqp_fingerprint, rcqp_resumed_guarded, Checkpoint,
    CheckpointError, DecisionKind, Frontier, Progress, QueryResumption, Resumption,
    CHECKPOINT_VERSION,
};
pub use guard::{CancelToken, FaultPlan, Guard, Interrupt};
pub use par::sched_test;
pub use prepared::PreparedSetting;
pub use query::Query;
pub use rcdp::{rcdp, rcdp_guarded, rcdp_probed};
pub use rcqp::{rcqp, rcqp_guarded, rcqp_probed};
pub use setting::Setting;
pub use verdict::{BudgetLimit, CounterExample, QueryVerdict, RcError, SearchStats, Verdict};

//! Verdicts, certificates, and structured search statistics.

use ric_data::{Database, Tuple};
use ric_query::tableau::TableauError;
use std::fmt;

/// A certified counterexample to relative completeness: an extension Δ such
/// that `(D ∪ Δ, D_m) |= V` but `Q(D ∪ Δ) ≠ Q(D)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CounterExample {
    /// The tuples to add (disjoint from `D`).
    pub delta: Database,
    /// A tuple in `Q(D ∪ Δ) \ Q(D)` witnessing the change.
    pub new_answer: Tuple,
}

/// Which specific bound ended a search without a decision.
///
/// Every `Unknown` verdict names the limit that was hit, so callers can react
/// programmatically — raise exactly the right [`SearchBudget`] knob, shrink
/// the instance, or accept the epistemic state the undecidability theorems
/// force.
///
/// [`SearchBudget`]: crate::SearchBudget
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BudgetLimit {
    /// [`SearchBudget::max_valuations`] ran out during valuation enumeration.
    ///
    /// [`SearchBudget::max_valuations`]: crate::SearchBudget::max_valuations
    MaxValuations,
    /// [`SearchBudget::max_candidates`] ran out during candidate enumeration.
    ///
    /// [`SearchBudget::max_candidates`]: crate::SearchBudget::max_candidates
    MaxCandidates,
    /// The bounded extension search exhausted every extension of at most
    /// [`SearchBudget::max_delta_tuples`] tuples without a decision.
    ///
    /// [`SearchBudget::max_delta_tuples`]: crate::SearchBudget::max_delta_tuples
    MaxDeltaTuples,
    /// The completion loop exceeded [`SearchBudget::max_witness_tuples`].
    ///
    /// [`SearchBudget::max_witness_tuples`]: crate::SearchBudget::max_witness_tuples
    MaxWitnessTuples,
    /// The fresh pool ([`SearchBudget::fresh_values`]) was smaller than the
    /// small-model bound requires, so an exhausted search is inconclusive.
    ///
    /// [`SearchBudget::fresh_values`]: crate::SearchBudget::fresh_values
    FreshValues,
    /// A static pool cap: the candidate tuple space itself is too large to
    /// materialise, independent of the configured budget.
    PoolBound,
    /// A structural limitation of the search strategy, not a budget (e.g.
    /// lower-bound constraints whose bodies are not projections).
    Unsupported,
    /// The wall-clock deadline ([`SearchBudget::deadline`]) expired before a
    /// decision was reached.
    ///
    /// [`SearchBudget::deadline`]: crate::SearchBudget::deadline
    Deadline,
    /// A [`CancelToken`](crate::CancelToken) fired and the decision was
    /// aborted cooperatively.
    Cancelled,
}

impl BudgetLimit {
    /// A stable machine-readable name (used in telemetry notes and the
    /// `BENCH_TABLE*.json` artifacts).
    pub fn name(&self) -> &'static str {
        match self {
            BudgetLimit::MaxValuations => "max_valuations",
            BudgetLimit::MaxCandidates => "max_candidates",
            BudgetLimit::MaxDeltaTuples => "max_delta_tuples",
            BudgetLimit::MaxWitnessTuples => "max_witness_tuples",
            BudgetLimit::FreshValues => "fresh_values",
            BudgetLimit::PoolBound => "pool_bound",
            BudgetLimit::Unsupported => "unsupported",
            BudgetLimit::Deadline => "deadline",
            BudgetLimit::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for BudgetLimit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How far a search went before stopping without a decision.
///
/// Carried by [`Verdict::Unknown`] and [`QueryVerdict::Unknown`] in place of
/// the free-text description earlier revisions used; `Display` still prints
/// that human-readable description, so log output is unchanged, while
/// [`SearchStats::limit`] identifies the exhausted bound structurally.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SearchStats {
    /// The bound that ended the search.
    pub limit: BudgetLimit,
    /// Valuations examined before stopping (0 when the search never reached
    /// valuation enumeration).
    pub valuations: u64,
    /// Candidate extensions / witness databases examined before stopping.
    pub candidates: u64,
    /// Human-readable description of the bound that was hit; this is what
    /// `Display` prints.
    pub detail: String,
}

impl SearchStats {
    /// Stats for a search stopped by `limit`, described by `detail`.
    pub fn new(limit: BudgetLimit, detail: impl Into<String>) -> Self {
        SearchStats {
            limit,
            valuations: 0,
            candidates: 0,
            detail: detail.into(),
        }
    }

    /// Record how many valuations were examined.
    pub fn with_valuations(mut self, n: u64) -> Self {
        self.valuations = n;
        self
    }

    /// Record how many candidates were examined.
    pub fn with_candidates(mut self, n: u64) -> Self {
        self.candidates = n;
        self
    }
}

impl fmt::Display for SearchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.detail)
    }
}

/// Outcome of an RCDP decision.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// `D` is complete for `Q` relative to `(D_m, V)`.
    Complete,
    /// `D` is not complete; the certificate is checkable.
    Incomplete(CounterExample),
    /// The search budget was exhausted before a decision was reached (or the
    /// language combination is undecidable and the bounded search found no
    /// counterexample).
    Unknown {
        /// Which bound was hit, and how far the search went.
        stats: SearchStats,
    },
}

impl Verdict {
    /// Is this `Complete`?
    pub fn is_complete(&self) -> bool {
        matches!(self, Verdict::Complete)
    }

    /// Is this `Incomplete`?
    pub fn is_incomplete(&self) -> bool {
        matches!(self, Verdict::Incomplete(_))
    }

    /// An `Unknown` verdict carrying `stats`.
    pub fn unknown(stats: SearchStats) -> Self {
        Verdict::Unknown { stats }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Complete => write!(f, "complete"),
            Verdict::Incomplete(ce) => {
                write!(
                    f,
                    "incomplete (adding {} tuple(s) yields new answer {})",
                    ce.delta.tuple_count(),
                    ce.new_answer
                )
            }
            Verdict::Unknown { stats } => write!(f, "unknown ({stats})"),
        }
    }
}

/// Outcome of an RCQP decision.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum QueryVerdict {
    /// Some complete database exists; `witness`, when present, is one such
    /// database (certified by the RCDP decider before being returned).
    Nonempty {
        /// A relatively complete database, if one was constructed within
        /// budget.
        witness: Option<Database>,
    },
    /// No database is complete for the query relative to `(D_m, V)`.
    Empty,
    /// Budget exhausted before a decision.
    Unknown {
        /// Which bound was hit, and how far the search went.
        stats: SearchStats,
    },
}

impl QueryVerdict {
    /// Is this `Nonempty`?
    pub fn is_nonempty(&self) -> bool {
        matches!(self, QueryVerdict::Nonempty { .. })
    }

    /// Is this `Empty`?
    pub fn is_empty_verdict(&self) -> bool {
        matches!(self, QueryVerdict::Empty)
    }

    /// An `Unknown` verdict carrying `stats`.
    pub fn unknown(stats: SearchStats) -> Self {
        QueryVerdict::Unknown { stats }
    }
}

impl fmt::Display for QueryVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryVerdict::Nonempty { witness: Some(w) } => {
                write!(f, "nonempty (witness with {} tuple(s))", w.tuple_count())
            }
            QueryVerdict::Nonempty { witness: None } => write!(f, "nonempty"),
            QueryVerdict::Empty => write!(f, "empty"),
            QueryVerdict::Unknown { stats } => write!(f, "unknown ({stats})"),
        }
    }
}

/// Errors raised by the deciders.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RcError {
    /// The input database is not partially closed: `(D, D_m) ⊭ V`. Both
    /// problems take partially closed databases as input (Section 2.1).
    NotPartiallyClosed,
    /// A query or constraint body is malformed (unsafe variable, …).
    Query(TableauError),
    /// A datalog constraint or query failed validation.
    Program(String),
    /// An entry point was invoked outside its supported language combination
    /// (e.g. the exact Σᵖ₂ decider on an FO query). Formerly a panic.
    Unsupported(String),
}

impl From<TableauError> for RcError {
    fn from(e: TableauError) -> Self {
        RcError::Query(e)
    }
}

impl fmt::Display for RcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RcError::NotPartiallyClosed => {
                write!(f, "input database violates the containment constraints")
            }
            RcError::Query(e) => write!(f, "malformed query: {e}"),
            RcError::Program(e) => write!(f, "malformed datalog program: {e}"),
            RcError::Unsupported(e) => write!(f, "unsupported invocation: {e}"),
        }
    }
}

impl std::error::Error for RcError {}

//! Verdicts and certificates.

use ric_data::{Database, Tuple};
use ric_query::tableau::TableauError;
use std::fmt;

/// A certified counterexample to relative completeness: an extension Δ such
/// that `(D ∪ Δ, D_m) |= V` but `Q(D ∪ Δ) ≠ Q(D)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CounterExample {
    /// The tuples to add (disjoint from `D`).
    pub delta: Database,
    /// A tuple in `Q(D ∪ Δ) \ Q(D)` witnessing the change.
    pub new_answer: Tuple,
}

/// Outcome of an RCDP decision.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// `D` is complete for `Q` relative to `(D_m, V)`.
    Complete,
    /// `D` is not complete; the certificate is checkable.
    Incomplete(CounterExample),
    /// The search budget was exhausted before a decision was reached (or the
    /// language combination is undecidable and the bounded search found no
    /// counterexample).
    Unknown {
        /// Human-readable description of the bound that was hit.
        searched: String,
    },
}

impl Verdict {
    /// Is this `Complete`?
    pub fn is_complete(&self) -> bool {
        matches!(self, Verdict::Complete)
    }

    /// Is this `Incomplete`?
    pub fn is_incomplete(&self) -> bool {
        matches!(self, Verdict::Incomplete(_))
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Complete => write!(f, "complete"),
            Verdict::Incomplete(ce) => {
                write!(f, "incomplete (adding {} tuple(s) yields new answer {})",
                    ce.delta.tuple_count(), ce.new_answer)
            }
            Verdict::Unknown { searched } => write!(f, "unknown ({searched})"),
        }
    }
}

/// Outcome of an RCQP decision.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum QueryVerdict {
    /// Some complete database exists; `witness`, when present, is one such
    /// database (certified by the RCDP decider before being returned).
    Nonempty {
        /// A relatively complete database, if one was constructed within
        /// budget.
        witness: Option<Database>,
    },
    /// No database is complete for the query relative to `(D_m, V)`.
    Empty,
    /// Budget exhausted before a decision.
    Unknown {
        /// Human-readable description of the bound that was hit.
        searched: String,
    },
}

impl QueryVerdict {
    /// Is this `Nonempty`?
    pub fn is_nonempty(&self) -> bool {
        matches!(self, QueryVerdict::Nonempty { .. })
    }

    /// Is this `Empty`?
    pub fn is_empty_verdict(&self) -> bool {
        matches!(self, QueryVerdict::Empty)
    }
}

/// Errors raised by the deciders.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RcError {
    /// The input database is not partially closed: `(D, D_m) ⊭ V`. Both
    /// problems take partially closed databases as input (Section 2.1).
    NotPartiallyClosed,
    /// A query or constraint body is malformed (unsafe variable, …).
    Query(TableauError),
    /// A datalog constraint or query failed validation.
    Program(String),
}

impl From<TableauError> for RcError {
    fn from(e: TableauError) -> Self {
        RcError::Query(e)
    }
}

impl fmt::Display for RcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RcError::NotPartiallyClosed => {
                write!(f, "input database violates the containment constraints")
            }
            RcError::Query(e) => write!(f, "malformed query: {e}"),
            RcError::Program(e) => write!(f, "malformed datalog program: {e}"),
        }
    }
}

impl std::error::Error for RcError {}

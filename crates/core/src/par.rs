//! A hand-rolled work pool for the deciders' enumeration loops.
//!
//! The hot searches (valuation enumeration in `rcdp`, bounded extensions in
//! `semidecide`, the candidate pre-filter in `rcqp`) are embarrassingly
//! parallel: the candidate space splits into independent *chunks* whose
//! concatenation, in index order, is exactly the sequence the sequential
//! engine enumerates. [`run_chunks`] fans the chunks out across
//! `std::thread` workers (the workspace builds fully offline — no rayon) and
//! [`PoolRun::merge_search`] folds the per-chunk results back together with a
//! schedule-independent rule:
//!
//! * chunks are claimed dynamically but **merged in index order**;
//! * the first chunk (by index, not by completion time) that reports a
//!   terminal event — a hit, budget exhaustion, or a guard trip — decides
//!   the outcome, exactly as the sequential engine would have stopped there;
//! * chunks with a higher index than an already-posted terminal event are
//!   skipped, but every chunk at or below the final deciding index is
//!   guaranteed to execute, so the deciding chunk cannot be raced past;
//! * per-chunk statistics are summed **only up to the deciding chunk**, so a
//!   run that decides reports the same telemetry counters the sequential
//!   engine reports.
//!
//! Because each chunk's result is a pure function of the chunk and its own
//! budget slice, the merged outcome is independent of thread count and
//! interleaving. Robustness integrates through [`Guard::worker`]: every
//! worker polls the decision's deadline and cancel tokens plus a pool-local
//! token, and any worker trip broadcasts through that token so the siblings
//! stop at their next amortized poll. A panicking chunk is caught on the
//! worker ([`std::panic::catch_unwind`]), carried home, and re-thrown on the
//! calling thread during the merge — but only if no lower-index chunk already
//! decided, mirroring where the sequential engine would have unwound — where
//! the facade's `try_` entry points convert it to `DecisionError::Panic`.

use crate::guard::{CancelToken, Guard, Interrupt};
use crate::valuations::PROFILE_DEPTH;
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Number of per-constraint pruning-attribution slots carried through the
/// chunk stats; constraint indexes past the last slot clamp into it.
pub(crate) const CC_ATTR: usize = 16;

/// How one chunk ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ChunkEvent {
    /// Ran to completion without deciding anything (or, for gather jobs,
    /// produced its value).
    Clear,
    /// Terminal: found what the search is looking for (payload in
    /// [`ChunkResult::value`]).
    Hit,
    /// Terminal: the chunk's budget slice ran out.
    Exhausted,
    /// Terminal: the worker guard tripped (deadline, cancellation, or a
    /// broadcast trip from a sibling worker).
    Interrupted(Interrupt),
}

impl ChunkEvent {
    /// Does this event end the search (skip higher-index chunks)?
    pub(crate) fn is_terminal(&self) -> bool {
        !matches!(self, ChunkEvent::Clear)
    }
}

/// Per-chunk work counters, summed by the merge into decision telemetry.
///
/// Worker threads never emit probe events directly (sinks are not `Sync`);
/// everything a chunk wants to report rides home through this struct and is
/// emitted by the coordinating thread after the merge.
#[derive(Clone, Copy, Default, Debug)]
pub(crate) struct ChunkStats {
    /// Meter ticks the chunk consumed (valuations / candidates examined).
    pub ticks: u64,
    /// Containment-constraint checks performed.
    pub cc_checks: u64,
    /// CC checks skipped by the delta-aware strategy.
    pub cc_skipped: u64,
    /// Index probes issued (thread-local [`ric_data::index::probe_count`]
    /// deltas, snapshotted on the worker that did the probing).
    pub probes: u64,
    /// Query evaluations performed.
    pub query_evals: u64,
    /// Candidates tried per assignment depth (profiler data; see
    /// [`crate::valuations::DepthProfile`]).
    pub depth_candidates: [u64; PROFILE_DEPTH],
    /// Subtrees pruned per assignment depth.
    pub depth_pruned: [u64; PROFILE_DEPTH],
    /// Subtrees pruned by the head filter.
    pub head_prunes: u64,
    /// Candidate rejections attributed to the index of the first violated
    /// containment constraint (clamped at [`CC_ATTR`] slots).
    pub cc_viol: [u64; CC_ATTR],
}

impl ChunkStats {
    /// Fold `other` into `self` (all fields sum).
    pub(crate) fn absorb(&mut self, other: &ChunkStats) {
        self.ticks += other.ticks;
        self.cc_checks += other.cc_checks;
        self.cc_skipped += other.cc_skipped;
        self.probes += other.probes;
        self.query_evals += other.query_evals;
        for (a, b) in self
            .depth_candidates
            .iter_mut()
            .zip(&other.depth_candidates)
        {
            *a += b;
        }
        for (a, b) in self.depth_pruned.iter_mut().zip(&other.depth_pruned) {
            *a += b;
        }
        self.head_prunes += other.head_prunes;
        for (a, b) in self.cc_viol.iter_mut().zip(&other.cc_viol) {
            *a += b;
        }
    }
}

/// What one chunk returns to the pool.
#[derive(Debug)]
pub(crate) struct ChunkResult<R> {
    /// How the chunk ended.
    pub event: ChunkEvent,
    /// The chunk's payload: the found witness for [`ChunkEvent::Hit`], or a
    /// gathered value for all-must-run jobs.
    pub value: Option<R>,
    /// Work counters.
    pub stats: ChunkStats,
}

/// One chunk's slot in the pool output.
#[derive(Debug)]
pub(crate) enum ChunkSlot<R> {
    /// The chunk ran (possibly ending on a terminal event). Boxed: the
    /// result carries a full [`ChunkStats`], which dwarfs the panic payload.
    Done(Box<ChunkResult<R>>),
    /// The chunk panicked; the payload is re-thrown during the merge.
    Panicked(Box<dyn Any + Send>),
}

/// One chunk execution on the pool's wall-clock timeline: which worker ran
/// which chunk, and when, in microseconds since the pool started. Profiler
/// data only — inherently schedule-dependent, so it must never feed a
/// counter; the deciders surface it as trace notes.
#[derive(Clone, Copy, Debug)]
pub(crate) struct TimelineEntry {
    /// Worker id (0 = the calling thread).
    pub worker: usize,
    /// Chunk index.
    pub chunk: usize,
    /// Microseconds from pool start to chunk start.
    pub start_micros: u128,
    /// Microseconds from pool start to chunk end.
    pub end_micros: u128,
}

/// Raw pool output: one slot per chunk (`None` = skipped past a terminal
/// event), plus scheduling counters.
#[derive(Debug)]
pub(crate) struct PoolRun<R> {
    /// Per-chunk outcomes, indexed by chunk.
    pub slots: Vec<Option<ChunkSlot<R>>>,
    /// Chunks executed by a worker other than their round-robin home — the
    /// `par.steal` telemetry counter.
    pub steals: u64,
    /// Chunks actually executed — the `par.chunk` telemetry counter.
    pub executed: u64,
    /// Per-worker chunk timeline, sorted by chunk index (the content — which
    /// worker, what wall time — remains schedule-dependent).
    pub timeline: Vec<TimelineEntry>,
}

/// The merged, schedule-independent outcome of a search-style pool run.
#[derive(Debug)]
pub(crate) enum PoolOutcome<R> {
    /// Every chunk ran clear: the search space is exhausted.
    Clear,
    /// The earliest chunk (by index) with a terminal event found a witness.
    Hit(R),
    /// The earliest terminal event was a budget-slice exhaustion.
    Exhausted,
    /// The earliest terminal event was a guard trip.
    Interrupted(Interrupt),
}

/// A merged pool run: the deciding outcome plus sequential-equivalent stats.
#[derive(Debug)]
pub(crate) struct PoolMerge<R> {
    /// The deciding outcome (see [`PoolRun::merge_search`]).
    pub outcome: PoolOutcome<R>,
    /// Stats summed over chunks up to and including the deciding chunk —
    /// exactly the work the sequential engine performs on a deciding run.
    pub stats: ChunkStats,
    /// Chunks executed by a non-home worker.
    pub steals: u64,
    /// Chunks executed in total (may exceed the deciding index: in-flight
    /// higher chunks run to completion, their stats are not merged).
    pub executed: u64,
    /// Index of the chunk whose terminal event decided the outcome (`None`
    /// when every chunk ran clear). Schedule-independent, like the outcome:
    /// it is the index at which the sequential engine would have stopped.
    pub deciding: Option<usize>,
}

/// A merged gather-style pool run: every chunk's value, in chunk index order.
#[derive(Debug)]
pub(crate) struct PoolGather<R> {
    /// Per-chunk values, concatenation-ready in index order.
    pub values: Vec<R>,
    /// Chunks executed by a non-home worker.
    pub steals: u64,
    /// Chunks executed in total.
    pub executed: u64,
}

impl<R> PoolRun<R> {
    /// Merge a gather-style run — a job where every chunk runs to completion
    /// and produces a value ([`ChunkEvent::Clear`], no terminal events, so no
    /// chunk is ever skipped). Values come back in chunk index order, which
    /// makes their concatenation schedule-independent. A recorded panic
    /// re-throws on the calling thread, earliest chunk first.
    pub(crate) fn merge_gather(self) -> PoolGather<R> {
        let mut values = Vec::with_capacity(self.slots.len());
        for slot in self.slots {
            let filled = slot.unwrap_or_else(|| unreachable!("gather jobs never skip chunks"));
            match filled {
                ChunkSlot::Panicked(payload) => resume_unwind(payload),
                ChunkSlot::Done(result) => {
                    values.push(
                        result.value.unwrap_or_else(|| {
                            unreachable!("gather chunks always produce a value")
                        }),
                    );
                }
            }
        }
        PoolGather {
            values,
            steals: self.steals,
            executed: self.executed,
        }
    }

    /// Merge with first-terminal-wins semantics: walk the chunks in index
    /// order and stop at the first terminal event, which is by construction
    /// the same chunk at which the sequential engine would have stopped. A
    /// recorded panic re-throws here (on the calling thread) unless an
    /// earlier chunk already decided.
    ///
    /// One asymmetry is corrected: a real deadline trip on one worker
    /// broadcasts to its siblings as a pool-token *cancellation*, so a
    /// lower-index chunk can report `Interrupted(Cancelled)` for what was
    /// actually the decision deadline expiring. When any executed chunk saw
    /// `Interrupt::Deadline`, a cancelled merge outcome is upgraded to
    /// `Interrupted(Deadline)` — matching what the sequential engine, which
    /// observes the deadline directly, would report.
    pub(crate) fn merge_search(self) -> PoolMerge<R> {
        let saw_deadline = self.slots.iter().any(|slot| {
            matches!(
                slot,
                Some(ChunkSlot::Done(result))
                    if matches!(result.event, ChunkEvent::Interrupted(Interrupt::Deadline))
            )
        });
        let mut stats = ChunkStats::default();
        let mut outcome = PoolOutcome::Clear;
        let mut deciding = None;
        for (idx, slot) in self.slots.into_iter().enumerate() {
            match slot {
                // Skipped: a lower-index chunk posted a terminal event first,
                // so the merge must already have returned by the time a
                // skipped slot is reached. Nothing to merge.
                None => continue,
                Some(ChunkSlot::Panicked(payload)) => resume_unwind(payload),
                Some(ChunkSlot::Done(result)) => {
                    stats.absorb(&result.stats);
                    match result.event {
                        ChunkEvent::Clear => continue,
                        ChunkEvent::Hit => {
                            outcome = PoolOutcome::Hit(result.value.unwrap_or_else(|| {
                                unreachable!("a Hit chunk carries its witness")
                            }));
                        }
                        ChunkEvent::Exhausted => outcome = PoolOutcome::Exhausted,
                        ChunkEvent::Interrupted(Interrupt::Cancelled) if saw_deadline => {
                            outcome = PoolOutcome::Interrupted(Interrupt::Deadline);
                        }
                        ChunkEvent::Interrupted(interrupt) => {
                            outcome = PoolOutcome::Interrupted(interrupt);
                        }
                    }
                    deciding = Some(idx);
                    break;
                }
            }
        }
        PoolMerge {
            outcome,
            stats,
            steals: self.steals,
            executed: self.executed,
            deciding,
        }
    }
}

/// Run `n_chunks` chunks of work across `workers` threads.
///
/// `job(chunk, guard)` runs each chunk; the guard is a [`Guard::worker`] of
/// `parent` (same deadline and tokens, plus the pool-local broadcast token),
/// shared by all chunks one worker executes so fault-plan tick counts
/// accumulate per worker. Workers claim chunk indexes dynamically; once a
/// terminal event is posted at index `k`, chunks above `k` are skipped.
/// Panics inside `job` are caught per chunk and re-thrown at merge time.
///
/// The calling thread is worker 0, so `workers == 1` runs everything inline
/// with no thread spawned at all. In tests,
/// [`sched_test::with_schedule`] perturbs the *claim order* of the chunks —
/// the merge is index-ordered, so results must not change.
pub(crate) fn run_chunks<R: Send>(
    workers: usize,
    n_chunks: usize,
    parent: &Guard,
    job: &(dyn Fn(usize, &Guard) -> ChunkResult<R> + Sync),
) -> PoolRun<R> {
    let n_workers = workers.max(1).min(n_chunks.max(1));
    let pool = CancelToken::new();
    // Worker guards are built on the calling thread (Guard is Send, not
    // Sync) and moved into their threads.
    let mut guards: Vec<Guard> = (0..n_workers).map(|_| parent.worker(&pool)).collect();
    let order: Vec<usize> = match sched_test::current_seed() {
        Some(seed) => sched_test::permutation(seed, n_chunks),
        None => (0..n_chunks).collect(),
    };

    let next = AtomicUsize::new(0);
    let first_terminal = AtomicUsize::new(usize::MAX);
    let steals = AtomicU64::new(0);
    let executed = AtomicU64::new(0);
    let slots: Mutex<Vec<Option<ChunkSlot<R>>>> = Mutex::new((0..n_chunks).map(|_| None).collect());
    let pool_start = Instant::now();
    let timeline: Mutex<Vec<TimelineEntry>> = Mutex::new(Vec::with_capacity(n_chunks));

    let run_worker = |wid: usize, guard: Guard| loop {
        let pos = next.fetch_add(1, Ordering::Relaxed);
        if pos >= n_chunks {
            break;
        }
        let chunk = order[pos];
        // `fetch_min` only ever lowers `first_terminal`, so a chunk above
        // the current value is also above the final value: skipping it can
        // never skip the deciding chunk.
        if chunk > first_terminal.load(Ordering::Acquire) {
            continue;
        }
        if chunk % n_workers != wid {
            steals.fetch_add(1, Ordering::Relaxed);
        }
        executed.fetch_add(1, Ordering::Relaxed);
        let start_micros = pool_start.elapsed().as_micros();
        let slot = match catch_unwind(AssertUnwindSafe(|| job(chunk, &guard))) {
            Ok(result) => {
                if result.event.is_terminal() {
                    first_terminal.fetch_min(chunk, Ordering::AcqRel);
                }
                ChunkSlot::Done(Box::new(result))
            }
            Err(payload) => {
                first_terminal.fetch_min(chunk, Ordering::AcqRel);
                ChunkSlot::Panicked(payload)
            }
        };
        timeline
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(TimelineEntry {
                worker: wid,
                chunk,
                start_micros,
                end_micros: pool_start.elapsed().as_micros(),
            });
        // Job panics are caught above, so the lock cannot be poisoned by a
        // chunk; recover defensively anyway.
        slots.lock().unwrap_or_else(PoisonError::into_inner)[chunk] = Some(slot);
    };

    std::thread::scope(|s| {
        let spawned = guards.split_off(1);
        for (i, guard) in spawned.into_iter().enumerate() {
            let run = &run_worker;
            s.spawn(move || run(i + 1, guard));
        }
        let g0 = guards
            .pop()
            .unwrap_or_else(|| unreachable!("guards starts with one entry per worker"));
        run_worker(0, g0);
    });

    let mut timeline = timeline
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    timeline.sort_by_key(|e| e.chunk);
    PoolRun {
        slots: slots.into_inner().unwrap_or_else(PoisonError::into_inner),
        steals: steals.into_inner(),
        executed: executed.into_inner(),
        timeline,
    }
}

/// A pool run after chunk-loss recovery (see [`run_chunks_recovering`]).
#[derive(Debug)]
pub(crate) struct RecoveredRun<R> {
    /// The pool output with every recoverable chunk resolved; merge-ready
    /// when [`RecoveredRun::lost`] is empty.
    pub run: PoolRun<R>,
    /// Panicked chunks whose quarantine retry succeeded — the
    /// `recover.chunk` telemetry counter.
    pub recovered: u64,
    /// Chunks that panicked again on retry, in index order. When non-empty
    /// the run still holds their panic payloads (merging would re-raise);
    /// callers degrade `Parallel → Indexed` instead of merging.
    pub lost: Vec<usize>,
}

/// [`run_chunks`] with graceful chunk-loss recovery: a panicked chunk is
/// quarantined and re-enqueued once on the calling thread instead of
/// unconditionally re-raising at merge time, and chunks that were skipped
/// solely because the panic posted a first-terminal index are filled in.
///
/// The walk is index-ordered with the same first-terminal-wins rule as
/// [`PoolRun::merge_search`], so the recovered run is indistinguishable from
/// a pool where the chunk never died: a genuine terminal event below a dead
/// chunk still masks it, and a retried chunk re-runs against its original
/// budget slice (chunk results are pure functions of the chunk and its
/// slice). A chunk that dies twice is reported in [`RecoveredRun::lost`]
/// rather than re-run forever — the caller's degradation ladder takes over.
pub(crate) fn run_chunks_recovering<R: Send>(
    workers: usize,
    n_chunks: usize,
    parent: &Guard,
    job: &(dyn Fn(usize, &Guard) -> ChunkResult<R> + Sync),
) -> RecoveredRun<R> {
    let mut run = run_chunks(workers, n_chunks, parent, job);
    let mut recovered = 0u64;
    let mut lost = Vec::new();
    let pool = CancelToken::new();
    let mut idx = 0;
    while idx < run.slots.len() {
        let is_retry = match &run.slots[idx] {
            Some(ChunkSlot::Done(result)) => {
                if result.event.is_terminal() {
                    // Higher-index chunks are legitimately skipped, exactly
                    // as the sequential engine never reaches them.
                    break;
                }
                idx += 1;
                continue;
            }
            // A quarantined panic: retry the chunk once.
            Some(ChunkSlot::Panicked(_)) => true,
            // Skipped only because a panic posted a first-terminal index
            // below it (any genuine terminal would have broken above).
            None => false,
        };
        let guard = parent.worker(&pool);
        match catch_unwind(AssertUnwindSafe(|| job(idx, &guard))) {
            Ok(result) => {
                if is_retry {
                    recovered += 1;
                }
                run.executed += 1;
                let terminal = result.event.is_terminal();
                run.slots[idx] = Some(ChunkSlot::Done(Box::new(result)));
                if terminal {
                    break;
                }
            }
            Err(payload) => {
                run.slots[idx] = Some(ChunkSlot::Panicked(payload));
                lost.push(idx);
                break;
            }
        }
        idx += 1;
    }
    RecoveredRun {
        run,
        recovered,
        lost,
    }
}

/// The stop-detail string for a merged pool interrupt, matching
/// [`crate::budget::Meter::stop_detail`]'s wording exactly so the verdict
/// surface does not depend on the engine.
pub(crate) fn interrupt_detail(interrupt: Interrupt, used: u64, noun: &str) -> String {
    match interrupt {
        Interrupt::Deadline => format!("wall-clock deadline expired after {used} {noun}(s)"),
        Interrupt::Cancelled => format!("cancelled after {used} {noun}(s)"),
    }
}

/// Split `total` budget units across `n_chunks` chunks: `chunk` gets
/// `total / n_chunks`, with the remainder spread over the first chunks. The
/// split depends only on the chunk index, never on the schedule, so chunk
/// outcomes stay deterministic. Saturates for effectively-unbounded budgets
/// (`u64::MAX` splits to `u64::MAX / n`, still effectively unbounded).
pub(crate) fn chunk_budget(total: u64, n_chunks: usize, chunk: usize) -> u64 {
    let n = n_chunks.max(1) as u64;
    let base = total / n;
    let remainder = total % n;
    base + u64::from((chunk as u64) < remainder)
}

/// Deterministic schedule perturbation for the parallel test suites.
///
/// `with_schedule` installs a seed in thread-local state; any pool started
/// on that thread while the closure runs claims its chunks in the seeded
/// `permutation` order instead of ascending order. The merge is
/// index-ordered, so a correct scheduler returns identical results under
/// every schedule — the differential suites assert exactly that across many
/// seeds, making interleaving bugs reproducible instead of lucky.
#[doc(hidden)]
pub mod sched_test {
    use ric_data::SplitMix64;
    use std::cell::Cell;

    thread_local! {
        static SCHEDULE_SEED: Cell<Option<u64>> = const { Cell::new(None) };
    }

    /// Run `f` with pools started on this thread claiming chunks in the
    /// order [`permutation`]`(seed, n)`. Restores the previous schedule on
    /// exit (including unwinds). Only affects pools whose coordinator is the
    /// calling thread; nested pools spawned from worker threads keep
    /// ascending claim order.
    pub fn with_schedule<T>(seed: u64, f: impl FnOnce() -> T) -> T {
        struct Restore(Option<u64>);
        impl Drop for Restore {
            fn drop(&mut self) {
                SCHEDULE_SEED.with(|s| s.set(self.0));
            }
        }
        let _restore = Restore(SCHEDULE_SEED.with(|s| s.replace(Some(seed))));
        f()
    }

    /// The seed installed by [`with_schedule`] on this thread, if any.
    pub(crate) fn current_seed() -> Option<u64> {
        SCHEDULE_SEED.with(Cell::get)
    }

    /// A seeded Fisher–Yates permutation of `0..n`.
    pub fn permutation(seed: u64, n: usize) -> Vec<usize> {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut out: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..i + 1);
            out.swap(i, j);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::SearchBudget;
    use crate::guard::FaultPlan;

    fn clear_chunk(ticks: u64) -> ChunkResult<u32> {
        ChunkResult {
            event: ChunkEvent::Clear,
            value: None,
            stats: ChunkStats {
                ticks,
                ..ChunkStats::default()
            },
        }
    }

    fn hit_chunk(value: u32) -> ChunkResult<u32> {
        ChunkResult {
            event: ChunkEvent::Hit,
            value: Some(value),
            stats: ChunkStats::default(),
        }
    }

    #[test]
    fn all_clear_merges_to_clear_with_summed_stats() {
        for workers in [1, 2, 4, 7] {
            let guard = Guard::new(&SearchBudget::default());
            let run = run_chunks(workers, 10, &guard, &|chunk, _g| clear_chunk(chunk as u64));
            assert_eq!(run.executed, 10);
            let merge = run.merge_search();
            assert!(matches!(merge.outcome, PoolOutcome::Clear));
            assert_eq!(merge.stats.ticks, (0..10).sum::<u64>());
        }
    }

    #[test]
    fn earliest_hit_wins_regardless_of_workers_and_schedule() {
        for workers in [1, 2, 4, 7] {
            for seed in 0..20 {
                let guard = Guard::new(&SearchBudget::default());
                let run = sched_test::with_schedule(seed, || {
                    run_chunks(workers, 16, &guard, &|chunk, _g| {
                        // Hits at chunks 5, 9, 12 — index 5 must win.
                        if [5, 9, 12].contains(&chunk) {
                            hit_chunk(chunk as u32)
                        } else {
                            clear_chunk(1)
                        }
                    })
                });
                match run.merge_search().outcome {
                    PoolOutcome::Hit(v) => assert_eq!(v, 5, "workers={workers} seed={seed}"),
                    other => panic!("expected a hit, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn stats_sum_stops_at_the_deciding_chunk() {
        let guard = Guard::new(&SearchBudget::default());
        let run = run_chunks(1, 8, &guard, &|chunk, _g| {
            if chunk == 3 {
                hit_chunk(3)
            } else {
                clear_chunk(10)
            }
        });
        let merge = run.merge_search();
        // Sequential would have examined chunks 0..=3 only.
        assert_eq!(merge.stats.ticks, 30);
        assert!(matches!(merge.outcome, PoolOutcome::Hit(3)));
    }

    #[test]
    fn chunk_panic_resumes_on_the_caller() {
        let guard = Guard::new(&SearchBudget::default());
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let run = run_chunks(4, 8, &guard, &|chunk, _g| {
                if chunk == 2 {
                    panic!("chunk 2 exploded");
                }
                clear_chunk(1)
            });
            run.merge_search()
        }));
        let payload = caught.expect_err("panic must propagate through the merge");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("unexpected payload");
        assert!(msg.contains("chunk 2 exploded"));
    }

    #[test]
    fn hit_below_a_panic_masks_the_panic_like_sequential_would() {
        // Sequential stops at chunk 1's hit and never runs chunk 6, so the
        // parallel merge must return the hit even though chunk 6 panicked.
        let guard = Guard::new(&SearchBudget::default());
        let run = run_chunks(4, 8, &guard, &|chunk, _g| {
            if chunk == 1 {
                hit_chunk(1)
            } else if chunk == 6 {
                panic!("chunk 6 exploded");
            } else {
                clear_chunk(1)
            }
        });
        match run.merge_search().outcome {
            PoolOutcome::Hit(v) => assert_eq!(v, 1),
            other => panic!("expected the hit, got {other:?}"),
        }
    }

    #[test]
    fn fault_trip_on_one_worker_interrupts_the_pool() {
        // The fault plan cancels after 5 per-worker guard ticks; every chunk
        // ticks its guard, so whichever worker reaches the trip first
        // broadcasts to the others through the pool token.
        let plan = FaultPlan::new().cancel_at_tick(5);
        let guard = Guard::new(&SearchBudget::default())
            .with_fault_plan(plan)
            .with_check_interval(0);
        let run = run_chunks(4, 64, &guard, &|_chunk, g| {
            for _ in 0..3 {
                if let Some(interrupt) = g.check() {
                    return ChunkResult {
                        event: ChunkEvent::Interrupted(interrupt),
                        value: None,
                        stats: ChunkStats::default(),
                    };
                }
            }
            clear_chunk(3)
        });
        assert!(
            run.executed < 64,
            "the broadcast must stop the pool early (executed {})",
            run.executed
        );
        match run.merge_search().outcome {
            PoolOutcome::Interrupted(Interrupt::Cancelled) => {}
            other => panic!("expected a cancellation, got {other:?}"),
        }
    }

    #[test]
    fn deadline_trip_is_reported_as_deadline_not_cancellation() {
        // Race shape: the worker on chunk 1 observes the real deadline and
        // broadcasts; the worker still finishing chunk 0 sees the broadcast
        // as a pool-token cancellation. The merge finds chunk 0 first but
        // must report Deadline — what the sequential engine, observing the
        // deadline directly, would report.
        let interrupted = |i: Interrupt| {
            Some(ChunkSlot::Done(Box::new(ChunkResult::<u32> {
                event: ChunkEvent::Interrupted(i),
                value: None,
                stats: ChunkStats::default(),
            })))
        };
        let run = PoolRun {
            slots: vec![
                interrupted(Interrupt::Cancelled),
                interrupted(Interrupt::Deadline),
            ],
            steals: 0,
            executed: 2,
            timeline: Vec::new(),
        };
        match run.merge_search().outcome {
            PoolOutcome::Interrupted(Interrupt::Deadline) => {}
            other => panic!("expected the deadline, got {other:?}"),
        }
    }

    #[test]
    fn recovery_retries_a_panicked_chunk_and_fills_skipped_slots() {
        use std::sync::atomic::AtomicBool;
        let died = AtomicBool::new(false);
        let guard = Guard::new(&SearchBudget::default());
        let rec = run_chunks_recovering(4, 8, &guard, &|chunk, _g| {
            if chunk == 2 && !died.swap(true, Ordering::Relaxed) {
                panic!("chunk 2 exploded once");
            }
            clear_chunk(1)
        });
        assert_eq!(rec.recovered, 1);
        assert!(rec.lost.is_empty());
        // Every slot resolved: chunks skipped past the panic were filled in.
        assert!(rec
            .run
            .slots
            .iter()
            .all(|s| matches!(s, Some(ChunkSlot::Done(_)))));
        let merge = rec.run.merge_search();
        assert!(matches!(merge.outcome, PoolOutcome::Clear));
        assert_eq!(merge.stats.ticks, 8, "full sequential-equivalent stats");
    }

    #[test]
    fn recovery_reports_a_twice_dead_chunk_as_lost() {
        let guard = Guard::new(&SearchBudget::default());
        let rec = run_chunks_recovering(2, 6, &guard, &|chunk, _g| {
            if chunk == 3 {
                panic!("chunk 3 always explodes");
            }
            clear_chunk(1)
        });
        assert_eq!(rec.recovered, 0);
        assert_eq!(rec.lost, vec![3]);
    }

    #[test]
    fn recovery_keeps_a_hit_below_a_dead_chunk() {
        // Sequential stops at chunk 1's hit; the dead chunk 6 is never
        // retried (it sits above the deciding index).
        let guard = Guard::new(&SearchBudget::default());
        let rec = run_chunks_recovering(4, 8, &guard, &|chunk, _g| {
            if chunk == 1 {
                hit_chunk(1)
            } else if chunk == 6 {
                panic!("chunk 6 exploded");
            } else {
                clear_chunk(1)
            }
        });
        assert!(rec.lost.is_empty(), "a masked panic is not a loss");
        match rec.run.merge_search().outcome {
            PoolOutcome::Hit(v) => assert_eq!(v, 1),
            other => panic!("expected the hit, got {other:?}"),
        }
    }

    #[test]
    fn recovery_retry_observes_the_injected_worker_panic_budget() {
        // fires = 1: the first death is injected mid-chunk by the guard, the
        // retry survives. fires = 2: the retry dies too and the chunk is lost.
        for (fires, expect_lost) in [(1u32, false), (2, true)] {
            let plan = FaultPlan::new().worker_panic_at_tick(0, fires);
            let guard = Guard::new(&SearchBudget::default())
                .with_fault_plan(plan)
                .with_check_interval(0);
            let rec = run_chunks_recovering(1, 4, &guard, &|_chunk, g| {
                if let Some(interrupt) = g.check() {
                    return ChunkResult {
                        event: ChunkEvent::Interrupted(interrupt),
                        value: None,
                        stats: ChunkStats::default(),
                    };
                }
                clear_chunk(1)
            });
            assert_eq!(
                !rec.lost.is_empty(),
                expect_lost,
                "fires={fires}: lost={:?}",
                rec.lost
            );
            if !expect_lost {
                assert_eq!(rec.recovered, 1);
            }
        }
    }

    #[test]
    fn chunk_budget_splits_exactly() {
        let total: u64 = 103;
        let split: u64 = (0..10).map(|c| chunk_budget(total, 10, c)).sum();
        assert_eq!(split, total);
        assert_eq!(chunk_budget(103, 10, 0), 11);
        assert_eq!(chunk_budget(103, 10, 3), 10);
        // Effectively-unbounded budgets stay effectively unbounded.
        assert!(chunk_budget(u64::MAX, 4, 0) >= u64::MAX / 4);
    }

    #[test]
    fn schedule_permutation_is_a_permutation() {
        for seed in 0..10 {
            let mut p = sched_test::permutation(seed, 33);
            p.sort_unstable();
            assert_eq!(p, (0..33).collect::<Vec<_>>());
        }
        assert_ne!(
            sched_test::permutation(1, 33),
            sched_test::permutation(2, 33),
            "different seeds give different schedules"
        );
    }

    #[test]
    fn steals_and_chunks_are_counted() {
        let guard = Guard::new(&SearchBudget::default());
        let run = run_chunks(2, 6, &guard, &|_c, _g| clear_chunk(1));
        assert_eq!(run.executed, 6);
        // With dynamic claiming steals are schedule-dependent; only the
        // invariant executed ≥ steals is stable.
        assert!(run.steals <= run.executed);
    }
}

//! Cooperative interruption for the decision stack: wall-clock deadlines,
//! cross-thread cancellation, and deterministic fault injection.
//!
//! The deciders run exponential searches (Σᵖ₂ / NEXPTIME in the decidable
//! cells, unbounded in the undecidable ones), so every decision call needs a
//! way to stop that does not depend on the count budgets alone. A [`Guard`]
//! is created once per decision and polled from inside the enumeration loops
//! via [`Meter::tick`](crate::budget::Meter::tick):
//!
//! * a **deadline** ([`SearchBudget::deadline`]) trips the guard when the
//!   wall clock passes it;
//! * a **[`CancelToken`]** lets another thread abort the decision;
//! * a **[`FaultPlan`]** trips the guard (or exhausts a meter) at an exact
//!   tick count, so tests exercise every degradation path with no sleeps.
//!
//! All three degrade the same way: the running search stops at the next
//! poll and the decider returns `Unknown` with a [`BudgetLimit`] naming the
//! interrupt — a sound "don't know", never a wrong answer. A tripped guard
//! is sticky: nested decider calls sharing the guard fail fast.
//!
//! Polling is amortized. Fault-plan comparisons are exact (every tick); the
//! real clock and the cancel flag are consulted on the first tick and then
//! every [`Guard::DEFAULT_CHECK_INTERVAL`] ticks, so a deadline or
//! cancellation is observed within one check interval of firing.
//!
//! [`SearchBudget::deadline`]: crate::SearchBudget::deadline
//! [`BudgetLimit`]: crate::BudgetLimit

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::budget::{MeterKind, SearchBudget};
use crate::verdict::BudgetLimit;

/// A shareable cancellation flag.
///
/// Clone the token, hand the clone to the thread running the decision (via a
/// [`Guard`]), and call [`CancelToken::cancel`] from anywhere else to abort
/// the in-flight search. Cancellation is observed cooperatively at the next
/// guard poll and surfaces as an `Unknown` verdict with
/// [`BudgetLimit::Cancelled`].
#[derive(Clone, Default, Debug)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Has [`CancelToken::cancel`] been called (on this token or any clone)?
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

/// Why a guard tripped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Interrupt {
    /// The wall-clock deadline expired.
    Deadline,
    /// The [`CancelToken`] fired.
    Cancelled,
}

impl Interrupt {
    /// The [`BudgetLimit`] this interrupt reports in `SearchStats`.
    pub fn limit(self) -> BudgetLimit {
        match self {
            Interrupt::Deadline => BudgetLimit::Deadline,
            Interrupt::Cancelled => BudgetLimit::Cancelled,
        }
    }

    /// A stable machine-readable name (matches the corresponding
    /// [`BudgetLimit::name`]).
    pub fn name(self) -> &'static str {
        self.limit().name()
    }
}

/// A deterministic fault schedule for tests.
///
/// Each trigger fires at an exact guard tick count (one tick = one meter
/// request anywhere in the decision), so every degradation path can be
/// exercised without sleeps or timing dependence:
///
/// * [`deadline_at_tick`](FaultPlan::deadline_at_tick) — simulate deadline
///   expiry at tick `k`;
/// * [`cancel_at_tick`](FaultPlan::cancel_at_tick) — simulate a fired cancel
///   token at tick `k`;
/// * [`exhaust_meter`](FaultPlan::exhaust_meter) — cap the named meter so it
///   exhausts after `k` accepted requests;
/// * [`panic_at_stage`](FaultPlan::panic_at_stage) — names a telemetry event
///   at which a panic should be injected. The plan only records the stage;
///   attach a [`FaultSink`](ric_telemetry::FaultSink) built from
///   [`FaultPlan::panic_stage`] to actually fire it through the probe seam.
/// * [`worker_panic_at_tick`](FaultPlan::worker_panic_at_tick) — panic
///   *mid-chunk* inside a parallel worker at an exact per-worker tick, a
///   bounded number of times. Unlike `panic_at_stage` (which fires through a
///   sink, outside the fan-out), this dies inside the pool, exercising the
///   chunk quarantine/re-enqueue recovery path deterministically.
#[derive(Clone, Default, Debug)]
pub struct FaultPlan {
    deadline_after: Option<u64>,
    cancel_after: Option<u64>,
    exhaust: Option<(MeterKind, u64)>,
    panic_stage: Option<&'static str>,
    worker_panic: Option<WorkerPanic>,
}

/// A mid-chunk worker-death schedule: panic when a guard derived from this
/// plan observes its `at_tick`-th tick, at most `fires` times across every
/// guard sharing the plan (the counter is shared through an `Arc`, so a
/// recovery retry of the same chunk survives once the budgeted deaths are
/// spent).
#[derive(Clone, Debug)]
struct WorkerPanic {
    at_tick: u64,
    fires: Arc<AtomicU32>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Fire a simulated deadline expiry once `ticks` guard ticks have been
    /// observed (the trip is reported on tick `ticks + 1`).
    pub fn deadline_at_tick(mut self, ticks: u64) -> Self {
        self.deadline_after = Some(ticks);
        self
    }

    /// Fire a simulated cancellation once `ticks` guard ticks have been
    /// observed.
    pub fn cancel_at_tick(mut self, ticks: u64) -> Self {
        self.cancel_after = Some(ticks);
        self
    }

    /// Cap the meter of the given kind at `limit` accepted requests,
    /// regardless of the configured budget knob.
    pub fn exhaust_meter(mut self, kind: MeterKind, limit: u64) -> Self {
        self.exhaust = Some((kind, limit));
        self
    }

    /// Record that a panic should be injected when the telemetry event named
    /// `stage` is emitted (wire it up with a `FaultSink`).
    pub fn panic_at_stage(mut self, stage: &'static str) -> Self {
        self.panic_stage = Some(stage);
        self
    }

    /// The stage named by [`FaultPlan::panic_at_stage`], if any.
    pub fn panic_stage(&self) -> Option<&'static str> {
        self.panic_stage
    }

    /// Panic inside the guard poll when `ticks` ticks have been observed on
    /// one guard (the panic fires on tick `ticks + 1`, mirroring
    /// [`FaultPlan::deadline_at_tick`]), at most `fires` times in total
    /// across every guard built from this plan. With `fires = 1` a parallel
    /// chunk dies once and its recovery retry succeeds; with a larger budget
    /// the retry dies too, forcing the engine downgrade.
    pub fn worker_panic_at_tick(mut self, ticks: u64, fires: u32) -> Self {
        self.worker_panic = Some(WorkerPanic {
            at_tick: ticks,
            fires: Arc::new(AtomicU32::new(fires)),
        });
        self
    }
}

/// Per-decision interruption state, polled cooperatively by every guarded
/// [`Meter`](crate::budget::Meter).
///
/// A guard is cheap to create and not thread-safe by design (each decider
/// thread polls its own guard); the cross-thread handle is the
/// [`CancelToken`]. Public `*_guarded` entry points take `&Guard` so one
/// guard — one deadline, one token — spans an entire decision, including
/// nested decider calls. The parallel scheduler derives one `Guard::worker`
/// per pool thread from the decision guard: workers observe the same deadline
/// and tokens plus a pool-local token, and any worker trip broadcasts through
/// that pool token so every other worker stops at its next poll.
#[derive(Debug)]
pub struct Guard {
    deadline: Option<Instant>,
    cancels: Vec<CancelToken>,
    /// Fired (cancelled) whenever this guard trips, so sibling worker guards
    /// observing the same token stop too. `None` outside worker pools.
    broadcast: Option<CancelToken>,
    fault: FaultPlan,
    check_interval: u32,
    /// Was this guard derived via [`Guard::worker`]? The worker-panic fault
    /// only fires on pool-thread guards — the decision guard (and any
    /// sequential fallback running on it) must survive the injected deaths.
    is_worker: bool,
    ticks: Cell<u64>,
    countdown: Cell<u32>,
    tripped: Cell<Option<Interrupt>>,
}

impl Guard {
    /// How many ticks pass between polls of the real clock and the cancel
    /// flag. The first tick always polls, so a pre-expired deadline or
    /// pre-cancelled token stops the search before any work is granted.
    pub const DEFAULT_CHECK_INTERVAL: u32 = 1024;

    /// A guard enforcing `budget.deadline` (if set), with no cancel token
    /// and no fault plan.
    pub fn new(budget: &SearchBudget) -> Self {
        Guard {
            // `checked_add` rather than `+`: a pathological `Duration::MAX`
            // deadline must mean "never", not overflow.
            deadline: budget.deadline.and_then(|d| Instant::now().checked_add(d)),
            cancels: Vec::new(),
            broadcast: None,
            fault: FaultPlan::default(),
            check_interval: Self::DEFAULT_CHECK_INTERVAL,
            is_worker: false,
            ticks: Cell::new(0),
            countdown: Cell::new(0),
            tripped: Cell::new(None),
        }
    }

    /// This guard, also observing `token` (in addition to any tokens already
    /// attached).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancels.push(token);
        self
    }

    /// A worker guard for one pool thread: same deadline instant, same fault
    /// plan and check interval, observing every token this guard observes
    /// *plus* the pool token, and broadcasting its own trips to the pool
    /// token so sibling workers stop at their next poll. Tick state is fresh
    /// (ticks are counted per worker).
    pub(crate) fn worker(&self, pool: &CancelToken) -> Guard {
        let mut cancels = self.cancels.clone();
        cancels.push(pool.clone());
        Guard {
            deadline: self.deadline,
            cancels,
            broadcast: Some(pool.clone()),
            fault: self.fault.clone(),
            check_interval: self.check_interval,
            is_worker: true,
            ticks: Cell::new(0),
            countdown: Cell::new(0),
            // A decision guard that already tripped stays tripped in its
            // workers — nested fan-out after an interrupt must fail fast.
            tripped: Cell::new(self.tripped.get()),
        }
    }

    /// This guard, also executing `plan`.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// This guard with a custom amortization interval (mainly for tests that
    /// pin how quickly a cancellation is observed).
    pub fn with_check_interval(mut self, interval: u32) -> Self {
        self.check_interval = interval;
        self
    }

    /// Poll the guard: counts one tick, fires any due fault-plan trigger
    /// exactly, and polls the real clock / cancel flag on the amortization
    /// schedule. Returns the interrupt if the guard has tripped (now or
    /// earlier — trips are sticky).
    #[inline]
    pub fn check(&self) -> Option<Interrupt> {
        if let Some(interrupt) = self.tripped.get() {
            return Some(interrupt);
        }
        let ticks = self.ticks.get().saturating_add(1);
        self.ticks.set(ticks);
        if self.is_worker {
            if let Some(wp) = &self.fault.worker_panic {
                if ticks > wp.at_tick
                    && wp
                        .fires
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                        .is_ok()
                {
                    panic!("injected worker panic at tick {ticks}");
                }
            }
        }
        if let Some(after) = self.fault.deadline_after {
            if ticks > after {
                return self.trip(Interrupt::Deadline);
            }
        }
        if let Some(after) = self.fault.cancel_after {
            if ticks > after {
                return self.trip(Interrupt::Cancelled);
            }
        }
        let countdown = self.countdown.get();
        if countdown > 0 {
            self.countdown.set(countdown - 1);
            return None;
        }
        self.countdown.set(self.check_interval);
        self.check_now()
    }

    /// Poll the real clock and cancel flag immediately, bypassing the
    /// amortization schedule (used at coarse-grained points such as the
    /// completion loop's round boundary). Does not count a tick.
    pub fn check_now(&self) -> Option<Interrupt> {
        if let Some(interrupt) = self.tripped.get() {
            return Some(interrupt);
        }
        if self.cancels.iter().any(CancelToken::is_cancelled) {
            return self.trip(Interrupt::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return self.trip(Interrupt::Deadline);
            }
        }
        None
    }

    /// The interrupt this guard tripped on, if any.
    pub fn tripped(&self) -> Option<Interrupt> {
        self.tripped.get()
    }

    /// Total meter requests observed so far, across every meter sharing this
    /// guard.
    pub fn ticks(&self) -> u64 {
        self.ticks.get()
    }

    /// The effective limit for a meter of `kind` configured with `limit`,
    /// after applying any fault-plan cap.
    pub(crate) fn capped_limit(&self, kind: MeterKind, limit: u64) -> u64 {
        match self.fault.exhaust {
            Some((target, cap)) if target == kind => limit.min(cap),
            _ => limit,
        }
    }

    fn trip(&self, interrupt: Interrupt) -> Option<Interrupt> {
        self.tripped.set(Some(interrupt));
        if let Some(pool) = &self.broadcast {
            pool.cancel();
        }
        Some(interrupt)
    }
}

/// The guard is the deciders' deterministic timebase: one tick per meter
/// request anywhere in the decision. Probes carrying a guard as their tick
/// source stamp every span with tick deltas alongside wall-clock micros, so
/// traces replay identically under test while still showing real latency.
impl ric_telemetry::TickSource for Guard {
    fn ticks(&self) -> u64 {
        self.ticks.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Meter;
    use std::time::Duration;

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        token.cancel(); // idempotent
        assert!(clone.is_cancelled());
    }

    #[test]
    fn unconfigured_guard_never_trips() {
        let guard = Guard::new(&SearchBudget::default());
        for _ in 0..5_000 {
            assert_eq!(guard.check(), None);
        }
        assert_eq!(guard.tripped(), None);
        assert_eq!(guard.ticks(), 5_000);
    }

    #[test]
    fn precancelled_token_is_observed_on_the_first_tick() {
        let token = CancelToken::new();
        token.cancel();
        let guard = Guard::new(&SearchBudget::default()).with_cancel(token);
        assert_eq!(guard.check(), Some(Interrupt::Cancelled));
        assert_eq!(guard.tripped(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn cancellation_is_observed_within_one_check_interval() {
        let token = CancelToken::new();
        let guard = Guard::new(&SearchBudget::default())
            .with_cancel(token.clone())
            .with_check_interval(8);
        assert_eq!(guard.check(), None, "tick 1 polls: not yet cancelled");
        token.cancel();
        let mut observed_after = None;
        for extra in 1..=9u32 {
            if guard.check().is_some() {
                observed_after = Some(extra);
                break;
            }
        }
        let observed_after = observed_after.expect("cancellation observed");
        assert!(
            observed_after <= 9,
            "must be seen within one interval; took {observed_after} ticks"
        );
    }

    #[test]
    fn fault_deadline_fires_at_the_exact_tick() {
        let plan = FaultPlan::new().deadline_at_tick(3);
        let guard = Guard::new(&SearchBudget::default()).with_fault_plan(plan);
        assert_eq!(guard.check(), None);
        assert_eq!(guard.check(), None);
        assert_eq!(guard.check(), None);
        assert_eq!(guard.check(), Some(Interrupt::Deadline));
        assert_eq!(guard.ticks(), 4);
        // Sticky.
        assert_eq!(guard.check(), Some(Interrupt::Deadline));
    }

    #[test]
    fn fault_cancel_fires_deterministically() {
        let plan = FaultPlan::new().cancel_at_tick(0);
        let guard = Guard::new(&SearchBudget::default()).with_fault_plan(plan);
        assert_eq!(guard.check(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn fault_exhausts_the_targeted_meter_only() {
        let plan = FaultPlan::new().exhaust_meter(MeterKind::Valuations, 2);
        let budget = SearchBudget::default();
        let guard = Guard::new(&budget).with_fault_plan(plan);
        let mut v = Meter::guarded(MeterKind::Valuations, budget.max_valuations, &guard);
        assert!(v.tick() && v.tick());
        assert!(!v.tick(), "capped at 2 accepted requests");
        assert!(v.exhausted());
        assert_eq!(v.interrupt(), None, "exhaustion, not an interrupt");
        let c = Meter::guarded(MeterKind::Candidates, budget.max_candidates, &guard);
        assert_eq!(c.limit(), budget.max_candidates, "other meters unaffected");
    }

    #[test]
    fn worker_guards_observe_parent_tokens_and_broadcast_trips() {
        let plan = FaultPlan::new().deadline_at_tick(0);
        let parent = Guard::new(&SearchBudget::default()).with_fault_plan(plan);
        let pool = CancelToken::new();
        let a = parent.worker(&pool);
        let b = parent.worker(&pool);
        assert_eq!(b.check_now(), None, "pool token starts clean");
        assert_eq!(
            a.check(),
            Some(Interrupt::Deadline),
            "per-worker fault tick"
        );
        assert!(pool.is_cancelled(), "trip broadcasts to the pool token");
        assert_eq!(
            b.check_now(),
            Some(Interrupt::Cancelled),
            "sibling observes the broadcast as a cancellation"
        );
    }

    #[test]
    fn worker_panic_fires_only_on_worker_guards_and_only_fires_times() {
        let plan = FaultPlan::new().worker_panic_at_tick(1, 1);
        let parent = Guard::new(&SearchBudget::default()).with_fault_plan(plan);
        // The decision guard itself never fires the worker fault.
        for _ in 0..4 {
            assert_eq!(parent.check(), None);
        }
        let pool = CancelToken::new();
        let w = parent.worker(&pool);
        assert_eq!(w.check(), None, "tick 1 is at the threshold, not past it");
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| w.check()));
        assert!(caught.is_err(), "tick 2 dies");
        // The fires budget is shared: a second worker guard (the recovery
        // retry) survives the same tick.
        let retry = parent.worker(&pool);
        assert_eq!(retry.check(), None);
        assert_eq!(retry.check(), None, "fires budget spent; no second death");
    }

    #[test]
    fn worker_guard_inherits_a_parent_trip() {
        let token = CancelToken::new();
        token.cancel();
        let parent = Guard::new(&SearchBudget::default()).with_cancel(token);
        assert_eq!(parent.check_now(), Some(Interrupt::Cancelled));
        let pool = CancelToken::new();
        let w = parent.worker(&pool);
        assert_eq!(w.tripped(), Some(Interrupt::Cancelled), "fails fast");
    }

    #[test]
    fn multiple_cancel_tokens_are_all_observed() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        let guard = Guard::new(&SearchBudget::default())
            .with_cancel(a)
            .with_cancel(b.clone());
        assert_eq!(guard.check_now(), None);
        b.cancel();
        assert_eq!(guard.check_now(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn real_deadline_trips_via_check_now() {
        let budget = SearchBudget::default().with_deadline(Duration::ZERO);
        let guard = Guard::new(&budget);
        assert_eq!(guard.check_now(), Some(Interrupt::Deadline));
    }

    #[test]
    fn interrupt_names_match_budget_limits() {
        assert_eq!(Interrupt::Deadline.name(), "deadline");
        assert_eq!(Interrupt::Cancelled.name(), "cancelled");
        assert_eq!(Interrupt::Deadline.limit(), BudgetLimit::Deadline);
        assert_eq!(Interrupt::Cancelled.limit(), BudgetLimit::Cancelled);
    }
}

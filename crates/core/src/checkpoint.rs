//! Resumable decisions: versioned, JSON-serializable search checkpoints.
//!
//! Every `Unknown` verdict used to throw away the explored frontier: a caller
//! retrying with a bigger budget re-paid the full search. This module makes
//! interrupted decisions resumable. When a decider stops on a *resumable*
//! limit (valuation/candidate budget, deadline, cancellation) the completed
//! portion of the search is captured into a [`Checkpoint`]:
//!
//! - exact RCDP (all engines): the set of *cleared* enumeration chunks — the
//!   same `(tableau, depth-0 candidate)` chunks the parallel engine shards
//!   over — each with its committed per-chunk stats;
//! - bounded RCDP (FO/FP fallback): the next unexplored extension size plus
//!   the cumulative stats of all fully-searched smaller sizes;
//! - RCQP: a coarse restart marker (the candidate-database search is cheap
//!   relative to the nested RCDP calls and keeps no reusable frontier).
//!
//! The resume invariant, pinned by the differential suite
//! (`tests/resume_differential.rs`): for every installment `i` run with
//! budget `b_i` (non-decreasing), the resumed decision's verdict, witness,
//! and scoped telemetry counters are identical to a single uninterrupted run
//! at budget `b_i` on the same engine and worker count. Partial work inside
//! an uncleared chunk (or size) is deliberately discarded — the unit re-runs
//! from its start under a meter primed with the committed ticks, which is
//! exactly the state an uninterrupted run has when it reaches that unit.
//!
//! Checkpoints are versioned ([`CHECKPOINT_VERSION`]) and validated against
//! the decision they claim to belong to via a structural fingerprint of
//! `(setting, query, database)`; mismatches surface as typed
//! [`CheckpointError`]s instead of silently resuming the wrong search.

use crate::budget::SearchBudget;
use crate::guard::Guard;
use crate::par::ChunkStats;
use crate::query::Query;
use crate::rcdp::{exactly_decidable, validate_fp_bodies};
use crate::setting::Setting;
use crate::verdict::{BudgetLimit, QueryVerdict, RcError, Verdict};
use ric_data::Database;
use ric_telemetry::{json, Json, Probe};
use std::fmt;

/// Current checkpoint schema version. Parsers reject anything else with
/// [`CheckpointError::UnsupportedVersion`].
pub const CHECKPOINT_VERSION: u64 = 1;

/// Which decision problem a checkpoint belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecisionKind {
    /// The relatively complete *database* problem.
    Rcdp,
    /// The relatively complete *query* problem.
    Rcqp,
}

impl DecisionKind {
    /// Stable wire name.
    pub fn name(&self) -> &'static str {
        match self {
            DecisionKind::Rcdp => "rcdp",
            DecisionKind::Rcqp => "rcqp",
        }
    }

    fn parse(s: &str) -> Option<DecisionKind> {
        match s {
            "rcdp" => Some(DecisionKind::Rcdp),
            "rcqp" => Some(DecisionKind::Rcqp),
            _ => None,
        }
    }
}

impl fmt::Display for DecisionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Committed search progress for one completed unit of work (a cleared
/// enumeration chunk, or the cumulative total of fully-searched extension
/// sizes). Public mirror of the engine's internal per-chunk stats.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Progress {
    /// Metered ticks (valuations or candidates) spent.
    pub ticks: u64,
    /// Containment-constraint checks performed.
    pub cc_checks: u64,
    /// Constraint checks skipped by delta-awareness.
    pub cc_skipped: u64,
    /// Index probes issued.
    pub probes: u64,
    /// Query evaluations (bounded search only).
    pub query_evals: u64,
    /// Head-tuple prunes (exact search only).
    pub head_prunes: u64,
    /// Per-depth candidate counts (exact search profiler).
    pub depth_candidates: Vec<u64>,
    /// Per-depth prune counts (exact search profiler).
    pub depth_pruned: Vec<u64>,
    /// Pruning attribution by violated-constraint index.
    pub cc_viol: Vec<u64>,
}

impl Progress {
    pub(crate) fn from_stats(stats: &ChunkStats) -> Progress {
        Progress {
            ticks: stats.ticks,
            cc_checks: stats.cc_checks,
            cc_skipped: stats.cc_skipped,
            probes: stats.probes,
            query_evals: stats.query_evals,
            head_prunes: stats.head_prunes,
            depth_candidates: stats.depth_candidates.to_vec(),
            depth_pruned: stats.depth_pruned.to_vec(),
            cc_viol: stats.cc_viol.to_vec(),
        }
    }

    pub(crate) fn to_stats(&self) -> ChunkStats {
        fn pad<const N: usize>(v: &[u64]) -> [u64; N] {
            std::array::from_fn(|i| v.get(i).copied().unwrap_or(0))
        }
        ChunkStats {
            ticks: self.ticks,
            cc_checks: self.cc_checks,
            cc_skipped: self.cc_skipped,
            probes: self.probes,
            query_evals: self.query_evals,
            head_prunes: self.head_prunes,
            depth_candidates: pad(&self.depth_candidates),
            depth_pruned: pad(&self.depth_pruned),
            cc_viol: pad(&self.cc_viol),
        }
    }

    fn to_json(&self) -> Json {
        let arr = |v: &[u64]| Json::arr(v.iter().map(|&x| Json::from(x)));
        Json::obj([
            ("ticks", Json::from(self.ticks)),
            ("cc_checks", Json::from(self.cc_checks)),
            ("cc_skipped", Json::from(self.cc_skipped)),
            ("probes", Json::from(self.probes)),
            ("query_evals", Json::from(self.query_evals)),
            ("head_prunes", Json::from(self.head_prunes)),
            ("depth_candidates", arr(&self.depth_candidates)),
            ("depth_pruned", arr(&self.depth_pruned)),
            ("cc_viol", arr(&self.cc_viol)),
        ])
    }

    fn from_json(v: &Json) -> Result<Progress, CheckpointError> {
        Ok(Progress {
            ticks: u64_field(v, "ticks")?,
            cc_checks: u64_field(v, "cc_checks")?,
            cc_skipped: u64_field(v, "cc_skipped")?,
            probes: u64_field(v, "probes")?,
            query_evals: u64_field(v, "query_evals")?,
            head_prunes: u64_field(v, "head_prunes")?,
            depth_candidates: u64_list(v, "depth_candidates")?,
            depth_pruned: u64_list(v, "depth_pruned")?,
            cc_viol: u64_list(v, "cc_viol")?,
        })
    }
}

/// The unexplored remainder of an interrupted search, in resumable form.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Frontier {
    /// Exact RCDP: chunks of the valuation enumeration already *cleared*
    /// (fully searched without finding a counterexample), keyed by chunk
    /// index over the decision's canonical chunk list. `n_chunks` pins the
    /// layout so a checkpoint cannot be replayed against a different shape.
    RcdpChunks {
        /// Total chunks in the decision's canonical chunk list.
        n_chunks: u64,
        /// `(chunk index, committed stats)` for each cleared chunk.
        cleared: Vec<(u64, Progress)>,
    },
    /// Bounded RCDP: every extension size `< next_size` is fully searched;
    /// `progress` is the cumulative committed stats over those sizes.
    BoundedSizes {
        /// First unexplored extension size.
        next_size: u64,
        /// Cumulative stats over the fully-searched smaller sizes.
        progress: Progress,
    },
    /// No reusable frontier: resume re-runs the decision from scratch.
    Restart,
}

/// Typed failures when parsing or validating a checkpoint.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CheckpointError {
    /// The serialized checkpoint's schema version is not understood.
    UnsupportedVersion {
        /// The version found in the document.
        found: u64,
    },
    /// The checkpoint belongs to the other decision problem.
    KindMismatch {
        /// The kind the resuming entry point expected.
        expected: DecisionKind,
        /// The kind recorded in the checkpoint.
        found: DecisionKind,
    },
    /// The checkpoint was captured for a different (setting, query, database).
    FingerprintMismatch {
        /// Fingerprint of the decision being resumed.
        expected: u64,
        /// Fingerprint recorded in the checkpoint.
        found: u64,
    },
    /// The document is not a structurally valid checkpoint.
    Malformed(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::UnsupportedVersion { found } => write!(
                f,
                "unsupported checkpoint schema version {found} (supported: {CHECKPOINT_VERSION})"
            ),
            CheckpointError::KindMismatch { expected, found } => {
                write!(f, "checkpoint is for {found}, expected {expected}")
            }
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint {found:#018x} does not match this \
                 decision's inputs ({expected:#018x})"
            ),
            CheckpointError::Malformed(msg) => write!(f, "malformed checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A versioned, serializable snapshot of an interrupted decision.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Checkpoint {
    /// Schema version ([`CHECKPOINT_VERSION`]).
    pub version: u64,
    /// Which decision problem this snapshot belongs to.
    pub kind: DecisionKind,
    /// Structural fingerprint of the decision inputs (budget excluded, so a
    /// checkpoint survives budget escalation between installments).
    pub fingerprint: u64,
    /// 1-based installment count: how many attempts produced this snapshot.
    pub attempt: u32,
    /// Metered ticks committed into the frontier (not counting discarded
    /// partial units).
    pub spent_ticks: u64,
    /// The committed portion of the search.
    pub frontier: Frontier,
}

impl Checkpoint {
    /// Serialize to the versioned JSON schema (see DESIGN §10).
    pub fn to_json(&self) -> Json {
        let frontier = match &self.frontier {
            Frontier::RcdpChunks { n_chunks, cleared } => Json::obj([
                ("type", Json::from("rcdp_chunks")),
                ("n_chunks", Json::from(*n_chunks)),
                (
                    "cleared",
                    Json::arr(cleared.iter().map(|(idx, p)| {
                        Json::obj([("chunk", Json::from(*idx)), ("progress", p.to_json())])
                    })),
                ),
            ]),
            Frontier::BoundedSizes {
                next_size,
                progress,
            } => Json::obj([
                ("type", Json::from("bounded_sizes")),
                ("next_size", Json::from(*next_size)),
                ("progress", progress.to_json()),
            ]),
            Frontier::Restart => Json::obj([("type", Json::from("restart"))]),
        };
        Json::obj([
            ("version", Json::from(self.version)),
            ("kind", Json::from(self.kind.name())),
            ("fingerprint", Json::from(self.fingerprint)),
            ("attempt", Json::from(u64::from(self.attempt))),
            ("spent_ticks", Json::from(self.spent_ticks)),
            ("frontier", frontier),
        ])
    }

    /// Parse a checkpoint from its JSON form. The schema version is checked
    /// first: documents from a future (or unknown) schema are rejected with
    /// [`CheckpointError::UnsupportedVersion`] before any structural
    /// interpretation.
    pub fn from_json(v: &Json) -> Result<Checkpoint, CheckpointError> {
        let version = u64_field(v, "version")?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion { found: version });
        }
        let kind_name = str_field(v, "kind")?;
        let kind = DecisionKind::parse(kind_name).ok_or_else(|| {
            CheckpointError::Malformed(format!("unknown decision kind {kind_name:?}"))
        })?;
        let frontier_v = v
            .get("frontier")
            .ok_or_else(|| CheckpointError::Malformed("missing field \"frontier\"".into()))?;
        let frontier = match str_field(frontier_v, "type")? {
            "rcdp_chunks" => {
                let cleared_v = frontier_v
                    .get("cleared")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| {
                        CheckpointError::Malformed(
                            "frontier field \"cleared\" must be an array".into(),
                        )
                    })?;
                let mut cleared = Vec::with_capacity(cleared_v.len());
                for entry in cleared_v {
                    let progress = entry.get("progress").ok_or_else(|| {
                        CheckpointError::Malformed("cleared entry missing \"progress\"".into())
                    })?;
                    cleared.push((u64_field(entry, "chunk")?, Progress::from_json(progress)?));
                }
                Frontier::RcdpChunks {
                    n_chunks: u64_field(frontier_v, "n_chunks")?,
                    cleared,
                }
            }
            "bounded_sizes" => {
                let progress = frontier_v.get("progress").ok_or_else(|| {
                    CheckpointError::Malformed("frontier missing \"progress\"".into())
                })?;
                Frontier::BoundedSizes {
                    next_size: u64_field(frontier_v, "next_size")?,
                    progress: Progress::from_json(progress)?,
                }
            }
            "restart" => Frontier::Restart,
            other => {
                return Err(CheckpointError::Malformed(format!(
                    "unknown frontier type {other:?}"
                )))
            }
        };
        Ok(Checkpoint {
            version,
            kind,
            fingerprint: u64_field(v, "fingerprint")?,
            attempt: u32::try_from(u64_field(v, "attempt")?)
                .map_err(|_| CheckpointError::Malformed("attempt exceeds u32".into()))?,
            spent_ticks: u64_field(v, "spent_ticks")?,
            frontier,
        })
    }

    /// Parse a checkpoint from serialized JSON text.
    pub fn from_json_str(text: &str) -> Result<Checkpoint, CheckpointError> {
        let v = json::parse(text)
            .map_err(|e| CheckpointError::Malformed(format!("invalid JSON: {e}")))?;
        Checkpoint::from_json(&v)
    }

    /// Validate that this checkpoint may resume the given decision.
    pub fn validate(&self, kind: DecisionKind, fingerprint: u64) -> Result<(), CheckpointError> {
        if self.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                found: self.version,
            });
        }
        if self.kind != kind {
            return Err(CheckpointError::KindMismatch {
                expected: kind,
                found: self.kind,
            });
        }
        if self.fingerprint != fingerprint {
            return Err(CheckpointError::FingerprintMismatch {
                expected: fingerprint,
                found: self.fingerprint,
            });
        }
        Ok(())
    }
}

fn u64_field(v: &Json, key: &str) -> Result<u64, CheckpointError> {
    v.get(key)
        .and_then(Json::as_int)
        .and_then(|i| u64::try_from(i).ok())
        .ok_or_else(|| CheckpointError::Malformed(format!("missing or non-integer field {key:?}")))
}

fn str_field<'a>(v: &'a Json, key: &str) -> Result<&'a str, CheckpointError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| CheckpointError::Malformed(format!("missing or non-string field {key:?}")))
}

fn u64_list(v: &Json, key: &str) -> Result<Vec<u64>, CheckpointError> {
    let items = v
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| CheckpointError::Malformed(format!("missing or non-array field {key:?}")))?;
    items
        .iter()
        .map(|item| {
            item.as_int()
                .and_then(|i| u64::try_from(i).ok())
                .ok_or_else(|| {
                    CheckpointError::Malformed(format!("non-integer element in {key:?}"))
                })
        })
        .collect()
}

// --- Fingerprints -----------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

fn fingerprint_parts(parts: &[&str]) -> u64 {
    let mut hash = FNV_OFFSET;
    for part in parts {
        fnv(&mut hash, part.as_bytes());
        fnv(&mut hash, &[0x1f]);
    }
    hash
}

/// Structural fingerprint of an RCDP decision's inputs. Deliberately excludes
/// the budget and engine so a checkpoint survives budget escalation and
/// engine-preserving retries.
pub fn rcdp_fingerprint(setting: &Setting, query: &Query, db: &Database) -> u64 {
    fingerprint_parts(&[
        "rcdp",
        &format!("{setting:?}"),
        &format!("{query:?}"),
        &format!("{db:?}"),
    ])
}

/// Structural fingerprint of an RCQP decision's inputs.
pub fn rcqp_fingerprint(setting: &Setting, query: &Query) -> u64 {
    fingerprint_parts(&["rcqp", &format!("{setting:?}"), &format!("{query:?}")])
}

/// Is an `Unknown` verdict with this limit worth checkpointing? Structural
/// limits (pool bound, extension-size cap, unsupported input) do not improve
/// under a bigger budget; budget and interruption limits do.
pub(crate) fn resumable_limit(limit: BudgetLimit) -> bool {
    matches!(
        limit,
        BudgetLimit::MaxValuations
            | BudgetLimit::MaxCandidates
            | BudgetLimit::Deadline
            | BudgetLimit::Cancelled
    )
}

// --- Resumable drivers ------------------------------------------------------

/// Outcome of a resumable RCDP installment: the verdict, plus a checkpoint
/// when the search stopped on a resumable limit with committed progress.
#[derive(Clone, PartialEq, Debug)]
pub struct Resumption {
    /// The installment's verdict (identical to an uninterrupted run at the
    /// same budget when resuming from a same-engine checkpoint).
    pub verdict: Verdict,
    /// The frontier to pass to the next installment, if the decision is
    /// still `Unknown` for a budget-like reason.
    pub checkpoint: Option<Checkpoint>,
}

/// Outcome of a resumable RCQP installment.
#[derive(Clone, PartialEq, Debug)]
pub struct QueryResumption {
    /// The installment's verdict.
    pub verdict: QueryVerdict,
    /// The restart marker for the next installment, if still `Unknown`.
    pub checkpoint: Option<Checkpoint>,
}

/// [`crate::rcdp_guarded`] with checkpoint capture and resume. `prior` is a
/// checkpoint from an earlier installment of the *same* decision (validate
/// with [`Checkpoint::validate`] first; this driver re-checks defensively and
/// discards rather than errors, so core stays panic- and surprise-free).
///
/// On an `Unknown` verdict whose limit is resumable, the returned
/// [`Resumption::checkpoint`] carries the committed frontier; the driver also
/// emits `checkpoint.captured` and machine-readable `explain.frontier.json`
/// telemetry notes.
#[allow(clippy::too_many_arguments)]
pub fn rcdp_resumed_guarded(
    setting: &Setting,
    query: &Query,
    db: &Database,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
    prior: Option<&Checkpoint>,
) -> Result<Resumption, RcError> {
    let probe = probe.with_ticks(guard);
    validate_fp_bodies(setting, query)?;
    if !setting.partially_closed(db)? {
        return Err(RcError::NotPartiallyClosed);
    }
    let fingerprint = rcdp_fingerprint(setting, query, db);
    let attempt = prior.map_or(1, |c| c.attempt.saturating_add(1));
    probe.note("resume.attempt", || attempt.to_string());
    let usable = prior.filter(|c| c.validate(DecisionKind::Rcdp, fingerprint).is_ok());

    let exact = exactly_decidable(query.language()) && exactly_decidable(setting.v.language());
    let (verdict, frontier) = if exact {
        probe.note("rcdp.strategy", || "exact".into());
        let committed = match usable.map(|c| &c.frontier) {
            Some(Frontier::RcdpChunks { n_chunks, cleared }) => Some((
                *n_chunks as usize,
                cleared
                    .iter()
                    .map(|(idx, p)| (*idx as usize, p.to_stats()))
                    .collect::<Vec<_>>(),
            )),
            _ => None,
        };
        let (verdict, ledger) =
            crate::rcdp::rcdp_exact_resumed(setting, query, db, budget, guard, probe, committed)?;
        let frontier = ledger.map(|(n_chunks, cleared)| Frontier::RcdpChunks {
            n_chunks: n_chunks as u64,
            cleared: cleared
                .into_iter()
                .map(|(idx, stats)| (idx as u64, Progress::from_stats(&stats)))
                .collect(),
        });
        (verdict, frontier)
    } else {
        probe.note("rcdp.strategy", || "bounded".into());
        let committed = match usable.map(|c| &c.frontier) {
            Some(Frontier::BoundedSizes {
                next_size,
                progress,
            }) => Some(crate::semidecide::BoundedResume {
                next_size: *next_size as usize,
                stats: progress.to_stats(),
            }),
            _ => None,
        };
        let (verdict, resume) = crate::semidecide::rcdp_bounded_resumed(
            setting,
            query,
            db,
            budget,
            guard,
            probe,
            committed.as_ref(),
        )?;
        let frontier = resume.map(|r| Frontier::BoundedSizes {
            next_size: r.next_size as u64,
            progress: Progress::from_stats(&r.stats),
        });
        (verdict, frontier)
    };

    let checkpoint = match (&verdict, frontier) {
        (Verdict::Unknown { stats }, Some(frontier)) if resumable_limit(stats.limit) => {
            let spent_ticks = match &frontier {
                Frontier::RcdpChunks { cleared, .. } => cleared.iter().map(|(_, p)| p.ticks).sum(),
                Frontier::BoundedSizes { progress, .. } => progress.ticks,
                Frontier::Restart => 0,
            };
            let cp = Checkpoint {
                version: CHECKPOINT_VERSION,
                kind: DecisionKind::Rcdp,
                fingerprint,
                attempt,
                spent_ticks,
                frontier,
            };
            emit_checkpoint(probe, &cp);
            Some(cp)
        }
        _ => None,
    };
    Ok(Resumption {
        verdict,
        checkpoint,
    })
}

/// [`crate::rcqp_guarded`] with coarse checkpoint capture: the RCQP search
/// keeps no reusable frontier, so the checkpoint is a [`Frontier::Restart`]
/// marker that carries the attempt count across installments (used by the
/// retry loop for escalation bookkeeping).
pub fn rcqp_resumed_guarded(
    setting: &Setting,
    query: &Query,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
    prior: Option<&Checkpoint>,
) -> Result<QueryResumption, RcError> {
    let probe = probe.with_ticks(guard);
    let fingerprint = rcqp_fingerprint(setting, query);
    let attempt = prior.map_or(1, |c| c.attempt.saturating_add(1));
    probe.note("resume.attempt", || attempt.to_string());
    let verdict = crate::rcqp::rcqp_guarded(setting, query, budget, guard, probe)?;
    let checkpoint = match &verdict {
        QueryVerdict::Unknown { stats } if resumable_limit(stats.limit) => {
            let cp = Checkpoint {
                version: CHECKPOINT_VERSION,
                kind: DecisionKind::Rcqp,
                fingerprint,
                attempt,
                spent_ticks: stats.valuations.max(stats.candidates),
                frontier: Frontier::Restart,
            };
            emit_checkpoint(probe, &cp);
            Some(cp)
        }
        _ => None,
    };
    Ok(QueryResumption {
        verdict,
        checkpoint,
    })
}

fn emit_checkpoint(probe: Probe<'_>, cp: &Checkpoint) {
    probe.note("checkpoint.captured", || {
        let what = match &cp.frontier {
            Frontier::RcdpChunks { n_chunks, cleared } => {
                format!("{}/{} chunk(s) cleared", cleared.len(), n_chunks)
            }
            Frontier::BoundedSizes { next_size, .. } => {
                format!("sizes below {next_size} cleared")
            }
            Frontier::Restart => "restart marker".into(),
        };
        format!(
            "attempt {} committed {} tick(s); {what}",
            cp.attempt, cp.spent_ticks
        )
    });
    probe.note("explain.frontier.json", || cp.to_json().to_string());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            kind: DecisionKind::Rcdp,
            fingerprint: 0xdead_beef_cafe_f00d,
            attempt: 2,
            spent_ticks: 41,
            frontier: Frontier::RcdpChunks {
                n_chunks: 5,
                cleared: vec![
                    (
                        0,
                        Progress {
                            ticks: 17,
                            probes: 3,
                            depth_candidates: vec![4, 2],
                            ..Progress::default()
                        },
                    ),
                    (3, Progress::default()),
                ],
            },
        }
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let cp = sample();
        let text = cp.to_json().to_string();
        let back = Checkpoint::from_json_str(&text).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn unknown_schema_version_is_a_typed_rejection() {
        let mut cp = sample();
        cp.version = CHECKPOINT_VERSION + 1;
        let text = cp.to_json().to_string();
        // Serialization writes whatever version is set; parsing rejects it.
        let err = Checkpoint::from_json_str(&text).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::UnsupportedVersion {
                found: CHECKPOINT_VERSION + 1
            }
        );
    }

    #[test]
    fn validate_rejects_kind_and_fingerprint_mismatches() {
        let cp = sample();
        assert!(cp.validate(DecisionKind::Rcdp, cp.fingerprint).is_ok());
        assert_eq!(
            cp.validate(DecisionKind::Rcqp, cp.fingerprint),
            Err(CheckpointError::KindMismatch {
                expected: DecisionKind::Rcqp,
                found: DecisionKind::Rcdp,
            })
        );
        assert_eq!(
            cp.validate(DecisionKind::Rcdp, 1),
            Err(CheckpointError::FingerprintMismatch {
                expected: 1,
                found: cp.fingerprint,
            })
        );
    }

    #[test]
    fn malformed_documents_are_typed_errors_not_panics() {
        for text in [
            "not json at all",
            "{}",
            r#"{"version": 1}"#,
            r#"{"version": 1, "kind": "rcdp", "fingerprint": 1, "attempt": 1,
               "spent_ticks": 0, "frontier": {"type": "wat"}}"#,
        ] {
            assert!(matches!(
                Checkpoint::from_json_str(text),
                Err(CheckpointError::Malformed(_))
                    | Err(CheckpointError::UnsupportedVersion { .. })
            ));
        }
    }
}

//! RCQP — the *relatively complete query* problem (Section 4).
//!
//! Given `Q` and `(D_m, V)`, decide whether `RCQ(Q, D_m, V)` is nonempty:
//! does *any* partially closed database have complete information for `Q`?
//!
//! * `L_C` = INDs (Theorem 4.5(1), coNP): the syntactic characterization of
//!   Proposition 4.3 — every disjunct is either *blocked* (no valid valuation
//!   satisfies `V`) or *bounded* (each infinite-domain head variable occurs
//!   in an IND-covered column, E4, or has a finite domain, E3).
//! * `L_C` among CQ/UCQ/∃FO⁺ (Theorem 4.5(2), NEXPTIME): the E2
//!   characterization of Proposition 4.2. `RCQ` is nonempty iff E1 holds or
//!   some set `𝒱` of partial valuations of the constraint tableaux over
//!   `Adom` satisfies E2. Two structural facts make this searchable:
//!
//!   1. every `𝒱` decomposes into *single-atom* instantiations with the same
//!      `D_𝒱` and at least the same bound head values, so the search space
//!      is the subsets of a tuple pool;
//!   2. E2 is *monotone* in `D_𝒱` (adding consistent tuples removes
//!      valuations from the `(D_𝒱 ∪ μ(T_Q), D_m) |= V` gate — constraint
//!      bodies are monotone — and only grows the bound-value set), so it
//!      suffices to check the **maximal** `V`-consistent pool subsets.
//!
//!   The decider therefore: (a) probes a greedy completion from the empty
//!   database (fast, certified); (b) enumerates maximal consistent subsets
//!   of the pool and checks E2 on each; all failing ⇒ `Empty`. The fresh
//!   pool used to build candidate tuples is bounded by
//!   `SearchBudget::fresh_values`; the paper's small-model bound can require
//!   as many fresh values as the largest constraint tableau has variables,
//!   so when the configured pool is smaller than that an exhausted search
//!   reports `Unknown` rather than `Empty`.
//! * FO/FP: undecidable (Theorem 4.1); falls back to
//!   [`crate::semidecide::rcqp_bounded`].
//!
//! With `(D_m, V)` fixed the same search runs in Πᵖ₃ (Corollary 4.6); the
//! benches exercise exactly that regime.

use crate::adom::Adom;
use crate::budget::{Engine, Meter, MeterKind, SearchBudget};
use crate::extend::{complete_extension_guarded, CompletionOutcome};
use crate::guard::Guard;
use crate::query::Query;
use crate::rcdp::exactly_decidable;
use crate::setting::Setting;
use crate::valuations::{EnumOutcome, ValuationSpace};
use crate::verdict::{BudgetLimit, QueryVerdict, RcError, SearchStats, Verdict};
use ric_constraints::PreparedUpper;
use ric_data::{index::probe_count, Database, Overlay, RelId, Tuple, Value};
use ric_query::tableau::Tableau;
use ric_query::Term;
use ric_telemetry::Probe;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::ControlFlow;

/// Rounds allowed for the greedy fast-path probe before falling back to the
/// characterization-driven search.
const GREEDY_PROBE_TUPLES: usize = 8;

/// Per-candidate consistency test for the maximal-subset enumeration:
/// "is `current ∪ {tuple}` still partially closed?", asked once per include
/// branch and once per maximality probe.
enum ConsistencyCheck {
    /// Clone the candidate database, insert, re-check `V` in full.
    Full,
    /// Check only what the one new tuple can break, on an overlay. Sound
    /// because every `current` in the search is partially closed by
    /// construction (the seed is checked up front, and only admitted tuples
    /// are ever inserted) and `L_C` is UCQ-expressible here, so lower-bound
    /// bodies are monotone and stay satisfied under extension.
    Delta(std::sync::Arc<PreparedUpper>),
}

impl ConsistencyCheck {
    /// `stats` is the search's seed database — the only instance in hand when
    /// RCQP starts (candidate databases are enumerated, not given). For the
    /// planned engine it is typically near-empty, so plans usually compile in
    /// static-fallback order; order only affects timing, never admission.
    fn select(
        setting: &Setting,
        engine: Engine,
        stats: &Database,
        reuse: Option<&std::sync::Arc<PreparedUpper>>,
    ) -> Result<Self, RcError> {
        if !engine.indexed() {
            return Ok(ConsistencyCheck::Full);
        }
        let prepared = match reuse {
            Some(prep) => std::sync::Arc::clone(prep),
            None if engine.is_planned() => std::sync::Arc::new(PreparedUpper::with_plans(
                &setting.v,
                &setting.schema,
                &setting.dm,
                stats,
            )?),
            None => std::sync::Arc::new(PreparedUpper::new(
                &setting.v,
                &setting.schema,
                &setting.dm,
            )?),
        };
        Ok(ConsistencyCheck::Delta(prepared))
    }

    /// The shared preparation backing the delta mode, if any.
    fn prepared(&self) -> Option<&std::sync::Arc<PreparedUpper>> {
        match self {
            ConsistencyCheck::Delta(prep) => Some(prep),
            ConsistencyCheck::Full => None,
        }
    }

    fn admits(
        &self,
        setting: &Setting,
        current: &Database,
        rel: RelId,
        tuple: &Tuple,
        scratch: &RefCell<Database>,
        cc_skipped: &Cell<u64>,
    ) -> Result<bool, RcError> {
        match self {
            ConsistencyCheck::Full => {
                let mut extended = current.clone();
                extended.insert(rel, tuple.clone());
                Ok(setting.partially_closed(&extended)?)
            }
            ConsistencyCheck::Delta(prepared) => {
                let mut delta = scratch.borrow_mut();
                delta.clear_tuples();
                delta.insert(rel, tuple.clone());
                let ov = Overlay::new(current, &delta)
                    .unwrap_or_else(|e| unreachable!("delta shares the setting schema: {e:?}"));
                let res = prepared.satisfied_delta(&setting.v, &ov)?;
                cc_skipped.set(cc_skipped.get() + res.skipped as u64);
                Ok(res.satisfied)
            }
        }
    }
}

/// Decide RCQP, dispatching on the language combination.
pub fn rcqp(
    setting: &Setting,
    query: &Query,
    budget: &SearchBudget,
) -> Result<QueryVerdict, RcError> {
    rcqp_probed(setting, query, budget, Probe::disabled())
}

/// [`rcqp`] with a telemetry probe attached: reports the dispatch strategy,
/// candidate-pool sizes, valuations and candidates examined, per-phase wall
/// time, and the outcome (see the crate-level Observability notes).
pub fn rcqp_probed(
    setting: &Setting,
    query: &Query,
    budget: &SearchBudget,
    probe: Probe<'_>,
) -> Result<QueryVerdict, RcError> {
    rcqp_guarded(setting, query, budget, &Guard::new(budget), probe)
}

/// [`rcqp_probed`] under a caller-supplied [`Guard`], so one deadline and one
/// [`CancelToken`](crate::CancelToken) span the whole decision, including the
/// nested RCDP certifications.
pub fn rcqp_guarded(
    setting: &Setting,
    query: &Query,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
) -> Result<QueryVerdict, RcError> {
    rcqp_guarded_reusing(setting, query, budget, guard, probe, None)
}

/// [`rcqp_guarded`] with an optional pre-built upper-bound preparation from a
/// [`crate::PreparedSetting`].
pub(crate) fn rcqp_guarded_reusing(
    setting: &Setting,
    query: &Query,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
    reuse: Option<&std::sync::Arc<PreparedUpper>>,
) -> Result<QueryVerdict, RcError> {
    let probe = probe.with_ticks(guard);
    let verdict = rcqp_inner(setting, query, budget, guard, probe, reuse)?;
    emit_query_verdict(probe, &verdict);
    Ok(verdict)
}

/// Emit the outcome note (and the exhausted limit, for `Unknown`) for an
/// RCQP verdict.
pub(crate) fn emit_query_verdict(probe: Probe<'_>, verdict: &QueryVerdict) {
    match verdict {
        QueryVerdict::Nonempty { witness } => {
            probe.note("rcqp.outcome", || "nonempty".into());
            if let Some(w) = witness {
                probe.gauge("rcqp.witness_tuples", w.tuple_count() as u64);
            }
        }
        QueryVerdict::Empty => probe.note("rcqp.outcome", || "empty".into()),
        QueryVerdict::Unknown { stats } => {
            probe.note("rcqp.outcome", || "unknown".into());
            probe.note("rcqp.limit", || stats.limit.name().into());
        }
    }
}

fn rcqp_inner(
    setting: &Setting,
    query: &Query,
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
    reuse: Option<&std::sync::Arc<PreparedUpper>>,
) -> Result<QueryVerdict, RcError> {
    if !(exactly_decidable(query.language()) && exactly_decidable(setting.v.language())) {
        probe.note("rcqp.strategy", || "bounded".into());
        // The caller (rcqp_probed) emits the outcome note, so route through
        // the note-free inner variant of the bounded search.
        return crate::semidecide::rcqp_bounded_inner(setting, query, budget, guard, probe);
    }
    // Lower-bound constraints (the Section 5 extension) force minimal
    // content into every candidate database; build that seed first. With no
    // lower bounds the seed is the empty database.
    let Some(seed) = lower_bound_seed(setting) else {
        return Ok(QueryVerdict::unknown(SearchStats::new(
            BudgetLimit::Unsupported,
            "lower-bound constraints with non-projection bodies are not \
             supported by the RCQP search",
        )));
    };
    if !setting.partially_closed(&seed)? {
        // With no lower bounds the seed is empty and, by monotonicity of the
        // (UCQ-expressible) upper bounds, nothing is partially closed: RCQ
        // is vacuously empty. With lower bounds, a different choice of
        // padding values could still work — stay honest.
        return Ok(if setting.v.lower_bounds.is_empty() {
            QueryVerdict::Empty
        } else {
            QueryVerdict::unknown(SearchStats::new(
                BudgetLimit::Unsupported,
                "the lower-bound seed database violates the upper bounds",
            ))
        });
    }
    let Some(ucq) = query.as_ucq() else {
        return Err(RcError::Unsupported(format!(
            "decidable languages are UCQ-expressible, got {:?}",
            query.language()
        )));
    };
    let tableaux = ucq.tableaux()?;
    if tableaux.is_empty() {
        // Unsatisfiable query: the seed database is complete.
        return Ok(QueryVerdict::Nonempty {
            witness: Some(seed),
        });
    }
    // E1/E5: all head variables finite — trivially relatively complete.
    if crate::characterize::finite_head(&ucq, &setting.schema)? {
        probe.note("rcqp.strategy", || "finite_head".into());
        let witness = greedy_witness(
            setting,
            query,
            &seed,
            budget,
            guard,
            budget.max_witness_tuples,
        )?;
        return Ok(QueryVerdict::Nonempty { witness });
    }
    if setting.v.is_ind_set() {
        probe.note("rcqp.strategy", || "ind".into());
        rcqp_ind(setting, query, &seed, &tableaux, budget, guard, probe)
    } else {
        probe.note("rcqp.strategy", || "general".into());
        rcqp_general(
            setting, query, &seed, &tableaux, budget, guard, probe, reuse,
        )
    }
}

/// Construct the minimal database forced by the lower-bound constraints:
/// for each `p(R_m) ⊆ π_cols(R)`, one `R` tuple per master tuple, projected
/// columns copied and the rest padded with fresh values. Returns `None` when
/// some lower-bound body is not a projection (no canonical seed exists).
fn lower_bound_seed(setting: &Setting) -> Option<Database> {
    let mut db = Database::empty(&setting.schema);
    if setting.v.lower_bounds.is_empty() {
        return Some(db);
    }
    let mut fresh = ric_data::FreshValues::new();
    for v in setting.dm.active_domain() {
        fresh.observe(v);
    }
    for v in setting.v.constants() {
        fresh.observe(&v);
    }
    for lb in &setting.v.lower_bounds {
        let ric_constraints::CcBody::Proj(proj) = &lb.body else {
            return None;
        };
        let arity = setting.schema.arity(proj.rel).ok()?;
        for m in lb.master.eval(&setting.dm) {
            let mut fields: Vec<Option<Value>> = vec![None; arity];
            for (i, &col) in proj.cols.iter().enumerate() {
                fields[col] = Some(m.get(i).clone());
            }
            let tuple = Tuple::new(
                fields
                    .into_iter()
                    .map(|f| f.unwrap_or_else(|| fresh.fresh())),
            );
            db.insert(proj.rel, tuple);
        }
    }
    Some(db)
}

/// Try to build a witness by greedy completion from the seed database,
/// allowing up to `max_tuples` additions.
fn greedy_witness(
    setting: &Setting,
    query: &Query,
    seed: &Database,
    budget: &SearchBudget,
    guard: &Guard,
    max_tuples: usize,
) -> Result<Option<Database>, RcError> {
    let capped = SearchBudget {
        max_witness_tuples: max_tuples,
        ..*budget
    };
    let outcome =
        complete_extension_guarded(setting, query, seed, &capped, guard, Probe::disabled())?;
    Ok(match outcome {
        CompletionOutcome::AlreadyComplete => Some(seed.clone()),
        CompletionOutcome::Completed { result, .. } => Some(result),
        CompletionOutcome::Budget { .. } => None,
    })
}

/// Proposition 4.3: the coNP decision for `L_C` = INDs.
#[allow(clippy::too_many_arguments)]
fn rcqp_ind(
    setting: &Setting,
    query: &Query,
    seed: &Database,
    tableaux: &[Tableau],
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
) -> Result<QueryVerdict, RcError> {
    let n_fresh = tableaux
        .iter()
        .map(|t| t.n_vars as usize)
        .max()
        .unwrap_or(0)
        .max(1);
    let empty = Database::empty(&setting.schema);
    let adom = Adom::build(&empty, setting, query, n_fresh);
    probe.gauge("rcqp.adom_size", adom.len() as u64);
    let mut meter = Meter::guarded(MeterKind::Valuations, budget.max_valuations, guard);
    let span = probe.span("rcqp.blockedness");
    for (ti, t) in tableaux.iter().enumerate() {
        if !t.domain_consistent(&setting.schema) {
            continue; // blocked: matches no valid tuple at all
        }
        // Is the disjunct blocked — no valid valuation with (μ(T), D_m) |= V?
        let space = ValuationSpace::new(t, &setting.schema, &adom);
        let mut has_valid = false;
        let outcome = space.for_each_valid_pruned_probed(
            probe,
            &mut meter,
            |_| true,
            |binding| {
                // Partial pruning: a partially instantiated tableau that
                // already escapes the master projections cannot become valid.
                let bound = space.bound_atoms(binding);
                if bound.is_empty() {
                    return true;
                }
                let mut delta = Database::with_relations(setting.schema.len());
                for (rel, tuple) in bound {
                    delta.insert(rel, tuple);
                }
                setting
                    .v
                    .upper_satisfied(&delta, &setting.dm)
                    .unwrap_or_else(|e| unreachable!("IND bodies never error: {e:?}"))
            },
            |_mu| {
                // The partial filter already validated the full instantiation.
                has_valid = true;
                ControlFlow::Break(())
            },
        );
        if outcome == EnumOutcome::BudgetExceeded {
            drop(span);
            probe.count("rcqp.valuations", meter.used());
            if let Some(interrupt) = meter.interrupt() {
                probe.interrupt("rcqp.interrupt", interrupt.name(), guard.ticks());
            }
            probe.note("explain.frontier", || {
                format!(
                    "blockedness check stopped in disjunct {}/{} after {} valuation(s); \
                     later disjuncts unexplored",
                    ti + 1,
                    tableaux.len(),
                    meter.used()
                )
            });
            return Ok(QueryVerdict::unknown(
                SearchStats::new(
                    meter.stop_limit(BudgetLimit::MaxValuations),
                    meter.stop_detail("valuation"),
                )
                .with_valuations(meter.used()),
            ));
        }
        if !has_valid {
            continue; // blocked
        }
        if !crate::characterize::ind_bounded(t, &setting.schema, setting) {
            // An unblocked, unbounded disjunct: fresh head values can always
            // be injected, so no database is ever complete.
            drop(span);
            probe.count("rcqp.valuations", meter.used());
            return Ok(QueryVerdict::Empty);
        }
    }
    drop(span);
    probe.count("rcqp.valuations", meter.used());
    let greedy_span = probe.span("rcqp.greedy_witness");
    let witness = greedy_witness(
        setting,
        query,
        seed,
        budget,
        guard,
        budget.max_witness_tuples,
    )?;
    drop(greedy_span);
    Ok(QueryVerdict::Nonempty { witness })
}

/// A candidate tuple for the `D_𝒱` search: an instantiation of one
/// constraint-tableau atom, together with the head values it pins (its
/// contribution to the E2 bound set).
#[derive(Clone, PartialEq, Eq, Debug)]
struct PoolEntry {
    rel: RelId,
    tuple: Tuple,
    bound: BTreeSet<Value>,
}

/// Build the candidate pool over `values`: every instantiation of every atom
/// of every constraint tableau (head-variable values recorded as bound), and
/// the constant tuples of the query tableaux (no bound contribution).
fn candidate_pool(
    setting: &Setting,
    query_tableaux: &[Tableau],
    values: &[Value],
) -> Result<Vec<PoolEntry>, RcError> {
    let mut pool: BTreeMap<(RelId, Tuple), BTreeSet<Value>> = BTreeMap::new();
    for cc in &setting.v.ccs {
        let Some(ucq) = cc.body.as_ucq(&setting.schema) else {
            continue;
        };
        for t in ucq.tableaux()? {
            let doms = t.var_domains(&setting.schema);
            let head_vars = t.head_vars();
            for atom in &t.atoms {
                let mut binding: BTreeMap<u32, Value> = BTreeMap::new();
                instantiate_atom(
                    atom,
                    &doms,
                    values,
                    0,
                    &mut binding,
                    &mut |tuple, binding| {
                        let bound: BTreeSet<Value> = atom
                            .vars()
                            .filter(|v| head_vars.contains(v))
                            .map(|v| binding[&v.0].clone())
                            .collect();
                        pool.entry((atom.rel, tuple)).or_default().extend(bound);
                    },
                );
            }
        }
    }
    for t in query_tableaux {
        for atom in &t.atoms {
            if atom.args.iter().any(Term::is_var) {
                continue;
            }
            let tuple = Tuple::new(atom.args.iter().map(|a| match a {
                Term::Const(c) => c.clone(),
                Term::Var(_) => unreachable!(),
            }));
            pool.entry((atom.rel, tuple)).or_default();
        }
    }
    Ok(pool
        .into_iter()
        .map(|((rel, tuple), bound)| PoolEntry { rel, tuple, bound })
        .collect())
}

fn instantiate_atom(
    atom: &ric_query::Atom,
    doms: &[Option<BTreeSet<Value>>],
    values: &[Value],
    col: usize,
    binding: &mut BTreeMap<u32, Value>,
    out: &mut impl FnMut(Tuple, &BTreeMap<u32, Value>),
) {
    if col == atom.args.len() {
        let tuple = Tuple::new(atom.args.iter().map(|t| match t {
            Term::Const(c) => c.clone(),
            Term::Var(v) => binding[&v.0].clone(),
        }));
        out(tuple, binding);
        return;
    }
    match &atom.args[col] {
        Term::Const(_) => instantiate_atom(atom, doms, values, col + 1, binding, out),
        Term::Var(v) => {
            if binding.contains_key(&v.0) {
                instantiate_atom(atom, doms, values, col + 1, binding, out);
                return;
            }
            let candidates: Vec<Value> = match &doms[v.idx()] {
                Some(dom) => dom.iter().cloned().collect(),
                None => values.to_vec(),
            };
            for val in candidates {
                binding.insert(v.0, val);
                instantiate_atom(atom, doms, values, col + 1, binding, out);
            }
            binding.remove(&v.0);
        }
    }
}

/// A sound emptiness test that avoids the exponential E2 search: the
/// *fresh-escape* test. Instantiate a disjunct tableau generically — every
/// infinite-domain variable gets a distinct fresh value — and ask whether
/// the resulting tuples could *ever* participate in a constraint violation,
/// for **any** database `D` whose values avoid the fresh ones:
///
/// * a violation is an instantiation of some CC body mapping each atom
///   either to a generic tuple or to an unknown `D` tuple;
/// * `D` tuples cannot carry fresh values, so a shared variable bound to a
///   fresh value by a generic tuple rules the mapping out;
/// * a mapping that uses only generic tuples has a fully determined output,
///   which is harmless when it already lands inside the CC's master
///   projection.
///
/// If no CC can be violated, then every partially closed `D` extends by the
/// generic tuples (with fresh values chosen outside `D`) to a partially
/// closed `D′` with a brand-new answer — so `RCQ(Q, D_m, V) = ∅`
/// (the generalisation of the unbounded-IND argument of Proposition 4.3).
fn fresh_escape(setting: &Setting, t: &Tableau) -> Result<bool, RcError> {
    if !t.domain_consistent(&setting.schema) {
        return Ok(false);
    }
    let doms = t.var_domains(&setting.schema);
    let head_vars = t.head_vars();
    if !head_vars.iter().any(|v| doms[v.idx()].is_none()) {
        return Ok(false); // no infinite head variable: nothing escapes
    }
    // Build the generic valuation μ*: fresh values for infinite-domain
    // variables, a backtracking assignment for finite-domain ones (honouring
    // the tableau inequalities).
    let mut gen = ric_data::FreshValues::new();
    for c in t.constants() {
        gen.observe(&c);
    }
    for c in setting.dm.active_domain() {
        gen.observe(c);
    }
    for c in setting.v.constants() {
        gen.observe(&c);
    }
    let n = t.n_vars as usize;
    let mut assignment: Vec<Option<Value>> = vec![None; n];
    let mut fresh_vals: BTreeSet<Value> = BTreeSet::new();
    for v in 0..n {
        if doms[v].is_none() {
            let f = gen.fresh();
            fresh_vals.insert(f.clone());
            assignment[v] = Some(f);
        }
    }
    if !assign_finite(t, &doms, 0, &mut assignment) {
        return Ok(false); // finite domains cannot satisfy the inequalities
    }
    let mu = crate::valuations::materialize(t, &assignment);

    // Can any CC body match the generic tuples?
    for cc in &setting.v.ccs {
        let Some(ucq) = cc.body.as_ucq(&setting.schema) else {
            return Ok(false);
        };
        let rhs: BTreeSet<Tuple> = match &cc.rhs {
            ric_constraints::CcRhs::Empty => BTreeSet::new(),
            ric_constraints::CcRhs::Master(p) => p.eval(&setting.dm),
        };
        for body in ucq.tableaux()? {
            let mut binding: Vec<Option<Value>> = vec![None; body.n_vars as usize];
            let mut d_tainted: Vec<bool> = vec![false; body.n_vars as usize];
            if hybrid_match(
                &body,
                0,
                &mu,
                &fresh_vals,
                &rhs,
                false,
                false,
                &mut binding,
                &mut d_tainted,
            ) {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

fn assign_finite(
    t: &Tableau,
    doms: &[Option<BTreeSet<Value>>],
    var: usize,
    assignment: &mut Vec<Option<Value>>,
) -> bool {
    if var == t.n_vars as usize {
        return neqs_ok(t, assignment, true);
    }
    if assignment[var].is_some() {
        return assign_finite(t, doms, var + 1, assignment);
    }
    let dom = doms[var]
        .as_ref()
        .unwrap_or_else(|| unreachable!("only finite vars unassigned"))
        .clone();
    for val in dom {
        assignment[var] = Some(val);
        if neqs_ok(t, assignment, false) && assign_finite(t, doms, var + 1, assignment) {
            return true;
        }
        assignment[var] = None;
    }
    false
}

fn neqs_ok(t: &Tableau, assignment: &[Option<Value>], total: bool) -> bool {
    t.neqs.iter().all(|(l, r)| {
        let lv = match l {
            Term::Const(c) => Some(c.clone()),
            Term::Var(v) => assignment[v.idx()].clone(),
        };
        let rv = match r {
            Term::Const(c) => Some(c.clone()),
            Term::Var(v) => assignment[v.idx()].clone(),
        };
        match (lv, rv) {
            (Some(a), Some(b)) => a != b,
            _ => !total,
        }
    })
}

/// Can `body` (a CC tableau) be instantiated with every atom mapped either
/// to a generic tuple or to an unknown fresh-free `D` tuple, such that the
/// result is a potential *violation*? An all-generic match whose output
/// lands in `rhs` is harmless. `d_tainted` marks variables appearing in
/// `D`-mapped atoms — they may never take a fresh value, because `D` is
/// chosen disjoint from the fresh pool.
#[allow(clippy::too_many_arguments)]
fn hybrid_match(
    body: &Tableau,
    atom_idx: usize,
    generic: &[(RelId, Tuple)],
    fresh: &BTreeSet<Value>,
    rhs: &BTreeSet<Tuple>,
    any_d_atom: bool,
    used_generic: bool,
    binding: &mut Vec<Option<Value>>,
    d_tainted: &mut Vec<bool>,
) -> bool {
    if atom_idx == body.atoms.len() {
        if !used_generic {
            // A match entirely inside D already exists in D itself; it is
            // not a *new* violation introduced by the generic tuples.
            return false;
        }
        if !neqs_ok(body, binding, false) {
            return false;
        }
        if any_d_atom {
            // Unknown D tuples involved: conservatively a potential
            // violation (their values could realise anything fresh-free).
            return true;
        }
        // Fully generic: the output is determined; harmless iff inside rhs.
        let out = Tuple::new(body.head.iter().map(|term| {
            match term {
                Term::Const(c) => c.clone(),
                Term::Var(v) => binding[v.idx()]
                    .clone()
                    .unwrap_or_else(|| unreachable!("all vars bound")),
            }
        }));
        return !rhs.contains(&out);
    }
    let atom = &body.atoms[atom_idx];
    // Option 1: map to one of the generic tuples.
    for (rel, tuple) in generic {
        if *rel != atom.rel || tuple.arity() != atom.args.len() {
            continue;
        }
        let mut newly: Vec<usize> = Vec::new();
        let mut ok = true;
        for (term, value) in atom.args.iter().zip(tuple.iter()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match &binding[v.idx()] {
                    Some(b) => {
                        if b != value {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        // A D-constrained variable cannot take a fresh value.
                        if d_tainted[v.idx()] && fresh.contains(value) {
                            ok = false;
                            break;
                        }
                        binding[v.idx()] = Some(value.clone());
                        newly.push(v.idx());
                    }
                },
            }
        }
        let matched = ok
            && neqs_ok(body, binding, false)
            && hybrid_match(
                body,
                atom_idx + 1,
                generic,
                fresh,
                rhs,
                any_d_atom,
                true,
                binding,
                d_tainted,
            );
        for i in newly {
            binding[i] = None;
        }
        if matched {
            return true;
        }
    }
    // Option 2: map to an unknown D tuple — possible only if none of the
    // atom's already-bound variables carries a fresh value; its variables
    // become D-constrained for the rest of the search.
    let d_possible = atom.args.iter().all(|term| match term {
        Term::Const(_) => true,
        Term::Var(v) => match &binding[v.idx()] {
            Some(val) => !fresh.contains(val),
            None => true,
        },
    });
    if d_possible {
        let mut newly_tainted: Vec<usize> = Vec::new();
        for term in &atom.args {
            if let Term::Var(v) = term {
                if !d_tainted[v.idx()] {
                    d_tainted[v.idx()] = true;
                    newly_tainted.push(v.idx());
                }
            }
        }
        let matched = hybrid_match(
            body,
            atom_idx + 1,
            generic,
            fresh,
            rhs,
            true,
            used_generic,
            binding,
            d_tainted,
        );
        for i in newly_tainted {
            d_tainted[i] = false;
        }
        if matched {
            return true;
        }
    }
    false
}

/// The E2-driven search (Proposition 4.2) for `L_C` among CQ/UCQ/∃FO⁺.
#[allow(clippy::too_many_arguments)]
fn rcqp_general(
    setting: &Setting,
    query: &Query,
    seed: &Database,
    tableaux: &[Tableau],
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
    reuse: Option<&std::sync::Arc<PreparedUpper>>,
) -> Result<QueryVerdict, RcError> {
    // Sound emptiness fast path: a disjunct whose generic instantiation
    // escapes every constraint dooms all candidate databases.
    {
        let _span = probe.span("rcqp.fresh_escape");
        for t in tableaux {
            if fresh_escape(setting, t)? {
                return Ok(QueryVerdict::Empty);
            }
        }
    }
    // Fast path: a greedy completion from the seed often succeeds for
    // queries whose witnesses answer the query (e.g. full-key FDs).
    {
        let _span = probe.span("rcqp.greedy_witness");
        if let Some(witness) = greedy_witness(
            setting,
            query,
            seed,
            budget,
            guard,
            GREEDY_PROBE_TUPLES.min(budget.max_witness_tuples),
        )? {
            return Ok(QueryVerdict::Nonempty {
                witness: Some(witness),
            });
        }
    }
    // Fresh pool for candidate tuples. The paper's small-model bound may
    // need as many fresh values as the largest constraint tableau has
    // variables; track whether the configured pool reaches that, since an
    // exhausted search only proves emptiness relative to its pool.
    let mut needed_fresh: usize = 0;
    for cc in &setting.v.ccs {
        if let Some(ucq) = cc.body.as_ucq(&setting.schema) {
            for t in ucq.tableaux()? {
                needed_fresh = needed_fresh.max(t.n_vars as usize);
            }
        }
    }
    let n_fresh = budget.fresh_values.max(1);
    let pool_is_exact = n_fresh >= needed_fresh;
    let adom = Adom::build(seed, setting, query, n_fresh);
    probe.gauge("rcqp.adom_size", adom.len() as u64);
    let mut values = adom.constants.clone();
    values.extend(adom.fresh.iter().cloned());
    // Estimate the pool before materialising it: Σ |values|^{vars per atom}.
    const MAX_POOL: usize = 4096;
    let mut estimate = 0usize;
    for cc in &setting.v.ccs {
        if let Some(ucq) = cc.body.as_ucq(&setting.schema) {
            for t in ucq.tableaux()? {
                for atom in &t.atoms {
                    let vars: BTreeSet<_> = atom.vars().collect();
                    estimate = estimate
                        .saturating_add(values.len().max(1).saturating_pow(vars.len() as u32));
                }
            }
        }
    }
    if estimate > MAX_POOL {
        return Ok(QueryVerdict::unknown(SearchStats::new(
            BudgetLimit::PoolBound,
            format!(
                "estimated candidate pool of {estimate} tuples exceeds the searchable bound \
                 of {MAX_POOL}"
            ),
        )));
    }
    let mut pool = candidate_pool(setting, tableaux, &values)?;

    // Pre-filter: a tuple that violates V on its own can never belong to a
    // consistent subset. Upper bounds only: a lone tuple cannot be expected
    // to satisfy lower bounds (the seed provides those).
    pool = if budget.engine.sharded() {
        prefilter_parallel(setting, &pool, budget, guard, probe)?
    } else {
        let mut kept = Vec::with_capacity(pool.len());
        for entry in pool {
            let mut single = Database::with_relations(setting.schema.len());
            single.insert(entry.rel, entry.tuple.clone());
            if setting.v.upper_satisfied(&single, &setting.dm)? {
                kept.push(entry);
            }
        }
        kept
    };
    // A tuple is *inert* when its relation occurs in no multi-atom
    // constraint tableau: having survived the single-tuple filter it can
    // never participate in a violation, so every maximal subset contains it
    // (its exclude branch is skipped below).
    let mut multi_atom_rels: BTreeSet<RelId> = BTreeSet::new();
    for cc in &setting.v.ccs {
        if let Some(ucq) = cc.body.as_ucq(&setting.schema) {
            for t in ucq.tableaux()? {
                if t.atoms.len() >= 2 {
                    multi_atom_rels.extend(t.atoms.iter().map(|a| a.rel));
                }
            }
        }
    }
    let inert: Vec<bool> = pool
        .iter()
        .map(|e| !multi_atom_rels.contains(&e.rel))
        .collect();

    probe.gauge("rcqp.pool_size", pool.len() as u64);

    // Enumerate maximal V-consistent subsets of the pool; E2 is monotone in
    // D_𝒱, so checking maximal subsets decides ∃𝒱.E2.
    let mut meter = Meter::guarded(MeterKind::Candidates, budget.max_candidates, guard);
    let e2_checks = Cell::new(0u64);
    let q_cqs = match query.as_ucq() {
        Some(u) => u.disjuncts,
        None => {
            return Err(RcError::Unsupported(
                "dispatch guarantees UCQ-expressible".into(),
            ))
        }
    };
    let mut chosen: Vec<usize> = Vec::new();
    let mut current = seed.clone();
    let mut result: Option<Database> = None;
    let check_mode = ConsistencyCheck::select(setting, budget.engine, seed, reuse)?;
    crate::rcdp::emit_plan_telemetry(
        probe,
        setting,
        budget.engine,
        check_mode.prepared(),
        reuse.is_some(),
        seed,
    );
    let cc_skipped = Cell::new(0u64);
    let probes_before = probe_count();
    let scratch = RefCell::new(Database::with_relations(setting.schema.len()));
    let span = probe.span("rcqp.e2_search");
    let outcome = maximal_subsets(
        setting,
        &pool,
        &inert,
        0,
        &mut chosen,
        &mut current,
        &SearchCtx {
            check_mode,
            scratch,
            cc_skipped: &cc_skipped,
        },
        &mut meter,
        &mut |db: &Database, entries: &[usize]| -> Result<bool, RcError> {
            // E2 over this maximal D_𝒱: bound values are the pinned
            // constraint-head values of the chosen instantiations.
            let bound: BTreeSet<Value> = entries
                .iter()
                .flat_map(|&i| pool[i].bound.iter().cloned())
                .collect();
            for cq in &q_cqs {
                e2_checks.set(e2_checks.get() + 1);
                match crate::characterize::e2_check_guarded(setting, cq, db, &bound, budget, guard)?
                {
                    Some(true) => {}
                    _ => return Ok(false),
                }
            }
            Ok(true)
        },
        &mut result,
    )?;
    drop(span);
    probe.count("rcqp.candidates", meter.used());
    probe.count("rcqp.e2_checks", e2_checks.get());
    probe.count("cc.skipped_by_delta", cc_skipped.get());
    // Thread-local counter: exact even when other threads probe concurrently.
    probe.count("index.probe", probe_count().saturating_sub(probes_before));
    // A guard trip anywhere in the search (including inside an E2 check,
    // where it surfaces as an inconclusive check) forfeits the Empty
    // reading: the enumeration did not run to genuine exhaustion.
    if outcome != MaxOutcome::Found {
        if let Some(interrupt) = guard.tripped() {
            probe.interrupt("rcqp.interrupt", interrupt.name(), guard.ticks());
            probe.note("explain.frontier", || {
                format!(
                    "E2 subset search interrupted after {} candidate(s) over a pool of {} \
                     tuple(s); remaining subsets unexplored",
                    meter.used(),
                    pool.len()
                )
            });
            return Ok(QueryVerdict::unknown(
                SearchStats::new(
                    interrupt.limit(),
                    match interrupt {
                        crate::guard::Interrupt::Deadline => format!(
                            "wall-clock deadline expired after {} candidate(s)",
                            meter.used()
                        ),
                        crate::guard::Interrupt::Cancelled => {
                            format!("cancelled after {} candidate(s)", meter.used())
                        }
                    },
                )
                .with_candidates(meter.used()),
            ));
        }
    }
    match outcome {
        MaxOutcome::Found => {
            let witness = result.unwrap_or_else(|| unreachable!("Found sets the result"));
            // Certify the witness with the RCDP decider; E2 guarantees
            // nonemptiness (Proposition 4.2), the certificate is a bonus.
            let _span = probe.span("rcqp.certify_witness");
            let certified = matches!(
                crate::rcdp::rcdp_exact_guarded(
                    setting,
                    query,
                    &witness,
                    budget,
                    guard,
                    Probe::disabled()
                )?,
                Verdict::Complete
            );
            Ok(QueryVerdict::Nonempty {
                witness: certified.then_some(witness),
            })
        }
        MaxOutcome::Exhausted if pool_is_exact => Ok(QueryVerdict::Empty),
        MaxOutcome::Exhausted => Ok(QueryVerdict::unknown(
            SearchStats::new(
                BudgetLimit::FreshValues,
                format!(
                    "no E2 witness over a fresh pool of {n_fresh} value(s); emptiness would \
                     need {needed_fresh} (raise SearchBudget::fresh_values for an exact verdict)"
                ),
            )
            .with_candidates(meter.used()),
        )),
        MaxOutcome::Budget => {
            probe.note("explain.frontier", || {
                format!(
                    "E2 subset search stopped after {} candidate(s) over a pool of {} \
                     tuple(s); remaining subsets unexplored",
                    meter.used(),
                    pool.len()
                )
            });
            Ok(QueryVerdict::unknown(
                SearchStats::new(
                    BudgetLimit::MaxCandidates,
                    format!(
                        "candidate budget of {} exhausted over a pool of {} tuples",
                        meter.limit(),
                        pool.len()
                    ),
                )
                .with_candidates(meter.used()),
            ))
        }
    }
}

/// The single-tuple pre-filter, sharded across the worker pool as a
/// *gather* job: the pool is cut into fixed ranges, every chunk filters its
/// range, and the kept entries are concatenated in chunk index order —
/// bitwise the same filtered pool the sequential loop produces, independent
/// of thread count. Errors ride the value channel; the earliest erroring
/// entry (in pool order) is the one reported, matching where the sequential
/// loop would have stopped.
fn prefilter_parallel(
    setting: &Setting,
    pool: &[PoolEntry],
    budget: &SearchBudget,
    guard: &Guard,
    probe: Probe<'_>,
) -> Result<Vec<PoolEntry>, RcError> {
    use crate::par::{self, ChunkEvent, ChunkResult, ChunkStats};

    const PREFILTER_CHUNK: usize = 64;
    let n_chunks = pool.len().div_ceil(PREFILTER_CHUNK).max(1);
    let job = |idx: usize, _wguard: &Guard| -> ChunkResult<Result<Vec<PoolEntry>, RcError>> {
        let lo = idx * PREFILTER_CHUNK;
        let hi = (lo + PREFILTER_CHUNK).min(pool.len());
        let mut kept = Vec::new();
        let mut value = Ok(());
        for entry in &pool[lo..hi] {
            let mut single = Database::with_relations(setting.schema.len());
            single.insert(entry.rel, entry.tuple.clone());
            match setting.v.upper_satisfied(&single, &setting.dm) {
                Ok(true) => kept.push(entry.clone()),
                Ok(false) => {}
                Err(e) => {
                    value = Err(RcError::from(e));
                    break;
                }
            }
        }
        ChunkResult {
            event: ChunkEvent::Clear,
            value: Some(value.map(|()| kept)),
            stats: ChunkStats::default(),
        }
    };
    let run = par::run_chunks(budget.engine.workers(), n_chunks, guard, &job);
    if probe.trace().is_some() {
        for entry in &run.timeline {
            let e = *entry;
            probe.note("par.timeline", || {
                format!(
                    "worker {} chunk {} {}..{}us",
                    e.worker, e.chunk, e.start_micros, e.end_micros
                )
            });
        }
    }
    let gather = run.merge_gather();
    probe.count("par.chunk", gather.executed);
    probe.count("par.steal", gather.steals);
    let mut kept = Vec::with_capacity(pool.len());
    for chunk in gather.values {
        kept.extend(chunk?);
    }
    Ok(kept)
}

#[derive(PartialEq, Eq, Debug)]
enum MaxOutcome {
    Found,
    Exhausted,
    Budget,
}

/// Shared, read-mostly state of one maximal-subset enumeration.
struct SearchCtx<'a> {
    check_mode: ConsistencyCheck,
    scratch: RefCell<Database>,
    cc_skipped: &'a Cell<u64>,
}

impl SearchCtx<'_> {
    fn admits(
        &self,
        setting: &Setting,
        current: &Database,
        entry: &PoolEntry,
    ) -> Result<bool, RcError> {
        self.check_mode.admits(
            setting,
            current,
            entry.rel,
            &entry.tuple,
            &self.scratch,
            self.cc_skipped,
        )
    }
}

/// Enumerate the maximal `V`-consistent subsets of the pool, invoking
/// `check` on each; a `true` check stores the subset in `result` and stops.
///
/// `current` is mutated by backtracking (insert on include, remove on the way
/// out) — no per-branch clone of the candidate database.
#[allow(clippy::too_many_arguments)]
fn maximal_subsets(
    setting: &Setting,
    pool: &[PoolEntry],
    inert: &[bool],
    idx: usize,
    chosen: &mut Vec<usize>,
    current: &mut Database,
    ctx: &SearchCtx<'_>,
    meter: &mut Meter,
    check: &mut impl FnMut(&Database, &[usize]) -> Result<bool, RcError>,
    result: &mut Option<Database>,
) -> Result<MaxOutcome, RcError> {
    if !meter.tick() {
        return Ok(MaxOutcome::Budget);
    }
    if idx == pool.len() {
        // Maximality: no excluded entry can be consistently added.
        for (i, entry) in pool.iter().enumerate() {
            if chosen.contains(&i) {
                continue;
            }
            if current.instance(entry.rel).contains(&entry.tuple) {
                continue; // same tuple contributed by another template
            }
            if ctx.admits(setting, current, entry)? {
                return Ok(MaxOutcome::Exhausted); // not maximal; skip
            }
        }
        if check(current, chosen)? {
            *result = Some(current.clone());
            return Ok(MaxOutcome::Found);
        }
        return Ok(MaxOutcome::Exhausted);
    }
    let entry = &pool[idx];
    // Include branch (only if consistent).
    let already = current.instance(entry.rel).contains(&entry.tuple);
    if already || ctx.admits(setting, current, entry)? {
        if !already {
            current.insert(entry.rel, entry.tuple.clone());
        }
        chosen.push(idx);
        let out = maximal_subsets(
            setting,
            pool,
            inert,
            idx + 1,
            chosen,
            current,
            ctx,
            meter,
            check,
            result,
        )?;
        chosen.pop();
        if !already {
            current.instance_mut(entry.rel).remove(&entry.tuple);
        }
        if out != MaxOutcome::Exhausted {
            return Ok(out);
        }
        // Inert tuples belong to every maximal subset; skip their exclude
        // branch.
        if inert[idx] {
            return Ok(MaxOutcome::Exhausted);
        }
    }
    // Exclude branch (pointless if the tuple is already present).
    if already {
        return Ok(MaxOutcome::Exhausted);
    }
    maximal_subsets(
        setting,
        pool,
        inert,
        idx + 1,
        chosen,
        current,
        ctx,
        meter,
        check,
        result,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ric_constraints::{CcBody, ConstraintSet, ContainmentConstraint, Projection};
    use ric_data::{RelationSchema, Schema};
    use ric_query::parse_cq;

    fn supt_schema() -> Schema {
        Schema::from_relations(vec![RelationSchema::infinite(
            "Supt",
            &["eid", "dept", "cid"],
        )])
        .unwrap()
    }

    /// A query over a completely open-world database can never be complete.
    #[test]
    fn open_world_query_is_not_relatively_complete() {
        let schema = supt_schema();
        let setting = Setting::open_world(schema.clone());
        let q: Query = parse_cq(&schema, "Q(C) :- Supt('e0', D, C).")
            .unwrap()
            .into();
        assert_eq!(
            rcqp(&setting, &q, &SearchBudget::default()).unwrap(),
            QueryVerdict::Empty
        );
    }

    /// With the cid column IND-bounded by master data, the query becomes
    /// relatively complete and a witness is constructed.
    #[test]
    fn ind_bounded_query_is_relatively_complete() {
        let schema = supt_schema();
        let supt = schema.rel_id("Supt").unwrap();
        let mschema =
            Schema::from_relations(vec![RelationSchema::infinite("DCust", &["cid"])]).unwrap();
        let dcust = mschema.rel_id("DCust").unwrap();
        let mut dm = Database::empty(&mschema);
        for c in ["c1", "c2"] {
            dm.insert(dcust, Tuple::new([Value::str(c)]));
        }
        let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(supt, vec![2])),
            dcust,
            vec![0],
        )]);
        let setting = Setting::new(schema.clone(), mschema, dm, v);
        let q: Query = parse_cq(&schema, "Q(C) :- Supt('e0', D, C).")
            .unwrap()
            .into();
        match rcqp(&setting, &q, &SearchBudget::default()).unwrap() {
            QueryVerdict::Nonempty { witness: Some(w) } => {
                assert_eq!(
                    crate::rcdp(&setting, &q, &w, &SearchBudget::default()).unwrap(),
                    Verdict::Complete
                );
            }
            other => panic!("expected nonempty with witness, got {other:?}"),
        }
    }

    /// Example 4.1: Q4 selects Supt tuples with eid = e0 ∧ dept = d0; under
    /// the FD eid → dept a single blocking tuple (e0, d′, c) with d′ ≠ d0
    /// makes a complete database — the query is relatively complete even
    /// though its head is unbounded, because a D⁻ can block all additions.
    #[test]
    fn example_4_1_blocking_witness_found() {
        let schema =
            Schema::from_relations(vec![RelationSchema::infinite("Supt", &["eid", "dept"])])
                .unwrap();
        let supt = schema.rel_id("Supt").unwrap();
        let fd = ric_constraints::Fd::new(supt, vec![0], vec![1]); // eid → dept
        let v = ConstraintSet::new(ric_constraints::compile::fd_to_ccs(&fd, &schema));
        let setting = Setting::new(
            schema.clone(),
            Schema::new(),
            Database::with_relations(0),
            v,
        );
        // Q4 (projected): employees paired with dept d0, for eid = e0.
        let q: Query = parse_cq(&schema, "Q(E) :- Supt(E, 'd0'), E = 'e0'.")
            .unwrap()
            .into();
        let budget = SearchBudget {
            fresh_values: 3,
            ..SearchBudget::default()
        };
        match rcqp(&setting, &q, &budget).unwrap() {
            QueryVerdict::Nonempty { witness } => {
                if let Some(w) = witness {
                    assert_eq!(
                        crate::rcdp(&setting, &q, &w, &budget).unwrap(),
                        Verdict::Complete,
                        "witness {w} must be certified complete"
                    );
                }
            }
            other => panic!("expected nonempty, got {other:?}"),
        }
    }

    /// Example 4.1 continued: with only eid → dept, the query asking for the
    /// *employees* with dept d0 is not relatively complete — eid stays free,
    /// fresh employees can always be injected.
    #[test]
    fn example_4_1_unbounded_head_is_empty() {
        let schema =
            Schema::from_relations(vec![RelationSchema::infinite("Supt", &["eid", "dept"])])
                .unwrap();
        let supt = schema.rel_id("Supt").unwrap();
        let fd = ric_constraints::Fd::new(supt, vec![0], vec![1]); // eid → dept
        let v = ConstraintSet::new(ric_constraints::compile::fd_to_ccs(&fd, &schema));
        let setting = Setting::new(
            schema.clone(),
            Schema::new(),
            Database::with_relations(0),
            v,
        );
        let q: Query = parse_cq(&schema, "Q(E) :- Supt(E, 'd0').").unwrap().into();
        // The FD tableau has 3 variables; give the pool that many fresh
        // values so the exhausted search is paper-exact (Empty, not Unknown).
        let budget = SearchBudget {
            fresh_values: 3,
            ..SearchBudget::default()
        };
        assert_eq!(rcqp(&setting, &q, &budget).unwrap(), QueryVerdict::Empty);
    }

    /// Example 4.1 final part: with the full FD eid → dept, cid the query Q2
    /// (all customers of e0) becomes relatively complete — a single
    /// (e0, d0, c0) tuple pins the answer; the greedy probe finds it.
    #[test]
    fn example_4_1_full_fd_is_nonempty() {
        let schema = supt_schema();
        let supt = schema.rel_id("Supt").unwrap();
        let fd = ric_constraints::Fd::new(supt, vec![0], vec![1, 2]);
        let v = ConstraintSet::new(ric_constraints::compile::fd_to_ccs(&fd, &schema));
        let setting = Setting::new(
            schema.clone(),
            Schema::new(),
            Database::with_relations(0),
            v,
        );
        let q: Query = parse_cq(&schema, "Q(C) :- Supt('e0', D, C).")
            .unwrap()
            .into();
        match rcqp(&setting, &q, &SearchBudget::default()).unwrap() {
            QueryVerdict::Nonempty { witness: Some(w) } => {
                assert_eq!(
                    crate::rcdp(&setting, &q, &w, &SearchBudget::default()).unwrap(),
                    Verdict::Complete
                );
            }
            other => panic!("expected nonempty, got {other:?}"),
        }
    }

    /// A finite-domain head is trivially relatively complete (E1).
    #[test]
    fn finite_head_is_relatively_complete() {
        let schema = Schema::from_relations(vec![RelationSchema::new(
            "B",
            vec![
                ric_data::Attribute::boolean("x"),
                ric_data::Attribute::new("y"),
            ],
        )])
        .unwrap();
        let setting = Setting::open_world(schema.clone());
        let q: Query = parse_cq(&schema, "Q(X) :- B(X, Y).").unwrap().into();
        match rcqp(&setting, &q, &SearchBudget::default()).unwrap() {
            QueryVerdict::Nonempty { witness } => {
                if let Some(w) = witness {
                    assert_eq!(
                        crate::rcdp(&setting, &q, &w, &SearchBudget::default()).unwrap(),
                        Verdict::Complete
                    );
                }
            }
            other => panic!("expected nonempty, got {other:?}"),
        }
    }

    /// Unsatisfiable queries are relatively complete with the empty witness.
    #[test]
    fn unsatisfiable_query_nonempty() {
        let schema = supt_schema();
        let setting = Setting::open_world(schema.clone());
        let q: Query = parse_cq(&schema, "Q(C) :- Supt(E, D, C), C != C.")
            .unwrap()
            .into();
        match rcqp(&setting, &q, &SearchBudget::default()).unwrap() {
            QueryVerdict::Nonempty { witness: Some(w) } => assert!(w.is_all_empty()),
            other => panic!("expected nonempty with empty witness, got {other:?}"),
        }
    }

    /// The at-most-k denial constraint makes the query relatively complete:
    /// a database holding k distinct answers blocks all further additions.
    #[test]
    fn at_most_k_denial_is_nonempty() {
        let schema =
            Schema::from_relations(vec![RelationSchema::infinite("Supt", &["eid", "cid"])])
                .unwrap();
        let supt = schema.rel_id("Supt").unwrap();
        let denial = ric_constraints::classical::at_most_k_per_key(supt, 0, 1, 2, 2);
        let v = ConstraintSet::new(vec![ric_constraints::compile::denial_to_cc(&denial)]);
        let setting = Setting::new(
            schema.clone(),
            Schema::new(),
            Database::with_relations(0),
            v,
        );
        let q: Query = parse_cq(&schema, "Q(C) :- Supt('e0', C).").unwrap().into();
        let budget = SearchBudget {
            fresh_values: 3,
            ..SearchBudget::default()
        };
        match rcqp(&setting, &q, &budget).unwrap() {
            QueryVerdict::Nonempty { witness } => {
                if let Some(w) = witness {
                    assert_eq!(
                        crate::rcdp(&setting, &q, &w, &budget).unwrap(),
                        Verdict::Complete
                    );
                }
            }
            other => panic!("expected nonempty, got {other:?}"),
        }
    }
}

//! Enumeration of *valid valuations* (Section 3.2).
//!
//! A valuation `μ` of the tableau variables is valid when (a) each variable
//! draws from its active domain — the full finite domain `d_f` for
//! finite-domain variables, `Adom` (constants + `New`) otherwise — and (b)
//! `Q(μ(T_Q)) ≠ ∅`, which for CQ means exactly that the inequalities of the
//! tableau hold under `μ`.
//!
//! The enumerator walks variables in an order that puts head variables first
//! (so callers can prune whole subtrees once the candidate output tuple is
//! known to already be in `Q(D)`), checks inequalities as soon as both sides
//! are bound, and breaks the symmetry of the fresh pool: fresh value `k+1` is
//! only tried after fresh values `0..k` are in use. Symmetry breaking is
//! sound because no input mentions a fresh value, so every predicate the
//! deciders evaluate is invariant under permutations of the pool.

use crate::adom::Adom;
use crate::budget::Meter;
use ric_data::{Schema, Value};
use ric_query::tableau::{Tableau, Valuation};
use ric_query::Term;
use ric_telemetry::Probe;
use std::cell::Cell;
use std::collections::BTreeSet;
use std::ops::ControlFlow;

/// Number of per-depth profile slots; work at deeper assignment depths is
/// clamped into the last slot.
pub const PROFILE_DEPTH: usize = 16;

/// Stable counter names for candidates tried per assignment depth (slot 15
/// absorbs all deeper work). Telemetry names are `&'static str`, so the
/// depth-indexed families are spelled out once here.
pub const DEPTH_CANDIDATES: [&str; PROFILE_DEPTH] = [
    "depth.candidates.00",
    "depth.candidates.01",
    "depth.candidates.02",
    "depth.candidates.03",
    "depth.candidates.04",
    "depth.candidates.05",
    "depth.candidates.06",
    "depth.candidates.07",
    "depth.candidates.08",
    "depth.candidates.09",
    "depth.candidates.10",
    "depth.candidates.11",
    "depth.candidates.12",
    "depth.candidates.13",
    "depth.candidates.14",
    "depth.candidates.15",
];

/// Stable counter names for subtrees pruned per assignment depth (inequality
/// inconsistency or a failed partial filter at that depth).
pub const DEPTH_PRUNED: [&str; PROFILE_DEPTH] = [
    "depth.pruned.00",
    "depth.pruned.01",
    "depth.pruned.02",
    "depth.pruned.03",
    "depth.pruned.04",
    "depth.pruned.05",
    "depth.pruned.06",
    "depth.pruned.07",
    "depth.pruned.08",
    "depth.pruned.09",
    "depth.pruned.10",
    "depth.pruned.11",
    "depth.pruned.12",
    "depth.pruned.13",
    "depth.pruned.14",
    "depth.pruned.15",
];

/// A per-run search profile: candidates tried and subtrees pruned at each
/// assignment depth, plus whole-subtree head-filter prunes. `Cell`-based so
/// the recursive enumerator and the caller's closures can share one profile
/// without threading `&mut` through the recursion.
#[derive(Default, Debug)]
pub struct DepthProfile {
    candidates: [Cell<u64>; PROFILE_DEPTH],
    pruned: [Cell<u64>; PROFILE_DEPTH],
    head_prunes: Cell<u64>,
}

impl DepthProfile {
    /// An empty profile.
    pub fn new() -> Self {
        DepthProfile::default()
    }

    fn candidate(&self, depth: usize) {
        let c = &self.candidates[depth.min(PROFILE_DEPTH - 1)];
        c.set(c.get() + 1);
    }

    fn prune(&self, depth: usize) {
        let c = &self.pruned[depth.min(PROFILE_DEPTH - 1)];
        c.set(c.get() + 1);
    }

    fn head_prune(&self) {
        self.head_prunes.set(self.head_prunes.get() + 1);
    }

    /// Candidates tried per depth slot.
    pub fn candidates(&self) -> [u64; PROFILE_DEPTH] {
        std::array::from_fn(|i| self.candidates[i].get())
    }

    /// Subtrees pruned per depth slot.
    pub fn pruned(&self) -> [u64; PROFILE_DEPTH] {
        std::array::from_fn(|i| self.pruned[i].get())
    }

    /// Subtrees pruned by the head filter (candidate answer already present).
    pub fn head_prunes(&self) -> u64 {
        self.head_prunes.get()
    }

    /// The deepest slot at which any candidate was tried, if any.
    pub fn max_depth(&self) -> Option<usize> {
        (0..PROFILE_DEPTH)
            .rev()
            .find(|&i| self.candidates[i].get() > 0)
    }
}

/// Emit a per-depth profile to `probe` under the stable
/// [`DEPTH_CANDIDATES`] / [`DEPTH_PRUNED`] / `prune.head` names. Zero deltas
/// are dropped by the probe, so quiet depths add no events.
pub fn emit_profile(
    probe: Probe<'_>,
    candidates: &[u64; PROFILE_DEPTH],
    pruned: &[u64; PROFILE_DEPTH],
    head_prunes: u64,
) {
    for (name, &v) in DEPTH_CANDIDATES.iter().zip(candidates) {
        probe.count(name, v);
    }
    for (name, &v) in DEPTH_PRUNED.iter().zip(pruned) {
        probe.count(name, v);
    }
    probe.count("prune.head", head_prunes);
}

/// How an enumeration run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EnumOutcome {
    /// Every valid valuation was visited.
    Exhausted,
    /// A callback broke out early.
    Stopped,
    /// The meter ran out.
    BudgetExceeded,
}

/// Candidate values for one variable.
#[derive(Clone, Debug)]
enum Cands {
    /// A finite-domain variable: exactly these values.
    Finite(Vec<Value>),
    /// An infinite-domain variable: the shared constants plus the
    /// (symmetry-broken) fresh pool.
    Infinite,
}

/// A prepared enumeration over the valid valuations of one tableau.
pub struct ValuationSpace<'a> {
    tableau: &'a Tableau,
    adom: &'a Adom,
    cands: Vec<Cands>,
    /// Variable assignment order; head variables first.
    order: Vec<u32>,
    /// How many leading entries of `order` are head variables.
    head_prefix: usize,
}

impl<'a> ValuationSpace<'a> {
    /// Prepare the space for `tableau` over `adom`, reading per-variable
    /// domains from `schema`.
    pub fn new(tableau: &'a Tableau, schema: &Schema, adom: &'a Adom) -> Self {
        let doms = tableau.var_domains(schema);
        let cands = doms
            .into_iter()
            .map(|d| match d {
                Some(set) => Cands::Finite(set.into_iter().collect()),
                None => Cands::Infinite,
            })
            .collect();
        // Head variables first, then the rest in index order.
        let head: BTreeSet<u32> = tableau.head_vars().iter().map(|v| v.0).collect();
        let mut order: Vec<u32> = head.iter().copied().collect();
        for v in 0..tableau.n_vars {
            if !head.contains(&v) {
                order.push(v);
            }
        }
        let head_prefix = head.len();
        ValuationSpace {
            tableau,
            adom,
            cands,
            order,
            head_prefix,
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.tableau.n_vars as usize
    }

    /// Enumerate valid valuations.
    ///
    /// * `meter` — ticked once per assignment tried; exhaustion aborts.
    /// * `head_filter` — called once all head variables are bound, with the
    ///   partial binding; returning `false` prunes the subtree.
    /// * `visit` — called for each valid valuation; `Break` stops the run.
    pub fn for_each_valid(
        &self,
        meter: &mut Meter<'_>,
        mut head_filter: impl FnMut(&[Option<Value>]) -> bool,
        mut visit: impl FnMut(&Valuation) -> ControlFlow<()>,
    ) -> EnumOutcome {
        let mut binding: Vec<Option<Value>> = vec![None; self.n_vars()];
        let mut no_prune = |_: &[Option<Value>]| true;
        // Special case: no variables at all — one (empty) valuation.
        self.rec(
            0,
            0,
            &mut binding,
            &DepthProfile::default(),
            meter,
            &mut head_filter,
            &mut no_prune,
            &mut visit,
        )
    }

    /// Like [`Self::for_each_valid`], with an additional `partial_filter`
    /// invoked after every consistent binding step; returning `false` prunes
    /// the subtree. Sound for any property that is *anti-monotone in the
    /// instantiated tuples* — in particular "the tuples instantiated so far
    /// do not yet violate `V`": constraint bodies are monotone, so a partial
    /// violation persists in every completion (the pruning the Σᵖ₂
    /// reduction instances of Theorem 3.6 rely on to stay tractable).
    pub fn for_each_valid_pruned(
        &self,
        meter: &mut Meter<'_>,
        head_filter: impl FnMut(&[Option<Value>]) -> bool,
        partial_filter: impl FnMut(&[Option<Value>]) -> bool,
        visit: impl FnMut(&Valuation) -> ControlFlow<()>,
    ) -> EnumOutcome {
        self.for_each_valid_pruned_profiled(
            &DepthProfile::default(),
            meter,
            head_filter,
            partial_filter,
            visit,
        )
    }

    /// Like [`Self::for_each_valid_pruned`], accumulating per-depth search
    /// statistics into `profile` (the parallel engine's chunk jobs hand the
    /// profile back through their chunk stats; the sequential probed path
    /// emits it directly).
    pub fn for_each_valid_pruned_profiled(
        &self,
        profile: &DepthProfile,
        meter: &mut Meter<'_>,
        mut head_filter: impl FnMut(&[Option<Value>]) -> bool,
        mut partial_filter: impl FnMut(&[Option<Value>]) -> bool,
        mut visit: impl FnMut(&Valuation) -> ControlFlow<()>,
    ) -> EnumOutcome {
        let mut binding: Vec<Option<Value>> = vec![None; self.n_vars()];
        self.rec(
            0,
            0,
            &mut binding,
            profile,
            meter,
            &mut head_filter,
            &mut partial_filter,
            &mut visit,
        )
    }

    /// Like [`Self::for_each_valid_pruned`], reporting the run to `probe`:
    /// the assignments tried (metered ticks) as `valuations.assignments`, the
    /// wall time as the `valuations.enumerate` span, per-depth candidate and
    /// prune counters under the [`DEPTH_CANDIDATES`] / [`DEPTH_PRUNED`]
    /// families, head-filter prunes as `prune.head`, and the deepest depth
    /// reached as the `valuations.max_depth` gauge.
    pub fn for_each_valid_pruned_probed(
        &self,
        probe: Probe<'_>,
        meter: &mut Meter<'_>,
        head_filter: impl FnMut(&[Option<Value>]) -> bool,
        partial_filter: impl FnMut(&[Option<Value>]) -> bool,
        visit: impl FnMut(&Valuation) -> ControlFlow<()>,
    ) -> EnumOutcome {
        let before = meter.used();
        let profile = DepthProfile::default();
        let span = probe.span("valuations.enumerate");
        let outcome = self.for_each_valid_pruned_profiled(
            &profile,
            meter,
            head_filter,
            partial_filter,
            visit,
        );
        drop(span);
        probe.count("valuations.assignments", meter.used() - before);
        emit_profile(
            probe,
            &profile.candidates(),
            &profile.pruned(),
            profile.head_prunes(),
        );
        if let Some(d) = profile.max_depth() {
            probe.gauge("valuations.max_depth", d as u64 + 1);
        }
        outcome
    }

    /// The depth-0 candidates of this space — the chunk boundaries the
    /// parallel scheduler shards on — paired with the fresh-pool usage after
    /// choosing each. Replicates exactly the candidate list `Self::rec`
    /// builds at depth 0 (constants first, then the single symmetry-broken
    /// fresh representative), so concatenating the per-candidate subtrees in
    /// this order reproduces the sequential enumeration. `None` when the
    /// space has no variables: the single empty valuation is unsplittable.
    pub fn split_points(&self) -> Option<Vec<(Value, usize)>> {
        let var = *self.order.first()? as usize;
        Some(match &self.cands[var] {
            Cands::Finite(vals) => vals.iter().map(|v| (v.clone(), 0)).collect(),
            Cands::Infinite => {
                let mut out: Vec<(Value, usize)> =
                    self.adom.constants.iter().map(|v| (v.clone(), 0)).collect();
                // At depth 0 no fresh value is in use yet, so the symmetry
                // break admits exactly the first pool value.
                if let Some(v) = self.adom.fresh.first() {
                    out.push((v.clone(), 1));
                }
                out
            }
        })
    }

    /// Enumerate the subtree of exactly one depth-0 candidate, as returned by
    /// [`Self::split_points`]. Semantics match [`Self::for_each_valid_pruned`]
    /// restricted to `order[0] = value`: the meter ticks once for the
    /// candidate itself and once per deeper assignment, so summing the ticks
    /// of every chunk equals the sequential run's tick count, and
    /// concatenating the chunks in `split_points` order visits valuations in
    /// exactly the sequential order.
    pub fn for_each_valid_pruned_chunk(
        &self,
        point: (Value, usize),
        meter: &mut Meter<'_>,
        head_filter: impl FnMut(&[Option<Value>]) -> bool,
        partial_filter: impl FnMut(&[Option<Value>]) -> bool,
        visit: impl FnMut(&Valuation) -> ControlFlow<()>,
    ) -> EnumOutcome {
        self.for_each_valid_pruned_chunk_profiled(
            &DepthProfile::default(),
            point,
            meter,
            head_filter,
            partial_filter,
            visit,
        )
    }

    /// [`Self::for_each_valid_pruned_chunk`] with per-depth profiling. The
    /// per-chunk profiles sum to the sequential run's profile, with one
    /// deliberate exception: the zero-head-variable re-check of the head
    /// filter (see above) is not counted as a head prune, so a head prune at
    /// depth 0 of a headless space is attributed once by the sequential
    /// engine and not at all by the chunked one.
    pub fn for_each_valid_pruned_chunk_profiled(
        &self,
        profile: &DepthProfile,
        (value, next_fresh): (Value, usize),
        meter: &mut Meter<'_>,
        mut head_filter: impl FnMut(&[Option<Value>]) -> bool,
        mut partial_filter: impl FnMut(&[Option<Value>]) -> bool,
        mut visit: impl FnMut(&Valuation) -> ControlFlow<()>,
    ) -> EnumOutcome {
        let mut binding: Vec<Option<Value>> = vec![None; self.n_vars()];
        // Mirror one iteration of `rec` at depth 0. With no head variables
        // the head filter fires before the candidate loop; each chunk
        // re-checks it, which is sound because the filter is pure in the
        // (all-unbound) binding.
        if self.head_prefix == 0 && !head_filter(&binding) {
            return EnumOutcome::Exhausted;
        }
        if !meter.tick() {
            return EnumOutcome::BudgetExceeded;
        }
        profile.candidate(0);
        let var = self.order[0] as usize;
        binding[var] = Some(value);
        if self.neqs_consistent(&binding) && partial_filter(&binding) {
            self.rec(
                1,
                next_fresh,
                &mut binding,
                profile,
                meter,
                &mut head_filter,
                &mut partial_filter,
                &mut visit,
            )
        } else {
            profile.prune(0);
            EnumOutcome::Exhausted
        }
    }

    /// The tuples of `μ(T_Q)` whose atoms are fully bound under a partial
    /// binding (constants-only atoms always qualify).
    pub fn bound_atoms(
        &self,
        binding: &[Option<Value>],
    ) -> Vec<(ric_data::RelId, ric_data::Tuple)> {
        let mut out = Vec::new();
        'atoms: for atom in &self.tableau.atoms {
            let mut fields = Vec::with_capacity(atom.args.len());
            for t in &atom.args {
                match term_val(t, binding) {
                    Some(v) => fields.push(v.clone()),
                    None => continue 'atoms,
                }
            }
            out.push((atom.rel, ric_data::Tuple::new(fields)));
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn rec(
        &self,
        depth: usize,
        fresh_used: usize,
        binding: &mut Vec<Option<Value>>,
        profile: &DepthProfile,
        meter: &mut Meter<'_>,
        head_filter: &mut dyn FnMut(&[Option<Value>]) -> bool,
        partial_filter: &mut dyn FnMut(&[Option<Value>]) -> bool,
        visit: &mut dyn FnMut(&Valuation) -> ControlFlow<()>,
    ) -> EnumOutcome {
        if depth == self.head_prefix && !head_filter(binding) {
            profile.head_prune();
            return EnumOutcome::Exhausted; // pruned subtree, not a stop
        }
        if depth == self.order.len() {
            let mu = Valuation(
                binding
                    .iter()
                    .map(|b| {
                        b.clone()
                            .unwrap_or_else(|| unreachable!("all variables bound at full depth"))
                    })
                    .collect(),
            );
            return match visit(&mu) {
                ControlFlow::Continue(()) => EnumOutcome::Exhausted,
                ControlFlow::Break(()) => EnumOutcome::Stopped,
            };
        }
        let var = self.order[depth] as usize;
        // Candidates paired with the fresh-pool usage after choosing them.
        let candidates: Vec<(Value, usize)> = match &self.cands[var] {
            Cands::Finite(vals) => vals.iter().map(|v| (v.clone(), fresh_used)).collect(),
            Cands::Infinite => {
                let mut out: Vec<(Value, usize)> = self
                    .adom
                    .constants
                    .iter()
                    .map(|v| (v.clone(), fresh_used))
                    .collect();
                // Symmetry-broken fresh pool: reuse any fresh value already in
                // use, or introduce exactly the next unused one.
                let limit = (fresh_used + 1).min(self.adom.fresh.len());
                for (i, v) in self.adom.fresh[..limit].iter().enumerate() {
                    let next = if i == fresh_used {
                        fresh_used + 1
                    } else {
                        fresh_used
                    };
                    out.push((v.clone(), next));
                }
                out
            }
        };
        for (value, next_fresh) in candidates {
            if !meter.tick() {
                return EnumOutcome::BudgetExceeded;
            }
            profile.candidate(depth);
            binding[var] = Some(value);
            let outcome = if self.neqs_consistent(binding) && partial_filter(binding) {
                self.rec(
                    depth + 1,
                    next_fresh,
                    binding,
                    profile,
                    meter,
                    head_filter,
                    partial_filter,
                    visit,
                )
            } else {
                profile.prune(depth);
                EnumOutcome::Exhausted
            };
            binding[var] = None;
            match outcome {
                EnumOutcome::Exhausted => {}
                other => return other,
            }
        }
        EnumOutcome::Exhausted
    }

    /// Are the tableau inequalities consistent with the partial binding?
    fn neqs_consistent(&self, binding: &[Option<Value>]) -> bool {
        self.tableau.neqs.iter().all(
            |(l, r)| match (term_val(l, binding), term_val(r, binding)) {
                (Some(a), Some(b)) => a != b,
                _ => true,
            },
        )
    }
}

/// Instantiate every atom of a tableau under a total assignment, returning
/// `(relation, tuple)` pairs (used by the fresh-escape emptiness test).
pub fn materialize(
    t: &Tableau,
    assignment: &[Option<Value>],
) -> Vec<(ric_data::RelId, ric_data::Tuple)> {
    t.atoms
        .iter()
        .map(|atom| {
            let tuple = ric_data::Tuple::new(atom.args.iter().map(|term| {
                match term {
                    Term::Const(c) => c.clone(),
                    Term::Var(v) => assignment[v.idx()]
                        .clone()
                        .unwrap_or_else(|| unreachable!("total assignment")),
                }
            }));
            (atom.rel, tuple)
        })
        .collect()
}

fn term_val<'b>(t: &'b Term, binding: &'b [Option<Value>]) -> Option<&'b Value> {
    match t {
        Term::Const(c) => Some(c),
        Term::Var(v) => binding[v.idx()].as_ref(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ric_data::{Attribute, Database, RelationSchema};
    use ric_query::{parse_cq, Cq};

    fn boolean_schema() -> Schema {
        Schema::from_relations(vec![RelationSchema::new(
            "B",
            vec![Attribute::boolean("x"), Attribute::new("y")],
        )])
        .unwrap()
    }

    fn adom_for(schema: &Schema, q: &Cq, n_fresh: usize) -> Adom {
        let setting = crate::Setting::open_world(schema.clone());
        let db = Database::empty(schema);
        Adom::build(&db, &setting, &crate::Query::Cq(q.clone()), n_fresh)
    }

    #[test]
    fn finite_vars_range_over_their_domain() {
        let s = boolean_schema();
        let q = parse_cq(&s, "Q(X) :- B(X, Y).").unwrap();
        let t = ric_query::Tableau::of(&q).unwrap();
        let adom = adom_for(&s, &q, 2);
        let space = ValuationSpace::new(&t, &s, &adom);
        let mut seen = Vec::new();
        let mut meter = Meter::new(1_000_000);
        let out = space.for_each_valid(
            &mut meter,
            |_| true,
            |mu| {
                seen.push(mu.clone());
                ControlFlow::Continue(())
            },
        );
        assert_eq!(out, EnumOutcome::Exhausted);
        // X ∈ {0,1}; Y infinite: constants ∅ (no db constants) + fresh pool
        // symmetry-broken to exactly 1 representative.
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn symmetry_breaking_collapses_fresh_permutations() {
        let s = Schema::from_relations(vec![RelationSchema::infinite("R", &["a", "b"])]).unwrap();
        let q = parse_cq(&s, "Q(X, Y) :- R(X, Y), X != Y.").unwrap();
        let t = ric_query::Tableau::of(&q).unwrap();
        let adom = adom_for(&s, &q, 3);
        let space = ValuationSpace::new(&t, &s, &adom);
        let mut count = 0;
        let mut meter = Meter::new(1_000_000);
        space.for_each_valid(
            &mut meter,
            |_| true,
            |_| {
                count += 1;
                ControlFlow::Continue(())
            },
        );
        // With no constants, the only canonical valuation is
        // (fresh0, fresh1): fresh0=fresh1 violates X≠Y, permutations are
        // broken, and fresh2 can never be introduced before fresh1.
        assert_eq!(count, 1);
    }

    #[test]
    fn head_filter_prunes() {
        let s = Schema::from_relations(vec![RelationSchema::infinite("R", &["a", "b"])]).unwrap();
        let q = parse_cq(&s, "Q(X) :- R(X, Y).").unwrap();
        let t = ric_query::Tableau::of(&q).unwrap();
        let adom = adom_for(&s, &q, 2);
        let space = ValuationSpace::new(&t, &s, &adom);
        let mut visited = 0;
        let mut meter = Meter::new(1_000_000);
        let out = space.for_each_valid(
            &mut meter,
            |_| false, // prune everything
            |_| {
                visited += 1;
                ControlFlow::Continue(())
            },
        );
        assert_eq!(out, EnumOutcome::Exhausted);
        assert_eq!(visited, 0);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let s = Schema::from_relations(vec![RelationSchema::infinite("R", &["a", "b"])]).unwrap();
        let q = parse_cq(&s, "Q(X, Y) :- R(X, Y).").unwrap();
        let t = ric_query::Tableau::of(&q).unwrap();
        let adom = adom_for(&s, &q, 3);
        let space = ValuationSpace::new(&t, &s, &adom);
        let mut meter = Meter::new(1);
        let out = space.for_each_valid(&mut meter, |_| true, |_| ControlFlow::Continue(()));
        assert_eq!(out, EnumOutcome::BudgetExceeded);
    }

    #[test]
    fn early_stop_reported() {
        let s = Schema::from_relations(vec![RelationSchema::infinite("R", &["a", "b"])]).unwrap();
        let q = parse_cq(&s, "Q(X, Y) :- R(X, Y).").unwrap();
        let t = ric_query::Tableau::of(&q).unwrap();
        let adom = adom_for(&s, &q, 3);
        let space = ValuationSpace::new(&t, &s, &adom);
        let mut meter = Meter::new(1_000_000);
        let out = space.for_each_valid(&mut meter, |_| true, |_| ControlFlow::Break(()));
        assert_eq!(out, EnumOutcome::Stopped);
    }

    #[test]
    fn chunk_concatenation_matches_sequential_enumeration() {
        let s = Schema::from_relations(vec![RelationSchema::infinite("R", &["a", "b"])]).unwrap();
        let q = parse_cq(&s, "Q(X) :- R(X, Y), X != Y.").unwrap();
        let t = ric_query::Tableau::of(&q).unwrap();
        let setting = crate::Setting::open_world(s.clone());
        let mut db = Database::empty(&s);
        let r = s.rel_id("R").unwrap();
        db.insert(r, ric_data::Tuple::new([Value::int(1), Value::int(2)]));
        let adom = Adom::build(&db, &setting, &crate::Query::Cq(q.clone()), 2);
        let space = ValuationSpace::new(&t, &s, &adom);

        let mut sequential = Vec::new();
        let mut seq_meter = Meter::new(1_000_000);
        let out = space.for_each_valid_pruned(
            &mut seq_meter,
            |_| true,
            |_| true,
            |mu| {
                sequential.push(mu.clone());
                ControlFlow::Continue(())
            },
        );
        assert_eq!(out, EnumOutcome::Exhausted);
        assert!(!sequential.is_empty());

        let mut chunked = Vec::new();
        let mut chunk_ticks = 0;
        let points = space.split_points().expect("space has variables");
        assert!(points.len() > 1, "multiple chunks exercise the split");
        for point in points {
            let mut meter = Meter::new(1_000_000);
            let out = space.for_each_valid_pruned_chunk(
                point,
                &mut meter,
                |_| true,
                |_| true,
                |mu| {
                    chunked.push(mu.clone());
                    ControlFlow::Continue(())
                },
            );
            assert_eq!(out, EnumOutcome::Exhausted);
            chunk_ticks += meter.used();
        }
        assert_eq!(chunked, sequential, "same valuations in the same order");
        assert_eq!(chunk_ticks, seq_meter.used(), "same metered work");
    }

    #[test]
    fn zero_variable_tableau_yields_unit_valuation() {
        let s = Schema::from_relations(vec![RelationSchema::infinite("R", &["a"])]).unwrap();
        let q = parse_cq(&s, "Q() :- R(5).").unwrap();
        let t = ric_query::Tableau::of(&q).unwrap();
        let adom = adom_for(&s, &q, 1);
        let space = ValuationSpace::new(&t, &s, &adom);
        let mut seen = 0;
        let mut meter = Meter::new(10);
        let out = space.for_each_valid(
            &mut meter,
            |_| true,
            |mu| {
                assert!(mu.0.is_empty());
                seen += 1;
                ControlFlow::Continue(())
            },
        );
        assert_eq!(out, EnumOutcome::Exhausted);
        assert_eq!(seen, 1);
    }
}

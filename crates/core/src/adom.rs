//! The extended active domain `Adom` of Section 3.2.
//!
//! `Adom` consists of (a) all constants appearing in `D`, `D_m`, `Q`, or `V`,
//! and (b) a set `New` of distinct values not occurring in any of them. The
//! paper allocates one fresh value per tableau variable; because fresh values
//! are interchangeable (none of `D`, `D_m`, `Q`, `V` mentions them, so every
//! check is invariant under permuting them), the enumerator in
//! [`crate::valuations`] breaks the symmetry and only ever explores
//! canonical uses of the fresh pool — the pool therefore only needs to be as
//! large as the largest single tableau.

use crate::query::Query;
use crate::setting::Setting;
use ric_data::{Database, FreshValues, Value};
use std::collections::BTreeSet;

/// The extended active domain: the shared constants plus the fresh pool.
#[derive(Clone, Debug)]
pub struct Adom {
    /// Constants of `D ∪ D_m ∪ Q ∪ V`, deterministic order.
    pub constants: Vec<Value>,
    /// The `New` values (infinite-domain only, never in any input).
    pub fresh: Vec<Value>,
}

impl Adom {
    /// Build the active domain for a decision about `(db, setting, query)`,
    /// with a fresh pool of `n_fresh` values.
    pub fn build(db: &Database, setting: &Setting, query: &Query, n_fresh: usize) -> Adom {
        let mut consts: BTreeSet<Value> = db.active_domain().clone();
        consts.extend(setting.dm.active_domain().iter().cloned());
        consts.extend(query.constants());
        consts.extend(setting.v.constants());
        let mut gen = FreshValues::new();
        gen.observe_all(consts.iter());
        let fresh = gen.fresh_n(n_fresh);
        Adom {
            constants: consts.into_iter().collect(),
            fresh,
        }
    }

    /// Total size |Adom| = constants + fresh pool.
    pub fn len(&self) -> usize {
        self.constants.len() + self.fresh.len()
    }

    /// Is the domain empty (no constants and no fresh values)?
    pub fn is_empty(&self) -> bool {
        self.constants.is_empty() && self.fresh.is_empty()
    }

    /// Is `v` one of the fresh (`New`) values?
    pub fn is_fresh(&self, v: &Value) -> bool {
        self.fresh.contains(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ric_constraints::ConstraintSet;
    use ric_data::{RelationSchema, Schema, Tuple};
    use ric_query::parse_cq;

    #[test]
    fn adom_collects_all_sources_and_fresh_is_disjoint() {
        let schema =
            Schema::from_relations(vec![RelationSchema::infinite("R", &["a", "b"])]).unwrap();
        let r = schema.rel_id("R").unwrap();
        let mschema = Schema::from_relations(vec![RelationSchema::infinite("M", &["a"])]).unwrap();
        let m = mschema.rel_id("M").unwrap();
        let mut dm = Database::empty(&mschema);
        dm.insert(m, Tuple::new([Value::int(100)]));
        let setting = Setting::new(schema.clone(), mschema, dm, ConstraintSet::empty());
        let mut db = Database::empty(&schema);
        db.insert(r, Tuple::new([Value::int(1), Value::str("a")]));
        let q: Query = parse_cq(&schema, "Q(X) :- R(X, 7).").unwrap().into();
        let adom = Adom::build(&db, &setting, &q, 3);
        assert!(adom.constants.contains(&Value::int(1)));
        assert!(adom.constants.contains(&Value::int(100)));
        assert!(adom.constants.contains(&Value::int(7)));
        assert!(adom.constants.contains(&Value::str("a")));
        assert_eq!(adom.fresh.len(), 3);
        for f in &adom.fresh {
            assert!(!adom.constants.contains(f));
            assert!(adom.is_fresh(f));
        }
        assert_eq!(adom.len(), adom.constants.len() + 3);
    }
}

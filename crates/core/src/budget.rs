//! Search budgets.
//!
//! RCDP for CQ/UCQ/∃FO⁺ is Σᵖ₂-complete and RCQP is NEXPTIME-complete
//! (Theorems 3.6 and 4.5); the FO/FP cells are undecidable (Theorems 3.1 and
//! 4.1). The deciders are exact, but exactness can cost exponential time —
//! a [`SearchBudget`] bounds the work, and exceeding it yields
//! `Verdict::Unknown`, never a wrong answer.

use std::time::Duration;

use crate::guard::{Guard, Interrupt};
use crate::verdict::BudgetLimit;

/// Which evaluation engine the deciders use for their inner loops.
///
/// All engines are exact — `Naive` materializes each candidate extension
/// `D ∪ Δ` and re-checks every constraint from scratch, `Indexed` works
/// through overlays, per-column indexes, and delta-aware constraint checks,
/// and `Parallel` shards the `Indexed` enumeration loops across a hand-rolled
/// thread pool with a deterministic merge (same verdict and witness as the
/// sequential engines, regardless of thread count or interleaving — see
/// `DESIGN.md` §8). `Naive` exists as the differential-testing oracle and the
/// baseline arm of the engine benchmark.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Engine {
    /// Materialize unions, re-check all constraints per candidate.
    Naive,
    /// Overlay views, index joins, delta-restricted constraint checks.
    #[default]
    Indexed,
    /// The indexed engine with its hot enumeration loops sharded across
    /// `workers` threads (clamped to at least 1; `workers: 1` runs the
    /// parallel code path on the calling thread only).
    Parallel {
        /// Worker thread count for the chunked enumeration pool.
        workers: usize,
    },
    /// The indexed engine with containment-constraint bodies compiled to
    /// cost-based prepared plans (`ric-plan`): fixed binding orders chosen
    /// from base-database statistics, pre-resolved index probes, pinned
    /// inequality checks. `workers > 1` additionally shards the enumeration
    /// loops like `Parallel`; `workers: 1` stays sequential. Falls back to
    /// the static greedy order (plan-level, still exact) when statistics
    /// are absent. Verdicts, witnesses, and checkpoints are identical to
    /// `Indexed` by construction.
    Planned {
        /// Worker thread count (1 = sequential, like `Indexed`).
        workers: usize,
    },
}

impl Engine {
    /// A parallel engine with `workers` threads (clamped to at least 1).
    pub fn parallel(workers: usize) -> Self {
        Engine::Parallel {
            workers: workers.max(1),
        }
    }

    /// A planned engine with `workers` threads (clamped to at least 1).
    pub fn planned(workers: usize) -> Self {
        Engine::Planned {
            workers: workers.max(1),
        }
    }

    /// Does this engine use the indexed data path (overlays, per-column
    /// indexes, delta-restricted constraint checks)? `Parallel` shards the
    /// indexed loops and `Planned` compiles them, so both do.
    pub fn indexed(&self) -> bool {
        matches!(
            self,
            Engine::Indexed | Engine::Parallel { .. } | Engine::Planned { .. }
        )
    }

    /// Does this engine compile constraint bodies to prepared plans?
    pub fn is_planned(&self) -> bool {
        matches!(self, Engine::Planned { .. })
    }

    /// Does this engine shard its enumeration loops across a thread pool?
    /// `Parallel` always does (`workers: 1` runs the parallel code path on
    /// the calling thread, by contract); `Planned` only with more than one
    /// worker — `planned:1` is the sequential engine plus plans.
    pub fn sharded(&self) -> bool {
        match self {
            Engine::Parallel { .. } => true,
            Engine::Planned { workers } => *workers > 1,
            _ => false,
        }
    }

    /// The number of worker threads this engine fans enumeration out to
    /// (1 for the sequential engines).
    pub fn workers(&self) -> usize {
        match self {
            Engine::Parallel { workers } | Engine::Planned { workers } => (*workers).max(1),
            _ => 1,
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::Naive => write!(f, "naive"),
            Engine::Indexed => write!(f, "indexed"),
            Engine::Parallel { workers } => write!(f, "parallel:{workers}"),
            Engine::Planned { workers } => write!(f, "planned:{workers}"),
        }
    }
}

/// Limits on decider work.
#[derive(Clone, Copy, Debug)]
pub struct SearchBudget {
    /// Maximum number of candidate valuations examined per decision.
    pub max_valuations: u64,
    /// Maximum number of candidate witness databases examined (RCQP search).
    pub max_candidates: u64,
    /// Maximum tuples in a candidate extension Δ (semi-decision for FO/FP).
    pub max_delta_tuples: usize,
    /// Maximum tuples in a constructed witness database.
    pub max_witness_tuples: usize,
    /// Extra fresh values made available to the FO/FP extension search.
    pub fresh_values: usize,
    /// Wall-clock deadline for one decision. Checked cooperatively inside
    /// the enumeration loops (amortized — see
    /// [`Guard::DEFAULT_CHECK_INTERVAL`]); expiry yields an `Unknown` verdict
    /// with [`BudgetLimit::Deadline`], never a wrong answer. `None` (the
    /// default) disables the clock entirely.
    pub deadline: Option<Duration>,
    /// Which evaluation engine drives the enumeration loops. Exactness is
    /// engine-independent; `Naive` is the cross-checking oracle.
    pub engine: Engine,
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget {
            max_valuations: 5_000_000,
            max_candidates: 2_000_000,
            max_delta_tuples: 3,
            max_witness_tuples: 10_000,
            fresh_values: 2,
            deadline: None,
            engine: Engine::default(),
        }
    }
}

impl SearchBudget {
    /// A small budget for quick checks in tests.
    pub fn small() -> Self {
        SearchBudget {
            max_valuations: 100_000,
            max_candidates: 50_000,
            max_delta_tuples: 2,
            max_witness_tuples: 1_000,
            fresh_values: 1,
            deadline: None,
            engine: Engine::default(),
        }
    }

    /// An effectively unbounded budget (exactness over speed). No deadline:
    /// an exhaustive run is bounded only by the count meters at `u64::MAX`.
    pub fn exhaustive() -> Self {
        SearchBudget {
            max_valuations: u64::MAX,
            max_candidates: u64::MAX,
            max_delta_tuples: usize::MAX,
            max_witness_tuples: usize::MAX,
            fresh_values: 4,
            deadline: None,
            engine: Engine::default(),
        }
    }

    /// This budget with a wall-clock deadline per decision.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// This budget with the given evaluation engine.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }
}

/// Which counting meter a decider is running; used to target deterministic
/// meter exhaustion in a [`FaultPlan`](crate::guard::FaultPlan).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MeterKind {
    /// The valuation-enumeration meter ([`SearchBudget::max_valuations`]).
    Valuations,
    /// The candidate-search meter ([`SearchBudget::max_candidates`]).
    Candidates,
}

/// A running counter checked against a limit; shared by the enumeration
/// loops.
///
/// Semantics: [`Meter::tick`] *requests* one unit of work. A request past the
/// limit is rejected — it returns `false`, marks the meter exhausted, and is
/// **not** counted, so [`Meter::used`] reports exactly the units of work
/// actually performed and never exceeds the limit. (An earlier revision
/// counted the rejected request too, over-reporting `used()` by one after
/// exhaustion; the telemetry counters are fed from `used()`, so the invariant
/// `used() ≤ limit` now holds everywhere.)
///
/// A meter can additionally carry a [`Guard`]: every tick then also polls the
/// guard for a deadline expiry or cancellation, and a tripped guard rejects
/// the request exactly like an exhausted count limit. Deciders distinguish the
/// two via [`Meter::interrupt`] and report [`BudgetLimit::Deadline`] /
/// [`BudgetLimit::Cancelled`] instead of the count limit.
#[derive(Debug)]
pub struct Meter<'g> {
    used: u64,
    limit: u64,
    exhausted: bool,
    guard: Option<&'g Guard>,
    interrupt: Option<Interrupt>,
}

impl<'g> Meter<'g> {
    /// A meter with the given limit and no guard.
    pub fn new(limit: u64) -> Self {
        Meter {
            used: 0,
            limit,
            exhausted: false,
            guard: None,
            interrupt: None,
        }
    }

    /// A guarded meter: ticks poll `guard` for deadline expiry and
    /// cancellation, and a [`FaultPlan`](crate::guard::FaultPlan) targeting
    /// `kind` caps the effective limit for deterministic exhaustion tests.
    pub fn guarded(kind: MeterKind, limit: u64, guard: &'g Guard) -> Self {
        Meter {
            used: 0,
            limit: guard.capped_limit(kind, limit),
            exhausted: false,
            guard: Some(guard),
            interrupt: None,
        }
    }

    /// A guarded meter that starts with `spent` units already consumed — the
    /// resume primitive. A resumed installment re-runs only the uncommitted
    /// tail of a search, but its meter must reject at exactly the same point
    /// an uninterrupted run at the same limit would, so the committed prefix
    /// is pre-charged here. `spent` is clamped to the effective limit (a
    /// checkpoint taken under a larger budget never grants negative headroom).
    pub fn guarded_primed(kind: MeterKind, limit: u64, spent: u64, guard: &'g Guard) -> Self {
        let limit = guard.capped_limit(kind, limit);
        Meter {
            used: spent.min(limit),
            limit,
            exhausted: false,
            guard: Some(guard),
            interrupt: None,
        }
    }

    /// Request one unit of work; `false` when the budget is exhausted or the
    /// guard has tripped (the rejected request is not counted).
    #[inline]
    pub fn tick(&mut self) -> bool {
        if self.interrupt.is_some() {
            return false;
        }
        if let Some(guard) = self.guard {
            if let Some(interrupt) = guard.check() {
                self.interrupt = Some(interrupt);
                return false;
            }
        }
        if self.used >= self.limit {
            self.exhausted = true;
            return false;
        }
        // Saturating: with `SearchBudget::exhaustive()` the limit is
        // `u64::MAX`, and the increment must not wrap at the boundary.
        self.used = self.used.saturating_add(1);
        true
    }

    /// Has a request been rejected by the count limit?
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Units of work performed (accepted requests only; at most the limit).
    pub fn used(&self) -> u64 {
        self.used
    }

    /// The effective count limit (the configured budget knob, possibly capped
    /// by a fault plan).
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// The interrupt that stopped this meter, if the guard tripped (as
    /// opposed to the count limit running out).
    pub fn interrupt(&self) -> Option<Interrupt> {
        self.interrupt
    }

    /// The [`BudgetLimit`] to report for a rejected request: the guard's
    /// interrupt when one fired, otherwise `fallback` (the count limit the
    /// meter enforces).
    pub fn stop_limit(&self, fallback: BudgetLimit) -> BudgetLimit {
        match self.interrupt {
            Some(interrupt) => interrupt.limit(),
            None => fallback,
        }
    }

    /// The human-readable `SearchStats` detail for a rejected request, where
    /// `noun` names the unit this meter counts (`"valuation"`,
    /// `"candidate"`). The count-exhaustion wording is the crate's historic
    /// log surface and must not drift.
    pub fn stop_detail(&self, noun: &str) -> String {
        match self.interrupt {
            Some(Interrupt::Deadline) => {
                format!("wall-clock deadline expired after {} {noun}(s)", self.used)
            }
            Some(Interrupt::Cancelled) => {
                format!("cancelled after {} {noun}(s)", self.used)
            }
            None => format!("{noun} budget of {} exhausted", self.limit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_ticks_to_limit() {
        let mut m = Meter::new(2);
        assert!(!m.exhausted());
        assert!(m.tick());
        assert!(m.tick());
        assert!(!m.exhausted(), "reaching the limit is not exhaustion");
        assert!(!m.tick());
        assert!(m.exhausted());
        // The rejected request is not counted: used() never exceeds the limit.
        assert_eq!(m.used(), 2);
        assert!(!m.tick());
        assert_eq!(m.used(), 2);
    }

    #[test]
    fn zero_limit_meter_rejects_immediately() {
        let mut m = Meter::new(0);
        assert!(!m.tick());
        assert!(m.exhausted());
        assert_eq!(m.used(), 0);
    }

    #[test]
    fn engine_helpers_classify_parallel_as_indexed() {
        assert!(Engine::Indexed.indexed());
        assert!(!Engine::Naive.indexed());
        assert!(Engine::parallel(4).indexed());
        assert_eq!(Engine::parallel(0).workers(), 1);
        assert_eq!(Engine::parallel(4).workers(), 4);
        assert_eq!(Engine::Naive.workers(), 1);
        assert_eq!(Engine::parallel(4).to_string(), "parallel:4");
    }

    #[test]
    fn engine_helpers_classify_planned() {
        assert!(Engine::planned(1).indexed());
        assert!(Engine::planned(1).is_planned());
        assert!(!Engine::Indexed.is_planned());
        assert!(!Engine::parallel(4).is_planned());
        assert_eq!(Engine::planned(0).workers(), 1);
        assert_eq!(Engine::planned(4).workers(), 4);
        assert_eq!(Engine::planned(4).to_string(), "planned:4");
        // Sharding: Parallel always runs the pool (even workers=1, by
        // documented contract); Planned only fans out past one worker.
        assert!(Engine::parallel(1).sharded());
        assert!(Engine::parallel(4).sharded());
        assert!(!Engine::planned(1).sharded());
        assert!(Engine::planned(4).sharded());
        assert!(!Engine::Indexed.sharded());
        assert!(!Engine::Naive.sharded());
    }

    #[test]
    fn presets_are_ordered() {
        let s = SearchBudget::small();
        let d = SearchBudget::default();
        let e = SearchBudget::exhaustive();
        assert!(s.max_valuations < d.max_valuations);
        assert!(d.max_valuations < e.max_valuations);
    }

    #[test]
    fn presets_have_no_deadline() {
        assert!(SearchBudget::small().deadline.is_none());
        assert!(SearchBudget::default().deadline.is_none());
        assert!(SearchBudget::exhaustive().deadline.is_none());
        let b = SearchBudget::default().with_deadline(Duration::from_millis(5));
        assert_eq!(b.deadline, Some(Duration::from_millis(5)));
    }

    #[test]
    fn exhaustive_meter_ticks_at_u64_max_without_wrapping() {
        // The exhaustive preset sets limit = u64::MAX; force the counter to
        // the boundary and verify the increment saturates instead of
        // wrapping back below the limit.
        let mut m = Meter::new(SearchBudget::exhaustive().max_valuations);
        m.used = u64::MAX - 1;
        assert!(m.tick(), "one unit of headroom remains");
        assert_eq!(m.used(), u64::MAX);
        assert!(!m.tick(), "used == limit == u64::MAX must reject");
        assert!(m.exhausted());
        assert_eq!(m.used(), u64::MAX, "no wrap-around");
    }

    #[test]
    fn exactly_at_limit_rejects_only_the_next_request() {
        let mut m = Meter::new(3);
        assert!(m.tick() && m.tick() && m.tick());
        assert_eq!(m.used(), 3);
        assert!(!m.exhausted(), "exactly at the limit is not yet exhausted");
        assert!(!m.tick());
        assert!(m.exhausted());
        assert_eq!(m.used(), 3);
    }

    #[test]
    fn zero_deadline_trips_before_any_work() {
        let budget = SearchBudget::default().with_deadline(Duration::ZERO);
        let guard = Guard::new(&budget);
        let mut m = Meter::guarded(MeterKind::Valuations, budget.max_valuations, &guard);
        // The guard's first poll reads the real clock, so a zero deadline is
        // observed before the first unit of work is granted.
        assert!(!m.tick());
        assert_eq!(m.used(), 0);
        assert_eq!(m.interrupt(), Some(Interrupt::Deadline));
        assert!(!m.exhausted(), "a deadline trip is not count exhaustion");
        assert_eq!(
            m.stop_limit(BudgetLimit::MaxValuations),
            BudgetLimit::Deadline
        );
    }

    #[test]
    fn zero_limit_guarded_meter_reports_the_count_limit() {
        // With an untripped guard, a zero count limit still rejects
        // immediately and reports the count limit, not an interrupt.
        let budget = SearchBudget {
            max_valuations: 0,
            ..SearchBudget::default()
        };
        let guard = Guard::new(&budget);
        let mut m = Meter::guarded(MeterKind::Valuations, budget.max_valuations, &guard);
        assert!(!m.tick());
        assert!(m.exhausted());
        assert_eq!(m.interrupt(), None);
        assert_eq!(
            m.stop_limit(BudgetLimit::MaxValuations),
            BudgetLimit::MaxValuations
        );
    }

    #[test]
    fn primed_meter_grants_only_the_remaining_headroom() {
        let budget = SearchBudget::default();
        let guard = Guard::new(&budget);
        let mut m = Meter::guarded_primed(MeterKind::Valuations, 5, 3, &guard);
        assert_eq!(m.used(), 3);
        assert!(m.tick() && m.tick());
        assert!(!m.tick(), "3 committed + 2 fresh = limit 5");
        assert!(m.exhausted());
        assert_eq!(m.used(), 5);
        // Over-spent checkpoints clamp: no work granted, no underflow.
        let mut over = Meter::guarded_primed(MeterKind::Valuations, 5, 9, &guard);
        assert_eq!(over.used(), 5);
        assert!(!over.tick());
        assert!(over.exhausted());
    }

    #[test]
    fn tripped_meter_stays_tripped() {
        let budget = SearchBudget::default().with_deadline(Duration::ZERO);
        let guard = Guard::new(&budget);
        let mut m = Meter::guarded(MeterKind::Valuations, budget.max_valuations, &guard);
        assert!(!m.tick());
        assert!(!m.tick(), "interrupts are sticky");
        // A second meter on the same guard trips immediately too.
        let mut m2 = Meter::guarded(MeterKind::Candidates, budget.max_candidates, &guard);
        assert!(!m2.tick());
        assert_eq!(m2.interrupt(), Some(Interrupt::Deadline));
    }
}

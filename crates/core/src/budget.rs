//! Search budgets.
//!
//! RCDP for CQ/UCQ/∃FO⁺ is Σᵖ₂-complete and RCQP is NEXPTIME-complete
//! (Theorems 3.6 and 4.5); the FO/FP cells are undecidable (Theorems 3.1 and
//! 4.1). The deciders are exact, but exactness can cost exponential time —
//! a [`SearchBudget`] bounds the work, and exceeding it yields
//! `Verdict::Unknown`, never a wrong answer.

/// Limits on decider work.
#[derive(Clone, Copy, Debug)]
pub struct SearchBudget {
    /// Maximum number of candidate valuations examined per decision.
    pub max_valuations: u64,
    /// Maximum number of candidate witness databases examined (RCQP search).
    pub max_candidates: u64,
    /// Maximum tuples in a candidate extension Δ (semi-decision for FO/FP).
    pub max_delta_tuples: usize,
    /// Maximum tuples in a constructed witness database.
    pub max_witness_tuples: usize,
    /// Extra fresh values made available to the FO/FP extension search.
    pub fresh_values: usize,
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget {
            max_valuations: 5_000_000,
            max_candidates: 2_000_000,
            max_delta_tuples: 3,
            max_witness_tuples: 10_000,
            fresh_values: 2,
        }
    }
}

impl SearchBudget {
    /// A small budget for quick checks in tests.
    pub fn small() -> Self {
        SearchBudget {
            max_valuations: 100_000,
            max_candidates: 50_000,
            max_delta_tuples: 2,
            max_witness_tuples: 1_000,
            fresh_values: 1,
        }
    }

    /// An effectively unbounded budget (exactness over speed).
    pub fn exhaustive() -> Self {
        SearchBudget {
            max_valuations: u64::MAX,
            max_candidates: u64::MAX,
            max_delta_tuples: usize::MAX,
            max_witness_tuples: usize::MAX,
            fresh_values: 4,
        }
    }
}

/// A running counter checked against a limit; shared by the enumeration
/// loops.
#[derive(Debug)]
pub struct Meter {
    used: u64,
    limit: u64,
}

impl Meter {
    /// A meter with the given limit.
    pub fn new(limit: u64) -> Self {
        Meter { used: 0, limit }
    }

    /// Count one unit; `false` when the budget is exhausted.
    #[inline]
    pub fn tick(&mut self) -> bool {
        self.used += 1;
        self.used <= self.limit
    }

    /// Has the budget been exhausted?
    pub fn exhausted(&self) -> bool {
        self.used > self.limit
    }

    /// Units consumed so far.
    pub fn used(&self) -> u64 {
        self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_ticks_to_limit() {
        let mut m = Meter::new(2);
        assert!(m.tick());
        assert!(m.tick());
        assert!(!m.tick());
        assert!(m.exhausted());
        assert_eq!(m.used(), 3);
    }

    #[test]
    fn presets_are_ordered() {
        let s = SearchBudget::small();
        let d = SearchBudget::default();
        let e = SearchBudget::exhaustive();
        assert!(s.max_valuations < d.max_valuations);
        assert!(d.max_valuations < e.max_valuations);
    }
}

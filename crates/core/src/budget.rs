//! Search budgets.
//!
//! RCDP for CQ/UCQ/∃FO⁺ is Σᵖ₂-complete and RCQP is NEXPTIME-complete
//! (Theorems 3.6 and 4.5); the FO/FP cells are undecidable (Theorems 3.1 and
//! 4.1). The deciders are exact, but exactness can cost exponential time —
//! a [`SearchBudget`] bounds the work, and exceeding it yields
//! `Verdict::Unknown`, never a wrong answer.

/// Limits on decider work.
#[derive(Clone, Copy, Debug)]
pub struct SearchBudget {
    /// Maximum number of candidate valuations examined per decision.
    pub max_valuations: u64,
    /// Maximum number of candidate witness databases examined (RCQP search).
    pub max_candidates: u64,
    /// Maximum tuples in a candidate extension Δ (semi-decision for FO/FP).
    pub max_delta_tuples: usize,
    /// Maximum tuples in a constructed witness database.
    pub max_witness_tuples: usize,
    /// Extra fresh values made available to the FO/FP extension search.
    pub fresh_values: usize,
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget {
            max_valuations: 5_000_000,
            max_candidates: 2_000_000,
            max_delta_tuples: 3,
            max_witness_tuples: 10_000,
            fresh_values: 2,
        }
    }
}

impl SearchBudget {
    /// A small budget for quick checks in tests.
    pub fn small() -> Self {
        SearchBudget {
            max_valuations: 100_000,
            max_candidates: 50_000,
            max_delta_tuples: 2,
            max_witness_tuples: 1_000,
            fresh_values: 1,
        }
    }

    /// An effectively unbounded budget (exactness over speed).
    pub fn exhaustive() -> Self {
        SearchBudget {
            max_valuations: u64::MAX,
            max_candidates: u64::MAX,
            max_delta_tuples: usize::MAX,
            max_witness_tuples: usize::MAX,
            fresh_values: 4,
        }
    }
}

/// A running counter checked against a limit; shared by the enumeration
/// loops.
///
/// Semantics: [`Meter::tick`] *requests* one unit of work. A request past the
/// limit is rejected — it returns `false`, marks the meter exhausted, and is
/// **not** counted, so [`Meter::used`] reports exactly the units of work
/// actually performed and never exceeds the limit. (An earlier revision
/// counted the rejected request too, over-reporting `used()` by one after
/// exhaustion; the telemetry counters are fed from `used()`, so the invariant
/// `used() ≤ limit` now holds everywhere.)
#[derive(Debug)]
pub struct Meter {
    used: u64,
    limit: u64,
    exhausted: bool,
}

impl Meter {
    /// A meter with the given limit.
    pub fn new(limit: u64) -> Self {
        Meter {
            used: 0,
            limit,
            exhausted: false,
        }
    }

    /// Request one unit of work; `false` when the budget is exhausted (the
    /// rejected request is not counted).
    #[inline]
    pub fn tick(&mut self) -> bool {
        if self.used >= self.limit {
            self.exhausted = true;
            return false;
        }
        self.used += 1;
        true
    }

    /// Has a request been rejected?
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Units of work performed (accepted requests only; at most the limit).
    pub fn used(&self) -> u64 {
        self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_ticks_to_limit() {
        let mut m = Meter::new(2);
        assert!(!m.exhausted());
        assert!(m.tick());
        assert!(m.tick());
        assert!(!m.exhausted(), "reaching the limit is not exhaustion");
        assert!(!m.tick());
        assert!(m.exhausted());
        // The rejected request is not counted: used() never exceeds the limit.
        assert_eq!(m.used(), 2);
        assert!(!m.tick());
        assert_eq!(m.used(), 2);
    }

    #[test]
    fn zero_limit_meter_rejects_immediately() {
        let mut m = Meter::new(0);
        assert!(!m.tick());
        assert!(m.exhausted());
        assert_eq!(m.used(), 0);
    }

    #[test]
    fn presets_are_ordered() {
        let s = SearchBudget::small();
        let d = SearchBudget::default();
        let e = SearchBudget::exhaustive();
        assert!(s.max_valuations < d.max_valuations);
        assert!(d.max_valuations < e.max_valuations);
    }
}

//! The coNP lower bound for RCQP (Theorem 4.5(1)): reduction from 3SAT to
//! the *complement* of RCQP(CQ, INDs), with fixed master data and fixed INDs.
//!
//! Truth assignments live in `Rt(x, x̄) ⊆ R^m_t = {(0,1), (1,0)}` and clause
//! satisfaction in `R∨ ⊆ R^m_∨` (the seven satisfying rows). The relation
//! `R(A, x_1, x̄_1, …, x_n, x̄_n)` is *unconstrained* and its first column `A`
//! has an infinite domain. The query joins `R` with the typing and clause
//! tables, returning `A`:
//!
//! * if `φ` is satisfiable, a fresh `A`-value can always be injected through
//!   a satisfying assignment — no database is ever complete (`RCQ = ∅`);
//! * if `φ` is unsatisfiable the query is unsatisfiable under `V`, and the
//!   empty database is complete (`RCQ ≠ ∅`).

use crate::sat::{Cnf, Lit};
use ric_complete::{Query, Setting};
use ric_constraints::{CcBody, ConstraintSet, ContainmentConstraint, Projection};
use ric_data::{Database, RelationSchema, Schema, Tuple, Value};
use ric_query::{Cq, Term, Var};

/// Build the RCQP(CQ, INDs) instance: `RCQ(Q, D_m, V) = ∅` iff `phi` is
/// satisfiable.
pub fn to_rcqp_instance(phi: &Cnf) -> (Setting, Query) {
    let n = phi.n_vars;
    let mut r_attrs: Vec<String> = vec!["a".to_string()];
    for i in 0..n {
        r_attrs.push(format!("x{i}"));
        r_attrs.push(format!("nx{i}"));
    }
    let schema = Schema::from_relations(vec![
        RelationSchema::infinite("Rt", &["x", "nx"]),
        RelationSchema::infinite("Ror", &["l1", "l2", "l3"]),
        RelationSchema::new(
            "R",
            r_attrs
                .iter()
                .map(|a| ric_data::Attribute::new(a.clone()))
                .collect(),
        ),
    ])
    .unwrap_or_else(|e| unreachable!("fixed schema (compiled-in literal): {e:?}"));
    let mschema = Schema::from_relations(vec![
        RelationSchema::infinite("Rmt", &["x", "nx"]),
        RelationSchema::infinite("Rmor", &["l1", "l2", "l3"]),
    ])
    .unwrap_or_else(|e| unreachable!("fixed master schema (compiled-in literal): {e:?}"));
    let rmt = mschema
        .rel_id("Rmt")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let rmor = mschema
        .rel_id("Rmor")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let mut dm = Database::empty(&mschema);
    dm.insert(rmt, Tuple::new([Value::int(0), Value::int(1)]));
    dm.insert(rmt, Tuple::new([Value::int(1), Value::int(0)]));
    for a in [0i64, 1] {
        for b in [0i64, 1] {
            for c in [0i64, 1] {
                if a != 0 || b != 0 || c != 0 {
                    dm.insert(
                        rmor,
                        Tuple::new([Value::int(a), Value::int(b), Value::int(c)]),
                    );
                }
            }
        }
    }
    let rt = schema
        .rel_id("Rt")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let ror = schema
        .rel_id("Ror")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let r = schema
        .rel_id("R")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let v = ConstraintSet::new(vec![
        ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(rt, vec![0, 1])),
            rmt,
            vec![0, 1],
        ),
        ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(ror, vec![0, 1, 2])),
            rmor,
            vec![0, 1, 2],
        ),
    ]);
    let setting = Setting::new(schema.clone(), mschema, dm, v);

    // Q(z) :- R(z, x̄), Rt(x_i, x̄_i) ∀i, R∨(l1, l2, l3) per clause.
    let mut b = Cq::builder();
    let z = b.var("z");
    let pos: Vec<Var> = (0..n).map(|i| b.var(&format!("x{i}"))).collect();
    let neg: Vec<Var> = (0..n).map(|i| b.var(&format!("nx{i}"))).collect();
    let mut builder = b;
    let mut r_args: Vec<Term> = vec![Term::Var(z)];
    for i in 0..n {
        r_args.push(Term::Var(pos[i]));
        r_args.push(Term::Var(neg[i]));
    }
    builder = builder.atom(r, r_args);
    for i in 0..n {
        builder = builder.atom(rt, vec![Term::Var(pos[i]), Term::Var(neg[i])]);
    }
    let lit_term = |l: &Lit| -> Term {
        if l.positive {
            Term::Var(pos[l.var])
        } else {
            Term::Var(neg[l.var])
        }
    };
    for clause in &phi.clauses {
        assert_eq!(clause.0.len(), 3, "3SAT clauses");
        builder = builder.atom(
            ror,
            vec![
                lit_term(&clause.0[0]),
                lit_term(&clause.0[1]),
                lit_term(&clause.0[2]),
            ],
        );
    }
    let q = builder.head_vars(vec![z]).build();
    (setting, Query::Cq(q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::Clause;
    use ric_complete::{rcqp, QueryVerdict, SearchBudget};
    use ric_data::SplitMix64;

    fn decide(phi: &Cnf) -> QueryVerdict {
        let (setting, q) = to_rcqp_instance(phi);
        rcqp(&setting, &q, &SearchBudget::default()).unwrap()
    }

    #[test]
    fn satisfiable_formula_means_no_complete_database() {
        // (x ∨ x ∨ x): satisfiable.
        let phi = Cnf {
            n_vars: 1,
            clauses: vec![Clause(vec![Lit::pos(0), Lit::pos(0), Lit::pos(0)])],
        };
        assert!(phi.satisfiable());
        assert_eq!(decide(&phi), QueryVerdict::Empty);
    }

    #[test]
    fn unsatisfiable_formula_means_empty_database_is_complete() {
        // (x ∨ x ∨ x) ∧ (¬x ∨ ¬x ∨ ¬x): unsatisfiable.
        let phi = Cnf {
            n_vars: 1,
            clauses: vec![
                Clause(vec![Lit::pos(0), Lit::pos(0), Lit::pos(0)]),
                Clause(vec![Lit::neg(0), Lit::neg(0), Lit::neg(0)]),
            ],
        };
        assert!(!phi.satisfiable());
        match decide(&phi) {
            QueryVerdict::Nonempty { .. } => {}
            other => panic!("expected nonempty, got {other:?}"),
        }
    }

    #[test]
    fn reduction_agrees_with_dpll_on_random_instances() {
        let mut rng = SplitMix64::seed_from_u64(19);
        let mut seen = [0usize; 2];
        // Sweep the clause/variable ratio across the SAT/UNSAT transition so
        // both outcomes occur.
        for n_clauses in [2, 4, 8, 12, 16, 20] {
            let phi = Cnf::random_3sat(2, n_clauses, &mut rng);
            let sat = phi.satisfiable();
            seen[sat as usize] += 1;
            let verdict = decide(&phi);
            assert_eq!(
                verdict.is_empty_verdict(),
                sat,
                "decider and DPLL disagree on {phi:?}"
            );
        }
        assert!(seen[0] > 0 && seen[1] > 0, "want both outcomes covered");
    }
}

//! The 2ⁿ×2ⁿ tiling problem and the NEXPTIME-hardness construction of
//! Theorem 4.5(2).
//!
//! An instance is a tile set `T` with horizontal/vertical compatibility
//! relations and a forced top-left tile `t0`; the question is whether a
//! compatible `2ⁿ×2ⁿ` tiling exists. [`TilingInstance::solve`] is the exact
//! (exponential) oracle.
//!
//! [`to_rcqp_instance`] builds the paper's reduction to RCQP(CQ, CQ):
//! *hypertiles* of rank `i` are `2ⁱ×2ⁱ` squares stored in relation `R_i`
//! (rank 1 stores four tiles `X1..X4` directly; rank `i ≥ 2` stores the ids
//! of its four quadrant hypertiles plus the five *seam* hypertiles that
//! witness compatibility across quadrant borders). Containment constraints
//! enforce key-ness of ids, rank-1 compatibility against the master
//! relations, top-left bookkeeping `Z`, and the geometric consistency of the
//! seams; a final CC releases the `Rb` relation (bounding it by
//! `R^m_b = {(0)}`) only when a full-rank hypertile with top-left tile `t0`
//! is present. The query returns `Rb`, so a relatively complete database
//! exists iff a tiling exists.
//!
//! [`tiling_witness`] materialises the complete database the proof builds
//! from a tiling `f`: every `2ⁱ×2ⁱ` subgrid at a `2^{i-1}`-aligned position.
//! Its completeness is certified by the (decidable) RCDP decider — the
//! honest shape of NEXPTIME-hardness: verifying a witness is cheap, finding
//! one blows up.

use ric_complete::{Query, Setting};
use ric_constraints::{CcBody, ConstraintSet, ContainmentConstraint, Projection};
use ric_data::{Database, RelationSchema, Schema, Tuple, Value};
use ric_query::{Cq, Term};
use std::collections::BTreeSet;

/// A tiling instance: `k` tiles with compatibility relations, a forced
/// top-left tile, and the exponent `n` (grid side `2ⁿ`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TilingInstance {
    /// Number of tiles; tiles are `0..n_tiles`.
    pub n_tiles: usize,
    /// Horizontally compatible pairs `(left, right)`.
    pub horiz: BTreeSet<(usize, usize)>,
    /// Vertically compatible pairs `(top, bottom)`.
    pub vert: BTreeSet<(usize, usize)>,
    /// The forced top-left tile `t0`.
    pub t0: usize,
    /// Grid side is `2ⁿ`.
    pub n: u32,
}

impl TilingInstance {
    /// Grid side length `2ⁿ`.
    pub fn side(&self) -> usize {
        1usize << self.n
    }

    /// Is `grid` (row-major, side×side) a valid tiling?
    pub fn check(&self, grid: &[usize]) -> bool {
        let s = self.side();
        if grid.len() != s * s || grid[0] != self.t0 {
            return false;
        }
        for r in 0..s {
            for c in 0..s {
                let t = grid[r * s + c];
                if t >= self.n_tiles {
                    return false;
                }
                if c + 1 < s && !self.horiz.contains(&(t, grid[r * s + c + 1])) {
                    return false;
                }
                if r + 1 < s && !self.vert.contains(&(t, grid[(r + 1) * s + c])) {
                    return false;
                }
            }
        }
        true
    }

    /// Exact backtracking solver (row-major order).
    pub fn solve(&self) -> Option<Vec<usize>> {
        let s = self.side();
        let mut grid = vec![usize::MAX; s * s];
        if self.place(&mut grid, 0) {
            Some(grid)
        } else {
            None
        }
    }

    fn place(&self, grid: &mut Vec<usize>, idx: usize) -> bool {
        let s = self.side();
        if idx == s * s {
            return true;
        }
        let (r, c) = (idx / s, idx % s);
        let candidates: Vec<usize> = if idx == 0 {
            vec![self.t0]
        } else {
            (0..self.n_tiles).collect()
        };
        for t in candidates {
            let left_ok = c == 0 || self.horiz.contains(&(grid[r * s + c - 1], t));
            let up_ok = r == 0 || self.vert.contains(&(grid[(r - 1) * s + c], t));
            if left_ok && up_ok {
                grid[idx] = t;
                if self.place(grid, idx + 1) {
                    return true;
                }
                grid[idx] = usize::MAX;
            }
        }
        false
    }

    /// A trivially tilable instance: one tile compatible with itself.
    pub fn solvable_example(n: u32) -> TilingInstance {
        TilingInstance {
            n_tiles: 1,
            horiz: [(0, 0)].into_iter().collect(),
            vert: [(0, 0)].into_iter().collect(),
            t0: 0,
            n,
        }
    }

    /// An unsolvable instance: two tiles that must alternate horizontally
    /// but are vertically incompatible everywhere.
    pub fn unsolvable_example(n: u32) -> TilingInstance {
        TilingInstance {
            n_tiles: 2,
            horiz: [(0, 1), (1, 0)].into_iter().collect(),
            vert: BTreeSet::new(),
            t0: 0,
            n,
        }
    }
}

/// Arity of the hypertile relation at rank `i` (1-based).
fn rank_arity(i: u32) -> usize {
    if i == 1 {
        6 // (id, X1, X2, X3, X4, Z)
    } else {
        11 // (id, id1..id4, id12, id13, id24, id34, id1234, Z)
    }
}

/// The database schema of the reduction: `R_1 .. R_n` plus `Rb`.
pub fn reduction_schema(n: u32) -> Schema {
    let mut rels = Vec::new();
    for i in 1..=n {
        let attrs: Vec<&str> = if i == 1 {
            vec!["id", "x1", "x2", "x3", "x4", "z"]
        } else {
            vec![
                "id", "id1", "id2", "id3", "id4", "id12", "id13", "id24", "id34", "id1234", "z",
            ]
        };
        rels.push(RelationSchema::infinite(format!("R{i}"), &attrs));
    }
    rels.push(RelationSchema::infinite("Rb", &["b"]));
    Schema::from_relations(rels)
        .unwrap_or_else(|e| unreachable!("fixed schema (compiled-in literal): {e:?}"))
}

/// Build the full RCQP(CQ, CQ) instance of Theorem 4.5(2):
/// `RCQ(Q, D_m, V)` is nonempty iff the tiling instance has a solution.
pub fn to_rcqp_instance(inst: &TilingInstance) -> (Setting, Query) {
    let n = inst.n;
    assert!(n >= 1);
    let schema = reduction_schema(n);
    let mschema = Schema::from_relations(vec![
        RelationSchema::infinite("RmT", &["t"]),
        RelationSchema::infinite("RmV", &["top", "bottom"]),
        RelationSchema::infinite("RmH", &["left", "right"]),
        RelationSchema::infinite("Rmb", &["b"]),
    ])
    .unwrap_or_else(|e| unreachable!("fixed master schema (compiled-in literal): {e:?}"));
    let mut dm = Database::empty(&mschema);
    let rmt = mschema
        .rel_id("RmT")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let rmv = mschema
        .rel_id("RmV")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let rmh = mschema
        .rel_id("RmH")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let rmb = mschema
        .rel_id("Rmb")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    for t in 0..inst.n_tiles {
        dm.insert(rmt, Tuple::new([Value::int(t as i64)]));
    }
    for &(a, b) in &inst.vert {
        dm.insert(
            rmv,
            Tuple::new([Value::int(a as i64), Value::int(b as i64)]),
        );
    }
    for &(a, b) in &inst.horiz {
        dm.insert(
            rmh,
            Tuple::new([Value::int(a as i64), Value::int(b as i64)]),
        );
    }
    dm.insert(rmb, Tuple::new([Value::int(0)]));

    let mut v = ConstraintSet::empty();
    for i in 1..=n {
        let ri = schema
            .rel_id(&format!("R{i}"))
            .unwrap_or_else(|| unreachable!("fixed relation"));
        let arity = rank_arity(i);
        // id is a key.
        let fd = ric_constraints::Fd::new(ri, vec![0], (1..arity).collect());
        for cc in ric_constraints::compile::fd_to_ccs(&fd, &schema) {
            v.push(cc);
        }
        if i == 1 {
            // Tile typing, compatibility, and top-left bookkeeping.
            for col in 1..=5 {
                v.push(ContainmentConstraint::into_master(
                    CcBody::Proj(Projection::new(ri, vec![col])),
                    rmt,
                    vec![0],
                ));
            }
            // Vertical: (X1, X3) and (X2, X4); horizontal: (X1, X2), (X3, X4).
            for cols in [[1, 3], [2, 4]] {
                v.push(ContainmentConstraint::into_master(
                    CcBody::Proj(Projection::new(ri, cols.to_vec())),
                    rmv,
                    vec![0, 1],
                ));
            }
            for cols in [[1, 2], [3, 4]] {
                v.push(ContainmentConstraint::into_master(
                    CcBody::Proj(Projection::new(ri, cols.to_vec())),
                    rmh,
                    vec![0, 1],
                ));
            }
            // Z = X1 (top-left): forbid X1 ≠ Z.
            let name = format!("R{i}");
            let topl = ric_query::parse_cq(
                &schema,
                &format!("Q(I, A, B, C, D, Z) :- {name}(I, A, B, C, D, Z), A != Z."),
            )
            .unwrap_or_else(|e| unreachable!("topl CC is a compiled-in literal: {e:?}"));
            v.push(ContainmentConstraint::into_empty(CcBody::Cq(topl)));
        } else {
            // Geometric consistency of the seams. For each auxiliary id and
            // each of its four quadrant fields, the referenced rank-(i-1)
            // tuples must agree. Patterns (aux field -> (quadrant, field)):
            //   id12 = (a2, b1, a4, b3)   id13 = (a3, a4, c1, c2)
            //   id24 = (b3, b4, d1, d2)   id34 = (c2, d1, c4, d3)
            //   id1234 = (a4, b3, c2, d1)
            // where a..d are the tuples referenced by id1..id4 and the field
            // index selects their quadrant columns 1..4.
            let patterns: [(usize, [(usize, usize); 4]); 5] = [
                (5, [(1, 2), (2, 1), (1, 4), (2, 3)]), // id12
                (6, [(1, 3), (1, 4), (3, 1), (3, 2)]), // id13
                (7, [(2, 3), (2, 4), (4, 1), (4, 2)]), // id24
                (8, [(3, 2), (4, 1), (3, 4), (4, 3)]), // id34
                (9, [(1, 4), (2, 3), (3, 2), (4, 1)]), // id1234
            ];
            let prev = schema
                .rel_id(&format!("R{}", i - 1))
                .unwrap_or_else(|| unreachable!("fixed relation"));
            let prev_arity = rank_arity(i - 1);
            for (aux_col, fields) in patterns {
                for (aux_field, (quadrant, quad_field)) in fields.iter().enumerate() {
                    v.push(seam_mismatch_cc(
                        &schema,
                        ri,
                        arity,
                        prev,
                        prev_arity,
                        aux_col,
                        aux_field + 1,
                        *quadrant,
                        *quad_field,
                    ));
                }
            }
            // t[Z] equals the Z of the id1 quadrant.
            v.push(z_mismatch_cc(&schema, ri, arity, prev, prev_arity));
        }
    }
    // The releasing CC: a traced full-rank hypertile with top-left t0 bounds
    // Rb by {(0)}.
    v.push(releasing_cc(&schema, inst, rmb));

    let setting = Setting::new(schema.clone(), mschema, dm, v);
    let rb = schema
        .rel_id("Rb")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let mut b = Cq::builder();
    let w = b.var("w");
    let q = b.atom(rb, vec![Term::Var(w)]).head_vars(vec![w]).build();
    (setting, Query::Cq(q))
}

/// CC forbidding: parent tuple `t` in `R_i`, quadrant tuple `q` (via
/// `t[quadrant]`), aux tuple `s` (via `t[aux_col]`), with
/// `s[aux_field] ≠ q[quad_field]`.
#[allow(clippy::too_many_arguments)]
fn seam_mismatch_cc(
    _schema: &Schema,
    ri: ric_data::RelId,
    arity: usize,
    prev: ric_data::RelId,
    prev_arity: usize,
    aux_col: usize,
    aux_field: usize,
    quadrant: usize,
    quad_field: usize,
) -> ContainmentConstraint {
    let mut b = Cq::builder();
    let t: Vec<_> = (0..arity).map(|c| b.var(&format!("t{c}"))).collect();
    let q: Vec<_> = (0..prev_arity).map(|c| b.var(&format!("q{c}"))).collect();
    let s: Vec<_> = (0..prev_arity).map(|c| b.var(&format!("s{c}"))).collect();
    let head: Vec<Term> = t.iter().map(|&v| Term::Var(v)).collect();
    let cq = b
        .atom(ri, t.iter().map(|&v| Term::Var(v)).collect())
        .atom(prev, q.iter().map(|&v| Term::Var(v)).collect())
        .atom(prev, s.iter().map(|&v| Term::Var(v)).collect())
        .eq(Term::Var(q[0]), Term::Var(t[quadrant]))
        .eq(Term::Var(s[0]), Term::Var(t[aux_col]))
        .neq(Term::Var(s[aux_field]), Term::Var(q[quad_field]))
        .head(head)
        .build();
    ContainmentConstraint::into_empty(CcBody::Cq(cq))
}

/// CC forbidding `t[Z] ≠ z(id1)`.
fn z_mismatch_cc(
    _schema: &Schema,
    ri: ric_data::RelId,
    arity: usize,
    prev: ric_data::RelId,
    prev_arity: usize,
) -> ContainmentConstraint {
    let mut b = Cq::builder();
    let t: Vec<_> = (0..arity).map(|c| b.var(&format!("t{c}"))).collect();
    let q: Vec<_> = (0..prev_arity).map(|c| b.var(&format!("q{c}"))).collect();
    let head: Vec<Term> = t.iter().map(|&v| Term::Var(v)).collect();
    let cq = b
        .atom(ri, t.iter().map(|&v| Term::Var(v)).collect())
        .atom(prev, q.iter().map(|&v| Term::Var(v)).collect())
        .eq(Term::Var(q[0]), Term::Var(t[1]))
        .neq(Term::Var(q[prev_arity - 1]), Term::Var(t[arity - 1]))
        .head(head)
        .build();
    ContainmentConstraint::into_empty(CcBody::Cq(cq))
}

/// The releasing CC `q(w) ⊆ π(R^m_b)` with
/// `q(w) = ∃t (trace_n(t) ∧ t[Z] = t0) ∧ Rb(w)`: once a fully traced
/// hypertile of rank `n` with top-left `t0` exists, `Rb` is bounded.
fn releasing_cc(
    schema: &Schema,
    inst: &TilingInstance,
    rmb: ric_data::RelId,
) -> ContainmentConstraint {
    let mut b = Cq::builder();
    let w = b.var("w");
    let rb = schema
        .rel_id("Rb")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    // Recursively collect the trace atoms: a rank-i tuple whose nine sub-ids
    // (four quadrants + five seams for i ≥ 2) all resolve to traced
    // rank-(i-1) tuples; `eqs` wires each child's id field to the parent's
    // corresponding sub-id field.
    fn trace(
        schema: &Schema,
        b: &mut ric_query::cq::CqBuilder,
        atoms: &mut Vec<(ric_data::RelId, Vec<ric_query::Var>)>,
        eqs: &mut Vec<(ric_query::Var, ric_query::Var)>,
        i: u32,
        tag: &str,
    ) -> Vec<ric_query::Var> {
        let ri = schema
            .rel_id(&format!("R{i}"))
            .unwrap_or_else(|| unreachable!("fixed relation"));
        let arity = rank_arity(i);
        let vars: Vec<_> = (0..arity).map(|c| b.var(&format!("{tag}_{c}"))).collect();
        atoms.push((ri, vars.clone()));
        if i > 1 {
            #[allow(clippy::needless_range_loop)] // `sub` is a field index, not an iterator
            for sub in 1..=9 {
                let child = trace(schema, b, atoms, eqs, i - 1, &format!("{tag}_{sub}"));
                eqs.push((child[0], vars[sub]));
            }
        }
        vars
    }
    let mut atoms: Vec<(ric_data::RelId, Vec<ric_query::Var>)> = Vec::new();
    let mut eqs: Vec<(ric_query::Var, ric_query::Var)> = Vec::new();
    let top = trace(schema, &mut b, &mut atoms, &mut eqs, inst.n, "h");
    let mut builder = b;
    for (rel, vars) in atoms {
        builder = builder.atom(rel, vars.iter().map(|&v| Term::Var(v)).collect());
    }
    for (a, bb) in eqs {
        builder = builder.eq(Term::Var(a), Term::Var(bb));
    }
    // Top-left tile of the full-rank hypertile is t0.
    let z = top[rank_arity(inst.n) - 1];
    builder = builder.eq(Term::Var(z), Term::from(inst.t0 as i64));
    builder = builder.atom(rb, vec![Term::Var(w)]);
    let q = builder.head_vars(vec![w]).build();
    ContainmentConstraint::into_master(CcBody::Cq(q), rmb, vec![0])
}

/// Materialise the complete database of the proof from a tiling `f`: all
/// `2ⁱ×2ⁱ` subgrids at `2^{i-1}`-aligned positions, plus `Rb = {(0)}`.
pub fn tiling_witness(schema: &Schema, inst: &TilingInstance, grid: &[usize]) -> Database {
    let s = inst.side();
    assert_eq!(grid.len(), s * s);
    let mut db = Database::empty(schema);
    let id = |i: u32, r: usize, c: usize| Value::str(format!("h{i}_{r}_{c}"));
    for i in 1..=inst.n {
        let ri = schema
            .rel_id(&format!("R{i}"))
            .unwrap_or_else(|| unreachable!("fixed relation"));
        let size = 1usize << i;
        let step = size / 2;
        let mut r = 0;
        while r + size <= s {
            let mut c = 0;
            while c + size <= s {
                let z = Value::int(grid[r * s + c] as i64);
                let tuple = if i == 1 {
                    Tuple::new([
                        id(i, r, c),
                        Value::int(grid[r * s + c] as i64),
                        Value::int(grid[r * s + c + 1] as i64),
                        Value::int(grid[(r + 1) * s + c] as i64),
                        Value::int(grid[(r + 1) * s + c + 1] as i64),
                        z,
                    ])
                } else {
                    let h = size / 2;
                    let half = h / 2;
                    Tuple::new([
                        id(i, r, c),
                        id(i - 1, r, c),
                        id(i - 1, r, c + h),
                        id(i - 1, r + h, c),
                        id(i - 1, r + h, c + h),
                        id(i - 1, r, c + half),        // id12 (top middle)
                        id(i - 1, r + half, c),        // id13 (left middle)
                        id(i - 1, r + half, c + h),    // id24 (right middle)
                        id(i - 1, r + h, c + half),    // id34 (bottom middle)
                        id(i - 1, r + half, c + half), // id1234 (centre)
                        z,
                    ])
                };
                db.insert(ri, tuple);
                c += step;
            }
            r += step;
        }
    }
    let rb = schema
        .rel_id("Rb")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    db.insert(rb, Tuple::new([Value::int(0)]));
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brute_solver_and_checker_agree() {
        let solvable = TilingInstance::solvable_example(1);
        let grid = solvable.solve().expect("solvable");
        assert!(solvable.check(&grid));
        assert!(TilingInstance::unsolvable_example(1).solve().is_none());
    }

    #[test]
    fn checkerboard_tiling() {
        // Two tiles that alternate in both directions.
        let inst = TilingInstance {
            n_tiles: 2,
            horiz: [(0, 1), (1, 0)].into_iter().collect(),
            vert: [(0, 1), (1, 0)].into_iter().collect(),
            t0: 0,
            n: 2,
        };
        let grid = inst.solve().expect("checkerboard tiles 4x4");
        assert!(inst.check(&grid));
        assert_eq!(grid[0], 0);
        assert_eq!(grid[1], 1);
        assert_eq!(grid[4], 1); // row 1 starts with the other tile
    }

    #[test]
    fn witness_of_solvable_instance_is_partially_closed() {
        let inst = TilingInstance::solvable_example(1);
        let (setting, _q) = to_rcqp_instance(&inst);
        let grid = inst.solve().unwrap();
        let db = tiling_witness(&setting.schema, &inst, &grid);
        assert!(setting.partially_closed(&db).unwrap());
    }

    #[test]
    fn witness_is_certified_complete_by_rcdp() {
        let inst = TilingInstance::solvable_example(1);
        let (setting, q) = to_rcqp_instance(&inst);
        let grid = inst.solve().unwrap();
        let db = tiling_witness(&setting.schema, &inst, &grid);
        let verdict =
            ric_complete::rcdp(&setting, &q, &db, &ric_complete::SearchBudget::default()).unwrap();
        assert_eq!(verdict, ric_complete::Verdict::Complete);
    }

    #[test]
    fn empty_database_is_incomplete_for_solvable_and_unsolvable() {
        for inst in [
            TilingInstance::solvable_example(1),
            TilingInstance::unsolvable_example(1),
        ] {
            let (setting, q) = to_rcqp_instance(&inst);
            let db = Database::empty(&setting.schema);
            let verdict =
                ric_complete::rcdp(&setting, &q, &db, &ric_complete::SearchBudget::default())
                    .unwrap();
            assert!(verdict.is_incomplete(), "Rb is unbounded without a tiling");
        }
    }

    #[test]
    fn invalid_tiling_violates_constraints() {
        let inst = TilingInstance {
            n_tiles: 2,
            horiz: [(0, 1), (1, 0)].into_iter().collect(),
            vert: [(0, 1), (1, 0)].into_iter().collect(),
            t0: 0,
            n: 1,
        };
        let (setting, _q) = to_rcqp_instance(&inst);
        // A uniform grid of tile 0 is NOT a valid checkerboard tiling.
        let bad = vec![0, 0, 0, 0];
        assert!(!inst.check(&bad));
        let db = tiling_witness(&setting.schema, &inst, &bad);
        assert!(!setting.partially_closed(&db).unwrap());
    }

    #[test]
    fn rank2_witness_is_partially_closed_and_complete() {
        let inst = TilingInstance {
            n_tiles: 2,
            horiz: [(0, 1), (1, 0)].into_iter().collect(),
            vert: [(0, 1), (1, 0)].into_iter().collect(),
            t0: 0,
            n: 2,
        };
        let (setting, q) = to_rcqp_instance(&inst);
        let grid = inst.solve().unwrap();
        let db = tiling_witness(&setting.schema, &inst, &grid);
        assert!(setting.partially_closed(&db).unwrap());
        let verdict =
            ric_complete::rcdp(&setting, &q, &db, &ric_complete::SearchBudget::default()).unwrap();
        assert_eq!(verdict, ric_complete::Verdict::Complete);
    }
}

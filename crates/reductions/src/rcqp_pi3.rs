//! The fixed-`(D_m, V)` regime of RCQP (Corollary 4.6: Πᵖ₃-complete for
//! CQ/UCQ/∃FO⁺ when master data and constraints are fixed).
//!
//! **Substitution note** (recorded in `DESIGN.md`): the paper's Πᵖ₃-hardness
//! sketch reduces from ∃*∀*∃*-3SAT through an auxiliary query `Q1` whose
//! `q = 0` branch is not fully specified in the published text; rather than
//! guess the authors' intent we reproduce the *regime* the corollary is
//! about — master data and constraints fixed once, queries as the only
//! input — with a parametric family whose ground truth is known by
//! construction, plus the ∃*∀*∃* oracle itself ([`crate::qbf`]) for the
//! source problem. The family stresses exactly the alternation the proof
//! exploits: an outer choice of a blocking database (∃), universally
//! quantified extensions (∀), and an inner existential valuation (∃).
//!
//! The fixed setting: `Work(emp, task)` under the FD `emp → task` (an
//! employee works one task) and `Cert(emp, lvl)` with `lvl` IND-bounded by
//! the fixed master `Lvl = {0, 1}`. Queries vary:
//!
//! * [`bounded_query`]`(k)` — `Q(t) :- Work('e<k>', t), Cert('e<k>', 1)`:
//!   relatively complete (a blocking `Work` row pins `e<k>`'s task);
//! * [`unbounded_query`]`(k)` — `Q(e, t) :- Work(e, t), Cert('e<k>', 1)`:
//!   not relatively complete (fresh employees escape every database).

use ric_complete::{Query, Setting};
use ric_constraints::{CcBody, ConstraintSet, ContainmentConstraint, Projection};
use ric_data::{Database, RelationSchema, Schema, Tuple, Value};
use ric_query::parse_cq;

/// The fixed `(D_m, V)`: built once, shared by every query in the family.
pub fn fixed_setting() -> Setting {
    let schema = Schema::from_relations(vec![
        RelationSchema::infinite("Work", &["emp", "task"]),
        RelationSchema::infinite("Cert", &["emp", "lvl"]),
    ])
    .unwrap_or_else(|e| unreachable!("fixed schema (compiled-in literal): {e:?}"));
    let work = schema
        .rel_id("Work")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let cert = schema
        .rel_id("Cert")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let mschema = Schema::from_relations(vec![RelationSchema::infinite("Lvl", &["lvl"])])
        .unwrap_or_else(|e| unreachable!("fixed (compiled-in literal): {e:?}"));
    let lvl = mschema
        .rel_id("Lvl")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let mut dm = Database::empty(&mschema);
    dm.insert(lvl, Tuple::new([Value::int(0)]));
    dm.insert(lvl, Tuple::new([Value::int(1)]));
    let mut v = ConstraintSet::empty();
    // FD emp → task, compiled to CCs in CQ (so L_C is CQ, not INDs).
    let fd = ric_constraints::Fd::new(work, vec![0], vec![1]);
    for cc in ric_constraints::compile::fd_to_ccs(&fd, &schema) {
        v.push(cc);
    }
    // Certification levels bounded by fixed master data.
    v.push(ContainmentConstraint::into_master(
        CcBody::Proj(Projection::new(cert, vec![1])),
        lvl,
        vec![0],
    ));
    Setting::new(schema, mschema, dm, v)
}

/// A relatively complete query of the family: everything about one employee.
pub fn bounded_query(setting: &Setting, k: usize) -> Query {
    parse_cq(&setting.schema, &format!("Q(T) :- Work('e{k}', T)."))
        .unwrap_or_else(|e| unreachable!("well-formed query (compiled-in literal): {e:?}"))
        .into()
}

/// A query with an unbounded head: not relatively complete.
pub fn unbounded_query(setting: &Setting, k: usize) -> Query {
    parse_cq(
        &setting.schema,
        &format!("Q(E, T) :- Work(E, T), Cert(E, L), L = {}.", k % 2),
    )
    .unwrap_or_else(|e| unreachable!("well-formed query (compiled-in literal): {e:?}"))
    .into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ric_complete::{rcqp, QueryVerdict, SearchBudget, Verdict};
    use ric_data::SplitMix64;

    #[test]
    fn bounded_family_members_are_nonempty() {
        let setting = fixed_setting();
        let budget = SearchBudget {
            fresh_values: 3,
            ..SearchBudget::default()
        };
        for k in 0..3 {
            let q = bounded_query(&setting, k);
            match rcqp(&setting, &q, &budget).unwrap() {
                QueryVerdict::Nonempty { witness } => {
                    if let Some(w) = witness {
                        assert_eq!(
                            ric_complete::rcdp(&setting, &q, &w, &budget).unwrap(),
                            Verdict::Complete
                        );
                    }
                }
                other => panic!("expected nonempty for k={k}, got {other:?}"),
            }
        }
    }

    #[test]
    fn unbounded_family_members_are_empty() {
        let setting = fixed_setting();
        // The FD tableau has 3 variables and the IND none; 3 fresh values
        // make the exhausted search paper-exact.
        let budget = SearchBudget {
            fresh_values: 3,
            ..SearchBudget::default()
        };
        let q = unbounded_query(&setting, 0);
        assert_eq!(rcqp(&setting, &q, &budget).unwrap(), QueryVerdict::Empty);
    }

    #[test]
    fn exists_forall_exists_oracle_is_available_for_the_source_problem() {
        // The Πᵖ₃ source problem itself: keep the oracle wired to this module
        // so benches can report the source-problem cost alongside.
        use crate::qbf::ExistsForallExists;
        let mut rng = SplitMix64::seed_from_u64(3);
        let phi = ExistsForallExists::random(2, 2, 2, 5, &mut rng);
        let _ = phi.eval();
    }
}

//! Deterministic finite 2-head automata and the undecidability reductions of
//! Theorems 3.1(3)/(4) and 4.1(1)/(3)/(4).
//!
//! A 2-head DFA `A = (Q, Σ, δ, q0, qacc)` reads its input with two heads;
//! emptiness of `L(A)` is undecidable (Spielmann 2000), which is the engine
//! behind the FP/FO undecidability cells of Tables I and II. This module
//! provides:
//!
//! * a faithful simulator ([`TwoHeadDfa::accepts`]) with loop detection;
//! * bounded emptiness testing ([`TwoHeadDfa::find_accepted_word`]);
//! * the Theorem 3.1(3) reduction ([`to_rcdp_instance`]): schema
//!   `P(A), P̄(A), F(A1, A2)`, well-formedness CCs `V1–V3` in CQ, and an FP
//!   query that reaches the accepting configuration — the empty database is
//!   complete for the query iff `L(A) = ∅`;
//! * the string encoding of the reduction ([`encode_word`]), so tests can
//!   check that the FP query accepts an encoded word exactly when the
//!   automaton does.

use ric_complete::{Query, Setting};
use ric_constraints::{CcBody, ConstraintSet, ContainmentConstraint};
use ric_data::{Database, RelationSchema, Schema, Tuple, Value};
use ric_query::datalog::{Literal, PredId, Program, Rule};
use ric_query::{parse_cq, Atom, Term, Var};
use std::collections::BTreeSet;

/// Input symbols read by a head: `0`, `1`, or `ε` (the head ignores the
/// tape and the move must be 0).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum HeadInput {
    /// Symbol 0 under the head.
    Zero,
    /// Symbol 1 under the head.
    One,
    /// Head does not read (end-of-input check: position is final).
    Eps,
}

/// A transition `(q, in1, in2) → (q′, move1, move2)` with moves in `{0, +1}`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transition {
    /// Source state.
    pub from: usize,
    /// Symbol condition for head 1.
    pub in1: HeadInput,
    /// Symbol condition for head 2.
    pub in2: HeadInput,
    /// Target state.
    pub to: usize,
    /// Whether head 1 advances.
    pub move1: bool,
    /// Whether head 2 advances.
    pub move2: bool,
}

/// A deterministic finite 2-head automaton over `Σ = {0, 1}`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TwoHeadDfa {
    /// Number of states; state 0 is initial.
    pub n_states: usize,
    /// Accepting state.
    pub accept: usize,
    /// Transition list (determinism is the builder's responsibility; the
    /// simulator takes the first applicable transition).
    pub transitions: Vec<Transition>,
}

impl TwoHeadDfa {
    /// Simulate on a word; loop detection over the finite configuration
    /// space `(state, pos1, pos2)`.
    pub fn accepts(&self, word: &[bool]) -> bool {
        let n = word.len();
        let mut seen: BTreeSet<(usize, usize, usize)> = BTreeSet::new();
        let (mut q, mut p1, mut p2) = (0usize, 0usize, 0usize);
        loop {
            if q == self.accept {
                return true;
            }
            if !seen.insert((q, p1, p2)) {
                return false; // loop without acceptance
            }
            let matches = |input: HeadInput, pos: usize| -> bool {
                match input {
                    HeadInput::Zero => pos < n && !word[pos],
                    HeadInput::One => pos < n && word[pos],
                    HeadInput::Eps => pos == n,
                }
            };
            let Some(t) = self
                .transitions
                .iter()
                .find(|t| t.from == q && matches(t.in1, p1) && matches(t.in2, p2))
            else {
                return false; // stuck
            };
            // An ε condition requires a stationary head (no tape cell to
            // consume); the builder upholds this, the simulator enforces it.
            q = t.to;
            if t.move1 {
                p1 += 1;
            }
            if t.move2 {
                p2 += 1;
            }
        }
    }

    /// Bounded emptiness: the shortest accepted word of length ≤ `max_len`,
    /// if any.
    pub fn find_accepted_word(&self, max_len: usize) -> Option<Vec<bool>> {
        for len in 0..=max_len {
            for mask in 0..(1u64 << len) {
                let word: Vec<bool> = (0..len).map(|i| mask & (1 << i) != 0).collect();
                if self.accepts(&word) {
                    return Some(word);
                }
            }
        }
        None
    }

    /// The automaton accepting exactly the words `1ⁿ` with `n ≥ 1`, with the
    /// second head verifying the first (a classic nonempty example).
    pub fn ones() -> TwoHeadDfa {
        TwoHeadDfa {
            n_states: 3,
            accept: 2,
            transitions: vec![
                // Read a 1 with both heads, stay in "reading".
                Transition {
                    from: 0,
                    in1: HeadInput::One,
                    in2: HeadInput::One,
                    to: 1,
                    move1: true,
                    move2: true,
                },
                Transition {
                    from: 1,
                    in1: HeadInput::One,
                    in2: HeadInput::One,
                    to: 1,
                    move1: true,
                    move2: true,
                },
                // Both heads at end: accept.
                Transition {
                    from: 1,
                    in1: HeadInput::Eps,
                    in2: HeadInput::Eps,
                    to: 2,
                    move1: false,
                    move2: false,
                },
            ],
        }
    }

    /// An automaton with `L(A) = ∅`: it demands a 0 under head 1 and a 1
    /// under head 2 at the same position forever.
    pub fn empty_language() -> TwoHeadDfa {
        TwoHeadDfa {
            n_states: 2,
            accept: 1,
            transitions: vec![Transition {
                from: 0,
                in1: HeadInput::Zero,
                in2: HeadInput::One,
                to: 0,
                move1: true,
                move2: true,
            }],
        }
    }
}

/// The schema of the Theorem 3.1(3) reduction: `P(A)`, `P̄(A)` (spelled
/// `Pbar`), and the successor relation `F(A1, A2)`.
pub fn reduction_schema() -> Schema {
    Schema::from_relations(vec![
        RelationSchema::infinite("P", &["pos"]),
        RelationSchema::infinite("Pbar", &["pos"]),
        RelationSchema::infinite("F", &["pos", "succ"]),
    ])
    .unwrap_or_else(|e| unreachable!("fixed schema (compiled-in literal): {e:?}"))
}

/// Encode a word as a well-formed `(P, P̄, F)` database: positions `0..n`,
/// `F` the successor with the final self-loop `(n, n)`.
pub fn encode_word(schema: &Schema, word: &[bool]) -> Database {
    let p = schema
        .rel_id("P")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let pbar = schema
        .rel_id("Pbar")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let f = schema
        .rel_id("F")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let mut db = Database::empty(schema);
    for (i, &bit) in word.iter().enumerate() {
        let rel = if bit { p } else { pbar };
        db.insert(rel, Tuple::new([Value::int(i as i64)]));
        db.insert(
            f,
            Tuple::new([Value::int(i as i64), Value::int(i as i64 + 1)]),
        );
    }
    let n = word.len() as i64;
    db.insert(f, Tuple::new([Value::int(n), Value::int(n)]));
    db
}

/// The Theorem 3.1(3) instance: `(Setting, Q ∈ FP, D = ∅)` such that `D` is
/// complete for `Q` relative to `(D_m, V)` iff `L(A) = ∅`. `D_m` is a single
/// empty unary relation; `V` = `{V1, V2, V3}` in CQ, fixed and independent of
/// the automaton.
pub fn to_rcdp_instance(dfa: &TwoHeadDfa) -> (Setting, Query, Database) {
    let schema = reduction_schema();
    let mschema = Schema::from_relations(vec![RelationSchema::infinite("Rm1", &["x"])])
        .unwrap_or_else(|e| unreachable!("fixed (compiled-in literal): {e:?}"));
    let dm = Database::empty(&mschema);

    // V1: P and P̄ are disjoint.
    let v1 = parse_cq(&schema, "Q(X) :- P(X), Pbar(X).")
        .unwrap_or_else(|e| unreachable!("V1 is a compiled-in literal: {e:?}"));
    // V2: F is a function.
    let v2 = parse_cq(&schema, "Q(X, Y, Z) :- F(X, Y), F(X, Z), Y != Z.")
        .unwrap_or_else(|e| unreachable!("V2 is a compiled-in literal: {e:?}"));
    // V3: at most one final self-loop.
    let v3 = parse_cq(&schema, "Q(X, Y) :- F(X, X), F(Y, Y), X != Y.")
        .unwrap_or_else(|e| unreachable!("V3 is a compiled-in literal: {e:?}"));
    let v = ConstraintSet::new(vec![
        ContainmentConstraint::into_empty(CcBody::Cq(v1)),
        ContainmentConstraint::into_empty(CcBody::Cq(v2)),
        ContainmentConstraint::into_empty(CcBody::Cq(v3)),
    ]);
    let setting = Setting::new(schema.clone(), mschema, dm, v);
    let program = reachability_program(&schema, dfa);
    let db = Database::empty(&schema);
    (setting, Query::Fp(program), db)
}

/// The FP query of the reduction: `Reach` closes the transition relation
/// over configurations `(state, pos1, pos2)`; `Q() ← Reach(qacc, ·, ·),
/// F(0, ·), F(w, w)` adds the `Q_ini ∧ Q_fin` well-formedness checks.
pub fn reachability_program(schema: &Schema, dfa: &TwoHeadDfa) -> Program {
    let p_rel = schema
        .rel_id("P")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let pbar_rel = schema
        .rel_id("Pbar")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let f_rel = schema
        .rel_id("F")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let reach = PredId(0);
    let out = PredId(1);
    let mut rules = Vec::new();

    // Base: the initial configuration (q0, 0, 0) is reachable, provided the
    // initial position exists (Q_ini folded into the seed).
    let x = Var(0);
    rules.push(Rule {
        head: reach,
        head_args: vec![Term::from(0i64), Term::from(0i64), Term::from(0i64)],
        body: vec![Literal::Edb(Atom::new(
            f_rel,
            vec![Term::from(0i64), Term::Var(x)],
        ))],
        n_vars: 1,
    });

    // One rule per transition δ = (q, in1, in2) → (q′, m1, m2):
    // Reach(q′, y′, z′) ← Reach(q, y, z), α1(y), α2(z), β1(y, y′), β2(z, z′).
    for t in &dfa.transitions {
        let y = Var(0);
        let z = Var(1);
        let y2 = Var(2);
        let z2 = Var(3);
        let mut n_vars = 4u32;
        let mut body = vec![Literal::Idb(
            reach,
            vec![Term::from(t.from as i64), Term::Var(y), Term::Var(z)],
        )];
        let alpha = |pos: Var, input: HeadInput, body: &mut Vec<Literal>, n_vars: &mut u32| {
            match input {
                HeadInput::One | HeadInput::Zero => {
                    // ∃w F(pos, w) ∧ pos ≠ w ∧ (P | P̄)(pos)
                    let w = Var(*n_vars);
                    *n_vars += 1;
                    body.push(Literal::Edb(Atom::new(
                        f_rel,
                        vec![Term::Var(pos), Term::Var(w)],
                    )));
                    body.push(Literal::Neq(Term::Var(pos), Term::Var(w)));
                    let rel = if input == HeadInput::One {
                        p_rel
                    } else {
                        pbar_rel
                    };
                    body.push(Literal::Edb(Atom::new(rel, vec![Term::Var(pos)])));
                }
                HeadInput::Eps => {
                    body.push(Literal::Edb(Atom::new(
                        f_rel,
                        vec![Term::Var(pos), Term::Var(pos)],
                    )));
                }
            }
        };
        alpha(y, t.in1, &mut body, &mut n_vars);
        alpha(z, t.in2, &mut body, &mut n_vars);
        let beta = |pos: Var, next: Var, moved: bool, body: &mut Vec<Literal>| {
            if moved {
                body.push(Literal::Edb(Atom::new(
                    f_rel,
                    vec![Term::Var(pos), Term::Var(next)],
                )));
            } else {
                body.push(Literal::Eq(Term::Var(next), Term::Var(pos)));
            }
        };
        beta(y, y2, t.move1, &mut body);
        beta(z, z2, t.move2, &mut body);
        rules.push(Rule {
            head: reach,
            head_args: vec![Term::from(t.to as i64), Term::Var(y2), Term::Var(z2)],
            body,
            n_vars,
        });
    }

    // Q() ← Reach(qacc, y, z), F(0, x) [Q_ini], F(w, w) [Q_fin].
    let (y, z, x0, w) = (Var(0), Var(1), Var(2), Var(3));
    rules.push(Rule {
        head: out,
        head_args: vec![],
        body: vec![
            Literal::Idb(
                reach,
                vec![Term::from(dfa.accept as i64), Term::Var(y), Term::Var(z)],
            ),
            Literal::Edb(Atom::new(f_rel, vec![Term::from(0i64), Term::Var(x0)])),
            Literal::Edb(Atom::new(f_rel, vec![Term::Var(w), Term::Var(w)])),
        ],
        n_vars: 4,
    });

    let program = Program {
        pred_names: vec!["Reach".into(), "Q".into()],
        arities: vec![3, 0],
        rules,
        output: out,
    };
    program
        .validate()
        .unwrap_or_else(|e| unreachable!("reduction program is range-restricted: {e:?}"));
    program
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulator_accepts_ones() {
        let a = TwoHeadDfa::ones();
        assert!(a.accepts(&[true]));
        assert!(a.accepts(&[true, true, true]));
        assert!(!a.accepts(&[]));
        assert!(!a.accepts(&[false]));
        assert!(!a.accepts(&[true, false]));
    }

    #[test]
    fn bounded_emptiness() {
        assert_eq!(TwoHeadDfa::ones().find_accepted_word(3), Some(vec![true]));
        assert_eq!(TwoHeadDfa::empty_language().find_accepted_word(5), None);
    }

    #[test]
    fn fp_query_matches_simulator_on_encoded_words() {
        let dfa = TwoHeadDfa::ones();
        let schema = reduction_schema();
        let program = reachability_program(&schema, &dfa);
        for word in [
            vec![],
            vec![true],
            vec![false],
            vec![true, true],
            vec![true, false],
        ] {
            let db = encode_word(&schema, &word);
            let fp_accepts = !program.eval(&db).is_empty();
            assert_eq!(
                fp_accepts,
                dfa.accepts(&word),
                "FP query and simulator disagree on {word:?}"
            );
        }
    }

    #[test]
    fn encoded_words_are_partially_closed() {
        let (setting, _, _) = to_rcdp_instance(&TwoHeadDfa::ones());
        for word in [vec![], vec![true, false, true]] {
            let db = encode_word(&setting.schema, &word);
            assert!(setting.partially_closed(&db).unwrap(), "word {word:?}");
        }
    }

    #[test]
    fn rcdp_instance_detects_nonempty_language() {
        // L(A) ≠ ∅ ⇒ the empty database is NOT complete: the bounded search
        // must find a witness extension (the encoded accepted word).
        let (setting, q, db) = to_rcdp_instance(&TwoHeadDfa::ones());
        let budget = ric_complete::SearchBudget {
            max_delta_tuples: 3, // encoding of "1": P(0), F(0,1), F(1,1)
            fresh_values: 2,
            ..ric_complete::SearchBudget::default()
        };
        let verdict = ric_complete::rcdp(&setting, &q, &db, &budget).unwrap();
        match verdict {
            ric_complete::Verdict::Incomplete(ce) => {
                assert!(
                    ric_complete::rcdp::certify_counterexample(&setting, &q, &db, &ce).unwrap()
                );
            }
            other => panic!("expected incomplete, got {other:?}"),
        }
    }

    #[test]
    fn rcdp_instance_reports_unknown_for_empty_language() {
        let (setting, q, db) = to_rcdp_instance(&TwoHeadDfa::empty_language());
        let budget = ric_complete::SearchBudget {
            max_delta_tuples: 3,
            fresh_values: 2,
            max_candidates: 200_000,
            ..ric_complete::SearchBudget::default()
        };
        let verdict = ric_complete::rcdp(&setting, &q, &db, &budget).unwrap();
        assert!(
            matches!(verdict, ric_complete::Verdict::Unknown { .. }),
            "emptiness is undecidable; the bounded search must answer Unknown, got {verdict:?}"
        );
    }
}

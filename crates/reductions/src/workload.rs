//! Random master-data-management workloads with planted ground truth.
//!
//! The complexity tables say what happens in the worst case; the benches
//! also need *typical* instances to show where the deciders are fast. This
//! module generates CRM-style settings (a master customer list, support
//! tables IND-bounded by it) and databases that are complete or incomplete
//! by construction.

use ric_complete::{Query, Setting};
use ric_constraints::{CcBody, ConstraintSet, ContainmentConstraint, Projection};
use ric_data::{Database, RelationSchema, Schema, SplitMix64, Tuple, Value};
use ric_query::parse_cq;

/// Tunable workload shape.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadParams {
    /// Number of master customers.
    pub n_customers: usize,
    /// Number of employees referenced by the support table.
    pub n_employees: usize,
    /// Support tuples in the generated database.
    pub n_support: usize,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            n_customers: 20,
            n_employees: 5,
            n_support: 40,
        }
    }
}

/// A generated instance: setting, query, database, and the planted truth
/// (`true` = complete).
#[derive(Clone, Debug)]
pub struct PlantedInstance {
    /// Master data and constraints.
    pub setting: Setting,
    /// The query under test.
    pub query: Query,
    /// The partially closed database.
    pub db: Database,
    /// Whether `db` is complete for `query` (by construction).
    pub complete: bool,
}

/// The CRM setting of Example 1.1: `Supt(eid, dept, cid)` with
/// `π_cid(Supt) ⊆ π_cid(DCust)`.
pub fn crm_setting(n_customers: usize) -> Setting {
    let schema = Schema::from_relations(vec![RelationSchema::infinite(
        "Supt",
        &["eid", "dept", "cid"],
    )])
    .unwrap_or_else(|e| unreachable!("fixed schema (compiled-in literal): {e:?}"));
    let supt = schema
        .rel_id("Supt")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let mschema = Schema::from_relations(vec![RelationSchema::infinite("DCust", &["cid"])])
        .unwrap_or_else(|e| unreachable!("fixed (compiled-in literal): {e:?}"));
    let dcust = mschema
        .rel_id("DCust")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let mut dm = Database::empty(&mschema);
    for c in 0..n_customers {
        dm.insert(dcust, Tuple::new([Value::str(format!("c{c}"))]));
    }
    let v = ConstraintSet::new(vec![ContainmentConstraint::into_master(
        CcBody::Proj(Projection::new(supt, vec![2])),
        dcust,
        vec![0],
    )]);
    Setting::new(schema, mschema, dm, v)
}

/// Generate an RCDP instance. The query asks for the customers of employee
/// `e0`; a complete instance saturates `e0` against the master list, an
/// incomplete one leaves a random subset missing.
pub fn planted_rcdp(
    params: &WorkloadParams,
    complete: bool,
    rng: &mut SplitMix64,
) -> PlantedInstance {
    let setting = crm_setting(params.n_customers);
    let supt = setting
        .schema
        .rel_id("Supt")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let query: Query = parse_cq(&setting.schema, "Q(C) :- Supt('e0', D, C).")
        .unwrap_or_else(|e| unreachable!("fixed query (compiled-in literal): {e:?}"))
        .into();
    let mut db = Database::empty(&setting.schema);
    let customers: Vec<String> = (0..params.n_customers).map(|c| format!("c{c}")).collect();
    // e0's coverage.
    let covered: usize = if complete {
        params.n_customers
    } else {
        rng.random_range(0..params.n_customers.max(1))
    };
    for c in customers.iter().take(covered) {
        db.insert(
            supt,
            Tuple::new([Value::str("e0"), Value::str("d0"), Value::str(c)]),
        );
    }
    // Background noise from other employees (never affects completeness of
    // the e0 query: their cids are master customers).
    for _ in 0..params.n_support {
        let e = rng.random_range(1..params.n_employees.max(2));
        let c = rng
            .choose(&customers)
            .unwrap_or_else(|| unreachable!("var pool is nonempty"));
        db.insert(
            supt,
            Tuple::new([
                Value::str(format!("e{e}")),
                Value::str(format!("d{}", rng.random_range(0..3))),
                Value::str(c),
            ]),
        );
    }
    PlantedInstance {
        setting,
        query,
        db,
        complete,
    }
}

/// Generate an RCQP instance over the CRM setting: queries on IND-covered
/// columns are relatively complete, queries exposing the employee id are
/// not.
pub fn planted_rcqp(n_customers: usize, nonempty: bool) -> (Setting, Query, bool) {
    let setting = crm_setting(n_customers);
    let query: Query = if nonempty {
        parse_cq(&setting.schema, "Q(C) :- Supt('e0', D, C).")
            .unwrap_or_else(|e| unreachable!("fixed (compiled-in literal): {e:?}"))
            .into()
    } else {
        parse_cq(&setting.schema, "Q(E) :- Supt(E, D, C).")
            .unwrap_or_else(|e| unreachable!("fixed (compiled-in literal): {e:?}"))
            .into()
    };
    (setting, query, nonempty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ric_complete::{rcdp, rcqp, SearchBudget};

    #[test]
    fn planted_rcdp_truth_is_respected() {
        let mut rng = SplitMix64::seed_from_u64(5);
        let params = WorkloadParams {
            n_customers: 6,
            n_employees: 3,
            n_support: 10,
        };
        for complete in [true, false] {
            let inst = planted_rcdp(&params, complete, &mut rng);
            let verdict = rcdp(
                &inst.setting,
                &inst.query,
                &inst.db,
                &SearchBudget::default(),
            )
            .unwrap();
            assert_eq!(
                verdict.is_complete(),
                inst.complete,
                "planted truth mismatch (complete = {complete})"
            );
        }
    }

    #[test]
    fn planted_rcqp_truth_is_respected() {
        for nonempty in [true, false] {
            let (setting, query, truth) = planted_rcqp(5, nonempty);
            let verdict = rcqp(&setting, &query, &SearchBudget::default()).unwrap();
            assert_eq!(verdict.is_nonempty(), truth);
        }
    }

    #[test]
    fn generated_databases_are_partially_closed() {
        let mut rng = SplitMix64::seed_from_u64(6);
        let inst = planted_rcdp(&WorkloadParams::default(), false, &mut rng);
        assert!(inst.setting.partially_closed(&inst.db).unwrap());
    }
}

//! The Σᵖ₂ lower bound for RCDP (Theorem 3.6): reduction from ∀*∃*-3SAT to
//! RCDP(CQ, INDs) with *fixed* master data and constraints (Corollary 3.7).
//!
//! The database carries Boolean-logic truth tables `R_1..R_5` (domain,
//! disjunction, conjunction, negation, and the selector table `I_c`) plus a
//! switch relation `R_6`; each is IND-bounded by an identical master copy,
//! except that the master `R^m_6 = {(0), (1)}` while `D` holds `I_6 = {(1)}`.
//! The query evaluates the 3SAT matrix over all assignments and uses
//! `R_5(z′, z, 1)` so that with `z′ = 1` only the `∃Y`-satisfiable `X`
//! assignments are returned, while adding `(0)` to `R_6` would return *all*
//! `X` assignments. Hence `D` is complete for `Q` iff `∀X ∃Y ψ` is true.

use crate::qbf::ForallExists;
use crate::sat::Lit;
use ric_complete::{Query, Setting};
use ric_constraints::{CcBody, ConstraintSet, ContainmentConstraint, Projection};
use ric_data::{Database, RelationSchema, Schema, Tuple, Value};
use ric_query::{Cq, Term, Var};

/// Build the RCDP(CQ, INDs) instance: `(Setting, Q, D)` with `D` partially
/// closed and `D ∈ RCQ(Q, D_m, V)` iff `phi` evaluates to true.
pub fn to_rcdp_instance(phi: &ForallExists) -> (Setting, Query, Database) {
    assert!(
        !phi.matrix.clauses.is_empty(),
        "reduction expects at least one clause"
    );
    let schema = Schema::from_relations(vec![
        RelationSchema::infinite("R1", &["x"]),
        RelationSchema::infinite("R2", &["a", "b", "c"]), // OR
        RelationSchema::infinite("R3", &["a", "b", "c"]), // AND
        RelationSchema::infinite("R4", &["x", "nx"]),     // NOT
        RelationSchema::infinite("R5", &["zp", "z", "s"]), // selector I_c
        RelationSchema::infinite("R6", &["x"]),           // switch
    ])
    .unwrap_or_else(|e| unreachable!("fixed schema (compiled-in literal): {e:?}"));
    let mschema = Schema::from_relations(vec![
        RelationSchema::infinite("Rm1", &["x"]),
        RelationSchema::infinite("Rm2", &["a", "b", "c"]),
        RelationSchema::infinite("Rm3", &["a", "b", "c"]),
        RelationSchema::infinite("Rm4", &["x", "nx"]),
        RelationSchema::infinite("Rm5", &["zp", "z", "s"]),
        RelationSchema::infinite("Rm6", &["x"]),
    ])
    .unwrap_or_else(|e| unreachable!("fixed master schema (compiled-in literal): {e:?}"));

    let bools = [0i64, 1];
    let or_rows: Vec<[i64; 3]> = bools
        .iter()
        .flat_map(|&a| {
            bools
                .iter()
                .map(move |&b| [a, b, (a != 0 || b != 0) as i64])
        })
        .collect();
    let and_rows: Vec<[i64; 3]> = bools
        .iter()
        .flat_map(|&a| {
            bools
                .iter()
                .map(move |&b| [a, b, (a != 0 && b != 0) as i64])
        })
        .collect();
    let not_rows: Vec<[i64; 2]> = vec![[0, 1], [1, 0]];
    // I_c(z′, z, 1) holds iff z′ = 0, or z′ = 1 ∧ z = 1.
    let ic_rows: Vec<[i64; 3]> = vec![[0, 0, 1], [0, 1, 1], [1, 0, 0], [1, 1, 1]];

    let fill = |db: &mut Database, schema: &Schema, prefix: &str, switch: &[i64]| {
        let rel = |n: &str| {
            schema
                .rel_id(&format!("{prefix}{n}"))
                .unwrap_or_else(|| unreachable!("fixed relation"))
        };
        for &b in &bools {
            db.insert(rel("1"), Tuple::new([Value::int(b)]));
        }
        for r in &or_rows {
            db.insert(rel("2"), Tuple::new(r.iter().map(|&v| Value::int(v))));
        }
        for r in &and_rows {
            db.insert(rel("3"), Tuple::new(r.iter().map(|&v| Value::int(v))));
        }
        for r in &not_rows {
            db.insert(rel("4"), Tuple::new(r.iter().map(|&v| Value::int(v))));
        }
        for r in &ic_rows {
            db.insert(rel("5"), Tuple::new(r.iter().map(|&v| Value::int(v))));
        }
        for &s in switch {
            db.insert(rel("6"), Tuple::new([Value::int(s)]));
        }
    };
    let mut db = Database::empty(&schema);
    fill(&mut db, &schema, "R", &[1]);
    let mut dm = Database::empty(&mschema);
    fill(&mut dm, &mschema, "Rm", &[0, 1]);

    // V: R_i ⊆ R^m_i, full width — a fixed set of INDs.
    let mut v = ConstraintSet::empty();
    for i in 1..=6u32 {
        let r = schema
            .rel_id(&format!("R{i}"))
            .unwrap_or_else(|| unreachable!("fixed relation"));
        let rm = mschema
            .rel_id(&format!("Rm{i}"))
            .unwrap_or_else(|| unreachable!("fixed relation"));
        let width = schema
            .arity(r)
            .unwrap_or_else(|e| unreachable!("fixed relation: {e:?}"));
        let cols: Vec<usize> = (0..width).collect();
        v.push(ContainmentConstraint::into_master(
            CcBody::Proj(Projection::new(r, cols.clone())),
            rm,
            cols,
        ));
    }
    let setting = Setting::new(schema.clone(), mschema, dm, v);
    let q = build_query(&schema, phi);
    (setting, Query::Cq(q), db)
}

/// `Q(x̄) = π_x̄ ( R6(z′) × T(x̄, ȳ, z) × R5(z′, z, 1) )` with `T` the circuit
/// evaluating the 3SAT matrix.
fn build_query(schema: &Schema, phi: &ForallExists) -> Cq {
    let r1 = schema
        .rel_id("R1")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let r2 = schema
        .rel_id("R2")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let r3 = schema
        .rel_id("R3")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let r4 = schema
        .rel_id("R4")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let r5 = schema
        .rel_id("R5")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let r6 = schema
        .rel_id("R6")
        .unwrap_or_else(|| unreachable!("fixed relation"));
    let n_all = phi.n_forall + phi.n_exists;

    let mut b = Cq::builder();
    // Positive and negated copies of every propositional variable.
    let pos: Vec<Var> = (0..n_all).map(|i| b.var(&format!("v{i}"))).collect();
    let neg: Vec<Var> = (0..n_all).map(|i| b.var(&format!("nv{i}"))).collect();
    let zp = b.var("zp");
    // Per-clause outputs and the conjunction chain.
    let clause_out: Vec<Var> = (0..phi.matrix.clauses.len())
        .map(|i| b.var(&format!("c{i}")))
        .collect();
    let or_tmp: Vec<Var> = (0..phi.matrix.clauses.len())
        .map(|i| b.var(&format!("o{i}")))
        .collect();
    let chain: Vec<Var> = (1..phi.matrix.clauses.len())
        .map(|i| b.var(&format!("g{i}")))
        .collect();

    let mut builder = b;
    // Variable typing and negation wiring.
    for i in 0..n_all {
        builder = builder
            .atom(r1, vec![Term::Var(pos[i])])
            .atom(r4, vec![Term::Var(pos[i]), Term::Var(neg[i])]);
    }
    let lit_term = |l: &Lit| -> Term {
        if l.positive {
            Term::Var(pos[l.var])
        } else {
            Term::Var(neg[l.var])
        }
    };
    // Clause circuits: o_i = l1 ∨ l2; c_i = o_i ∨ l3.
    for (i, clause) in phi.matrix.clauses.iter().enumerate() {
        assert_eq!(clause.0.len(), 3, "3SAT clauses");
        builder = builder
            .atom(
                r2,
                vec![
                    lit_term(&clause.0[0]),
                    lit_term(&clause.0[1]),
                    Term::Var(or_tmp[i]),
                ],
            )
            .atom(
                r2,
                vec![
                    Term::Var(or_tmp[i]),
                    lit_term(&clause.0[2]),
                    Term::Var(clause_out[i]),
                ],
            );
    }
    // Conjunction chain: g_1 = c_0 ∧ c_1; g_i = g_{i-1} ∧ c_i; z = last.
    let z: Term = if clause_out.len() == 1 {
        Term::Var(clause_out[0])
    } else {
        let mut prev = Term::Var(clause_out[0]);
        for (i, &g) in chain.iter().enumerate() {
            builder = builder.atom(r3, vec![prev, Term::Var(clause_out[i + 1]), Term::Var(g)]);
            prev = Term::Var(g);
        }
        prev
    };
    // Switch and selector.
    builder = builder
        .atom(r6, vec![Term::Var(zp)])
        .atom(r5, vec![Term::Var(zp), z, Term::from(1)]);
    let head: Vec<Var> = pos[..phi.n_forall].to_vec();
    builder.head_vars(head).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{Clause, Cnf};
    use ric_complete::{rcdp, SearchBudget, Verdict};
    use ric_data::SplitMix64;

    fn decide(phi: &ForallExists) -> Verdict {
        let (setting, q, db) = to_rcdp_instance(phi);
        rcdp(&setting, &q, &db, &SearchBudget::default()).unwrap()
    }

    #[test]
    fn true_formula_yields_complete_database() {
        // ∀x ∃y (x ∨ y ∨ y): true (take y = 1).
        let phi = ForallExists {
            n_forall: 1,
            n_exists: 1,
            matrix: Cnf {
                n_vars: 2,
                clauses: vec![Clause(vec![Lit::pos(0), Lit::pos(1), Lit::pos(1)])],
            },
        };
        assert!(phi.eval());
        assert_eq!(decide(&phi), Verdict::Complete);
    }

    #[test]
    fn false_formula_yields_incomplete_database() {
        // ∀x ∃y (x ∨ x ∨ x): false for x = 0.
        let phi = ForallExists {
            n_forall: 1,
            n_exists: 1,
            matrix: Cnf {
                n_vars: 2,
                clauses: vec![Clause(vec![Lit::pos(0), Lit::pos(0), Lit::pos(0)])],
            },
        };
        assert!(!phi.eval());
        let (setting, q, db) = to_rcdp_instance(&phi);
        match rcdp(&setting, &q, &db, &SearchBudget::default()).unwrap() {
            Verdict::Incomplete(ce) => {
                assert!(
                    ric_complete::rcdp::certify_counterexample(&setting, &q, &db, &ce).unwrap()
                );
            }
            other => panic!("expected incomplete, got {other:?}"),
        }
    }

    #[test]
    fn reduction_agrees_with_oracle_on_random_instances() {
        let mut rng = SplitMix64::seed_from_u64(42);
        let mut seen = [0usize; 2];
        for _ in 0..8 {
            let phi = ForallExists::random(2, 2, 3, &mut rng);
            let truth = phi.eval();
            seen[truth as usize] += 1;
            let verdict = decide(&phi);
            assert_eq!(
                verdict.is_complete(),
                truth,
                "decider and QBF oracle disagree on {phi:?}"
            );
        }
        assert!(seen[0] > 0 && seen[1] > 0, "want both outcomes covered");
    }

    #[test]
    fn multi_clause_chain_is_wired_correctly() {
        // ∀x ∃y (x ∨ y ∨ y) ∧ (¬x ∨ ¬y ∨ ¬y): true (y = ¬x).
        let phi = ForallExists {
            n_forall: 1,
            n_exists: 1,
            matrix: Cnf {
                n_vars: 2,
                clauses: vec![
                    Clause(vec![Lit::pos(0), Lit::pos(1), Lit::pos(1)]),
                    Clause(vec![Lit::neg(0), Lit::neg(1), Lit::neg(1)]),
                ],
            },
        };
        assert!(phi.eval());
        assert_eq!(decide(&phi), Verdict::Complete);
    }
}

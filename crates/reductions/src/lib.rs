//! # `ric-reductions` — the paper's lower bounds as runnable artifacts
//!
//! Every hardness proof in the paper is a reduction from a canonical hard
//! problem. This crate implements each source problem *and* its reduction,
//! together with an independent ground-truth solver, so the deciders of
//! `ric-complete` can be validated end to end and their scaling measured:
//!
//! | Paper result | Source problem | Module |
//! | --- | --- | --- |
//! | Thm 3.6 (RCDP Σᵖ₂-hard, `L_C` = INDs) | ∀*∃*-3SAT | [`rcdp_sigma2`] |
//! | Thm 4.5(1) (RCQP coNP-hard, `L_C` = INDs) | 3SAT | [`rcqp_conp`] |
//! | Cor 4.6(2) (RCQP Πᵖ₃-hard, fixed `(D_m, V)`) | ∃*∀*∃*-3SAT | [`rcqp_pi3`] |
//! | Thm 4.5(2) (RCQP NEXPTIME-hard) | 2ⁿ×2ⁿ tiling | [`tiling`] |
//! | Thm 3.1(3)/4.1(3) (undecidability) | 2-head DFA emptiness | [`two_head_dfa`] |
//!
//! [`sat`] hosts CNF machinery with a DPLL solver; [`qbf`] the quantified
//! variants with brute-force evaluation; [`workload`] random
//! master-data-management instances with planted ground truth for the
//! benches.

pub mod qbf;
pub mod rcdp_sigma2;
pub mod rcqp_conp;
pub mod rcqp_pi3;
pub mod sat;
pub mod tiling;
pub mod two_head_dfa;
pub mod workload;

pub use qbf::{ExistsForallExists, ForallExists};
pub use sat::{Clause, Cnf, Lit};
pub use tiling::TilingInstance;
pub use two_head_dfa::TwoHeadDfa;

//! Quantified 3SAT variants: `∀*∃*` (Σᵖ₂-hard complement, used by the RCDP
//! lower bound of Theorem 3.6) and `∃*∀*∃*` (Πᵖ₃-hard complement, used by the
//! fixed-`(D_m, V)` RCQP lower bound of Corollary 4.6). Both come with exact
//! brute-force evaluators usable up to ~20 quantified variables.

use crate::sat::Cnf;
use ric_data::SplitMix64;

/// `φ = ∀X ∃Y ψ(X, Y)` with `ψ` in 3CNF. Variables `0..n_forall` are
/// universal; `n_forall..n_forall+n_exists` existential.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ForallExists {
    /// Number of universally quantified variables `X`.
    pub n_forall: usize,
    /// Number of existentially quantified variables `Y`.
    pub n_exists: usize,
    /// The matrix over `n_forall + n_exists` variables.
    pub matrix: Cnf,
}

impl ForallExists {
    /// Exact evaluation: for every `X` assignment, does some `Y` assignment
    /// satisfy the matrix? Exponential in `n_forall`; the inner search uses
    /// DPLL on the restricted matrix.
    pub fn eval(&self) -> bool {
        assert_eq!(self.matrix.n_vars, self.n_forall + self.n_exists);
        assert!(self.n_forall <= 20, "outer enumeration is exponential");
        (0..(1u64 << self.n_forall)).all(|mask| {
            let restricted = restrict(&self.matrix, 0, self.n_forall, mask);
            restricted.satisfiable()
        })
    }

    /// A random instance.
    pub fn random(
        n_forall: usize,
        n_exists: usize,
        n_clauses: usize,
        rng: &mut SplitMix64,
    ) -> Self {
        ForallExists {
            n_forall,
            n_exists,
            matrix: Cnf::random_3sat(n_forall + n_exists, n_clauses, rng),
        }
    }
}

/// `φ = ∃X ∀Y ∃Z ψ(X, Y, Z)` with `ψ` in 3CNF.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExistsForallExists {
    /// Number of outer existential variables `X`.
    pub n_exists_outer: usize,
    /// Number of universal variables `Y`.
    pub n_forall: usize,
    /// Number of inner existential variables `Z`.
    pub n_exists_inner: usize,
    /// The matrix over all variables, ordered `X, Y, Z`.
    pub matrix: Cnf,
}

impl ExistsForallExists {
    /// Exact evaluation by nested enumeration (DPLL innermost).
    pub fn eval(&self) -> bool {
        let n = self.n_exists_outer + self.n_forall + self.n_exists_inner;
        assert_eq!(self.matrix.n_vars, n);
        assert!(self.n_exists_outer + self.n_forall <= 20);
        (0..(1u64 << self.n_exists_outer)).any(|xmask| {
            let after_x = restrict(&self.matrix, 0, self.n_exists_outer, xmask);
            (0..(1u64 << self.n_forall)).all(|ymask| {
                let after_y = restrict(&after_x, self.n_exists_outer, self.n_forall, ymask);
                after_y.satisfiable()
            })
        })
    }

    /// A random instance.
    pub fn random(
        n_exists_outer: usize,
        n_forall: usize,
        n_exists_inner: usize,
        n_clauses: usize,
        rng: &mut SplitMix64,
    ) -> Self {
        ExistsForallExists {
            n_exists_outer,
            n_forall,
            n_exists_inner,
            matrix: Cnf::random_3sat(n_exists_outer + n_forall + n_exists_inner, n_clauses, rng),
        }
    }
}

/// Restrict variables `[start, start+count)` of `cnf` to the bits of `mask`;
/// satisfied clauses are dropped, falsified literals removed.
fn restrict(cnf: &Cnf, start: usize, count: usize, mask: u64) -> Cnf {
    let value = |var: usize| -> Option<bool> {
        if (start..start + count).contains(&var) {
            Some(mask & (1 << (var - start)) != 0)
        } else {
            None
        }
    };
    let mut clauses = Vec::new();
    'clauses: for clause in &cnf.clauses {
        let mut kept = Vec::new();
        for l in &clause.0 {
            match value(l.var) {
                Some(v) if v == l.positive => continue 'clauses, // satisfied
                Some(_) => {}                                    // falsified literal
                None => kept.push(*l),
            }
        }
        clauses.push(crate::sat::Clause(kept));
    }
    Cnf {
        n_vars: cnf.n_vars,
        clauses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{Clause, Lit};

    #[test]
    fn forall_exists_tautology() {
        // ∀x ∃y (x ∨ y) ∧ (¬x ∨ ¬y): pick y = ¬x. True.
        let phi = ForallExists {
            n_forall: 1,
            n_exists: 1,
            matrix: Cnf {
                n_vars: 2,
                clauses: vec![
                    Clause(vec![Lit::pos(0), Lit::pos(1)]),
                    Clause(vec![Lit::neg(0), Lit::neg(1)]),
                ],
            },
        };
        assert!(phi.eval());
    }

    #[test]
    fn forall_exists_false_instance() {
        // ∀x ∃y (x): false for x = 0.
        let phi = ForallExists {
            n_forall: 1,
            n_exists: 1,
            matrix: Cnf {
                n_vars: 2,
                clauses: vec![Clause(vec![Lit::pos(0)])],
            },
        };
        assert!(!phi.eval());
    }

    #[test]
    fn exists_forall_exists_cases() {
        // ∃x ∀y ∃z (x) — true with x = 1.
        let t = ExistsForallExists {
            n_exists_outer: 1,
            n_forall: 1,
            n_exists_inner: 1,
            matrix: Cnf {
                n_vars: 3,
                clauses: vec![Clause(vec![Lit::pos(0)])],
            },
        };
        assert!(t.eval());
        // ∃x ∀y ∃z (y) — false: y = 0 falsifies.
        let f = ExistsForallExists {
            n_exists_outer: 1,
            n_forall: 1,
            n_exists_inner: 1,
            matrix: Cnf {
                n_vars: 3,
                clauses: vec![Clause(vec![Lit::pos(1)])],
            },
        };
        assert!(!f.eval());
        // ∃x ∀y ∃z (y ∨ z) ∧ (¬z ∨ ¬y... ) — z can always rescue: true.
        let rescue = ExistsForallExists {
            n_exists_outer: 1,
            n_forall: 1,
            n_exists_inner: 1,
            matrix: Cnf {
                n_vars: 3,
                clauses: vec![Clause(vec![Lit::pos(1), Lit::pos(2)])],
            },
        };
        assert!(rescue.eval());
    }

    #[test]
    fn quantifier_order_matters() {
        // matrix: (x ↔ y) as (¬x ∨ y) ∧ (x ∨ ¬y)
        let matrix = Cnf {
            n_vars: 2,
            clauses: vec![
                Clause(vec![Lit::neg(0), Lit::pos(1)]),
                Clause(vec![Lit::pos(0), Lit::neg(1)]),
            ],
        };
        // ∀x ∃y (x ↔ y): true.
        let fe = ForallExists {
            n_forall: 1,
            n_exists: 1,
            matrix: matrix.clone(),
        };
        assert!(fe.eval());
        // ∃y ∀x (x ↔ y) — modelled as ∃X ∀Y ∃(nothing) with X = y, Y = x and
        // matrix rewritten: variables reordered so x is universal (index 1).
        let reordered = Cnf {
            n_vars: 2,
            clauses: vec![
                Clause(vec![Lit::neg(1), Lit::pos(0)]),
                Clause(vec![Lit::pos(1), Lit::neg(0)]),
            ],
        };
        let efe = ExistsForallExists {
            n_exists_outer: 1,
            n_forall: 1,
            n_exists_inner: 0,
            matrix: reordered,
        };
        assert!(!efe.eval());
    }

    #[test]
    fn random_instances_evaluate_without_panic() {
        let mut rng = SplitMix64::seed_from_u64(11);
        for _ in 0..10 {
            let phi = ForallExists::random(3, 3, 8, &mut rng);
            let _ = phi.eval();
            let psi = ExistsForallExists::random(2, 2, 2, 6, &mut rng);
            let _ = psi.eval();
        }
    }
}

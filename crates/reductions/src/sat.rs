//! CNF formulas, a DPLL solver, and random 3SAT generation.
//!
//! The ground-truth oracle for the coNP reduction of Theorem 4.5(1) and the
//! building block of the quantified variants in [`crate::qbf`].

use ric_data::SplitMix64;

/// A literal: variable index with sign.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lit {
    /// Variable index (0-based).
    pub var: usize,
    /// `true` for the positive literal.
    pub positive: bool,
}

impl Lit {
    /// Positive literal of `var`.
    pub fn pos(var: usize) -> Lit {
        Lit {
            var,
            positive: true,
        }
    }

    /// Negative literal of `var`.
    pub fn neg(var: usize) -> Lit {
        Lit {
            var,
            positive: false,
        }
    }

    /// Evaluate under an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assignment[self.var] == self.positive
    }
}

/// A clause: a disjunction of literals.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Clause(pub Vec<Lit>);

impl Clause {
    /// Evaluate under a total assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.0.iter().any(|l| l.eval(assignment))
    }
}

/// A CNF formula over `n_vars` variables.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cnf {
    /// Number of variables.
    pub n_vars: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// Evaluate under a total assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| c.eval(assignment))
    }

    /// DPLL satisfiability with unit propagation; exact.
    pub fn satisfiable(&self) -> bool {
        self.solve().is_some()
    }

    /// DPLL: a satisfying assignment if one exists.
    pub fn solve(&self) -> Option<Vec<bool>> {
        let mut assignment: Vec<Option<bool>> = vec![None; self.n_vars];
        if self.dpll(&mut assignment) {
            Some(assignment.into_iter().map(|a| a.unwrap_or(false)).collect())
        } else {
            None
        }
    }

    fn dpll(&self, assignment: &mut Vec<Option<bool>>) -> bool {
        // Unit propagation to fixpoint.
        let mut trail: Vec<usize> = Vec::new();
        loop {
            let mut changed = false;
            for clause in &self.clauses {
                let mut unassigned: Option<Lit> = None;
                let mut n_unassigned = 0;
                let mut satisfied = false;
                for l in &clause.0 {
                    match assignment[l.var] {
                        Some(v) if v == l.positive => {
                            satisfied = true;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            n_unassigned += 1;
                            unassigned = Some(*l);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match n_unassigned {
                    0 => {
                        // Conflict: undo the propagation trail.
                        for &v in &trail {
                            assignment[v] = None;
                        }
                        return false;
                    }
                    1 => {
                        let l = unassigned
                            .unwrap_or_else(|| unreachable!("exactly one literal was unassigned"));
                        assignment[l.var] = Some(l.positive);
                        trail.push(l.var);
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                break;
            }
        }
        // Branch on the first unassigned variable.
        match (0..self.n_vars).find(|&v| assignment[v].is_none()) {
            None => true, // all clauses propagated satisfied
            Some(v) => {
                for value in [true, false] {
                    assignment[v] = Some(value);
                    if self.dpll(assignment) {
                        return true;
                    }
                    assignment[v] = None;
                }
                for &t in &trail {
                    assignment[t] = None;
                }
                false
            }
        }
    }

    /// Brute-force satisfiability (reference for the DPLL implementation;
    /// only for small `n_vars`).
    pub fn satisfiable_brute(&self) -> bool {
        assert!(self.n_vars <= 24, "brute force is exponential");
        (0..(1u64 << self.n_vars)).any(|mask| {
            let assignment: Vec<bool> = (0..self.n_vars).map(|i| mask & (1 << i) != 0).collect();
            self.eval(&assignment)
        })
    }

    /// A random 3SAT instance with `n_vars` variables and `n_clauses`
    /// clauses (clauses may repeat variables, as in the paper's definition).
    pub fn random_3sat(n_vars: usize, n_clauses: usize, rng: &mut SplitMix64) -> Cnf {
        assert!(n_vars >= 1);
        let vars: Vec<usize> = (0..n_vars).collect();
        let clauses = (0..n_clauses)
            .map(|_| {
                Clause(
                    (0..3)
                        .map(|_| {
                            let var = *rng
                                .choose(&vars)
                                .unwrap_or_else(|| unreachable!("var pool is nonempty"));
                            if rng.random_bool(0.5) {
                                Lit::pos(var)
                            } else {
                                Lit::neg(var)
                            }
                        })
                        .collect(),
                )
            })
            .collect();
        Cnf { n_vars, clauses }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cnf(n: usize, clauses: &[&[i64]]) -> Cnf {
        Cnf {
            n_vars: n,
            clauses: clauses
                .iter()
                .map(|c| {
                    Clause(
                        c.iter()
                            .map(|&l| {
                                if l > 0 {
                                    Lit::pos((l - 1) as usize)
                                } else {
                                    Lit::neg((-l - 1) as usize)
                                }
                            })
                            .collect(),
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn simple_sat_and_unsat() {
        assert!(!cnf(2, &[&[1, 2], &[-1], &[-2, 1]]).satisfiable());
        assert!(cnf(2, &[&[1, 2], &[-1]]).satisfiable());
        let f = cnf(1, &[&[1], &[-1]]);
        assert!(!f.satisfiable());
    }

    #[test]
    fn solver_returns_model() {
        let f = cnf(3, &[&[1, 2, 3], &[-1, 2], &[-2, 3], &[-3, -1]]);
        if let Some(model) = f.solve() {
            assert!(f.eval(&model));
        } else {
            panic!("formula is satisfiable");
        }
    }

    #[test]
    fn dpll_agrees_with_brute_force_on_random_instances() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..60 {
            let f = Cnf::random_3sat(5, 12, &mut rng);
            assert_eq!(f.satisfiable(), f.satisfiable_brute(), "formula {f:?}");
        }
    }

    #[test]
    fn empty_cnf_is_satisfiable() {
        let f = Cnf {
            n_vars: 1,
            clauses: vec![],
        };
        assert!(f.satisfiable());
    }

    #[test]
    fn empty_clause_is_unsatisfiable() {
        let f = Cnf {
            n_vars: 1,
            clauses: vec![Clause(vec![])],
        };
        assert!(!f.satisfiable());
    }
}
